// Tests for the SinkhornWorkspace hot path: agreement with the reference
// solver, warm-start equivalence and iteration savings, zero-allocation
// steady state, parallel-vs-serial bit compatibility, the log-domain
// fallback, and the workspace-threaded Wasserstein penalty.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/ops.h"
#include "linalg/ops.h"
#include "ot/ipm.h"
#include "ot/sinkhorn.h"
#include "ot/workspace_pool.h"
#include "util/rng.h"

namespace cerl::ot {
namespace {

using autodiff::Tape;
using autodiff::Var;
using linalg::Matrix;

Matrix RandomMatrix(Rng* rng, int rows, int cols, double shift = 0.0) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Normal(shift, 1.0);
  }
  return m;
}

// Mimics one SGD step's representation drift.
void Drift(Rng* rng, Matrix* reps, double scale) {
  for (int64_t i = 0; i < reps->size(); ++i) {
    reps->data()[i] += rng->Normal(0.0, scale);
  }
}

Matrix CostOf(const Matrix& a, const Matrix& b) {
  return linalg::PairwiseSquaredDistances(a, b);
}

TEST(SinkhornWorkspaceTest, ColdSolveMatchesReferenceSolver) {
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, 13, 5);
  Matrix b = RandomMatrix(&rng, 9, 5, 0.7);
  Matrix cost = CostOf(a, b);
  SinkhornConfig config;

  auto reference = SolveSinkhorn(cost, config);
  ASSERT_TRUE(reference.ok());

  SinkhornWorkspace ws;
  auto info = SolveSinkhorn(cost, config, &ws);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().warm_started);
  EXPECT_FALSE(info.value().used_log_domain);
  EXPECT_NEAR(info.value().cost, reference.value().cost,
              1e-6 * (1.0 + std::fabs(reference.value().cost)));
  EXPECT_LT(Matrix::MaxAbsDiff(ws.plan(), reference.value().plan), 1e-6);
}

TEST(SinkhornWorkspaceTest, WarmStartMatchesColdWithinTolerance) {
  Rng rng(2);
  Matrix a = RandomMatrix(&rng, 16, 8);
  Matrix b = RandomMatrix(&rng, 16, 8, 0.5);
  SinkhornConfig config;

  SinkhornWorkspace warm_ws;
  ASSERT_TRUE(SolveSinkhorn(CostOf(a, b), config, &warm_ws).ok());

  Drift(&rng, &a, 1e-3);
  Matrix drifted_cost = CostOf(a, b);
  auto warm = SolveSinkhorn(drifted_cost, config, &warm_ws);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().warm_started);

  SinkhornWorkspace cold_ws;
  auto cold = SolveSinkhorn(drifted_cost, config, &cold_ws);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().warm_started);

  // Both are fixed points of the same problem within the solver tolerance.
  EXPECT_NEAR(warm.value().cost, cold.value().cost,
              1e-4 * (1.0 + std::fabs(cold.value().cost)));
  EXPECT_LT(Matrix::MaxAbsDiff(warm_ws.plan(), cold_ws.plan()), 1e-4);
  // And the plan still has the uniform marginals — both sides: a
  // zero-iteration warm accept must not trade exact columns (the cold
  // solver's invariant) for stale duals.
  const Matrix& plan = warm_ws.plan();
  for (int i = 0; i < plan.rows(); ++i) {
    double row = 0.0;
    for (int j = 0; j < plan.cols(); ++j) row += plan(i, j);
    EXPECT_NEAR(row, 1.0 / plan.rows(), 1e-4);
  }
  for (int j = 0; j < plan.cols(); ++j) {
    double col = 0.0;
    for (int i = 0; i < plan.rows(); ++i) col += plan(i, j);
    EXPECT_NEAR(col, 1.0 / plan.cols(), 1e-4);
  }
}

TEST(SinkhornWorkspaceTest, WarmStartCutsIterations) {
  Rng rng(3);
  Matrix a = RandomMatrix(&rng, 24, 8);
  Matrix b = RandomMatrix(&rng, 24, 8, 1.0);
  SinkhornConfig config;

  SinkhornWorkspace ws;
  auto first = SolveSinkhorn(CostOf(a, b), config, &ws);
  ASSERT_TRUE(first.ok());
  const int cold_iterations = first.value().iterations;
  EXPECT_GT(cold_iterations, 1);

  int total_warm = 0;
  for (int step = 0; step < 5; ++step) {
    Drift(&rng, &a, 1e-4);
    auto warm = SolveSinkhorn(CostOf(a, b), config, &ws);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.value().warm_started);
    EXPECT_LT(warm.value().iterations, cold_iterations);
    total_warm += warm.value().iterations;
  }
  // Representations drift slowly between steps => several-fold fewer
  // iterations on average (usually zero or one per warm solve).
  EXPECT_LT(total_warm, 5 * cold_iterations / 2);
}

TEST(SinkhornWorkspaceTest, SteadyStateAllocatesNothing) {
  Rng rng(4);
  Matrix a = RandomMatrix(&rng, 20, 6);
  Matrix b = RandomMatrix(&rng, 15, 6, 0.4);
  SinkhornConfig config;

  SinkhornWorkspace ws;
  ASSERT_TRUE(SolveSinkhorn(CostOf(a, b), config, &ws).ok());
  const int64_t after_first = ws.allocations();
  EXPECT_GT(after_first, 0);
  for (int step = 0; step < 10; ++step) {
    Drift(&rng, &a, 1e-3);
    ASSERT_TRUE(SolveSinkhorn(CostOf(a, b), config, &ws).ok());
    EXPECT_EQ(ws.allocations(), after_first);
  }
}

TEST(SinkhornWorkspaceTest, ShapesBelowHighWaterReuseBuffers) {
  Rng rng(5);
  SinkhornConfig config;
  SinkhornWorkspace ws;
  // Establish the high-water shape, then alternate smaller/transposed
  // shapes: no further growth is allowed.
  Matrix big_a = RandomMatrix(&rng, 32, 6);
  Matrix big_b = RandomMatrix(&rng, 32, 6, 0.3);
  ASSERT_TRUE(SolveSinkhorn(CostOf(big_a, big_b), config, &ws).ok());
  const int64_t high_water = ws.allocations();
  for (int step = 0; step < 6; ++step) {
    const int n1 = 8 + 4 * (step % 3);
    const int n2 = 32 - 4 * (step % 3);
    Matrix a = RandomMatrix(&rng, n1, 6);
    Matrix b = RandomMatrix(&rng, n2, 6, 0.3);
    auto info = SolveSinkhorn(CostOf(a, b), config, &ws);
    ASSERT_TRUE(info.ok());
    // Shape changed => duals are adapted (truncate / pad-with-1.0), so the
    // solve still counts as warm-started, and no new buffers appear.
    EXPECT_TRUE(info.value().warm_started);
    EXPECT_EQ(ws.allocations(), high_water);
  }
}

TEST(SinkhornWorkspaceTest, AdaptiveWarmStartOffGoesColdOnShapeChange) {
  Rng rng(5);
  SinkhornConfig config;
  config.adaptive_warm_start = false;
  SinkhornWorkspace ws;
  Matrix big_a = RandomMatrix(&rng, 24, 6);
  Matrix big_b = RandomMatrix(&rng, 20, 6, 0.3);
  ASSERT_TRUE(SolveSinkhorn(CostOf(big_a, big_b), config, &ws).ok());
  // With adaptation disabled, a shape change must fall back to a cold
  // start (the pre-adaptive contract).
  Matrix a = RandomMatrix(&rng, 12, 6);
  Matrix b = RandomMatrix(&rng, 16, 6, 0.3);
  auto info = SolveSinkhorn(CostOf(a, b), config, &ws);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().warm_started);
}

TEST(SinkhornWorkspaceTest, AdaptedWarmStartMatchesReferenceSolution) {
  Rng rng(13);
  SinkhornConfig config;
  Matrix big_a = RandomMatrix(&rng, 26, 5);
  Matrix big_b = RandomMatrix(&rng, 22, 5, 0.4);
  SinkhornWorkspace ws;
  ASSERT_TRUE(SolveSinkhorn(CostOf(big_a, big_b), config, &ws).ok());
  // Shrinking and growing both dimensions across solves: every adapted
  // solve must land on the same plan as a cold-started workspace within
  // the solver tolerance (adaptation may only change the starting point).
  const int shapes[][2] = {{12, 30}, {30, 12}, {26, 22}};
  for (const auto& s : shapes) {
    Matrix a = RandomMatrix(&rng, s[0], 5);
    Matrix b = RandomMatrix(&rng, s[1], 5, 0.4);
    Matrix cost = CostOf(a, b);
    auto adapted = SolveSinkhorn(cost, config, &ws);
    SinkhornWorkspace cold_ws;
    auto cold = SolveSinkhorn(cost, config, &cold_ws);
    ASSERT_TRUE(adapted.ok());
    ASSERT_TRUE(cold.ok());
    EXPECT_TRUE(adapted.value().warm_started);
    EXPECT_NEAR(adapted.value().cost, cold.value().cost,
                1e-4 * std::max(1.0, std::fabs(cold.value().cost)));
  }
}

TEST(SinkhornWorkspaceTest, ParallelAndSerialAreBitIdentical) {
  Rng rng(6);
  Matrix a = RandomMatrix(&rng, 33, 7);
  Matrix b = RandomMatrix(&rng, 21, 7, 0.6);
  Matrix cost = CostOf(a, b);

  SinkhornConfig parallel_config;
  parallel_config.parallel = true;
  // The 33x21 problem is below the small-solve serial threshold; force the
  // genuinely parallel kernels so this test keeps comparing them.
  parallel_config.min_parallel_elements = 0;
  SinkhornConfig serial_config;
  serial_config.parallel = false;

  SinkhornWorkspace ws_par, ws_ser;
  auto par = SolveSinkhorn(cost, parallel_config, &ws_par);
  auto ser = SolveSinkhorn(cost, serial_config, &ws_ser);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  EXPECT_EQ(par.value().cost, ser.value().cost);
  EXPECT_EQ(par.value().iterations, ser.value().iterations);
  EXPECT_EQ(Matrix::MaxAbsDiff(ws_par.plan(), ws_ser.plan()), 0.0);

  // Still bit-identical on a warm-started follow-up solve.
  Drift(&rng, &a, 1e-3);
  cost = CostOf(a, b);
  par = SolveSinkhorn(cost, parallel_config, &ws_par);
  ser = SolveSinkhorn(cost, serial_config, &ws_ser);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  EXPECT_EQ(par.value().cost, ser.value().cost);
  EXPECT_EQ(Matrix::MaxAbsDiff(ws_par.plan(), ws_ser.plan()), 0.0);
}

TEST(SinkhornWorkspaceTest, LogDomainFallbackAndWarmStartDrop) {
  Rng rng(7);
  Matrix a = RandomMatrix(&rng, 15, 3);
  Matrix b = RandomMatrix(&rng, 15, 3, 5.0);  // Large costs.
  SinkhornConfig config;
  // Small enough that the scaling iteration cannot reach the tolerance
  // (verified against the reference solver, which also falls back here).
  config.reg_fraction = 0.002;

  SinkhornWorkspace ws;
  auto info = SolveSinkhorn(CostOf(a, b), config, &ws);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().used_log_domain);
  EXPECT_TRUE(std::isfinite(info.value().cost));
  EXPECT_GT(info.value().cost, 0.0);
  // The scaling duals are invalid after a log-domain solve; the next solve
  // must not claim a warm start.
  auto next = SolveSinkhorn(CostOf(a, b), config, &ws);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().warm_started);
}

TEST(SinkhornWorkspaceTest, SerialThresholdDoesNotChangeResults) {
  Rng rng(11);
  Matrix a = RandomMatrix(&rng, 18, 5);
  Matrix b = RandomMatrix(&rng, 14, 5, 0.5);
  Matrix cost = CostOf(a, b);

  SinkhornConfig thresholded;  // 18*14 << default min_parallel_elements
  SinkhornConfig forced_parallel;
  forced_parallel.min_parallel_elements = 0;

  SinkhornWorkspace ws_thr, ws_par;
  auto thr = SolveSinkhorn(cost, thresholded, &ws_thr);
  auto par = SolveSinkhorn(cost, forced_parallel, &ws_par);
  ASSERT_TRUE(thr.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(thr.value().cost, par.value().cost);
  EXPECT_EQ(thr.value().iterations, par.value().iterations);
  EXPECT_EQ(Matrix::MaxAbsDiff(ws_thr.plan(), ws_par.plan()), 0.0);
}

// The pool's reason to exist: on a stream of heterogeneous treated/control
// splits, one workspace never warm-starts (the shape changes every solve),
// while the shape-keyed pool warm-starts every revisit of a shape.
TEST(SinkhornWorkspacePoolTest, WarmStartsFireAcrossHeterogeneousShapes) {
  Rng rng(12);
  SinkhornConfig config;
  // Two alternating split shapes, as adjacent minibatches produce.
  Matrix a_small = RandomMatrix(&rng, 12, 6);
  Matrix b_small = RandomMatrix(&rng, 20, 6, 0.4);
  Matrix a_big = RandomMatrix(&rng, 16, 6);
  Matrix b_big = RandomMatrix(&rng, 16, 6, 0.4);

  SinkhornWorkspace single;
  SinkhornWorkspacePool pool;
  int single_warm = 0, pool_warm = 0;
  const int kSteps = 10;
  for (int step = 0; step < kSteps; ++step) {
    Matrix& a = step % 2 == 0 ? a_small : a_big;
    Matrix& b = step % 2 == 0 ? b_small : b_big;
    Drift(&rng, &a, 1e-3);
    const Matrix cost = CostOf(a, b);

    auto single_info = SolveSinkhorn(cost, config, &single);
    ASSERT_TRUE(single_info.ok());
    single_warm += single_info.value().warm_started ? 1 : 0;

    auto pooled_info =
        SolveSinkhorn(cost, config, pool.Acquire(a.rows(), b.rows()));
    ASSERT_TRUE(pooled_info.ok());
    pool_warm += pooled_info.value().warm_started ? 1 : 0;
  }
  // The single workspace alternates shapes: every solve after the first is
  // shape-adapted rather than cold (exact-shape warm starts never fire).
  EXPECT_EQ(single_warm, kSteps - 1);
  // The pool warm-starts every solve after each shape's first visit, with
  // exact-shape duals (no adaptation needed).
  EXPECT_EQ(pool_warm, kSteps - 2);
  EXPECT_GT(pool.warm_acquires(), 0);
  EXPECT_GT(pool.warm_hit_rate(), 0.0);
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(pool.evictions(), 0);
}

TEST(SinkhornWorkspacePoolTest, BoundedLruEvictsAndStaysCorrect) {
  Rng rng(13);
  SinkhornConfig config;
  SinkhornWorkspacePool pool(/*capacity=*/2);
  // Three shapes cycling through a capacity-2 pool: each acquire misses
  // (its shape was evicted a step ago) but solves stay correct.
  for (int step = 0; step < 9; ++step) {
    const int n1 = 8 + 4 * (step % 3);
    Matrix a = RandomMatrix(&rng, n1, 5);
    Matrix b = RandomMatrix(&rng, 10, 5, 0.3);
    SinkhornWorkspace* ws = pool.Acquire(n1, 10);
    auto info = SolveSinkhorn(CostOf(a, b), config, ws);
    ASSERT_TRUE(info.ok());
    auto reference = SolveSinkhorn(CostOf(a, b), config);
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(info.value().cost, reference.value().cost,
                1e-6 * (1.0 + std::fabs(reference.value().cost)));
  }
  EXPECT_EQ(pool.size(), 2);
  EXPECT_GT(pool.evictions(), 0);
  EXPECT_EQ(pool.warm_acquires(), 0);  // every revisit was evicted already
}

TEST(SinkhornWorkspaceTest, EmptyCostRejected) {
  SinkhornWorkspace ws;
  SinkhornConfig config;
  EXPECT_FALSE(SolveSinkhorn(Matrix(0, 3), config, &ws).ok());
  EXPECT_FALSE(SolveSinkhorn(Matrix(3, 0), config, &ws).ok());
}

TEST(WassersteinPenaltyWorkspaceTest, MatchesLegacyValueAndGradient) {
  Rng rng(8);
  SinkhornConfig config;
  Matrix fixed = RandomMatrix(&rng, 12, 4);
  Matrix moving_init = RandomMatrix(&rng, 10, 4, 1.5);

  autodiff::Parameter legacy_param(moving_init, "legacy");
  autodiff::Parameter ws_param(moving_init, "ws");
  SinkhornWorkspace ws;

  Tape legacy_tape;
  Var legacy_pen = WassersteinPenalty(legacy_tape.Param(&legacy_param),
                                      legacy_tape.Constant(fixed), config);
  legacy_param.ZeroGrad();
  legacy_tape.Backward(legacy_pen);

  Tape ws_tape;
  Var ws_pen = WassersteinPenalty(ws_tape.Param(&ws_param),
                                  ws_tape.Constant(fixed), config, &ws);
  ws_param.ZeroGrad();
  ws_tape.Backward(ws_pen);

  EXPECT_NEAR(ws_pen.scalar(), legacy_pen.scalar(),
              1e-6 * (1.0 + std::fabs(legacy_pen.scalar())));
  EXPECT_LT(Matrix::MaxAbsDiff(ws_param.grad, legacy_param.grad), 1e-5);
}

TEST(WassersteinPenaltyWorkspaceTest, SteadyStateStepIsZeroChurn) {
  Rng rng(9);
  SinkhornConfig config;
  Matrix fixed = RandomMatrix(&rng, 14, 4);
  autodiff::Parameter moving(RandomMatrix(&rng, 14, 4, 2.0), "m");

  Tape tape;
  SinkhornWorkspace ws;
  int64_t tape_allocs = -1, ws_allocs = -1;
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 12; ++step) {
    tape.Reset();
    Var pen = WassersteinPenalty(tape.Param(&moving),
                                 tape.ConstantView(&fixed), config, &ws);
    if (step == 0) first = pen.scalar();
    last = pen.scalar();
    moving.ZeroGrad();
    tape.Backward(pen);
    for (int64_t i = 0; i < moving.value.size(); ++i) {
      moving.value.data()[i] -= 0.05 * moving.grad.data()[i];
    }
    if (step == 0) {
      tape_allocs = tape.arena_allocations();
      ws_allocs = ws.allocations();
    } else {
      // Fixed batch shape => neither the tape arena nor the Sinkhorn
      // workspace may allocate after the first step.
      EXPECT_EQ(tape.arena_allocations(), tape_allocs) << "step " << step;
      EXPECT_EQ(ws.allocations(), ws_allocs) << "step " << step;
    }
  }
  // And the optimization still works (the groups move together).
  EXPECT_LT(last, first);
}

TEST(WassersteinPenaltyWorkspaceTest, IpmPenaltyDispatchThreadsWorkspace) {
  Rng rng(10);
  SinkhornConfig config;
  Tape tape;
  SinkhornWorkspace ws;
  Var a = tape.Constant(RandomMatrix(&rng, 6, 3));
  Var b = tape.Constant(RandomMatrix(&rng, 8, 3, 1.0));
  EXPECT_GT(
      IpmPenalty(IpmKind::kWasserstein, a, b, config, &ws).scalar(), 0.0);
  EXPECT_TRUE(ws.has_warm_start(6, 8));
  // The MMD branch must ignore (and not disturb) the workspace.
  EXPECT_GT(IpmPenalty(IpmKind::kLinearMmd, a, b, config, &ws).scalar(), 0.0);
  EXPECT_TRUE(ws.has_warm_start(6, 8));
}

}  // namespace
}  // namespace cerl::ot
