// Tests for CERL checkpointing: exact round-trip of predictions and memory,
// resuming continual learning in a fresh trainer, and error handling for
// corrupt / mismatched checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace cerl::core {
namespace {

using data::DataSplit;

CerlConfig SmallConfig(uint64_t seed = 51) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 15;
  c.train.batch_size = 64;
  c.train.seed = seed;
  c.memory_capacity = 100;
  return c;
}

std::vector<DataSplit> SmallStream(int domains, uint64_t seed = 50) {
  data::SyntheticConfig dc;
  dc.num_domains = domains;
  dc.units_per_domain = 400;
  dc.seed = seed;
  auto stream = data::GenerateSyntheticStream(dc);
  Rng rng(seed + 1);
  return data::SplitStream(stream.domains, &rng);
}

TEST(CheckpointTest, SaveBeforeAnyDomainFails) {
  CerlTrainer trainer(SmallConfig(), 100);
  Status s = trainer.SaveCheckpoint(::testing::TempDir() + "/never.ckpt");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RoundTripPreservesPredictionsExactly) {
  auto splits = SmallStream(2);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  const std::string path = ::testing::TempDir() + "/cerl.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer restored(SmallConfig(), 100);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.stages_seen(), 2);
  EXPECT_EQ(restored.memory().size(), trainer.memory().size());

  const linalg::Vector a = trainer.PredictIte(splits[0].test.x);
  const linalg::Vector b = restored.PredictIte(splits[0].test.x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(CheckpointTest, MemoryContentRoundTrips) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_mem.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer restored(SmallConfig(), 100);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  const MemoryBank& a = trainer.memory();
  const MemoryBank& b = restored.memory();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_treated(), b.num_treated());
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(a.reps(), b.reps()), 0.0);
  EXPECT_EQ(a.y(), b.y());
  EXPECT_EQ(a.t(), b.t());
}

TEST(CheckpointTest, ResumeContinuesBitIdenticalToUninterruptedRun) {
  // The checkpoint is the ENTIRE durable state: save -> load -> K more
  // domains must equal the uninterrupted run bitwise, not approximately.
  auto splits = SmallStream(4);
  CerlTrainer uninterrupted(SmallConfig(), 100);
  CerlTrainer saver(SmallConfig(), 100);
  for (int d = 0; d < 2; ++d) {
    uninterrupted.ObserveDomain(splits[d]);
    saver.ObserveDomain(splits[d]);
  }
  const std::string path = ::testing::TempDir() + "/cerl_bitwise.ckpt";
  ASSERT_TRUE(saver.SaveCheckpoint(path).ok());
  CerlTrainer resumed(SmallConfig(), 100);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  for (int d = 2; d < 4; ++d) {
    uninterrupted.ObserveDomain(splits[d]);
    resumed.ObserveDomain(splits[d]);
  }
  const linalg::Vector a = uninterrupted.PredictIte(splits[3].test.x);
  const linalg::Vector b = resumed.PredictIte(splits[3].test.x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "unit " << i;
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(uninterrupted.memory().reps(),
                                       resumed.memory().reps()),
            0.0);
  EXPECT_EQ(uninterrupted.memory().y(), resumed.memory().y());
}

TEST(CheckpointTest, ResumeBitIdenticalUnderRandomMemorySubsampling) {
  // The w/o-herding ablation consumes the trainer RNG during memory
  // reduction — exactly the state the checkpoint's RNG block preserves.
  CerlConfig config = SmallConfig();
  config.use_herding = false;
  config.memory_capacity = 60;  // forces Reduce to subsample every stage
  auto splits = SmallStream(3, 77);
  CerlTrainer uninterrupted(config, 100);
  CerlTrainer saver(config, 100);
  for (int d = 0; d < 2; ++d) {
    uninterrupted.ObserveDomain(splits[d]);
    saver.ObserveDomain(splits[d]);
  }
  const std::string path = ::testing::TempDir() + "/cerl_rng.ckpt";
  ASSERT_TRUE(saver.SaveCheckpoint(path).ok());
  CerlTrainer resumed(config, 100);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  uninterrupted.ObserveDomain(splits[2]);
  resumed.ObserveDomain(splits[2]);
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(uninterrupted.memory().reps(),
                                       resumed.memory().reps()),
            0.0);
  EXPECT_EQ(uninterrupted.memory().y(), resumed.memory().y());
  EXPECT_EQ(uninterrupted.memory().t(), resumed.memory().t());
}

TEST(CheckpointTest, SaveIsAtomicAndLeavesNoTempFile) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_atomic.ckpt";
  {
    std::ofstream prev(path, std::ios::binary);
    prev << "previous generation";
  }
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  CerlTrainer restored(SmallConfig(), 100);
  EXPECT_TRUE(restored.LoadCheckpoint(path).ok());
}

TEST(CheckpointTest, FailedLoadLeavesTrainerUntouchedAndUsable) {
  auto splits = SmallStream(2);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_partial.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // Corrupt the tail: the header parses but the payload fails (checksum).
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  content[content.size() / 2] ^= 0x20;
  const std::string bad_path = ::testing::TempDir() + "/cerl_partial_bad.ckpt";
  {
    std::ofstream out(bad_path, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  }
  CerlTrainer target(SmallConfig(), 100);
  EXPECT_FALSE(target.LoadCheckpoint(bad_path).ok());
  EXPECT_EQ(target.stages_seen(), 0);  // no partial mutation
  EXPECT_TRUE(target.memory().empty());
  // Still a perfectly good fresh trainer.
  EXPECT_TRUE(target.LoadCheckpoint(path).ok());
  EXPECT_EQ(target.stages_seen(), 1);
}

TEST(CheckpointTest, ResumedTrainerContinuesLearning) {
  auto splits = SmallStream(3);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  const std::string path = ::testing::TempDir() + "/cerl_resume.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // A "new process" resumes from the checkpoint and absorbs domain 3.
  CerlTrainer resumed(SmallConfig(), 100);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  resumed.ObserveDomain(splits[2]);
  EXPECT_EQ(resumed.stages_seen(), 3);
  const auto metrics = resumed.Evaluate(splits[2].test);
  EXPECT_TRUE(std::isfinite(metrics.pehe));
  EXPECT_LT(metrics.pehe, 0.8);  // beats predict-zero on the new domain
}

TEST(CheckpointTest, LoadIntoUsedTrainerFails) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_used.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());
  Status s = trainer.LoadCheckpoint(path);  // Same trainer: not fresh.
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, InputDimMismatchRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_dim.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer wrong_dim(SmallConfig(), 64);
  Status s = wrong_dim.LoadCheckpoint(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_arch.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlConfig other = SmallConfig();
  other.net.rep_dim = 12;  // Different representation width.
  CerlTrainer wrong_arch(other, 100);
  EXPECT_FALSE(wrong_arch.LoadCheckpoint(path).ok());
}

TEST(CheckpointTest, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/corrupt.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  CerlTrainer trainer(SmallConfig(), 100);
  Status s = trainer.LoadCheckpoint(path);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, MissingFileRejected) {
  CerlTrainer trainer(SmallConfig(), 100);
  EXPECT_EQ(trainer.LoadCheckpoint("/nonexistent/x.ckpt").code(),
            StatusCode::kIoError);
}

TEST(CheckpointTest, TruncatedFileRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_full.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // Truncate to the first 100 bytes.
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string cut_path = ::testing::TempDir() + "/cerl_cut.ckpt";
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(content.data(), std::min<std::streamsize>(100, content.size()));
  }
  CerlTrainer restored(SmallConfig(), 100);
  EXPECT_FALSE(restored.LoadCheckpoint(cut_path).ok());
}

}  // namespace
}  // namespace cerl::core
