// Tests for CERL checkpointing: exact round-trip of predictions and memory,
// resuming continual learning in a fresh trainer, and error handling for
// corrupt / mismatched checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace cerl::core {
namespace {

using data::DataSplit;

CerlConfig SmallConfig(uint64_t seed = 51) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 15;
  c.train.batch_size = 64;
  c.train.seed = seed;
  c.memory_capacity = 100;
  return c;
}

std::vector<DataSplit> SmallStream(int domains, uint64_t seed = 50) {
  data::SyntheticConfig dc;
  dc.num_domains = domains;
  dc.units_per_domain = 400;
  dc.seed = seed;
  auto stream = data::GenerateSyntheticStream(dc);
  Rng rng(seed + 1);
  return data::SplitStream(stream.domains, &rng);
}

TEST(CheckpointTest, SaveBeforeAnyDomainFails) {
  CerlTrainer trainer(SmallConfig(), 100);
  Status s = trainer.SaveCheckpoint(::testing::TempDir() + "/never.ckpt");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RoundTripPreservesPredictionsExactly) {
  auto splits = SmallStream(2);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  const std::string path = ::testing::TempDir() + "/cerl.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer restored(SmallConfig(), 100);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.stages_seen(), 2);
  EXPECT_EQ(restored.memory().size(), trainer.memory().size());

  const linalg::Vector a = trainer.PredictIte(splits[0].test.x);
  const linalg::Vector b = restored.PredictIte(splits[0].test.x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(CheckpointTest, MemoryContentRoundTrips) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_mem.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer restored(SmallConfig(), 100);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  const MemoryBank& a = trainer.memory();
  const MemoryBank& b = restored.memory();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_treated(), b.num_treated());
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(a.reps(), b.reps()), 0.0);
  EXPECT_EQ(a.y(), b.y());
  EXPECT_EQ(a.t(), b.t());
}

TEST(CheckpointTest, ResumedTrainerContinuesLearning) {
  auto splits = SmallStream(3);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  const std::string path = ::testing::TempDir() + "/cerl_resume.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // A "new process" resumes from the checkpoint and absorbs domain 3.
  CerlTrainer resumed(SmallConfig(), 100);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  resumed.ObserveDomain(splits[2]);
  EXPECT_EQ(resumed.stages_seen(), 3);
  const auto metrics = resumed.Evaluate(splits[2].test);
  EXPECT_TRUE(std::isfinite(metrics.pehe));
  EXPECT_LT(metrics.pehe, 0.8);  // beats predict-zero on the new domain
}

TEST(CheckpointTest, LoadIntoUsedTrainerFails) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_used.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());
  Status s = trainer.LoadCheckpoint(path);  // Same trainer: not fresh.
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, InputDimMismatchRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_dim.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlTrainer wrong_dim(SmallConfig(), 64);
  Status s = wrong_dim.LoadCheckpoint(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_arch.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  CerlConfig other = SmallConfig();
  other.net.rep_dim = 12;  // Different representation width.
  CerlTrainer wrong_arch(other, 100);
  EXPECT_FALSE(wrong_arch.LoadCheckpoint(path).ok());
}

TEST(CheckpointTest, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/corrupt.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  CerlTrainer trainer(SmallConfig(), 100);
  Status s = trainer.LoadCheckpoint(path);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, MissingFileRejected) {
  CerlTrainer trainer(SmallConfig(), 100);
  EXPECT_EQ(trainer.LoadCheckpoint("/nonexistent/x.ckpt").code(),
            StatusCode::kIoError);
}

TEST(CheckpointTest, TruncatedFileRejected) {
  auto splits = SmallStream(1);
  CerlTrainer trainer(SmallConfig(), 100);
  trainer.ObserveDomain(splits[0]);
  const std::string path = ::testing::TempDir() + "/cerl_full.ckpt";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // Truncate to the first 100 bytes.
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string cut_path = ::testing::TempDir() + "/cerl_cut.ckpt";
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(content.data(), std::min<std::streamsize>(100, content.size()));
  }
  CerlTrainer restored(SmallConfig(), 100);
  EXPECT_FALSE(restored.LoadCheckpoint(cut_path).ok());
}

}  // namespace
}  // namespace cerl::core
