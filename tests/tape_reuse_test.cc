// Tape arena reuse: Reset() + re-record must be bit-identical to a fresh
// tape (same values, same gradients) for every hot op, must tolerate shape
// and topology changes between passes, and must perform zero tape-node
// Matrix allocations in steady state. Also grad-checks (central
// differences) the in-place backward rewrites on composite expressions
// that chain every touched op.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "autodiff/tape.h"
#include "grad_check.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace cerl::autodiff {
namespace {

using linalg::Matrix;

Matrix RandomMatrix(Rng* rng, int rows, int cols) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1.5, 1.5);
  return m;
}

// A loss expression over two leaves; every rewritten-in-place backward op
// appears: MatMul/MatMulBt, Add/Sub/Mul, broadcasts, scalar ops, the
// elementwise family, reductions, Transpose/ConcatRows/GatherRows.
Var EveryOpLoss(Tape* tape, Var a, Var b) {
  Var cat = ConcatRows(a, b);                       // 6 x 4
  Var picked = GatherRows(cat, {0, 5, 2, 2});       // reuse a row
  Var prod = MatMul(Transpose(picked), picked);     // 4 x 4
  Var sym = MatMulBt(prod, prod);                   // 4 x 4
  Var bias = tape->Constant(Matrix(1, 4, 0.25));
  Var shifted = AddRowBroadcast(sym, bias);
  Var scaled = MulColBroadcast(shifted, RowSum(Tanh(sym)));
  Var mixed = Mul(Sub(scaled, prod), Add(prod, prod));
  Var acts = Add(Sigmoid(mixed), Elu(ScalarMul(mixed, 0.5)));
  Var pos = ScalarAdd(Square(acts), 1.0);
  Var logs = Add(Log(pos), Sqrt(pos));
  Var more = Add(Add(Exp(ScalarMul(logs, 0.1)), Reciprocal(pos)), Abs(mixed));
  Var red = Add(Add(Sum(more), Mean(more)), Sum(ColSum(more)));
  return red;
}

TEST(TapeReuseTest, EveryOpGradCheck) {
  Rng rng(40);
  CheckGradients(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 3, 4)},
      [](Tape* tape, const std::vector<Var>& v) {
        return EveryOpLoss(tape, v[0], v[1]);
      },
      1e-4, 1e-6);
}

// Runs `build` on a fresh tape and on a dirtied-then-Reset tape; values and
// leaf gradients must match bit for bit.
void ExpectReuseBitIdentical(
    const std::vector<Matrix>& inputs,
    const std::function<Var(Tape*, const std::vector<Var>&)>& build) {
  auto run = [&](Tape* tape, Matrix* loss, std::vector<Matrix>* grads) {
    std::vector<Var> leaves;
    for (const auto& m : inputs) leaves.push_back(tape->Leaf(m));
    Var out = build(tape, leaves);
    tape->Backward(out);
    *loss = out.value();
    grads->clear();
    for (const Var& leaf : leaves) grads->push_back(leaf.grad());
  };

  Matrix fresh_loss;
  std::vector<Matrix> fresh_grads;
  {
    Tape fresh;
    run(&fresh, &fresh_loss, &fresh_grads);
  }

  Tape reused;
  {
    // Dirty the arena with a different topology and different shapes first.
    Rng rng(7);
    Var x = reused.Leaf(RandomMatrix(&rng, 5, 3));
    reused.Backward(Sum(Relu(MatMulBt(x, x))));
  }
  for (int pass = 0; pass < 3; ++pass) {
    reused.Reset();
    Matrix loss;
    std::vector<Matrix> grads;
    run(&reused, &loss, &grads);
    ASSERT_EQ(loss.rows(), fresh_loss.rows());
    EXPECT_EQ(loss(0, 0), fresh_loss(0, 0)) << "pass " << pass;
    ASSERT_EQ(grads.size(), fresh_grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      ASSERT_TRUE(grads[i].SameShape(fresh_grads[i]));
      for (int64_t e = 0; e < grads[i].size(); ++e) {
        ASSERT_EQ(grads[i].data()[e], fresh_grads[i].data()[e])
            << "pass " << pass << " input " << i << " element " << e;
      }
    }
  }
}

TEST(TapeReuseTest, ReusedTapeBitIdenticalToFreshEveryOp) {
  Rng rng(41);
  ExpectReuseBitIdentical(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 3, 4)},
      [](Tape* tape, const std::vector<Var>& v) {
        return EveryOpLoss(tape, v[0], v[1]);
      });
}

TEST(TapeReuseTest, ReusedTapeBitIdenticalToFreshMlpStyleLoss) {
  Rng rng(42);
  ExpectReuseBitIdentical(
      {RandomMatrix(&rng, 6, 5), RandomMatrix(&rng, 5, 3),
       RandomMatrix(&rng, 1, 3), RandomMatrix(&rng, 6, 3)},
      [](Tape*, const std::vector<Var>& v) {
        Var h = Elu(AddRowBroadcast(MatMul(v[0], v[1]), v[2]));
        return MseLoss(h, v[3]);
      });
}

TEST(TapeReuseTest, ParamBindingAccumulatesAcrossResets) {
  Parameter p(Matrix(2, 2, 3.0), "w");
  Tape tape;
  for (int pass = 0; pass < 3; ++pass) {
    tape.Reset();
    Var w1 = tape.Param(&p);
    Var w2 = tape.Param(&p);
    Var loss = Add(Sum(Square(w1)), Sum(w2));  // d/dw = 2w + 1 = 7
    p.ZeroGrad();
    tape.Backward(loss);
    for (int64_t i = 0; i < p.grad.size(); ++i) {
      EXPECT_DOUBLE_EQ(p.grad.data()[i], 7.0) << "pass " << pass;
    }
  }
}

TEST(TapeReuseTest, ShapeChangeAcrossResetsStaysCorrect) {
  Rng rng(43);
  Tape tape;
  for (int rows : {8, 3, 8, 5}) {
    Matrix m = RandomMatrix(&rng, rows, 4);
    tape.Reset();
    Var x = tape.Leaf(m);
    Var loss = Sum(Square(x));
    tape.Backward(loss);
    double expect = 0.0;
    for (int64_t i = 0; i < m.size(); ++i) expect += m.data()[i] * m.data()[i];
    EXPECT_DOUBLE_EQ(loss.scalar(), expect);
    for (int64_t i = 0; i < m.size(); ++i) {
      EXPECT_DOUBLE_EQ(x.grad().data()[i], 2.0 * m.data()[i]);
    }
  }
}

TEST(TapeReuseTest, GatherIndicesChangePerPass) {
  Rng rng(44);
  Matrix m = RandomMatrix(&rng, 6, 3);
  Tape tape;
  for (int shift = 0; shift < 3; ++shift) {
    tape.Reset();
    std::vector<int> idx = {shift, shift + 1, shift};
    Var x = tape.Leaf(m);
    Var g = GatherRows(x, idx);
    tape.Backward(Sum(g));
    for (int r = 0; r < 6; ++r) {
      const double expected = (r == shift) ? 2.0 : (r == shift + 1 ? 1.0 : 0.0);
      for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(x.grad()(r, c), expected);
    }
  }
}

// The zero-churn acceptance property: after warm-up, a fixed-topology
// training step performs no tape-node Matrix allocations at all.
TEST(TapeReuseTest, SteadyStateTrainingStepAllocatesNothing) {
  Rng rng(45);
  nn::MlpConfig config;
  config.dims = {20, 12, 4, 1};
  nn::Mlp mlp(&rng, config);
  nn::Adam opt(mlp.Parameters(), 1e-3);
  Matrix x = RandomMatrix(&rng, 16, 20);
  Matrix y = RandomMatrix(&rng, 16, 1);

  Tape tape;
  auto step = [&] {
    tape.Reset();
    Var out = mlp.Forward(&tape, tape.ConstantView(&x));
    Var loss = MseLoss(out, tape.ConstantView(&y));
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  };

  step();  // warm-up allocates the arena
  step();  // second pass settles any lazily-created grad buffers
  const int64_t warm = tape.arena_allocations();
  EXPECT_GT(warm, 0);
  for (int i = 0; i < 50; ++i) step();
  EXPECT_EQ(tape.arena_allocations(), warm)
      << "steady-state steps must not allocate tape-node matrices";
}

TEST(TapeReuseTest, ConstantViewAliasesWithoutCopy) {
  Matrix m(2, 2, 1.0);
  Tape tape;
  Var v = tape.ConstantView(&m);
  m(0, 0) = 42.0;  // visible through the alias: no snapshot was taken
  EXPECT_DOUBLE_EQ(v.value()(0, 0), 42.0);
}

}  // namespace
}  // namespace cerl::autodiff
