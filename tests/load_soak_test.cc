// Short-config soak of the skewed-tenant load harness (workload_gen) under
// both schedule policies. This is primarily a RACE net: the TSan CI job runs
// it so the full open-loop path — timed pushes from a driver thread, async
// validation, cost-aware priority updates, work stealing, deadline retries,
// histogram merges — executes under the race detector on every change. The
// functional assertions are deliberately coarse (latency VALUES are machine
// noise); completeness and bookkeeping must hold exactly.
#include <gtest/gtest.h>

#include "stream/workload_gen.h"

namespace cerl::stream {
namespace {

WorkloadConfig SoakConfig(SchedulePolicy policy) {
  WorkloadConfig config;
  config.num_tenants = 12;
  config.domains_per_tenant = 4;
  config.burst_size = 4;
  config.zipf_exponent = 1.1;
  config.min_units = 12;
  config.max_units = 96;
  config.features = 4;
  config.epochs = 2;
  config.utilization = 0.9;  // real queueing, bounded runtime
  config.seed = 7;
  config.engine.num_workers = 4;
  config.engine.schedule_policy = policy;
  return config;
}

void CheckReport(const LoadReport& report, const WorkloadConfig& config) {
  const int total = config.num_tenants * config.domains_per_tenant;
  EXPECT_EQ(report.domains_pushed, total);
  EXPECT_EQ(report.domains_completed, total);
  EXPECT_EQ(report.domains_dropped, 0);
  EXPECT_GT(report.horizon_ms, 0.0);
  EXPECT_GE(report.wall_ms, report.horizon_ms * 0.5);
  // Percentiles come from a real histogram: ordered and positive.
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_LE(report.p50_ms, report.p99_ms * 1.0001);
  EXPECT_LE(report.p99_ms, report.p999_ms * 1.0001);
  EXPECT_LE(report.p999_ms, report.max_ms * 1.0001);
  EXPECT_GT(report.throughput_dps, 0.0);
}

TEST(LoadSoakTest, RoundRobinShortSoak) {
  const WorkloadConfig config = SoakConfig(SchedulePolicy::kRoundRobin);
  const LoadReport report = RunSkewedLoad(config);
  CheckReport(report, config);
  EXPECT_EQ(report.steals, 0);  // FIFO policy never steals
}

TEST(LoadSoakTest, CostAwareShortSoak) {
  const WorkloadConfig config = SoakConfig(SchedulePolicy::kCostAware);
  const LoadReport report = RunSkewedLoad(config);
  CheckReport(report, config);
  // The cost model scored warm predictions (finite, non-negative MAPE).
  EXPECT_GE(report.cost_model_error, 0.0);
  EXPECT_LT(report.cost_model_error, 1e6);
}

}  // namespace
}  // namespace cerl::stream
