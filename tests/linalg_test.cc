// Tests for the dense linear-algebra layer: Matrix semantics, GEMM against
// a reference implementation over random shapes/transposes (property test),
// Cholesky round-trips, the Jacobi eigensolver, and statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "util/rng.h"

namespace cerl::linalg {
namespace {

Matrix RandomMatrix(Rng* rng, int rows, int cols, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal(0, scale);
  return m;
}

// Reference O(n^3) multiply for validation.
Matrix NaiveMatMul(Trans ta, Trans tb, const Matrix& a, const Matrix& b) {
  const int m = ta == Trans::kNo ? a.rows() : a.cols();
  const int k = ta == Trans::kNo ? a.cols() : a.rows();
  const int n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) {
        const double av = ta == Trans::kNo ? a(i, l) : a(l, i);
        const double bv = tb == Trans::kNo ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = s;
    }
  }
  return c;
}

TEST(MatrixTest, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m = RandomMatrix(&rng, 7, 4);
  EXPECT_EQ(Matrix::MaxAbsDiff(m, m.Transposed().Transposed()), 0.0);
}

TEST(MatrixTest, GatherRowsSelectsInOrder) {
  Matrix m = {{1, 1}, {2, 2}, {3, 3}};
  Matrix g = m.GatherRows({2, 0});
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
}

TEST(MatrixTest, RowAndColCopy) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.RowCopy(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.ColCopy(2), (Vector{3, 6}));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = {{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

struct GemmCase {
  int m, n, k;
  Trans ta, tb;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const GemmCase& c = GetParam();
  Rng rng(c.m * 1000 + c.n * 10 + c.k);
  Matrix a = c.ta == Trans::kNo ? RandomMatrix(&rng, c.m, c.k)
                                : RandomMatrix(&rng, c.k, c.m);
  Matrix b = c.tb == Trans::kNo ? RandomMatrix(&rng, c.k, c.n)
                                : RandomMatrix(&rng, c.n, c.k);
  Matrix expect = NaiveMatMul(c.ta, c.tb, a, b);
  Matrix got = MatMulT(c.ta, c.tb, a, b);
  EXPECT_LT(Matrix::MaxAbsDiff(expect, got), 1e-9 * c.k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo},
        GemmCase{3, 5, 2, Trans::kNo, Trans::kNo},
        GemmCase{16, 16, 16, Trans::kNo, Trans::kNo},
        GemmCase{65, 130, 257, Trans::kNo, Trans::kNo},
        GemmCase{40, 70, 90, Trans::kYes, Trans::kNo},
        GemmCase{40, 70, 90, Trans::kNo, Trans::kYes},
        GemmCase{33, 65, 129, Trans::kYes, Trans::kYes},
        GemmCase{128, 64, 300, Trans::kNo, Trans::kYes},
        GemmCase{200, 3, 500, Trans::kYes, Trans::kNo}));

TEST(GemmTest, AlphaBetaAccumulate) {
  Rng rng(3);
  Matrix a = RandomMatrix(&rng, 8, 6);
  Matrix b = RandomMatrix(&rng, 6, 5);
  Matrix c0 = RandomMatrix(&rng, 8, 5);
  Matrix c = c0;
  Gemm(Trans::kNo, Trans::kNo, 2.0, a, b, 0.5, &c);
  Matrix expect = NaiveMatMul(Trans::kNo, Trans::kNo, a, b);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * expect(i, j) + 0.5 * c0(i, j), 1e-10);
    }
  }
}

TEST(GemmTest, ZeroDimensionsAreHandled) {
  Matrix a(0, 4), b(4, 3), c(0, 3);
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  EXPECT_EQ(c.rows(), 0);
  Matrix g = MatMul(Matrix(3, 0), Matrix(0, 2));
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 2);
  EXPECT_DOUBLE_EQ(g.FrobeniusNorm(), 0.0);
}

TEST(MatVecTest, MatchesManual) {
  Matrix a = {{1, 2}, {3, 4}};
  Vector y = MatVec(a, {1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

Matrix RandomSpd(Rng* rng, int n, double jitter = 0.5) {
  Matrix a = RandomMatrix(rng, n, n);
  Matrix spd = MatMulT(Trans::kNo, Trans::kYes, a, a);
  for (int i = 0; i < n; ++i) spd(i, i) += jitter;
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(4);
  Matrix a = RandomSpd(&rng, 12);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.value().L();
  Matrix llt = MatMulT(Trans::kNo, Trans::kYes, l, l);
  EXPECT_LT(Matrix::MaxAbsDiff(a, llt), 1e-8);
}

TEST(CholeskyTest, SolveMatchesDirect) {
  Rng rng(5);
  Matrix a = RandomSpd(&rng, 10);
  Vector b(10);
  for (double& v : b) v = rng.Normal();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol.value().Solve(b);
  Vector ax = MatVec(a, x);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::Factor(a).ok());
  EXPECT_FALSE(IsPositiveDefinite(a));
  EXPECT_TRUE(IsPositiveDefinite(Matrix::Identity(3)));
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, LogDetMatchesKnown) {
  Matrix a = {{4.0, 0.0}, {0.0, 9.0}};
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol.value().LogDet(), std::log(36.0), 1e-12);
}

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix a = {{3.0, 0.0}, {0.0, -1.0}};
  auto e = EigenSymDecompose(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().values[0], -1.0, 1e-10);
  EXPECT_NEAR(e.value().values[1], 3.0, 1e-10);
}

TEST(EigenSymTest, ReconstructsMatrix) {
  Rng rng(6);
  Matrix a = RandomSpd(&rng, 9);
  auto e = EigenSymDecompose(a);
  ASSERT_TRUE(e.ok());
  // A = V diag(w) V^T
  const Matrix& v = e.value().vectors;
  Matrix vd = v;
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) vd(i, j) *= e.value().values[j];
  }
  Matrix rec = MatMulT(Trans::kNo, Trans::kYes, vd, v);
  EXPECT_LT(Matrix::MaxAbsDiff(a, rec), 1e-8);
}

TEST(EigenSymTest, MinEigenvalueOfSpdIsPositive) {
  Rng rng(7);
  auto min_eig = MinEigenvalue(RandomSpd(&rng, 15));
  ASSERT_TRUE(min_eig.ok());
  EXPECT_GT(min_eig.value(), 0.0);
}

TEST(OpsTest, PairwiseSquaredDistances) {
  Matrix a = {{0.0, 0.0}, {1.0, 0.0}};
  Matrix b = {{0.0, 3.0}};
  Matrix d = PairwiseSquaredDistances(a, b);
  EXPECT_NEAR(d(0, 0), 9.0, 1e-12);
  EXPECT_NEAR(d(1, 0), 10.0, 1e-12);
}

TEST(OpsTest, PairwiseDistancesNonNegativeProperty) {
  Rng rng(8);
  Matrix a = RandomMatrix(&rng, 30, 5);
  Matrix d = PairwiseSquaredDistances(a, a);
  for (int i = 0; i < 30; ++i) {
    EXPECT_NEAR(d(i, i), 0.0, 1e-9);
    for (int j = 0; j < 30; ++j) ASSERT_GE(d(i, j), 0.0);
  }
}

TEST(OpsTest, ColumnStatsAndStandardize) {
  Matrix m = {{1.0, 10.0}, {3.0, 30.0}};
  Vector mean = ColumnMeans(m);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 20.0);
  Vector std = ColumnStds(m);
  EXPECT_DOUBLE_EQ(std[0], 1.0);
  EXPECT_DOUBLE_EQ(std[1], 10.0);
  Matrix z = Standardize(m, mean, std);
  EXPECT_DOUBLE_EQ(z(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(z(1, 1), 1.0);
}

TEST(OpsTest, SampleCovarianceOfKnownData) {
  // Two variables, perfectly correlated.
  Matrix m = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  Matrix cov = SampleCovariance(m);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  Matrix corr = SampleCorrelation(m);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);
}

TEST(OpsTest, PearsonCorrelationSigns) {
  Vector a = {1, 2, 3, 4};
  Vector up = {2, 4, 6, 8};
  Vector down = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, Vector(4, 5.0)), 0.0);
}

TEST(VecExpTest, MatchesStdExpAcrossRange) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Uniform(-700.0, 700.0));
  for (double x : {0.0, -0.0, 1.0, -1.0, 1e-12, -1e-12, 707.9, -707.9}) {
    xs.push_back(x);
  }
  std::vector<double> ys(xs.size());
  VecExp(xs.data(), ys.data(), static_cast<int>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    const double ref = std::exp(xs[i]);
    EXPECT_NEAR(ys[i], ref, 1e-13 * ref) << "x = " << xs[i];
  }
  // In-place aliasing and the saturation clamp.
  double inplace[3] = {2.5, -900.0, 900.0};
  VecExp(inplace, inplace, 3);
  EXPECT_NEAR(inplace[0], std::exp(2.5), 1e-13 * std::exp(2.5));
  EXPECT_NEAR(inplace[1], std::exp(-708.0), 1e-320);
  EXPECT_NEAR(inplace[2], std::exp(708.0), 1e-13 * std::exp(708.0));
}

TEST(MatVecIntoTest, MatchesMatVecAndReusesStorage) {
  Rng rng(22);
  Matrix a = RandomMatrix(&rng, 37, 19);
  Vector x(19);
  for (double& v : x) v = rng.Normal();
  Vector expect = MatVec(a, x);
  Vector y;
  MatVecInto(a, x, &y);
  ASSERT_EQ(y.size(), expect.size());
  for (size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
  const double* storage = y.data();
  MatVecInto(a, x, &y);  // Same shape: storage must be reused.
  EXPECT_EQ(y.data(), storage);
}

TEST(MatrixResizeTest, ReusesCapacityAcrossShapes) {
  Matrix m(10, 20);
  const double* storage = m.data();
  m.Resize(20, 10);  // Same element count: no reallocation.
  EXPECT_EQ(m.data(), storage);
  EXPECT_EQ(m.rows(), 20);
  EXPECT_EQ(m.cols(), 10);
  m.Resize(5, 8);  // Smaller: vector keeps its capacity.
  EXPECT_EQ(m.data(), storage);
  m.Resize(10, 20);  // Back up to the high water: still within capacity.
  EXPECT_EQ(m.data(), storage);
}

}  // namespace
}  // namespace cerl::linalg
