// Concurrency soak for the effect-query serving plane, built to run under
// TSan (the tsan-stream CI job): four reader threads hammer
// QueryEffectBatch / QueryEffect while the engine ingests domains with
// deterministic faults injected into one stream (rollback + retry on the
// write path). Asserts the lock-free read contract: every answered query is
// finite and internally consistent, observed snapshot versions are
// monotone per reader, any newly observed snapshot passes its fingerprint
// recomputation (no torn publish), and the bystander stream's training is
// bitwise unaffected by the concurrent read load.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "serve/effect_snapshot.h"
#include "stream/stream_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kFeatures = 8;
constexpr int kReaders = 4;

CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> out;
  for (int d = 0; d < domains; ++d) {
    out.push_back(data::SplitDataset(ShiftedToy(&rng, 200, shift * d), &rng));
  }
  return out;
}

CerlConfig SmallConfig(uint64_t seed) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 8;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 8;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.train.async_validation = false;
  c.memory_capacity = 80;
  return c;
}

TEST(ServeConcurrencyTest, ReadersNeverSeeTornStateDuringFaultedIngest) {
  FaultInjector::Global().Reset();
  const CerlConfig bystander_config = SmallConfig(71);
  const CerlConfig faulty_config = SmallConfig(72);
  const std::vector<DataSplit> bystander_domains = MakeStream(73, 3, 0.6);
  const std::vector<DataSplit> faulty_domains = MakeStream(74, 3, 0.6);

  // Reference: the bystander trained with no engine, no faults, no readers.
  Vector expected;
  {
    CerlTrainer solo(bystander_config, kFeatures);
    for (const DataSplit& split : bystander_domains) solo.ObserveDomain(split);
    expected = solo.PredictIte(bystander_domains.back().test.x);
  }

  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int bystander =
      engine.AddStream("bystander", bystander_config, kFeatures);
  const int faulty = engine.AddStream("faulty", faulty_config, kFeatures);
  std::vector<QueryContext*> contexts;
  for (int r = 0; r < kReaders; ++r) {
    contexts.push_back(engine.CreateQueryContext());
  }

  // Transient stage faults on the faulty stream only: each fires once, the
  // rollback replays the domain bit-identically, training completes.
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "faulty",
                              /*probability=*/1.0, /*max_fires=*/2,
                              /*seed=*/9);

  // A fixed query batch reused by every reader (reads only).
  Rng qrng(75);
  const Matrix qx = ShiftedToy(&qrng, 32, 0.3).x;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryContext* ctx = contexts[r];
      uint64_t last_version[2] = {0, 0};
      Vector ite;
      double one = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int id : {bystander, faulty}) {
          EffectQueryMeta meta;
          const Status s =
              engine.QueryEffectBatch(ctx, id, qx, &ite, &meta);
          if (!s.ok()) {
            // Only the not-yet-published window may reject.
            EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
            continue;
          }
          answered.fetch_add(1, std::memory_order_relaxed);
          for (double v : ite) EXPECT_TRUE(std::isfinite(v));
          EXPECT_GE(meta.snapshot_version, last_version[id]);
          if (meta.snapshot_version != last_version[id]) {
            // New snapshot observed: its payload must hash to the
            // fingerprint computed at publish — a torn or half-published
            // snapshot cannot pass.
            auto snap = engine.effect_snapshot(id);
            ASSERT_NE(snap, nullptr);
            EXPECT_EQ(serve::SnapshotFingerprint(*snap), snap->fingerprint);
            last_version[id] = meta.snapshot_version;
          }
          EXPECT_TRUE(
              engine.QueryEffect(ctx, id, qx.row(0), kFeatures, &one).ok());
          EXPECT_TRUE(std::isfinite(one));
        }
      }
    });
  }

  // Interleaved pushes while the readers are already running.
  for (size_t d = 0; d < 3; ++d) {
    ASSERT_TRUE(engine.PushDomain(bystander, bystander_domains[d]).ok());
    ASSERT_TRUE(engine.PushDomain(faulty, faulty_domains[d]).ok());
  }
  engine.Drain();
  // One more beat of pure read load against the final snapshots.
  while (answered.load(std::memory_order_relaxed) < kReaders * 8) {
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Both streams trained all three domains (the faulty one via retries).
  ASSERT_EQ(engine.results(bystander).size(), 3u);
  ASSERT_EQ(engine.results(faulty).size(), 3u);
  for (const DomainResult& r : engine.results(faulty)) {
    EXPECT_TRUE(r.status.ok());
  }
  EXPECT_EQ(engine.query_stats(bystander).snapshot_version, 3u);
  EXPECT_EQ(engine.query_stats(faulty).snapshot_version, 3u);
  EXPECT_GT(engine.query_stats(bystander).queries, 0);

  // The read side never perturbs training: bystander is bitwise identical
  // to its solo run.
  const Vector got =
      engine.trainer(bystander).PredictIte(bystander_domains.back().test.x);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << "unit " << i;
  }
  FaultInjector::Global().Reset();
}

}  // namespace
}  // namespace cerl::stream
