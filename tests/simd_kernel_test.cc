// Parity and contract tests for the runtime-dispatched SIMD kernel layer
// (linalg/simd.h): scalar-vs-AVX2 agreement with a documented ULP
// tolerance across sizes including every n % 4 remainder, the
// position-uniformity / split-invariance guarantees the fused micro-solver
// and Adam depend on, lane4_dot's exact row_dot-per-lane identity, VecExp's
// in == out alias contract, and same-build run-to-run determinism.
//
// ULP tolerance rationale: the AVX2 kernels keep the scalar expression
// shape but fuse each multiply-add (FMA), so every fused op can differ from
// the scalar mul-then-add by up to 1 ulp of intermediate rounding. vec_exp
// runs a fixed number (~10) of fused steps per element; observed deviation
// is <= 2 ulp, asserted <= 8. Dot products / GEMM accumulate one fused op
// per term, so the bound grows with length; asserted via relative error
// against a long-double reference instead of raw ulps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "linalg/ops.h"
#include "linalg/simd.h"
#include "util/rng.h"

namespace cerl::linalg::simd {
namespace {

// Sizes covering every remainder class mod 4 (and mod 8 for the unrolled
// lane4_dot), plus sub-width arrays.
const int kSizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257};

uint64_t OrderedKey(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  // Map the IEEE bit pattern onto a monotonically ordered unsigned line so
  // ulp distance is a plain subtraction.
  return (u & 0x8000000000000000ull) ? 0x8000000000000000ull - (u & 0x7FFFFFFFFFFFFFFFull)
                                     : u + 0x8000000000000000ull;
}

uint64_t UlpDiff(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b)) ? 0 : ~0ull;
  }
  const uint64_t ka = OrderedKey(a);
  const uint64_t kb = OrderedKey(b);
  return ka > kb ? ka - kb : kb - ka;
}

std::vector<double> RandomVec(Rng* rng, int n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Uniform(lo, hi);
  return v;
}

bool ActiveIsAvx2() { return std::string(Kernels().name) == "avx2"; }

TEST(SimdDispatchTest, ResolvesOnceAndConsistently) {
  const KernelSet& a = Kernels();
  const KernelSet& b = Kernels();
  EXPECT_EQ(&a, &b) << "dispatch must resolve to one table per process";
  if (ForcedScalar() || !Avx2Available()) {
    EXPECT_STREQ(a.name, "scalar");
  } else {
    EXPECT_STREQ(a.name, "avx2");
  }
}

TEST(SimdDispatchTest, ForceScalarForTestingSwapsTables) {
  ForceScalarForTesting(true);
  EXPECT_STREQ(Kernels().name, "scalar");
  EXPECT_EQ(&Kernels(), &ScalarKernels());
  ForceScalarForTesting(false);
  if (!ForcedScalar() && Avx2Available()) {
    EXPECT_STREQ(Kernels().name, "avx2");
  }
}

// --- vec_exp -------------------------------------------------------------

TEST(VecExpKernelTest, Avx2MatchesScalarWithinUlps) {
  if (!ActiveIsAvx2()) GTEST_SKIP() << "AVX2 table not active";
  Rng rng(42);
  for (int n : kSizes) {
    // Cover the clamp edges and the interesting exponent range.
    std::vector<double> in = RandomVec(&rng, n, -720.0, 720.0);
    std::vector<double> scalar_out(n), simd_out(n);
    ScalarKernels().vec_exp(in.data(), scalar_out.data(), n);
    Kernels().vec_exp(in.data(), simd_out.data(), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_LE(UlpDiff(scalar_out[i], simd_out[i]), 8u)
          << "n=" << n << " i=" << i << " in=" << in[i];
    }
  }
}

// Position-uniformity: element i's result depends only on in[i] — the
// masked AVX2 tail must be bitwise the full-width arithmetic, so batching
// many small arrays into one call changes nothing. The fused micro-solver
// builds all four Gibbs kernels with ONE vec_exp over the stacked lanes on
// the strength of this exact property.
TEST(VecExpKernelTest, PositionUniformAcrossLengthsAndOffsets) {
  Rng rng(7);
  const std::vector<double> in = RandomVec(&rng, 257, -700.0, 700.0);
  std::vector<double> full(in.size());
  const KernelSet& ks = Kernels();
  ks.vec_exp(in.data(), full.data(), static_cast<int>(in.size()));
  for (int n : kSizes) {
    for (int offset : {0, 1, 2, 3, 5}) {
      if (offset + n > static_cast<int>(in.size())) continue;
      std::vector<double> part(n);
      ks.vec_exp(in.data() + offset, part.data(), n);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(part[i], full[offset + i])
            << "n=" << n << " offset=" << offset << " i=" << i;
      }
    }
  }
}

// linalg::VecExp documents that in == out aliasing is part of the contract.
TEST(VecExpKernelTest, InPlaceAliasMatchesOutOfPlace) {
  Rng rng(11);
  for (int n : kSizes) {
    std::vector<double> in = RandomVec(&rng, n, -30.0, 30.0);
    std::vector<double> separate(n);
    linalg::VecExp(in.data(), separate.data(), n);
    std::vector<double> inplace = in;
    linalg::VecExp(inplace.data(), inplace.data(), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(inplace[i], separate[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(VecExpKernelTest, ClampAndSpecialValues) {
  const double in[] = {-800.0, -708.0, 0.0, 708.0, 800.0, 1.0, -1.0};
  const int n = 7;
  double out[7];
  Kernels().vec_exp(in, out, n);
  EXPECT_GT(out[0], 0.0);  // clamped, not underflowed to 0
  EXPECT_TRUE(std::isfinite(out[4]));
  EXPECT_EQ(out[2], 1.0);
  EXPECT_EQ(out[0], out[1]);  // both clamp to exp(-708)
  EXPECT_EQ(out[3], out[4]);  // both clamp to exp(708)
}

// --- row_dot / lane4_dot -------------------------------------------------

TEST(RowDotKernelTest, Avx2MatchesScalarWithinRelativeTolerance) {
  if (!ActiveIsAvx2()) GTEST_SKIP() << "AVX2 table not active";
  Rng rng(13);
  for (int n : kSizes) {
    std::vector<double> a = RandomVec(&rng, n, -2.0, 2.0);
    std::vector<double> b = RandomVec(&rng, n, -2.0, 2.0);
    const double s = ScalarKernels().row_dot(a.data(), b.data(), n);
    const double v = Kernels().row_dot(a.data(), b.data(), n);
    long double ref = 0.0L;
    for (int i = 0; i < n; ++i) {
      ref += static_cast<long double>(a[i]) * b[i];
    }
    const double scale = std::max(1.0, std::fabs(static_cast<double>(ref)));
    EXPECT_NEAR(s, v, 1e-13 * scale) << "n=" << n;
  }
}

// The fused micro-solver's keystone: lane p of lane4_dot is BITWISE the
// row_dot of the same kernel set applied to lane p's deinterleaved data —
// for the active table and for the scalar table.
TEST(Lane4DotKernelTest, EachLaneBitwiseEqualsRowDot) {
  Rng rng(17);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int n : kSizes) {
      std::vector<double> k4 = RandomVec(&rng, n * 4, -3.0, 3.0);
      std::vector<double> v4 = RandomVec(&rng, n * 4, -3.0, 3.0);
      double out[4];
      ks->lane4_dot(k4.data(), v4.data(), n, out);
      for (int p = 0; p < 4; ++p) {
        std::vector<double> row(n), x(n);
        for (int j = 0; j < n; ++j) {
          row[j] = k4[4 * j + p];
          x[j] = v4[4 * j + p];
        }
        const double solo = ks->row_dot(row.data(), x.data(), n);
        EXPECT_EQ(out[p], solo)
            << ks->name << " n=" << n << " lane=" << p;
      }
    }
  }
}

// --- gemm microkernels ---------------------------------------------------

TEST(GemmKernelTest, Avx2RowKernelsMatchScalarWithinTolerance) {
  if (!ActiveIsAvx2()) GTEST_SKIP() << "AVX2 table not active";
  Rng rng(19);
  for (int kw : {1, 2, 3, 4, 5, 8, 13, 32}) {
    for (int nw : {1, 2, 3, 4, 5, 7, 16, 33}) {
      std::vector<double> a0 = RandomVec(&rng, kw, -1.0, 1.0);
      std::vector<double> a1 = RandomVec(&rng, kw, -1.0, 1.0);
      std::vector<double> bp = RandomVec(&rng, kw * nw, -1.0, 1.0);
      std::vector<double> c0s = RandomVec(&rng, nw, -1.0, 1.0);
      std::vector<double> c1s = c0s;
      std::vector<double> c0v = c0s, c1v = c1s;
      const double alpha = 1.25;
      ScalarKernels().gemm_row2(alpha, a0.data(), a1.data(), bp.data(), kw,
                                nw, c0s.data(), c1s.data());
      Kernels().gemm_row2(alpha, a0.data(), a1.data(), bp.data(), kw, nw,
                          c0v.data(), c1v.data());
      for (int j = 0; j < nw; ++j) {
        EXPECT_NEAR(c0s[j], c0v[j], 1e-13 * kw) << "kw=" << kw << " nw=" << nw;
        EXPECT_NEAR(c1s[j], c1v[j], 1e-13 * kw) << "kw=" << kw << " nw=" << nw;
      }
      std::vector<double> crs = RandomVec(&rng, nw, -1.0, 1.0);
      std::vector<double> crv = crs;
      ScalarKernels().gemm_row1(alpha, a0.data(), bp.data(), kw, nw,
                                crs.data());
      Kernels().gemm_row1(alpha, a0.data(), bp.data(), kw, nw, crv.data());
      for (int j = 0; j < nw; ++j) {
        EXPECT_NEAR(crs[j], crv[j], 1e-13 * kw) << "kw=" << kw << " nw=" << nw;
      }
    }
  }
}

// --- adam_update ---------------------------------------------------------

TEST(AdamKernelTest, Avx2MatchesScalarWithinTolerance) {
  if (!ActiveIsAvx2()) GTEST_SKIP() << "AVX2 table not active";
  Rng rng(23);
  for (int64_t n : {int64_t{1}, int64_t{3}, int64_t{4}, int64_t{7},
                    int64_t{64}, int64_t{101}}) {
    const int ni = static_cast<int>(n);
    std::vector<double> value = RandomVec(&rng, ni, -1.0, 1.0);
    std::vector<double> grad = RandomVec(&rng, ni, -1.0, 1.0);
    std::vector<double> m = RandomVec(&rng, ni, -0.1, 0.1);
    std::vector<double> v = RandomVec(&rng, ni, 0.0, 0.1);
    auto vs = value, ms = m, vvs = v;
    auto vv = value, mv = m, vvv = v;
    ScalarKernels().adam_update(vs.data(), grad.data(), ms.data(), vvs.data(),
                                n, 0.9, 0.999, 1.0 / (1 - 0.9),
                                1.0 / (1 - 0.999), 1e-8, 1e-3, 0.01);
    Kernels().adam_update(vv.data(), grad.data(), mv.data(), vvv.data(), n,
                          0.9, 0.999, 1.0 / (1 - 0.9), 1.0 / (1 - 0.999),
                          1e-8, 1e-3, 0.01);
    for (int i = 0; i < ni; ++i) {
      EXPECT_NEAR(vs[i], vv[i], 1e-15) << "n=" << n << " i=" << i;
      EXPECT_NEAR(ms[i], mv[i], 1e-15);
      EXPECT_NEAR(vvs[i], vvv[i], 1e-15);
    }
  }
}

// Split invariance: ParallelFor's chunk boundaries depend on the worker
// count, so optim.cc's correctness across machines requires that updating
// [0, n) in one call is bitwise identical to updating it in two chunks at
// ANY split point — including splits that land mid-vector-width.
TEST(AdamKernelTest, RangeSplitInvariant) {
  Rng rng(29);
  const int n = 37;
  const std::vector<double> value0 = RandomVec(&rng, n, -1.0, 1.0);
  const std::vector<double> grad = RandomVec(&rng, n, -1.0, 1.0);
  const std::vector<double> m0 = RandomVec(&rng, n, -0.1, 0.1);
  const std::vector<double> v0 = RandomVec(&rng, n, 0.0, 0.1);
  const KernelSet& ks = Kernels();
  auto run_whole = [&](std::vector<double>* val, std::vector<double>* m,
                       std::vector<double>* v) {
    ks.adam_update(val->data(), grad.data(), m->data(), v->data(), n, 0.9,
                   0.999, 1.111, 1.001, 1e-8, 1e-3, 0.0);
  };
  std::vector<double> val_a = value0, m_a = m0, v_a = v0;
  run_whole(&val_a, &m_a, &v_a);
  for (int split : {1, 2, 3, 4, 5, 17, 36}) {
    std::vector<double> val_b = value0, m_b = m0, v_b = v0;
    ks.adam_update(val_b.data(), grad.data(), m_b.data(), v_b.data(), split,
                   0.9, 0.999, 1.111, 1.001, 1e-8, 1e-3, 0.0);
    ks.adam_update(val_b.data() + split, grad.data() + split,
                   m_b.data() + split, v_b.data() + split, n - split, 0.9,
                   0.999, 1.111, 1.001, 1e-8, 1e-3, 0.0);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(val_a[i], val_b[i]) << "split=" << split << " i=" << i;
      EXPECT_EQ(m_a[i], m_b[i]) << "split=" << split << " i=" << i;
      EXPECT_EQ(v_a[i], v_b[i]) << "split=" << split << " i=" << i;
    }
  }
}

// --- elementwise accumulation / whole-array kernels ----------------------
//
// Contract (simd.h): every kernel in this family computes each output
// element with plain individually-rounded IEEE ops or a correctly-rounded
// std::fma, so the scalar and AVX2 tables must agree BITWISE at every size,
// including all n % 4 remainders.

TEST(ElementwiseKernelTest, CrossTableBitwiseIdentical) {
  Rng rng(37);
  const KernelSet& sc = ScalarKernels();
  const KernelSet& ac = Kernels();
  for (int n : kSizes) {
    const std::vector<double> x1 = RandomVec(&rng, n, -3.0, 3.0);
    const std::vector<double> x2 = RandomVec(&rng, n, 0.5, 3.0);  // nonzero
    const std::vector<double> y0 = RandomVec(&rng, n, -1.0, 1.0);
    const double a = 1.7;

    auto expect_eq = [&](const std::vector<double>& s,
                         const std::vector<double>& v, const char* kernel) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(s[i], v[i]) << kernel << " n=" << n << " i=" << i;
      }
    };
    std::vector<double> s = y0, v = y0;
    sc.vec_accum(x1.data(), s.data(), n);
    ac.vec_accum(x1.data(), v.data(), n);
    expect_eq(s, v, "vec_accum");

    s = y0, v = y0;
    sc.vec_axpy(a, x1.data(), s.data(), n);
    ac.vec_axpy(a, x1.data(), v.data(), n);
    expect_eq(s, v, "vec_axpy");

    s = y0, v = y0;
    sc.vec_mul_accum(x1.data(), x2.data(), s.data(), n);
    ac.vec_mul_accum(x1.data(), x2.data(), v.data(), n);
    expect_eq(s, v, "vec_mul_accum");

    s = y0, v = y0;
    sc.vec_add_scalar(a, s.data(), n);
    ac.vec_add_scalar(a, v.data(), n);
    expect_eq(s, v, "vec_add_scalar");

    s.assign(n, 0.0), v.assign(n, 0.0);
    sc.vec_add(x1.data(), x2.data(), s.data(), n);
    ac.vec_add(x1.data(), x2.data(), v.data(), n);
    expect_eq(s, v, "vec_add");

    sc.vec_sub(x1.data(), x2.data(), s.data(), n);
    ac.vec_sub(x1.data(), x2.data(), v.data(), n);
    expect_eq(s, v, "vec_sub");

    sc.vec_mul(x1.data(), x2.data(), s.data(), n);
    ac.vec_mul(x1.data(), x2.data(), v.data(), n);
    expect_eq(s, v, "vec_mul");

    sc.vec_scale(a, x1.data(), s.data(), n);
    ac.vec_scale(a, x1.data(), v.data(), n);
    expect_eq(s, v, "vec_scale");

    sc.vec_div_scalar(a, x2.data(), s.data(), n);
    ac.vec_div_scalar(a, x2.data(), v.data(), n);
    expect_eq(s, v, "vec_div_scalar");
  }
}

TEST(EwForwardKernelTest, CrossTableBitwiseAndFormulaExact) {
  Rng rng(41);
  const KernelSet& sc = ScalarKernels();
  const KernelSet& ac = Kernels();
  for (int n : kSizes) {
    for (EwFwd op : {EwFwd::kReciprocal, EwFwd::kRelu, EwFwd::kSqrt,
                     EwFwd::kSquare, EwFwd::kAbs}) {
      // Positive inputs where the formula needs them (1/x, sqrt).
      const bool positive = op == EwFwd::kReciprocal || op == EwFwd::kSqrt;
      const std::vector<double> x =
          RandomVec(&rng, n, positive ? 0.1 : -2.0, 2.0);
      std::vector<double> s(n), v(n);
      sc.ew_forward(static_cast<int>(op), x.data(), s.data(), n);
      ac.ew_forward(static_cast<int>(op), x.data(), v.data(), n);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(s[i], v[i])
            << "ew_forward op=" << static_cast<int>(op) << " n=" << n;
        // Spot-check the documented formula against plain C++.
        double ref = 0.0;
        switch (op) {
          case EwFwd::kReciprocal: ref = 1.0 / x[i]; break;
          case EwFwd::kRelu: ref = x[i] > 0.0 ? x[i] : 0.0; break;
          case EwFwd::kSqrt: ref = std::sqrt(x[i]); break;
          case EwFwd::kSquare: ref = x[i] * x[i]; break;
          case EwFwd::kAbs: ref = std::fabs(x[i]); break;
        }
        EXPECT_EQ(s[i], ref)
            << "ew_forward formula op=" << static_cast<int>(op);
      }
    }
  }
}

TEST(EwBackwardKernelTest, CrossTableBitwiseIdenticalAllOps) {
  Rng rng(43);
  const KernelSet& sc = ScalarKernels();
  const KernelSet& ac = Kernels();
  const EwGrad ops[] = {EwGrad::kReciprocal, EwGrad::kRelu, EwGrad::kElu,
                        EwGrad::kTanh,       EwGrad::kSigmoid, EwGrad::kExp,
                        EwGrad::kLog,        EwGrad::kSqrt,   EwGrad::kSquare,
                        EwGrad::kAbs};
  for (int n : kSizes) {
    for (EwGrad op : ops) {
      const bool positive = op == EwGrad::kLog || op == EwGrad::kSqrt ||
                            op == EwGrad::kReciprocal;
      const std::vector<double> x =
          RandomVec(&rng, n, positive ? 0.1 : -2.0, 2.0);
      const std::vector<double> g = RandomVec(&rng, n, -1.0, 1.0);
      std::vector<double> y(n);
      for (int i = 0; i < n; ++i) {
        switch (op) {  // y = forward(x), as autodiff records it.
          case EwGrad::kReciprocal: y[i] = 1.0 / x[i]; break;
          case EwGrad::kRelu: y[i] = x[i] > 0.0 ? x[i] : 0.0; break;
          case EwGrad::kElu: y[i] = x[i] > 0.0 ? x[i] : std::expm1(x[i]); break;
          case EwGrad::kTanh: y[i] = std::tanh(x[i]); break;
          case EwGrad::kSigmoid: y[i] = 1.0 / (1.0 + std::exp(-x[i])); break;
          case EwGrad::kExp: y[i] = std::exp(x[i]); break;
          case EwGrad::kLog: y[i] = std::log(x[i]); break;
          case EwGrad::kSqrt: y[i] = std::sqrt(x[i]); break;
          case EwGrad::kSquare: y[i] = x[i] * x[i]; break;
          case EwGrad::kAbs: y[i] = std::fabs(x[i]); break;
        }
      }
      const std::vector<double> ga0 = RandomVec(&rng, n, -0.5, 0.5);
      std::vector<double> s = ga0, v = ga0;
      sc.ew_backward(static_cast<int>(op), g.data(), x.data(), y.data(),
                     s.data(), n);
      ac.ew_backward(static_cast<int>(op), g.data(), x.data(), y.data(),
                     v.data(), n);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(s[i], v[i])
            << "ew_backward op=" << static_cast<int>(op) << " n=" << n
            << " i=" << i;
      }
    }
  }
}

TEST(BroadcastKernelTest, CrossTableBitwiseIdentical) {
  Rng rng(47);
  const KernelSet& sc = ScalarKernels();
  const KernelSet& ac = Kernels();
  for (int rows : {1, 2, 3, 5, 8}) {
    for (int cols : {1, 2, 3, 4, 5, 7, 16, 33}) {
      const std::vector<double> a = RandomVec(&rng, rows * cols, -2.0, 2.0);
      const std::vector<double> bias = RandomVec(&rng, cols, -1.0, 1.0);
      const std::vector<double> scale = RandomVec(&rng, rows, -1.0, 1.0);
      std::vector<double> s(rows * cols), v(rows * cols);
      sc.add_row_broadcast(a.data(), bias.data(), rows, cols, s.data());
      ac.add_row_broadcast(a.data(), bias.data(), rows, cols, v.data());
      for (int i = 0; i < rows * cols; ++i) {
        EXPECT_EQ(s[i], v[i]) << "add_row_broadcast " << rows << "x" << cols;
      }
      sc.mul_col_broadcast(a.data(), scale.data(), rows, cols, s.data());
      ac.mul_col_broadcast(a.data(), scale.data(), rows, cols, v.data());
      for (int i = 0; i < rows * cols; ++i) {
        EXPECT_EQ(s[i], v[i]) << "mul_col_broadcast " << rows << "x" << cols;
      }
    }
  }
}

// --- mat_vec / mat_tvec_accum panels -------------------------------------

// Each mat_vec output row must be bitwise the row_dot of the SAME table —
// this pins the row-interleaved AVX2 implementation (including its
// rows % 4 remainder) to the single-row kernel it replays.
TEST(MatVecKernelTest, EachRowBitwiseEqualsRowDotSameTable) {
  Rng rng(53);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int rows : {1, 2, 3, 4, 5, 7, 8, 9}) {
      for (int cols : {1, 3, 4, 5, 8, 17, 44}) {
        const std::vector<double> mat =
            RandomVec(&rng, rows * cols, -2.0, 2.0);
        const std::vector<double> x = RandomVec(&rng, cols, -2.0, 2.0);
        std::vector<double> out(rows);
        ks->mat_vec(mat.data(), cols, x.data(), rows, cols, out.data());
        for (int r = 0; r < rows; ++r) {
          const double solo = ks->row_dot(mat.data() + r * cols, x.data(),
                                          cols);
          EXPECT_EQ(out[r], solo)
              << ks->name << " rows=" << rows << " cols=" << cols
              << " r=" << r;
        }
      }
    }
  }
}

TEST(MatVecKernelTest, Avx2MatchesScalarWithinRelativeTolerance) {
  if (!ActiveIsAvx2()) GTEST_SKIP() << "AVX2 table not active";
  Rng rng(59);
  for (int rows : {1, 3, 5, 9}) {
    for (int cols : {4, 7, 31, 100}) {
      const std::vector<double> mat = RandomVec(&rng, rows * cols, -2.0, 2.0);
      const std::vector<double> x = RandomVec(&rng, cols, -2.0, 2.0);
      std::vector<double> s(rows), v(rows);
      ScalarKernels().mat_vec(mat.data(), cols, x.data(), rows, cols,
                              s.data());
      Kernels().mat_vec(mat.data(), cols, x.data(), rows, cols, v.data());
      for (int r = 0; r < rows; ++r) {
        long double ref = 0.0L;
        for (int c = 0; c < cols; ++c) {
          ref += static_cast<long double>(mat[r * cols + c]) * x[c];
        }
        const double scale = std::max(1.0, std::fabs(static_cast<double>(ref)));
        EXPECT_NEAR(s[r], v[r], 1e-13 * scale) << rows << "x" << cols;
      }
    }
  }
}

// mat_tvec_accum uses correctly-rounded fma with r strictly ascending in
// both tables: bitwise cross-table, bitwise equal to the reference loop,
// and independent of column-range splits (the Sinkhorn K^T u ParallelFor).
TEST(MatTVecAccumKernelTest, CrossTableReferenceAndColumnSplitExact) {
  Rng rng(61);
  for (int rows : {1, 2, 3, 4, 5, 9, 21}) {
    for (int cols : {1, 2, 4, 5, 7, 16, 44}) {
      const std::vector<double> mat = RandomVec(&rng, rows * cols, -2.0, 2.0);
      const std::vector<double> u = RandomVec(&rng, rows, -2.0, 2.0);
      std::vector<double> ref(cols, 0.0);
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          ref[c] = std::fma(u[r], mat[r * cols + c], ref[c]);
        }
      }
      std::vector<double> s(cols), v(cols);
      ScalarKernels().mat_tvec_accum(mat.data(), cols, u.data(), rows, cols,
                                     s.data());
      Kernels().mat_tvec_accum(mat.data(), cols, u.data(), rows, cols,
                               v.data());
      for (int c = 0; c < cols; ++c) {
        EXPECT_EQ(ref[c], s[c]) << "scalar " << rows << "x" << cols;
        EXPECT_EQ(ref[c], v[c]) << "active " << rows << "x" << cols;
      }
      // Column-split invariance at every boundary (mid-vector included).
      for (int split = 1; split < cols; ++split) {
        std::vector<double> part(cols);
        Kernels().mat_tvec_accum(mat.data(), cols, u.data(), rows, split,
                                 part.data());
        Kernels().mat_tvec_accum(mat.data() + split, cols, u.data(), rows,
                                 cols - split, part.data() + split);
        for (int c = 0; c < cols; ++c) {
          EXPECT_EQ(ref[c], part[c])
              << "split=" << split << " " << rows << "x" << cols;
        }
      }
    }
  }
}

// --- lane4 whole-sweep kernels -------------------------------------------
//
// The fused micro-solver's guarantee rests on every lane kernel replaying
// the solo kernel of the SAME table bit-for-bit on deinterleaved data.

TEST(Lane4SweepKernelTest, MatVecAndKtuReplaySoloKernelsPerLane) {
  Rng rng(67);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int n1 : {1, 2, 3, 5, 12}) {
      for (int n2 : {1, 2, 4, 7, 9}) {
        const std::vector<double> k4 =
            RandomVec(&rng, n1 * n2 * 4, 0.01, 2.0);
        const std::vector<double> u4 = RandomVec(&rng, n1 * 4, 0.1, 2.0);
        const std::vector<double> v4 = RandomVec(&rng, n2 * 4, 0.1, 2.0);
        std::vector<double> kv4(n1 * 4), ktu4(n2 * 4);
        ks->lane4_matvec(k4.data(), v4.data(), n1, n2, kv4.data());
        ks->lane4_ktu(k4.data(), u4.data(), n1, n2, ktu4.data());
        for (int p = 0; p < 4; ++p) {
          std::vector<double> kmat(n1 * n2), u(n1), v(n2);
          for (int i = 0; i < n1; ++i) u[i] = u4[i * 4 + p];
          for (int j = 0; j < n2; ++j) v[j] = v4[j * 4 + p];
          for (int i = 0; i < n1; ++i) {
            for (int j = 0; j < n2; ++j) {
              kmat[i * n2 + j] = k4[(i * n2 + j) * 4 + p];
            }
          }
          std::vector<double> kv(n1), ktu(n2);
          ks->mat_vec(kmat.data(), n2, v.data(), n1, n2, kv.data());
          ks->mat_tvec_accum(kmat.data(), n2, u.data(), n1, n2, ktu.data());
          for (int i = 0; i < n1; ++i) {
            EXPECT_EQ(kv4[i * 4 + p], kv[i])
                << ks->name << " lane4_matvec lane=" << p;
          }
          for (int j = 0; j < n2; ++j) {
            EXPECT_EQ(ktu4[j * 4 + p], ktu[j])
                << ks->name << " lane4_ktu lane=" << p;
          }
        }
      }
    }
  }
}

TEST(Lane4SweepKernelTest, DivMaskedFreezesLanesAndMatchesVecDiv) {
  Rng rng(71);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int n : {1, 2, 3, 5, 8, 13}) {
      const std::vector<double> x4 = RandomVec(&rng, n * 4, 0.1, 2.0);
      const std::vector<double> before = RandomVec(&rng, n * 4, -9.0, 9.0);
      const unsigned char mask[4] = {1, 0, 1, 0};
      const double a = 0.37;
      std::vector<double> out4 = before;
      ks->lane4_div_masked(a, x4.data(), mask, n, out4.data());
      for (int p = 0; p < 4; ++p) {
        std::vector<double> x(n), expect(n);
        for (int i = 0; i < n; ++i) x[i] = x4[i * 4 + p];
        ks->vec_div_scalar(a, x.data(), expect.data(), n);
        for (int i = 0; i < n; ++i) {
          if (mask[p]) {
            EXPECT_EQ(out4[i * 4 + p], expect[i])
                << ks->name << " active lane=" << p;
          } else {
            EXPECT_EQ(out4[i * 4 + p], before[i * 4 + p])
                << ks->name << " frozen lane=" << p;
          }
        }
      }
    }
  }
}

TEST(Lane4SweepKernelTest, ViolationMatchesSoloReductionPerLane) {
  Rng rng(73);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int n : {1, 2, 3, 5, 8, 21}) {
      const std::vector<double> u4 = RandomVec(&rng, n * 4, 0.1, 2.0);
      const std::vector<double> x4 = RandomVec(&rng, n * 4, 0.1, 2.0);
      const double a = 0.25;
      double out[4];
      ks->lane4_violation(u4.data(), x4.data(), n, a, out);
      for (int p = 0; p < 4; ++p) {
        // The solo Row/ColViolation loop, i ascending.
        double expect = 0.0;
        for (int i = 0; i < n; ++i) {
          expect += std::fabs(u4[i * 4 + p] * x4[i * 4 + p] - a);
        }
        EXPECT_EQ(out[p], expect) << ks->name << " lane=" << p << " n=" << n;
      }
    }
  }
}

TEST(Lane4SweepKernelTest, PlanReplaysAssemblyOrderPerLane) {
  Rng rng(79);
  const KernelSet* sets[] = {&Kernels(), &ScalarKernels()};
  for (const KernelSet* ks : sets) {
    for (int n1 : {1, 2, 3, 5}) {
      for (int n2 : {1, 2, 3, 4, 7, 10}) {
        const std::vector<double> u4 = RandomVec(&rng, n1 * 4, 0.1, 2.0);
        const std::vector<double> v4 = RandomVec(&rng, n2 * 4, 0.1, 2.0);
        const std::vector<double> k4 =
            RandomVec(&rng, n1 * n2 * 4, 0.01, 1.0);
        const std::vector<double> c4 =
            RandomVec(&rng, n1 * n2 * 4, 0.0, 4.0);
        std::vector<double> p4(n1 * n2 * 4), rows4(n1 * 4);
        ks->lane4_plan(u4.data(), k4.data(), c4.data(), v4.data(), n1, n2,
                       p4.data(), rows4.data());
        for (int p = 0; p < 4; ++p) {
          for (int i = 0; i < n1; ++i) {
            // AssemblePlanCost's row order: paired s0/s1 accumulators over
            // even/odd j, combined as s0 + s1.
            const double ui = u4[i * 4 + p];
            double s0 = 0.0, s1 = 0.0;
            int j = 0;
            for (; j + 2 <= n2; j += 2) {
              const int e0 = (i * n2 + j) * 4 + p;
              const int e1 = (i * n2 + j + 1) * 4 + p;
              const double p0 = ui * k4[e0] * v4[j * 4 + p];
              const double p1 = ui * k4[e1] * v4[(j + 1) * 4 + p];
              EXPECT_EQ(p4[e0], p0) << ks->name << " plan elem";
              EXPECT_EQ(p4[e1], p1) << ks->name << " plan elem";
              s0 += p0 * c4[e0];
              s1 += p1 * c4[e1];
            }
            for (; j < n2; ++j) {
              const int e = (i * n2 + j) * 4 + p;
              const double pe = ui * k4[e] * v4[j * 4 + p];
              EXPECT_EQ(p4[e], pe) << ks->name << " plan tail elem";
              s0 += pe * c4[e];
            }
            EXPECT_EQ(rows4[i * 4 + p], s0 + s1)
                << ks->name << " lane=" << p << " row=" << i;
          }
        }
      }
    }
  }
}

// --- determinism ---------------------------------------------------------

// Same build, same process: repeated invocations of every dispatched kernel
// are bitwise stable (the dispatch is resolved once and each kernel is a
// pure function of its inputs).
TEST(SimdDeterminismTest, RepeatedCallsAreBitwiseStable) {
  Rng rng(31);
  const int n = 129;
  const std::vector<double> in = RandomVec(&rng, n, -50.0, 50.0);
  const std::vector<double> x = RandomVec(&rng, n, -2.0, 2.0);
  const KernelSet& ks = Kernels();
  std::vector<double> out1(n), out2(n);
  ks.vec_exp(in.data(), out1.data(), n);
  ks.vec_exp(in.data(), out2.data(), n);
  EXPECT_EQ(0, std::memcmp(out1.data(), out2.data(), n * sizeof(double)));
  const double d1 = ks.row_dot(in.data(), x.data(), n);
  const double d2 = ks.row_dot(in.data(), x.data(), n);
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace cerl::linalg::simd
