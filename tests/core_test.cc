// Tests for the CERL core: memory bank semantics (append/transform/reduce,
// group balance, capacity), the transformation network, and the continual
// trainer on a toy shifted stream (knowledge retention vs fine-tuning,
// memory invariants, ablation configurations).
#include <gtest/gtest.h>

#include <cmath>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "core/memory_bank.h"
#include "core/transform_net.h"
#include "autodiff/composite.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace cerl::core {
namespace {

using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

Matrix RandomReps(Rng* rng, int n, int d) {
  Matrix m(n, d);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

TEST(MemoryBankTest, AppendAccumulates) {
  Rng rng(1);
  MemoryBank bank;
  EXPECT_TRUE(bank.empty());
  bank.Append(RandomReps(&rng, 5, 3), Vector(5, 1.0), {1, 0, 1, 0, 1});
  bank.Append(RandomReps(&rng, 4, 3), Vector(4, 2.0), {0, 0, 1, 1});
  EXPECT_EQ(bank.size(), 9);
  EXPECT_EQ(bank.num_treated(), 5);
  EXPECT_EQ(bank.rep_dim(), 3);
  EXPECT_DOUBLE_EQ(bank.y()[7], 2.0);
}

TEST(MemoryBankTest, ReduceRespectsCapacityAndBalance) {
  Rng rng(2);
  MemoryBank bank;
  // 40 treated, 60 control.
  std::vector<int> t(100);
  for (int i = 0; i < 100; ++i) t[i] = i < 40 ? 1 : 0;
  bank.Append(RandomReps(&rng, 100, 4), Vector(100, 0.0), t);
  bank.Reduce(20, /*use_herding=*/true, &rng);
  EXPECT_EQ(bank.size(), 20);
  EXPECT_EQ(bank.num_treated(), 10);  // Same number per group.
}

TEST(MemoryBankTest, ReduceGivesLeftoverToLargerGroup) {
  Rng rng(3);
  MemoryBank bank;
  // Only 3 treated: the treated side cannot fill its half of 20.
  std::vector<int> t(100);
  for (int i = 0; i < 100; ++i) t[i] = i < 3 ? 1 : 0;
  bank.Append(RandomReps(&rng, 100, 4), Vector(100, 0.0), t);
  bank.Reduce(20, /*use_herding=*/true, &rng);
  EXPECT_EQ(bank.size(), 20);  // Capacity fully used.
  EXPECT_EQ(bank.num_treated(), 3);
}

TEST(MemoryBankTest, ReduceNoopUnderCapacity) {
  Rng rng(4);
  MemoryBank bank;
  bank.Append(RandomReps(&rng, 10, 4), Vector(10, 0.0),
              std::vector<int>(10, 1));
  bank.Reduce(50, true, &rng);
  EXPECT_EQ(bank.size(), 10);
}

TEST(MemoryBankTest, RandomReductionAlsoBalanced) {
  Rng rng(5);
  MemoryBank bank;
  std::vector<int> t(60);
  for (int i = 0; i < 60; ++i) t[i] = i % 2;
  bank.Append(RandomReps(&rng, 60, 4), Vector(60, 0.0), t);
  bank.Reduce(30, /*use_herding=*/false, &rng);
  EXPECT_EQ(bank.size(), 30);
  EXPECT_EQ(bank.num_treated(), 15);
}

TEST(MemoryBankTest, TransformMapsReps) {
  Rng rng(6);
  MemoryBank bank;
  bank.Append(RandomReps(&rng, 8, 3), Vector(8, 0.0),
              std::vector<int>(8, 0));
  bank.Transform([](const Matrix& reps) {
    Matrix out = reps;
    out.Scale(2.0);
    return out;
  });
  EXPECT_EQ(bank.rep_dim(), 3);
  // y and t untouched, reps scaled.
  EXPECT_EQ(bank.size(), 8);
}

TEST(MemoryBankTest, SampleBatchInRange) {
  Rng rng(7);
  MemoryBank bank;
  bank.Append(RandomReps(&rng, 12, 2), Vector(12, 0.0),
              std::vector<int>(12, 1));
  auto idx = bank.SampleBatch(40, &rng);
  EXPECT_EQ(idx.size(), 40u);
  for (int i : idx) EXPECT_TRUE(i >= 0 && i < 12);
}

TEST(TransformNetTest, ShapesAndBoundedOutput) {
  Rng rng(8);
  TransformNet phi(&rng, 6, {10});
  Matrix reps = RandomReps(&rng, 15, 6);
  Matrix mapped = phi.Apply(reps);
  EXPECT_EQ(mapped.rows(), 15);
  EXPECT_EQ(mapped.cols(), 6);
  for (int64_t i = 0; i < mapped.size(); ++i) {
    ASSERT_LT(std::fabs(mapped.data()[i]), 1.0);
  }
  EXPECT_FALSE(phi.Parameters().empty());
}

TEST(TransformNetTest, CanLearnIdentityOnBoundedReps) {
  // phi should be able to fit a simple map (here: identity on tanh-bounded
  // representations) — the capability L_FT relies on.
  Rng rng(9);
  TransformNet phi(&rng, 4, {});
  Matrix reps(40, 4);
  for (int64_t i = 0; i < reps.size(); ++i) {
    reps.data()[i] = std::tanh(rng.Normal());
  }
  nn::Adam opt(phi.Parameters(), 0.05);
  double loss_val = 1.0;
  for (int step = 0; step < 300; ++step) {
    autodiff::Tape tape;
    autodiff::Var in = tape.Constant(reps);
    autodiff::Var out = phi.Forward(&tape, in);
    autodiff::Var loss = autodiff::MseLoss(out, tape.Constant(reps));
    loss_val = loss.scalar();
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(loss_val, 0.01);
}

// Toy DGP with a controllable covariate mean shift between domains. The
// outcome mechanism is deliberately nonlinear (sin/cos): a model fine-tuned
// only on the shifted region then extrapolates badly back to the original
// region, i.e. genuine catastrophic forgetting — the failure mode CERL's
// distillation + memory replay exist to prevent. (With a globally linear
// mechanism, fine-tuning would extrapolate fine and there would be nothing
// to retain.)
CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  const int p = 8;
  CausalDataset d;
  d.x = Matrix(n, p);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

CerlConfig FastCerlConfig() {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 50;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 50;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = 33;
  c.memory_capacity = 120;
  return c;
}

std::vector<DataSplit> MakeShiftedStream(uint64_t seed, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  stream.push_back(data::SplitDataset(ShiftedToy(&rng, 500, 0.0), &rng));
  stream.push_back(data::SplitDataset(ShiftedToy(&rng, 500, shift), &rng));
  return stream;
}

TEST(CerlTrainerTest, BaselineStageBuildsMemory) {
  auto stream = MakeShiftedStream(10, 2.0);
  CerlConfig config = FastCerlConfig();
  CerlTrainer trainer(config, 8);
  trainer.ObserveDomain(stream[0]);
  EXPECT_EQ(trainer.stages_seen(), 1);
  EXPECT_FALSE(trainer.memory().empty());
  EXPECT_LE(trainer.memory().size(), config.memory_capacity);
  EXPECT_EQ(trainer.memory().rep_dim(), config.net.rep_dim);
  // Baseline should already estimate effects on its own domain.
  auto metrics = trainer.Evaluate(stream[0].test);
  EXPECT_LT(metrics.pehe, 1.0);  // Predict-zero baseline would be ~1.2.
}

TEST(CerlTrainerTest, ContinualStageKeepsBothDomainsUsable) {
  auto stream = MakeShiftedStream(11, 2.0);
  CerlConfig config = FastCerlConfig();
  CerlTrainer trainer(config, 8);
  trainer.ObserveDomain(stream[0]);
  trainer.ObserveDomain(stream[1]);
  EXPECT_EQ(trainer.stages_seen(), 2);
  EXPECT_LE(trainer.memory().size(), config.memory_capacity);

  auto prev = trainer.Evaluate(stream[0].test);
  auto neu = trainer.Evaluate(stream[1].test);
  EXPECT_TRUE(std::isfinite(prev.pehe));
  EXPECT_TRUE(std::isfinite(neu.pehe));
  // Both domains should beat the trivial predict-zero PEHE (~1.2 given
  // tau = 1 + 0.5 x0 with x0 ~ N(0 or 2, 1)).
  EXPECT_LT(neu.pehe, 1.1);
  EXPECT_LT(prev.pehe, 1.1);
}

TEST(CerlTrainerTest, MemoryNeverStoresRawCovariates) {
  auto stream = MakeShiftedStream(12, 1.5);
  CerlConfig config = FastCerlConfig();
  CerlTrainer trainer(config, 8);
  trainer.ObserveDomain(stream[0]);
  trainer.ObserveDomain(stream[1]);
  // Representation dim (8) != covariate dim (8 here by coincidence would be
  // bad luck; assert on the documented invariant instead): stored vectors
  // are bounded representations, not unbounded raw covariates.
  const Matrix& reps = trainer.memory().reps();
  for (int64_t i = 0; i < reps.size(); ++i) {
    ASSERT_LE(std::fabs(reps.data()[i]), 1.0);
  }
}

TEST(CerlTrainerTest, AblationConfigurationsRun) {
  auto stream = MakeShiftedStream(13, 1.5);
  for (int ablation = 0; ablation < 3; ++ablation) {
    CerlConfig config = FastCerlConfig();
    config.train.epochs = 12;
    if (ablation == 0) config.use_transform = false;
    if (ablation == 1) config.use_herding = false;
    if (ablation == 2) config.net.cosine_normalized_rep = false;
    CerlTrainer trainer(config, 8);
    trainer.ObserveDomain(stream[0]);
    trainer.ObserveDomain(stream[1]);
    auto metrics = trainer.Evaluate(stream[0].test);
    EXPECT_TRUE(std::isfinite(metrics.pehe)) << "ablation " << ablation;
    if (ablation == 0) {
      EXPECT_TRUE(trainer.memory().empty());  // w/o FRT keeps no memory.
    }
  }
}

TEST(CerlTrainerTest, RetainsPreviousDomainBetterThanFineTuning) {
  // The headline claim at small scale: under covariate shift with a
  // nonlinear mechanism, CERL's previous-domain error stays below plain
  // fine-tuning (CFR-B), which forgets. Averaged over seeds to be robust.
  double cerl_prev = 0.0, finetune_prev = 0.0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    auto stream = MakeShiftedStream(100 + s, 3.0);
    CerlConfig config = FastCerlConfig();
    config.train.seed = 200 + s;
    CerlTrainer trainer(config, 8);
    trainer.ObserveDomain(stream[0]);
    trainer.ObserveDomain(stream[1]);
    cerl_prev += trainer.Evaluate(stream[0].test).pehe;

    causal::StrategyConfig strat;
    strat.net = config.net;
    strat.train = config.train;
    auto result = causal::RunCfrStrategy(causal::Strategy::kB, stream, strat);
    finetune_prev += result.final_stage().per_domain[0].pehe;
  }
  EXPECT_LT(cerl_prev / seeds, finetune_prev / seeds);
}

}  // namespace
}  // namespace cerl::core
