// Cross-module property tests: randomized sweeps over shapes, seeds, and
// configurations that complement the per-module unit suites.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "causal/herding.h"
#include "core/cerl_trainer.h"
#include "corrgen/hub_correlation.h"
#include "data/synthetic.h"
#include "data/topic_benchmark.h"
#include "grad_check.h"
#include "linalg/cholesky.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "ot/sinkhorn.h"
#include "util/rng.h"

namespace cerl {
namespace {

using autodiff::Tape;
using autodiff::Var;
using linalg::Matrix;
using linalg::Vector;

Matrix RandomMatrix(Rng* rng, int rows, int cols, double margin = 0.2) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    const double sign = rng->Uniform() < 0.5 ? -1.0 : 1.0;
    m.data()[i] = sign * rng->Uniform(margin, 1.5);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Autodiff: randomized full-network gradient checks across shapes.

class RandomShapeGradTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomShapeGradTest, CompositeChainGradientsMatchNumeric) {
  Rng rng(GetParam());
  const int batch = 2 + static_cast<int>(rng.UniformInt(4));
  const int in = 2 + static_cast<int>(rng.UniformInt(4));
  const int hidden = 2 + static_cast<int>(rng.UniformInt(4));
  const int out = 1 + static_cast<int>(rng.UniformInt(3));
  autodiff::CheckGradients(
      {RandomMatrix(&rng, batch, in), RandomMatrix(&rng, in, hidden),
       RandomMatrix(&rng, 1, hidden), RandomMatrix(&rng, hidden, out),
       RandomMatrix(&rng, batch, out)},
      [](Tape*, const std::vector<Var>& v) {
        using namespace autodiff;  // NOLINT
        Var h = Elu(AddRowBroadcast(MatMul(v[0], v[1]), v[2]));
        Var normalized = RowL2Normalize(h);
        Var pred = MatMul(normalized, v[3]);
        Var mse = MseLoss(pred, v[4]);
        Var reg = ScalarMul(ElasticNetPenalty(v[1]), 1e-2);
        return Add(mse, reg);
      },
      2e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapeGradTest,
                         ::testing::Range(100, 112));

// ---------------------------------------------------------------------------
// Sinkhorn: marginal feasibility across regularization strengths.

class SinkhornRegTest : public ::testing::TestWithParam<double> {};

TEST_P(SinkhornRegTest, MarginalsHoldForAllRegularizations) {
  Rng rng(42);
  Matrix a = RandomMatrix(&rng, 9, 4);
  Matrix b = RandomMatrix(&rng, 13, 4);
  ot::SinkhornConfig config;
  config.reg_fraction = GetParam();
  config.max_iterations = 500;
  auto result =
      ot::SolveSinkhorn(linalg::PairwiseSquaredDistances(a, b), config);
  ASSERT_TRUE(result.ok());
  const Matrix& plan = result.value().plan;
  double worst = 0.0;
  for (int i = 0; i < 9; ++i) {
    double row = 0.0;
    for (int j = 0; j < 13; ++j) row += plan(i, j);
    worst = std::max(worst, std::fabs(row - 1.0 / 9));
  }
  for (int j = 0; j < 13; ++j) {
    double col = 0.0;
    for (int i = 0; i < 9; ++i) col += plan(i, j);
    worst = std::max(worst, std::fabs(col - 1.0 / 13));
  }
  EXPECT_LT(worst, 1e-3);
  EXPECT_GE(result.value().cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RegSweep, SinkhornRegTest,
                         ::testing::Values(0.02, 0.05, 0.1, 0.3, 1.0));

TEST(SinkhornPropertyTest, CostDecreasesWithRegularization) {
  // Entropic smoothing biases the plan away from the optimal coupling:
  // larger regularization should not give a smaller transport cost <P, C>
  // on non-degenerate inputs (it spreads mass onto costlier cells).
  Rng rng(43);
  Matrix a = RandomMatrix(&rng, 12, 3);
  Matrix b = RandomMatrix(&rng, 12, 3);
  Matrix cost = linalg::PairwiseSquaredDistances(a, b);
  double previous = -1.0;
  for (double reg : {0.02, 0.1, 0.5, 2.0}) {
    ot::SinkhornConfig config;
    config.reg_fraction = reg;
    config.max_iterations = 1000;
    config.tolerance = 1e-9;
    auto result = ot::SolveSinkhorn(cost, config);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().cost, previous - 1e-6);
    previous = result.value().cost;
  }
}

// ---------------------------------------------------------------------------
// Herding: ordering property — prefixes of the selection approximate the
// mean at least as well as random prefixes, across sizes.

class HerdingPrefixTest : public ::testing::TestWithParam<int> {};

TEST_P(HerdingPrefixTest, PrefixBeatsRandomOnAverage) {
  Rng rng(GetParam());
  Matrix rows(60, 5);
  for (int64_t i = 0; i < rows.size(); ++i) rows.data()[i] = rng.Normal();
  auto selection = causal::HerdingSelect(rows, 30);
  double herd_err = 0.0, rand_err = 0.0;
  for (int k : {5, 10, 20, 30}) {
    std::vector<int> prefix(selection.begin(), selection.begin() + k);
    herd_err += causal::MeanApproximationError(rows, prefix);
    rand_err += causal::MeanApproximationError(
        rows, causal::RandomSelect(60, k, &rng));
  }
  EXPECT_LE(herd_err, rand_err + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HerdingPrefixTest, ::testing::Range(200, 208));

// ---------------------------------------------------------------------------
// Correlation generator feeding Cholesky: the full corrgen -> covariance ->
// factorization pipeline stays healthy across random specs.

class CorrPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(CorrPipelineTest, GeneratedCovarianceAlwaysFactorizes) {
  Rng rng(GetParam());
  std::vector<corrgen::HubBlockSpec> specs(3);
  for (auto& s : specs) {
    s.size = 5 + static_cast<int>(rng.UniformInt(20));
    s.rho_max = rng.Uniform(0.4, 0.95);
    s.rho_min = rng.Uniform(0.0, 0.3);
    s.gamma = rng.Uniform(0.3, 3.0);
  }
  auto corr = corrgen::GenerateCorrelationMatrix(specs, rng.Uniform(0.0, 0.9),
                                                 30, &rng);
  ASSERT_TRUE(corr.ok()) << corr.status().ToString();
  Vector stds(corr.value().rows());
  for (double& v : stds) v = rng.Uniform(0.2, 3.0);
  Matrix cov = corrgen::CorrelationToCovariance(corr.value(), stds);
  EXPECT_TRUE(linalg::Cholesky::Factor(cov).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrPipelineTest, ::testing::Range(300, 310));

// ---------------------------------------------------------------------------
// Data generators: determinism and split sanity across configurations.

TEST(DataPropertyTest, TopicBenchmarkScenariosAllProduceValidStreams) {
  for (auto shift : {data::DomainShift::kSubstantial,
                     data::DomainShift::kModerate, data::DomainShift::kNone}) {
    data::TopicBenchmarkConfig config;
    config.corpus.num_docs = 260;
    config.corpus.vocab_size = 90;
    config.corpus.num_topics = 6;
    config.corpus.doc_length_mean = 30.0;
    config.lda.num_topics = 6;
    config.lda.iterations = 15;
    config.shift = shift;
    config.seed = 31;
    auto bench = data::GenerateTopicBenchmark(config);
    ASSERT_EQ(bench.domains.size(), 2u);
    int total = 0;
    for (const auto& d : bench.domains) {
      d.CheckConsistent();
      total += d.num_units();
      EXPECT_GT(d.num_treated(), 0);
      EXPECT_GT(d.num_control(), 0);
    }
    EXPECT_EQ(total, 260);
    EXPECT_GT(bench.mean_propensity, 0.05);
    EXPECT_LT(bench.mean_propensity, 0.95);
  }
}

TEST(DataPropertyTest, SyntheticStreamSeedsAreIndependentPerDomain) {
  data::SyntheticConfig config;
  config.units_per_domain = 300;
  config.num_domains = 3;
  config.seed = 99;
  auto stream = data::GenerateSyntheticStream(config);
  // Different domains must not share covariate draws.
  EXPECT_GT(Matrix::MaxAbsDiff(stream.domains[0].x, stream.domains[1].x),
            0.1);
  EXPECT_GT(Matrix::MaxAbsDiff(stream.domains[1].x, stream.domains[2].x),
            0.1);
}

TEST(DataPropertyTest, SplitFractionsRespected) {
  data::SyntheticConfig config;
  config.units_per_domain = 1000;
  config.num_domains = 1;
  config.seed = 7;
  auto stream = data::GenerateSyntheticStream(config);
  Rng rng(8);
  for (double train_frac : {0.5, 0.6, 0.8}) {
    auto split =
        data::SplitDataset(stream.domains[0], &rng, train_frac, 0.1);
    EXPECT_EQ(split.train.num_units(),
              static_cast<int>(train_frac * 1000));
    EXPECT_EQ(split.valid.num_units(), 100);
    EXPECT_EQ(split.train.num_units() + split.valid.num_units() +
                  split.test.num_units(),
              1000);
  }
}

// ---------------------------------------------------------------------------
// CERL configuration space: every supported configuration must run a
// two-domain stream end to end and produce finite estimates.

struct CerlConfigCase {
  bool use_transform;
  bool use_herding;
  bool cosine;
  bool init_from_previous;
  ot::IpmKind ipm;
};

class CerlConfigSpaceTest : public ::testing::TestWithParam<CerlConfigCase> {};

TEST_P(CerlConfigSpaceTest, RunsEndToEnd) {
  const CerlConfigCase& c = GetParam();
  data::SyntheticConfig dc;
  dc.units_per_domain = 300;
  dc.num_domains = 2;
  dc.seed = 55;
  auto stream = data::GenerateSyntheticStream(dc);
  Rng rng(56);
  auto splits = data::SplitStream(stream.domains, &rng);

  core::CerlConfig config;
  config.net.rep_hidden = {12};
  config.net.rep_dim = 6;
  config.net.head_hidden = {8};
  config.net.cosine_normalized_rep = c.cosine;
  config.train.epochs = 8;
  config.train.seed = 57;
  config.train.ipm = c.ipm;
  config.use_transform = c.use_transform;
  config.use_herding = c.use_herding;
  config.init_from_previous = c.init_from_previous;
  config.memory_capacity = 80;

  core::CerlTrainer trainer(config, dc.num_features());
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  for (int d = 0; d < 2; ++d) {
    auto m = trainer.Evaluate(splits[d].test);
    ASSERT_TRUE(std::isfinite(m.pehe));
    ASSERT_TRUE(std::isfinite(m.ate_error));
  }
  if (c.use_transform) {
    EXPECT_FALSE(trainer.memory().empty());
    EXPECT_LE(trainer.memory().size(), 80);
  } else {
    EXPECT_TRUE(trainer.memory().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CerlConfigSpaceTest,
    ::testing::Values(
        CerlConfigCase{true, true, true, true, ot::IpmKind::kWasserstein},
        CerlConfigCase{false, true, true, true, ot::IpmKind::kWasserstein},
        CerlConfigCase{true, false, true, true, ot::IpmKind::kWasserstein},
        CerlConfigCase{true, true, false, true, ot::IpmKind::kWasserstein},
        CerlConfigCase{true, true, true, false, ot::IpmKind::kWasserstein},
        CerlConfigCase{true, true, true, true, ot::IpmKind::kLinearMmd},
        CerlConfigCase{false, false, false, false,
                       ot::IpmKind::kLinearMmd}));

// ---------------------------------------------------------------------------
// NN: a cosine-normalized representation MLP has well-behaved gradients.

TEST(NnPropertyTest, CosineOutputMlpGradCheck) {
  Rng rng(77);
  autodiff::CheckGradients(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 4, 5),
       RandomMatrix(&rng, 1, 5), RandomMatrix(&rng, 5, 3)},
      [](Tape*, const std::vector<Var>& v) {
        using namespace autodiff;  // NOLINT
        // Linear -> elu -> cosine layer (normalize rows x cols) -> sum^2.
        Var h = Elu(AddRowBroadcast(MatMul(v[0], v[1]), v[2]));
        Var cos = MatMul(RowL2Normalize(h), ColL2Normalize(v[3]));
        return Sum(Square(Tanh(cos)));
      },
      2e-5);
}

TEST(NnPropertyTest, DeterministicTrainingForFixedSeed) {
  auto run = []() {
    Rng rng(88);
    nn::MlpConfig config;
    config.dims = {5, 8, 1};
    nn::Mlp mlp(&rng, config);
    nn::Adam opt(mlp.Parameters(), 1e-2);
    Rng data_rng(89);
    Matrix x(32, 5), y(32, 1);
    for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.Normal();
    for (int64_t i = 0; i < y.size(); ++i) y.data()[i] = data_rng.Normal();
    double loss = 0.0;
    for (int step = 0; step < 20; ++step) {
      Tape tape;
      Var out = mlp.Forward(&tape, tape.Constant(x));
      Var l = autodiff::MseLoss(out, tape.Constant(y));
      loss = l.scalar();
      opt.ZeroGrad();
      tape.Backward(l);
      opt.Step();
    }
    return loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace cerl
