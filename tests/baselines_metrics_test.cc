// Tests for the baseline estimators (ridge T-learner, naive ATE) and the
// policy-value metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/baselines.h"
#include "causal/metrics.h"
#include "util/rng.h"

namespace cerl::causal {
namespace {

using data::CausalDataset;
using linalg::Matrix;
using linalg::Vector;

// Linear DGP with confounding: mu0 = 2 x0 - x1, tau = 1 + 3 x2,
// p(T=1) = sigmoid(x0).
CausalDataset LinearDgp(Rng* rng, int n, double noise = 0.05) {
  CausalDataset d;
  const int p = 4;
  d.x = Matrix(n, p);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) d.x(i, j) = rng->Normal();
    d.mu0[i] = 2.0 * d.x(i, 0) - d.x(i, 1);
    d.mu1[i] = d.mu0[i] + 1.0 + 3.0 * d.x(i, 2);
    const double prop = 1.0 / (1.0 + std::exp(-d.x(i, 0)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, noise);
  }
  return d;
}

TEST(RidgeTLearnerTest, RecoversLinearEffectsAlmostExactly) {
  Rng rng(1);
  CausalDataset train = LinearDgp(&rng, 2000);
  CausalDataset test = LinearDgp(&rng, 500);
  RidgeTLearner learner(1e-4);
  ASSERT_TRUE(learner.Fit(train).ok());
  CausalMetrics m = learner.Evaluate(test);
  // The DGP is exactly linear per arm: near-zero PEHE up to noise.
  EXPECT_LT(m.pehe, 0.05);
  EXPECT_LT(m.ate_error, 0.05);
}

TEST(RidgeTLearnerTest, PredictIteIsHeadDifference) {
  Rng rng(2);
  CausalDataset train = LinearDgp(&rng, 500);
  RidgeTLearner learner;
  ASSERT_TRUE(learner.Fit(train).ok());
  Matrix probe(3, 4);
  for (int64_t i = 0; i < probe.size(); ++i) probe.data()[i] = rng.Normal();
  Vector ite = learner.PredictIte(probe);
  Vector y1 = learner.PredictOutcome(probe, 1);
  Vector y0 = learner.PredictOutcome(probe, 0);
  for (size_t i = 0; i < ite.size(); ++i) {
    EXPECT_NEAR(ite[i], y1[i] - y0[i], 1e-12);
  }
}

TEST(RidgeTLearnerTest, RejectsSingleArmData) {
  Rng rng(3);
  CausalDataset d = LinearDgp(&rng, 100);
  std::fill(d.t.begin(), d.t.end(), 1);
  RidgeTLearner learner;
  EXPECT_EQ(learner.Fit(d).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(learner.fitted());
}

TEST(RidgeTLearnerTest, RegularizationHandlesCollinearFeatures) {
  Rng rng(4);
  CausalDataset d = LinearDgp(&rng, 300);
  // Make feature 3 an exact copy of feature 0 (singular gram matrix
  // without the ridge term).
  for (int i = 0; i < d.num_units(); ++i) d.x(i, 3) = d.x(i, 0);
  RidgeTLearner learner(1e-3);
  EXPECT_TRUE(learner.Fit(d).ok());
}

TEST(NaiveAteTest, BiasedUnderConfounding) {
  Rng rng(5);
  CausalDataset d = LinearDgp(&rng, 20000);
  const double naive = NaiveAteEstimate(d);
  const double truth = d.TrueAte();
  // x0 raises both the propensity and the outcome: the naive difference of
  // means overstates the effect by a clear margin.
  EXPECT_GT(naive - truth, 0.5);
}

TEST(NaiveAteTest, UnbiasedUnderRandomization) {
  Rng rng(6);
  CausalDataset d = LinearDgp(&rng, 20000);
  // Re-randomize treatment: the naive estimate becomes consistent.
  for (int i = 0; i < d.num_units(); ++i) {
    d.t[i] = rng.Uniform() < 0.5 ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng.Normal(0, 0.05);
  }
  EXPECT_NEAR(NaiveAteEstimate(d), d.TrueAte(), 0.1);
}

CausalDataset PolicyFixture() {
  CausalDataset d;
  d.x = Matrix(4, 1);
  d.t = {0, 0, 1, 1};
  d.mu0 = {1.0, 1.0, 0.0, 0.0};
  d.mu1 = {2.0, 0.0, 1.0, -1.0};  // ITE: +1, -1, +1, -1
  d.y = {1.0, 1.0, 1.0, -1.0};
  return d;
}

TEST(PolicyMetricsTest, OracleHasZeroRegret) {
  CausalDataset d = PolicyFixture();
  EXPECT_DOUBLE_EQ(PolicyRegret(d, d.TrueIte()), 0.0);
  // Oracle value: treat units 0 and 2 -> (2 + 1 + 1 + 0) / 4.
  EXPECT_DOUBLE_EQ(PolicyValue(d, d.TrueIte()), 1.0);
}

TEST(PolicyMetricsTest, WrongSignPredictionsPayRegret) {
  CausalDataset d = PolicyFixture();
  Vector flipped = d.TrueIte();
  for (double& v : flipped) v = -v;  // Treat exactly the wrong units.
  // Value: units 1,3 treated -> (1 + 0 + 0 - 1) / 4 = 0.
  EXPECT_DOUBLE_EQ(PolicyValue(d, flipped), 0.0);
  EXPECT_DOUBLE_EQ(PolicyRegret(d, flipped), 1.0);
}

TEST(PolicyMetricsTest, RegretNonNegativeProperty) {
  Rng rng(7);
  CausalDataset d = LinearDgp(&rng, 500);
  for (int trial = 0; trial < 20; ++trial) {
    Vector noisy = d.TrueIte();
    for (double& v : noisy) v += rng.Normal(0, 2.0);
    EXPECT_GE(PolicyRegret(d, noisy), -1e-12);
  }
}

TEST(PolicyMetricsTest, ThresholdShiftsDecisions) {
  CausalDataset d = PolicyFixture();
  // With threshold 1.5 nobody is treated under the oracle ITE (max = 1).
  const double value = PolicyValue(d, d.TrueIte(), 1.5);
  EXPECT_DOUBLE_EQ(value, (1.0 + 1.0 + 0.0 + 0.0) / 4.0);
}

TEST(PolicyMetricsTest, BetterIteEstimatesGiveNoWorseRegret) {
  Rng rng(8);
  CausalDataset d = LinearDgp(&rng, 2000);
  Vector small_noise = d.TrueIte();
  Vector big_noise = d.TrueIte();
  for (size_t i = 0; i < small_noise.size(); ++i) {
    const double e = rng.Normal();
    small_noise[i] += 0.1 * e;
    big_noise[i] += 4.0 * e;
  }
  EXPECT_LE(PolicyRegret(d, small_noise), PolicyRegret(d, big_noise) + 1e-9);
}

}  // namespace
}  // namespace cerl::causal
