// Tests for the data layer: dataset containers and splits, the synthetic
// §IV-C generator (variable roles, propensity behaviour, ITE ground truth,
// domain shift), and the topic benchmark (domain assignment per shift
// scenario, outcome/treatment simulation).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/topic_benchmark.h"
#include "linalg/ops.h"
#include "util/rng.h"

namespace cerl::data {
namespace {

CausalDataset TinyDataset() {
  CausalDataset d;
  d.x = linalg::Matrix{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}};
  d.t = {0, 1, 0, 1, 0, 1};
  d.y = {0.0, 1.5, 0.2, 1.7, 0.1, 2.0};
  d.mu0 = {0.0, 0.5, 0.2, 0.7, 0.1, 1.0};
  d.mu1 = {1.0, 1.5, 1.2, 1.7, 1.1, 2.0};
  return d;
}

TEST(DatasetTest, CountsAndIndices) {
  CausalDataset d = TinyDataset();
  EXPECT_EQ(d.num_units(), 6);
  EXPECT_EQ(d.num_treated(), 3);
  EXPECT_EQ(d.num_control(), 3);
  EXPECT_EQ(d.TreatedIndices(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(d.ControlIndices(), (std::vector<int>{0, 2, 4}));
}

TEST(DatasetTest, TrueIteAndAte) {
  CausalDataset d = TinyDataset();
  linalg::Vector ite = d.TrueIte();
  for (double v : ite) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(d.TrueAte(), 1.0);
}

TEST(DatasetTest, SubsetPreservesAlignment) {
  CausalDataset d = TinyDataset();
  CausalDataset s = d.Subset({5, 0});
  EXPECT_EQ(s.num_units(), 2);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 6.0);
  EXPECT_EQ(s.t[0], 1);
  EXPECT_DOUBLE_EQ(s.y[1], 0.0);
  EXPECT_DOUBLE_EQ(s.mu1[0], 2.0);
}

TEST(DatasetTest, SplitIsDisjointAndExhaustive) {
  CausalDataset d = TinyDataset();
  Rng rng(1);
  DataSplit split = SplitDataset(d, &rng, 0.5, 0.25);
  EXPECT_EQ(split.train.num_units(), 3);
  EXPECT_EQ(split.valid.num_units(), 1);
  EXPECT_EQ(split.test.num_units(), 2);
  // Disjoint & exhaustive: x values are unique unit ids in this fixture.
  std::multiset<double> seen;
  for (const auto* part : {&split.train, &split.valid, &split.test}) {
    for (int i = 0; i < part->num_units(); ++i) seen.insert(part->x(i, 0));
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(std::set<double>(seen.begin(), seen.end()).size(), 6u);
}

TEST(DatasetTest, ConcatStacksUnits) {
  CausalDataset d = TinyDataset();
  CausalDataset c = ConcatDatasets({&d, &d});
  EXPECT_EQ(c.num_units(), 12);
  EXPECT_EQ(c.num_features(), 2);
  EXPECT_DOUBLE_EQ(c.x(6, 0), 1.0);
  EXPECT_EQ(c.t[7], 1);
}

SyntheticConfig TestSyntheticConfig(int units = 1500, int domains = 2) {
  SyntheticConfig c;
  c.units_per_domain = units;
  c.num_domains = domains;
  c.seed = 42;
  return c;
}

TEST(SyntheticTest, ShapesAndLayout) {
  SyntheticConfig config = TestSyntheticConfig(200);
  EXPECT_EQ(config.num_features(), 100);
  VariableLayout lay = LayoutOf(config);
  EXPECT_EQ(lay.confounder_begin, 0);
  EXPECT_EQ(lay.confounder_end, 35);
  EXPECT_EQ(lay.instrument_end, 45);
  EXPECT_EQ(lay.irrelevant_end, 65);
  EXPECT_EQ(lay.adjuster_end, 100);

  SyntheticStream stream = GenerateSyntheticStream(config);
  ASSERT_EQ(stream.domains.size(), 2u);
  for (const auto& d : stream.domains) {
    EXPECT_EQ(d.num_units(), 200);
    EXPECT_EQ(d.num_features(), 100);
  }
}

TEST(SyntheticTest, TreatmentEffectIsBoundedSinSquared) {
  SyntheticStream stream = GenerateSyntheticStream(TestSyntheticConfig(800, 1));
  const CausalDataset& d = stream.domains[0];
  linalg::Vector ite = d.TrueIte();
  for (double v : ite) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
  // tau = sin^2 is heterogeneous, not constant.
  EXPECT_GT(linalg::Variance(ite), 1e-3);
  // g = cos^2 bounds mu0 as well.
  for (double v : d.mu0) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(SyntheticTest, BothGroupsPresentAndPropensityMatchesRate) {
  SyntheticStream stream = GenerateSyntheticStream(TestSyntheticConfig(3000, 1));
  const CausalDataset& d = stream.domains[0];
  EXPECT_GT(d.num_treated(), 300);
  EXPECT_GT(d.num_control(), 300);
  EXPECT_NEAR(static_cast<double>(d.num_treated()) / d.num_units(),
              stream.mean_propensity[0], 0.05);
}

TEST(SyntheticTest, FactualOutcomeUsesAssignedArm) {
  SyntheticStream stream = GenerateSyntheticStream(TestSyntheticConfig(500, 1));
  const CausalDataset& d = stream.domains[0];
  // y = mu_t + noise(std 1): residual variance against the factual arm
  // should be near 1, and far smaller than against the wrong arm + effect
  // when effects are large. Check the residual moments only.
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < d.num_units(); ++i) {
    const double resid = d.y[i] - (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]);
    sum += resid;
    sumsq += resid * resid;
  }
  const double mean = sum / d.num_units();
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(sumsq / d.num_units() - mean * mean, 1.0, 0.2);
}

TEST(SyntheticTest, DomainsShiftInMeanVector) {
  SyntheticStream stream = GenerateSyntheticStream(TestSyntheticConfig(2000, 3));
  // Mean vectors are drawn independently per domain: the covariate means
  // must differ noticeably across domains.
  linalg::Vector m0 = linalg::ColumnMeans(stream.domains[0].x);
  linalg::Vector m1 = linalg::ColumnMeans(stream.domains[1].x);
  linalg::Vector m2 = linalg::ColumnMeans(stream.domains[2].x);
  double d01 = 0.0, d12 = 0.0;
  for (size_t j = 0; j < m0.size(); ++j) {
    d01 += (m0[j] - m1[j]) * (m0[j] - m1[j]);
    d12 += (m1[j] - m2[j]) * (m1[j] - m2[j]);
  }
  EXPECT_GT(std::sqrt(d01), 1.0);
  EXPECT_GT(std::sqrt(d12), 1.0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticStream a = GenerateSyntheticStream(TestSyntheticConfig(100, 1));
  SyntheticStream b = GenerateSyntheticStream(TestSyntheticConfig(100, 1));
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(a.domains[0].x, b.domains[0].x), 0.0);
  EXPECT_EQ(a.domains[0].t, b.domains[0].t);
}

TEST(SyntheticTest, InstrumentsPredictTreatmentNotOutcome) {
  // Variable-role check (paper Fig. 2): instruments correlate with T but
  // (given their construction) not with the noiseless outcome mu0;
  // adjusters correlate with outcome, not with T. Use coarse aggregate
  // association |corr| averaged over each block.
  SyntheticConfig config = TestSyntheticConfig(6000, 1);
  SyntheticStream stream = GenerateSyntheticStream(config);
  const CausalDataset& d = stream.domains[0];
  VariableLayout lay = LayoutOf(config);
  linalg::Vector t_vec(d.t.begin(), d.t.end());

  auto block_assoc = [&](int begin, int end, const linalg::Vector& target) {
    double acc = 0.0;
    for (int j = begin; j < end; ++j) {
      acc += std::fabs(linalg::PearsonCorrelation(d.x.ColCopy(j), target));
    }
    return acc / (end - begin);
  };
  const double inst_vs_t =
      block_assoc(lay.instrument_begin, lay.instrument_end, t_vec);
  const double irrel_vs_t =
      block_assoc(lay.irrelevant_begin, lay.irrelevant_end, t_vec);
  const double adj_vs_y = block_assoc(lay.adjuster_begin, lay.adjuster_end,
                                      d.mu0);
  const double irrel_vs_y = block_assoc(lay.irrelevant_begin,
                                        lay.irrelevant_end, d.mu0);
  EXPECT_GT(inst_vs_t, irrel_vs_t);
  EXPECT_GT(adj_vs_y, irrel_vs_y);
}

TopicBenchmarkConfig TinyTopicConfig(DomainShift shift) {
  TopicBenchmarkConfig c;
  c.corpus.num_docs = 400;
  c.corpus.vocab_size = 150;
  c.corpus.num_topics = 8;
  c.corpus.doc_length_mean = 40.0;
  c.lda.num_topics = 8;
  c.lda.iterations = 25;
  c.shift = shift;
  c.seed = 5;
  return c;
}

TEST(TopicBenchmarkTest, ProducesTwoDomainsCoveringAllDocs) {
  TopicBenchmark bench =
      GenerateTopicBenchmark(TinyTopicConfig(DomainShift::kSubstantial));
  ASSERT_EQ(bench.domains.size(), 2u);
  EXPECT_EQ(bench.domains[0].num_units() + bench.domains[1].num_units(), 400);
  EXPECT_GT(bench.domains[0].num_units(), 20);
  EXPECT_GT(bench.domains[1].num_units(), 20);
  for (const auto& d : bench.domains) {
    EXPECT_EQ(d.num_features(), 150);
    d.CheckConsistent();
  }
}

TEST(TopicBenchmarkTest, OutcomeFollowsCentroidSimilarity) {
  TopicBenchmark bench =
      GenerateTopicBenchmark(TinyTopicConfig(DomainShift::kNone));
  // ITE = C * z.zc1 >= 0 (dot of non-negative topic vectors), bounded by C.
  for (const auto& d : bench.domains) {
    linalg::Vector ite = d.TrueIte();
    for (double v : ite) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 60.0 + 1e-9);
    }
  }
}

TEST(TopicBenchmarkTest, SelectionBiasFavorsMobileAffineDocs) {
  TopicBenchmark bench =
      GenerateTopicBenchmark(TinyTopicConfig(DomainShift::kNone));
  // Units with larger ITE (closer to the mobile centroid) should be treated
  // more often: mean ITE among treated > mean ITE among control.
  const CausalDataset all = ConcatDatasets({&bench.domains[0],
                                            &bench.domains[1]});
  linalg::Vector ite = all.TrueIte();
  double treated_sum = 0.0, control_sum = 0.0;
  int nt = 0, nc = 0;
  for (int i = 0; i < all.num_units(); ++i) {
    if (all.t[i] == 1) {
      treated_sum += ite[i];
      ++nt;
    } else {
      control_sum += ite[i];
      ++nc;
    }
  }
  ASSERT_GT(nt, 0);
  ASSERT_GT(nc, 0);
  EXPECT_GT(treated_sum / nt, control_sum / nc);
}

TEST(TopicBenchmarkTest, SubstantialShiftSeparatesFeatureDistributions) {
  TopicBenchmark sub =
      GenerateTopicBenchmark(TinyTopicConfig(DomainShift::kSubstantial));
  TopicBenchmark none =
      GenerateTopicBenchmark(TinyTopicConfig(DomainShift::kNone));
  // Measure domain distance as L2 between mean word-count vectors,
  // normalized by document length; substantial shift must exceed none.
  auto domain_distance = [](const TopicBenchmark& b) {
    linalg::Vector m0 = linalg::ColumnMeans(b.domains[0].x);
    linalg::Vector m1 = linalg::ColumnMeans(b.domains[1].x);
    double s = 0.0;
    for (size_t j = 0; j < m0.size(); ++j) {
      s += (m0[j] - m1[j]) * (m0[j] - m1[j]);
    }
    return std::sqrt(s);
  };
  EXPECT_GT(domain_distance(sub), 2.0 * domain_distance(none));
}

TEST(TopicBenchmarkTest, ParseDomainShiftRoundTrips) {
  EXPECT_EQ(ParseDomainShift("substantial"), DomainShift::kSubstantial);
  EXPECT_EQ(ParseDomainShift("moderate"), DomainShift::kModerate);
  EXPECT_EQ(ParseDomainShift("none"), DomainShift::kNone);
  EXPECT_STREQ(DomainShiftName(DomainShift::kModerate), "moderate");
}

}  // namespace
}  // namespace cerl::data
