// Tests for stream::StreamEngine, the multi-stream CERL ingest engine:
// single-stream bit-identity with the serial CerlTrainer loop, per-stream
// determinism under 4-way concurrency, pre-flight domain validation, and
// result bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/stream_engine.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kFeatures = 8;

// Toy DGP with a controllable covariate mean shift between domains (same
// family as core_test's): nonlinear outcome surface so continual stages do
// real work.
CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  for (int d = 0; d < domains; ++d) {
    stream.push_back(
        data::SplitDataset(ShiftedToy(&rng, 400, shift * d), &rng));
  }
  return stream;
}

CerlConfig FastConfig(uint64_t seed, bool async_validation) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 15;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 15;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.train.async_validation = async_validation;
  c.memory_capacity = 100;
  return c;
}

struct SerialRun {
  std::vector<Vector> ite_per_domain;  // current model on each test split
  Matrix memory_reps;
  std::vector<double> best_valid;
};

SerialRun RunSerial(const CerlConfig& config,
                    const std::vector<DataSplit>& domains) {
  SerialRun out;
  CerlTrainer trainer(config, kFeatures);
  for (const DataSplit& split : domains) {
    causal::TrainStats stats = trainer.ObserveDomain(split);
    out.best_valid.push_back(stats.best_valid_loss);
  }
  for (const DataSplit& split : domains) {
    out.ite_per_domain.push_back(trainer.PredictIte(split.test.x));
  }
  out.memory_reps = trainer.memory().reps();
  return out;
}

void ExpectBitIdentical(const SerialRun& serial, StreamEngine* engine, int id,
                        const std::vector<DataSplit>& domains) {
  const std::vector<DomainResult>& results = engine->results(id);
  ASSERT_EQ(results.size(), domains.size());
  for (size_t d = 0; d < domains.size(); ++d) {
    EXPECT_EQ(results[d].domain_index, static_cast<int>(d));
    EXPECT_EQ(results[d].stats.best_valid_loss, serial.best_valid[d])
        << "stream " << id << " domain " << d;
  }
  CerlTrainer& trainer = engine->trainer(id);
  for (size_t d = 0; d < domains.size(); ++d) {
    const Vector ite = trainer.PredictIte(domains[d].test.x);
    ASSERT_EQ(ite.size(), serial.ite_per_domain[d].size());
    for (size_t i = 0; i < ite.size(); ++i) {
      ASSERT_EQ(ite[i], serial.ite_per_domain[d][i])
          << "stream " << id << " domain " << d << " unit " << i;
    }
  }
  ASSERT_EQ(trainer.memory().reps().rows(), serial.memory_reps.rows());
  EXPECT_EQ(Matrix::MaxAbsDiff(trainer.memory().reps(), serial.memory_reps),
            0.0);
}

TEST(StreamEngineTest, SingleStreamBitIdenticalToSerialLoop) {
  const CerlConfig config = FastConfig(33, /*async_validation=*/false);
  const std::vector<DataSplit> domains = MakeStream(10, 3, 1.0);
  const SerialRun serial = RunSerial(config, domains);

  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("solo", config, kFeatures);
  for (const DataSplit& split : domains) engine.PushDomain(id, split);
  engine.Drain();
  ExpectBitIdentical(serial, &engine, id, domains);
}

TEST(StreamEngineTest, AsyncValidationStreamStillBitIdenticalToSerial) {
  // With async validation on in BOTH modes the engine schedules scoring on
  // workers; restored weights (and thus everything downstream: predictions,
  // memory migration) must not change.
  const CerlConfig config = FastConfig(34, /*async_validation=*/true);
  const std::vector<DataSplit> domains = MakeStream(11, 3, 1.0);
  const SerialRun serial = RunSerial(config, domains);

  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("solo-async", config, kFeatures);
  for (const DataSplit& split : domains) engine.PushDomain(id, split);
  engine.Drain();
  ExpectBitIdentical(serial, &engine, id, domains);
}

TEST(StreamEngineTest, FourConcurrentStreamsAreEachDeterministic) {
  // Four tenants with distinct seeds/shifts run concurrently on four
  // workers; each must produce exactly the results of running it alone.
  const int kStreams = 4;
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  std::vector<SerialRun> serial;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(
        FastConfig(100 + 13 * s, /*async_validation=*/(s % 2) == 1));
    domains.push_back(MakeStream(20 + s, 2, 0.5 + 0.4 * s));
    serial.push_back(RunSerial(configs[s], domains[s]));
  }

  StreamEngineOptions options;
  options.num_workers = 4;
  StreamEngine engine(options);
  std::vector<int> ids;
  for (int s = 0; s < kStreams; ++s) {
    ids.push_back(
        engine.AddStream("tenant-" + std::to_string(s), configs[s],
                         kFeatures));
  }
  // Interleave pushes across streams (arrival order of a real feed).
  for (size_t d = 0; d < 2; ++d) {
    for (int s = 0; s < kStreams; ++s) {
      engine.PushDomain(ids[s], domains[s][d]);
    }
  }
  engine.Drain();
  for (int s = 0; s < kStreams; ++s) {
    ExpectBitIdentical(serial[s], &engine, ids[s], domains[s]);
  }
}

TEST(StreamEngineTest, ValidateDomainRejectsMalformedData) {
  Rng rng(7);
  DataSplit split = data::SplitDataset(ShiftedToy(&rng, 120, 0.0), &rng);
  EXPECT_TRUE(CerlTrainer::ValidateDomain(split, kFeatures).ok());
  // Wrong feature dimension.
  EXPECT_FALSE(CerlTrainer::ValidateDomain(split, kFeatures + 1).ok());
  // Misaligned treatment vector.
  DataSplit bad_t = split;
  bad_t.train.t.pop_back();
  EXPECT_FALSE(CerlTrainer::ValidateDomain(bad_t, kFeatures).ok());
  // Non-binary treatment.
  DataSplit bad_code = split;
  bad_code.train.t[0] = 2;
  EXPECT_FALSE(CerlTrainer::ValidateDomain(bad_code, kFeatures).ok());
  // Non-finite covariate.
  DataSplit bad_x = split;
  bad_x.valid.x(0, 0) = std::nan("");
  EXPECT_FALSE(CerlTrainer::ValidateDomain(bad_x, kFeatures).ok());
  // Non-finite outcome.
  DataSplit bad_y = split;
  bad_y.train.y[3] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(CerlTrainer::ValidateDomain(bad_y, kFeatures).ok());
  // Ground truth is required on the training split (CheckConsistent's
  // contract)...
  DataSplit bad_mu = split;
  bad_mu.train.mu0.clear();
  bad_mu.train.mu1.clear();
  EXPECT_FALSE(CerlTrainer::ValidateDomain(bad_mu, kFeatures).ok());
  // ...but a production test split without counterfactuals is fine.
  DataSplit no_truth = split;
  no_truth.test.mu0.clear();
  no_truth.test.mu1.clear();
  EXPECT_TRUE(CerlTrainer::ValidateDomain(no_truth, kFeatures).ok());
  // Half-present ground truth is a shape bug, not "absent".
  DataSplit half_mu = split;
  half_mu.test.mu0.clear();
  EXPECT_FALSE(CerlTrainer::ValidateDomain(half_mu, kFeatures).ok());
}

TEST(StreamEngineTest, TestSplitWithoutGroundTruthSkipsMetrics) {
  const CerlConfig config = FastConfig(66, /*async_validation=*/false);
  std::vector<DataSplit> domains = MakeStream(13, 2, 1.0);
  for (DataSplit& split : domains) {
    split.test.mu0.clear();  // production domain: no counterfactual truth
    split.test.mu1.clear();
  }
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("no-truth", config, kFeatures);
  for (const DataSplit& split : domains) engine.PushDomain(id, split);
  engine.Drain();
  const std::vector<DomainResult>& results = engine.results(id);
  ASSERT_EQ(results.size(), 2u);
  for (const DomainResult& r : results) {
    EXPECT_GT(r.stats.epochs_run, 0);
    EXPECT_FALSE(r.has_metrics);  // skipped, not aborted
  }
}

TEST(StreamEngineTest, ResultsCarryMetricsAndMemoryStaysBounded) {
  const CerlConfig config = FastConfig(55, /*async_validation=*/true);
  const std::vector<DataSplit> domains = MakeStream(12, 2, 1.5);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("metrics", config, kFeatures);
  for (const DataSplit& split : domains) engine.PushDomain(id, split);
  engine.Drain();

  const std::vector<DomainResult>& results = engine.results(id);
  ASSERT_EQ(results.size(), 2u);
  for (const DomainResult& r : results) {
    EXPECT_GT(r.stats.epochs_run, 0);
    ASSERT_TRUE(r.has_metrics);
    EXPECT_TRUE(std::isfinite(r.metrics.pehe));
  }
  EXPECT_LE(engine.trainer(id).memory().size(), config.memory_capacity);
  EXPECT_EQ(engine.name(id), "metrics");
}

// --- Typed error plane / admission control / health ----------------------

TEST(StreamEngineTest, DrainOnZeroStreamEngineReturnsImmediately) {
  StreamEngineOptions options;
  options.num_workers = 1;
  StreamEngine engine(options);
  engine.Drain();  // no streams: must not block or crash
  EXPECT_EQ(engine.num_streams(), 0);
  // DrainStream on an id that does not exist is a typed error, not a CHECK.
  EXPECT_EQ(engine.DrainStream(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.DrainStream(-1).code(), StatusCode::kNotFound);
}

TEST(StreamEngineTest, PushToUnknownStreamIsTypedReject) {
  StreamEngineOptions options;
  options.num_workers = 1;
  StreamEngine engine(options);
  Rng rng(3);
  DataSplit split = data::SplitDataset(ShiftedToy(&rng, 80, 0.0), &rng);
  EXPECT_EQ(engine.PushDomain(5, split).code(), StatusCode::kNotFound);
}

TEST(StreamEngineTest, ConcurrentDrainStreamFromTwoThreads) {
  const CerlConfig config = FastConfig(71, /*async_validation=*/false);
  const std::vector<DataSplit> domains = MakeStream(17, 2, 1.0);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("dual-drain", config, kFeatures);
  for (const DataSplit& split : domains) {
    ASSERT_TRUE(engine.PushDomain(id, split).ok());
  }
  Status a, b;
  std::thread t1([&] { a = engine.DrainStream(id); });
  std::thread t2([&] { b = engine.DrainStream(id); });
  t1.join();
  t2.join();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(engine.results(id).size(), domains.size());
}

TEST(StreamEngineTest, BoundedQueueShedsLoadWithResourceExhausted) {
  const CerlConfig config = FastConfig(72, /*async_validation=*/false);
  StreamEngineOptions options;
  options.num_workers = 1;
  options.max_queued_domains = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("bounded", config, kFeatures);
  Rng rng(19);
  // One domain dispatches immediately; two sit in the queue; the fourth
  // (and later) pushes must shed with the typed reject until the queue
  // drains. Pushing under a 1-worker engine keeps the first domain training
  // long enough for the bound to be observable deterministically: dispatch
  // happens on push, so after 3 pushes the queue holds exactly 2.
  std::vector<DataSplit> domains;
  for (int i = 0; i < 4; ++i) {
    domains.push_back(data::SplitDataset(ShiftedToy(&rng, 200, 0.3 * i), &rng));
  }
  ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());  // -> in flight
  ASSERT_TRUE(engine.PushDomain(id, domains[1]).ok());  // queued (1/2)
  ASSERT_TRUE(engine.PushDomain(id, domains[2]).ok());  // queued (2/2)
  Status shed = engine.PushDomain(id, domains[3]);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  engine.Drain();
  // The shed push left no trace: exactly the three admitted domains ran.
  EXPECT_EQ(engine.results(id).size(), 3u);
  for (const DomainResult& r : engine.results(id)) {
    EXPECT_TRUE(r.status.ok());
  }
  // Queue drained: admission works again.
  EXPECT_TRUE(engine.PushDomain(id, domains[3]).ok());
  engine.Drain();
  EXPECT_EQ(engine.results(id).size(), 4u);
}

TEST(StreamEngineTest, MalformedDomainIsDroppedNotAborted) {
  const CerlConfig config = FastConfig(73, /*async_validation=*/false);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("bad-data", config, kFeatures);
  Rng rng(23);
  DataSplit good = data::SplitDataset(ShiftedToy(&rng, 200, 0.0), &rng);
  DataSplit bad = good;
  bad.train.x(0, 0) = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(engine.PushDomain(id, bad).ok());   // admitted...
  ASSERT_TRUE(engine.PushDomain(id, good).ok());
  engine.Drain();
  // ...but dropped by the pipeline with the validation error; the stream
  // then served the good domain normally.
  const std::vector<DomainResult>& results = engine.results(id);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[0].attempts, 1);  // data errors are never retried
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_GT(results[1].stats.epochs_run, 0);
  EXPECT_EQ(engine.health(id), StreamHealth::kHealthy);  // recovered
  EXPECT_EQ(engine.failed_domains(id), 1);
  EXPECT_EQ(engine.consecutive_failures(id), 0);
}

TEST(StreamEngineTest, RepeatedBadDomainsQuarantineAndPushGetsTypedReject) {
  const CerlConfig config = FastConfig(74, /*async_validation=*/false);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.quarantine_after_failures = 2;
  StreamEngine engine(options);
  const int bad_id = engine.AddStream("poisoned", config, kFeatures);
  const int good_id = engine.AddStream("bystander", config, kFeatures);
  Rng rng(29);
  DataSplit good = data::SplitDataset(ShiftedToy(&rng, 200, 0.0), &rng);
  DataSplit bad = good;
  bad.train.x(0, 0) = std::numeric_limits<double>::quiet_NaN();

  ASSERT_TRUE(engine.PushDomain(bad_id, bad).ok());
  ASSERT_TRUE(engine.PushDomain(bad_id, bad).ok());  // second strike
  ASSERT_TRUE(engine.PushDomain(good_id, good).ok());
  engine.Drain();

  EXPECT_EQ(engine.health(bad_id), StreamHealth::kQuarantined);
  EXPECT_EQ(engine.consecutive_failures(bad_id), 2);
  // A quarantined stream sheds new pushes with the typed reject...
  Status rejected = engine.PushDomain(bad_id, good);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  // ...while other streams keep serving.
  EXPECT_EQ(engine.health(good_id), StreamHealth::kHealthy);
  ASSERT_EQ(engine.results(good_id).size(), 1u);
  EXPECT_TRUE(engine.results(good_id)[0].status.ok());
}

}  // namespace
}  // namespace cerl::stream
