// Tests for the statistics substrate (MVN sampling, normal CDF) and the
// Hardin-Garcia-Golan correlation-matrix generator (Eq. 12 hub sequence,
// Toeplitz structure, positive definiteness across a parameter sweep,
// noise that preserves PD and the unit diagonal).
#include <gtest/gtest.h>

#include <cmath>

#include "corrgen/hub_correlation.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "stats/mvn.h"
#include "stats/normal_cdf.h"
#include "util/rng.h"

namespace cerl {
namespace {

using corrgen::HubBlockSpec;
using linalg::Matrix;
using linalg::Vector;

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(stats::NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(stats::NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(stats::NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_GT(stats::NormalCdf(8.0), 1.0 - 1e-12);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999}) {
    EXPECT_NEAR(stats::NormalCdf(stats::NormalQuantile(p)), p, 1e-6);
  }
}

TEST(MvnTest, RejectsBadInputs) {
  Matrix not_pd = {{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(stats::MultivariateNormal::Create({0.0, 0.0}, not_pd).ok());
  EXPECT_FALSE(
      stats::MultivariateNormal::Create({0.0}, Matrix::Identity(2)).ok());
}

TEST(MvnTest, SampleMomentsMatchTarget) {
  Matrix cov = {{2.0, 0.6, 0.0}, {0.6, 1.0, -0.3}, {0.0, -0.3, 0.5}};
  Vector mean = {1.0, -2.0, 0.5};
  auto mvn = stats::MultivariateNormal::Create(mean, cov);
  ASSERT_TRUE(mvn.ok());
  Rng rng(31);
  Matrix x = mvn.value().SampleMatrix(&rng, 20000);
  Vector sample_mean = linalg::ColumnMeans(x);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(sample_mean[j], mean[j], 0.05);
  Matrix sample_cov = linalg::SampleCovariance(x);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(sample_cov(i, j), cov(i, j), 0.08);
    }
  }
}

TEST(HubSequenceTest, MatchesEq12Endpoints) {
  HubBlockSpec spec;
  spec.size = 10;
  spec.rho_max = 0.8;
  spec.rho_min = 0.2;
  spec.gamma = 1.0;
  auto rho = corrgen::HubCorrelationSequence(spec);
  ASSERT_EQ(rho.size(), 9u);
  EXPECT_NEAR(rho.front(), 0.8, 1e-12);  // i = 2 -> rho_max
  EXPECT_NEAR(rho.back(), 0.2, 1e-12);   // i = d -> rho_min
  // Linear decay for gamma = 1.
  EXPECT_NEAR(rho[4], 0.8 - (4.0 / 8.0) * 0.6, 1e-12);
  // Monotone non-increasing.
  for (size_t i = 1; i < rho.size(); ++i) EXPECT_LE(rho[i], rho[i - 1] + 1e-12);
}

TEST(HubSequenceTest, GammaControlsDecayRate) {
  HubBlockSpec fast;
  fast.size = 10;
  fast.gamma = 0.5;  // gamma < 1: early drop
  HubBlockSpec slow = fast;
  slow.gamma = 2.0;  // gamma > 1: stays high longer
  auto rho_fast = corrgen::HubCorrelationSequence(fast);
  auto rho_slow = corrgen::HubCorrelationSequence(slow);
  for (size_t i = 1; i + 1 < rho_fast.size(); ++i) {
    EXPECT_LT(rho_fast[i], rho_slow[i]);
  }
}

TEST(HubToeplitzTest, StructureAndSymmetry) {
  HubBlockSpec spec;
  spec.size = 6;
  spec.rho_max = 0.7;
  spec.rho_min = 0.1;
  Matrix block = corrgen::HubToeplitzBlock(spec);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(block(i, i), 1.0);
  // Toeplitz: constant along diagonals.
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(block(i, i + 1), block(0, 1));
    EXPECT_DOUBLE_EQ(block(i + 1, i), block(0, 1));
  }
  EXPECT_DOUBLE_EQ(block(0, 5), 0.1);
}

TEST(BlockDiagonalTest, ZeroAcrossTypes) {
  std::vector<HubBlockSpec> specs(2);
  specs[0].size = 3;
  specs[1].size = 4;
  Matrix r = corrgen::BlockDiagonalCorrelation(specs);
  ASSERT_EQ(r.rows(), 7);
  for (int i = 0; i < 3; ++i) {
    for (int j = 3; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(r(i, j), 0.0);
      EXPECT_DOUBLE_EQ(r(j, i), 0.0);
    }
  }
}

struct CorrCase {
  double rho_max, rho_min, gamma, noise_fraction;
};

class CorrGenParamTest : public ::testing::TestWithParam<CorrCase> {};

TEST_P(CorrGenParamTest, GeneratesValidCorrelationMatrix) {
  const CorrCase& c = GetParam();
  std::vector<HubBlockSpec> specs(4);
  const int sizes[] = {35, 10, 20, 35};  // the paper's C/Z/I/A block sizes
  for (int i = 0; i < 4; ++i) {
    specs[i].size = sizes[i];
    specs[i].rho_max = c.rho_max;
    specs[i].rho_min = c.rho_min;
    specs[i].gamma = c.gamma;
  }
  Rng rng(static_cast<uint64_t>(c.rho_max * 1000 + c.gamma * 10));
  auto r = corrgen::GenerateCorrelationMatrix(specs, c.noise_fraction, 50,
                                              &rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Matrix& m = r.value();
  ASSERT_EQ(m.rows(), 100);
  // Unit diagonal, symmetry, |corr| <= 1, and positive definiteness.
  for (int i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(m(i, i), 1.0, 1e-12);
    for (int j = 0; j < m.cols(); ++j) {
      EXPECT_NEAR(m(i, j), m(j, i), 1e-12);
      ASSERT_LE(std::fabs(m(i, j)), 1.0 + 1e-9);
    }
  }
  EXPECT_TRUE(linalg::IsPositiveDefinite(m));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorrGenParamTest,
    ::testing::Values(CorrCase{0.7, 0.1, 1.0, 0.0},
                      CorrCase{0.7, 0.1, 1.0, 0.5},
                      CorrCase{0.9, 0.05, 0.5, 0.5},
                      CorrCase{0.55, 0.25, 2.0, 0.9},
                      CorrCase{0.85, 0.2, 1.5, 0.25}));

TEST(CrossTypeNoiseTest, AddsNonZeroCrossCorrelation) {
  std::vector<HubBlockSpec> specs(2);
  specs[0].size = 5;
  specs[1].size = 5;
  Matrix base = corrgen::BlockDiagonalCorrelation(specs);
  Rng rng(77);
  auto noised = corrgen::AddCrossTypeNoise(base, 0.5, 20, &rng);
  ASSERT_TRUE(noised.ok());
  double max_cross = 0.0;
  for (int i = 0; i < 5; ++i) {
    for (int j = 5; j < 10; ++j) {
      max_cross = std::max(max_cross, std::fabs(noised.value()(i, j)));
    }
  }
  EXPECT_GT(max_cross, 1e-4);
}

TEST(CrossTypeNoiseTest, NoiseBoundedBySmallestEigenvalue) {
  std::vector<HubBlockSpec> specs(2);
  specs[0].size = 8;
  specs[1].size = 8;
  Matrix base = corrgen::BlockDiagonalCorrelation(specs);
  auto base_min = linalg::MinEigenvalue(base);
  ASSERT_TRUE(base_min.ok());
  Rng rng(78);
  auto noised = corrgen::AddCrossTypeNoise(base, 0.9, 4, &rng);
  ASSERT_TRUE(noised.ok());
  auto noised_min = linalg::MinEigenvalue(noised.value());
  ASSERT_TRUE(noised_min.ok());
  // PD preserved: lambda_min(R + eps(U^T U - I)) >= lambda_min(R) - eps > 0.
  EXPECT_GT(noised_min.value(), 0.0);
}

TEST(CrossTypeNoiseTest, RejectsBadFraction) {
  Matrix eye = Matrix::Identity(4);
  Rng rng(79);
  EXPECT_FALSE(corrgen::AddCrossTypeNoise(eye, 1.0, 4, &rng).ok());
  EXPECT_FALSE(corrgen::AddCrossTypeNoise(eye, -0.1, 4, &rng).ok());
}

TEST(CorrelationToCovarianceTest, ScalesBySds) {
  Matrix corr = {{1.0, 0.5}, {0.5, 1.0}};
  Matrix cov = corrgen::CorrelationToCovariance(corr, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(cov(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 3.0);
}

TEST(EndToEndTest, SampledDataMatchesGeneratedCorrelation) {
  // Sample from a generated Sigma and verify the empirical correlation of
  // the hub pair is close to the specified rho_max.
  std::vector<HubBlockSpec> specs(1);
  specs[0].size = 6;
  specs[0].rho_max = 0.7;
  specs[0].rho_min = 0.3;
  Rng rng(80);
  auto corr = corrgen::GenerateCorrelationMatrix(specs, 0.0, 10, &rng);
  ASSERT_TRUE(corr.ok());
  auto mvn = stats::MultivariateNormal::Create(Vector(6, 0.0), corr.value());
  ASSERT_TRUE(mvn.ok());
  Matrix x = mvn.value().SampleMatrix(&rng, 20000);
  Matrix sample_corr = linalg::SampleCorrelation(x);
  EXPECT_NEAR(sample_corr(0, 1), 0.7, 0.03);
}

}  // namespace
}  // namespace cerl
