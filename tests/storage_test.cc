// Unit tests for the paged storage layer (src/storage/): DiskManager page
// allocation / free list / superblock persistence, BufferPool pinning and
// LRU eviction, and TenantStore blob chains with checksum verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/tenant_store.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/status.h"

namespace cerl::storage {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string PatternPage(char seed) {
  std::string page(kPageSize, '\0');
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<char>((seed + i) & 0xFF);
  }
  return page;
}

// --- DiskManager ----------------------------------------------------------

TEST(DiskManagerTest, AllocateWriteReadRoundTrip) {
  const std::string path = TempPath("dm_roundtrip.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DiskManager& dm = *opened.value();
  EXPECT_EQ(dm.page_count(), 1u);  // superblock only

  auto p1 = dm.AllocatePage();
  auto p2 = dm.AllocatePage();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(p1.value(), p2.value());
  EXPECT_NE(p1.value(), kInvalidPageId);
  EXPECT_EQ(dm.page_count(), 3u);

  const std::string a = PatternPage(3), b = PatternPage(11);
  ASSERT_TRUE(dm.WritePage(p1.value(), a.data()).ok());
  ASSERT_TRUE(dm.WritePage(p2.value(), b.data()).ok());
  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(dm.ReadPage(p1.value(), buf.data()).ok());
  EXPECT_EQ(buf, a);
  ASSERT_TRUE(dm.ReadPage(p2.value(), buf.data()).ok());
  EXPECT_EQ(buf, b);
}

TEST(DiskManagerTest, FreeListReusesPagesBeforeGrowing) {
  const std::string path = TempPath("dm_freelist.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager& dm = *opened.value();

  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto p = dm.AllocatePage();
    ASSERT_TRUE(p.ok());
    ids.push_back(p.value());
  }
  const uint32_t grown = dm.page_count();
  ASSERT_TRUE(dm.FreePage(ids[1]).ok());
  ASSERT_TRUE(dm.FreePage(ids[3]).ok());
  EXPECT_EQ(dm.free_pages(), 2u);

  // The next two allocations pop the free list; the file does not grow.
  auto r1 = dm.AllocatePage();
  auto r2 = dm.AllocatePage();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(dm.page_count(), grown);
  EXPECT_EQ(dm.free_pages(), 0u);
  std::vector<PageId> reused = {r1.value(), r2.value()};
  std::sort(reused.begin(), reused.end());
  EXPECT_EQ(reused, (std::vector<PageId>{ids[1], ids[3]}));
}

TEST(DiskManagerTest, FreePageRejectsInvalidIds) {
  const std::string path = TempPath("dm_badfree.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager& dm = *opened.value();
  EXPECT_EQ(dm.FreePage(kInvalidPageId).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dm.FreePage(999).code(), StatusCode::kInvalidArgument);
  std::string buf(kPageSize, '\0');
  EXPECT_EQ(dm.ReadPage(999, buf.data()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dm.WritePage(kInvalidPageId, buf.data()).code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskManagerTest, FlushPersistsAllocationStateAcrossReopen) {
  const std::string path = TempPath("dm_reopen.store");
  PageId kept = kInvalidPageId;
  const std::string payload = PatternPage(42);
  {
    auto opened = DiskManager::Open(path);
    ASSERT_TRUE(opened.ok());
    DiskManager& dm = *opened.value();
    auto p1 = dm.AllocatePage();
    auto p2 = dm.AllocatePage();
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    kept = p1.value();
    ASSERT_TRUE(dm.WritePage(kept, payload.data()).ok());
    ASSERT_TRUE(dm.FreePage(p2.value()).ok());
    ASSERT_TRUE(dm.Flush().ok());
  }
  auto reopened = DiskManager::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  DiskManager& dm = *reopened.value();
  EXPECT_EQ(dm.page_count(), 3u);
  EXPECT_EQ(dm.free_pages(), 1u);
  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(dm.ReadPage(kept, buf.data()).ok());
  EXPECT_EQ(buf, payload);
  // The freed page comes back before the file grows.
  auto r = dm.AllocatePage();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dm.page_count(), 3u);
}

TEST(DiskManagerTest, CorruptSuperblockIsCleanError) {
  const std::string path = TempPath("dm_corrupt.store");
  {
    auto opened = DiskManager::Open(path);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string bytes = std::move(raw).value();
  ASSERT_GE(bytes.size(), kPageSize);
  bytes[0] ^= 0x5A;  // break the magic
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto reopened = DiskManager::Open(path);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIoError);
}

// --- BufferPool -----------------------------------------------------------

TEST(BufferPoolTest, FetchHitsResidentPages) {
  const std::string path = TempPath("bp_hits.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  BufferPool pool(opened.value().get(), 4);

  PageId id = kInvalidPageId;
  {
    auto created = pool.Create();
    ASSERT_TRUE(created.ok());
    id = created.value().id();
    std::memcpy(created.value().data(), "hello", 5);
    created.value().MarkDirty();
  }
  for (int i = 0; i < 3; ++i) {
    auto fetched = pool.Fetch(id);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(std::memcmp(fetched.value().data(), "hello", 5), 0);
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 0u);  // page was created resident
  EXPECT_GE(stats.hits, 3u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  const std::string path = TempPath("bp_evict.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager* dm = opened.value().get();
  BufferPool pool(dm, 2);  // two frames force eviction on the third page

  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto created = pool.Create();
    ASSERT_TRUE(created.ok());
    const std::string payload = PatternPage(static_cast<char>(i));
    std::memcpy(created.value().data(), payload.data(), kPageSize);
    created.value().MarkDirty();
    ids.push_back(created.value().id());
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_GE(stats.writebacks, 1u);
  // Every page reads back its payload — evicted ones from disk.
  for (int i = 0; i < 3; ++i) {
    auto fetched = pool.Fetch(ids[i]);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(std::memcmp(fetched.value().data(),
                          PatternPage(static_cast<char>(i)).data(), kPageSize),
              0)
        << "page " << i;
  }
}

TEST(BufferPoolTest, PinnedPagesSurviveAndExhaustTheFrameTable) {
  const std::string path = TempPath("bp_pins.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  BufferPool pool(opened.value().get(), 2);

  auto a = pool.Create();
  auto b = pool.Create();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::memcpy(a.value().data(), "pinned-a", 8);

  // Both frames are pinned: a third pin must fail, not block or evict.
  auto c = pool.Create();
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  auto f = pool.Fetch(a.value().id());
  ASSERT_TRUE(f.ok());  // re-pinning a resident page needs no new frame
  EXPECT_EQ(std::memcmp(f.value().data(), "pinned-a", 8), 0);
  f.value().Release();

  // Releasing a pin frees its frame for the next create.
  b.value().Release();
  auto d = pool.Create();
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  // The still-pinned page kept its bytes through the eviction traffic.
  EXPECT_EQ(std::memcmp(a.value().data(), "pinned-a", 8), 0);
}

TEST(BufferPoolTest, DiscardDropsCachedImageWithoutWriteback) {
  const std::string path = TempPath("bp_discard.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager* dm = opened.value().get();
  BufferPool pool(dm, 4);

  PageId id = kInvalidPageId;
  {
    auto created = pool.Create();
    ASSERT_TRUE(created.ok());
    id = created.value().id();
    const std::string payload = PatternPage(7);
    std::memcpy(created.value().data(), payload.data(), kPageSize);
    created.value().MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  {
    // Scribble on the cached image, then discard it un-flushed.
    auto fetched = pool.Fetch(id);
    ASSERT_TRUE(fetched.ok());
    std::memset(fetched.value().data(), 0, kPageSize);
    fetched.value().MarkDirty();
  }
  pool.Discard(id);
  // The on-disk image is the flushed payload, not the discarded scribble.
  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(dm->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(buf, PatternPage(7));
}

// --- TenantStore ----------------------------------------------------------

std::string RandomBlob(uint64_t seed, size_t size) {
  Rng rng(seed);
  std::string blob(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    blob[i] = static_cast<char>(rng.UniformInt(256));
  }
  return blob;
}

TEST(TenantStoreTest, PutGetRoundTripsAcrossBlobSizes) {
  const std::string path = TempPath("ts_roundtrip.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  BufferPool pool(opened.value().get(), 8);
  TenantStore store(&pool);

  // Empty, sub-page, exactly-one-page payload, and a multi-page chain.
  const std::vector<size_t> sizes = {0, 100, kPageSize - 20, kPageSize,
                                     3 * kPageSize + 17};
  for (size_t i = 0; i < sizes.size(); ++i) {
    const std::string blob = RandomBlob(100 + i, sizes[i]);
    ASSERT_TRUE(store.Put(static_cast<int64_t>(i), blob).ok()) << sizes[i];
  }
  EXPECT_EQ(store.num_blobs(), sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto got = store.Get(static_cast<int64_t>(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), RandomBlob(100 + i, sizes[i])) << sizes[i];
  }
}

TEST(TenantStoreTest, ReplaceFreesTheOldChain) {
  const std::string path = TempPath("ts_replace.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager* dm = opened.value().get();
  BufferPool pool(dm, 8);
  TenantStore store(&pool);

  ASSERT_TRUE(store.Put(1, RandomBlob(1, 4 * kPageSize)).ok());
  const uint32_t pages_after_big = dm->page_count();
  // A smaller replacement frees the big chain's pages; a follow-up big blob
  // reuses them instead of growing the file.
  ASSERT_TRUE(store.Put(1, RandomBlob(2, 64)).ok());
  ASSERT_TRUE(store.Put(1, RandomBlob(3, 4 * kPageSize)).ok());
  EXPECT_EQ(dm->page_count(), pages_after_big);
  auto got = store.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), RandomBlob(3, 4 * kPageSize));
  EXPECT_EQ(store.num_blobs(), 1u);
}

TEST(TenantStoreTest, EraseRemovesTheKeyAndFreesPages) {
  const std::string path = TempPath("ts_erase.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  DiskManager* dm = opened.value().get();
  BufferPool pool(dm, 8);
  TenantStore store(&pool);

  ASSERT_TRUE(store.Put(7, RandomBlob(7, 2 * kPageSize)).ok());
  EXPECT_TRUE(store.Contains(7));
  EXPECT_GT(store.stored_bytes(), 0u);
  ASSERT_TRUE(store.Erase(7).ok());
  EXPECT_FALSE(store.Contains(7));
  EXPECT_EQ(store.num_blobs(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.Get(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Erase(7).code(), StatusCode::kNotFound);
  EXPECT_GE(dm->free_pages(), 2u);
}

TEST(TenantStoreTest, CorruptedChainIsACleanIoError) {
  const std::string path = TempPath("ts_corrupt.store");
  auto opened = DiskManager::Open(path);
  ASSERT_TRUE(opened.ok());
  BufferPool pool(opened.value().get(), 8);
  TenantStore store(&pool);

  // First Put on a fresh store allocates page 1 as the chain head.
  ASSERT_TRUE(store.Put(1, RandomBlob(9, 300)).ok());
  {
    auto head = pool.Fetch(1);
    ASSERT_TRUE(head.ok());
    head.value().data()[64] ^= 0x1;  // flip one payload bit
    head.value().MarkDirty();
  }
  auto got = store.Get(1);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cerl::storage
