// Tests for the LDA substrate: corpus containers, the generative process
// (shape, document peakedness), and the collapsed Gibbs trainer (valid
// distributions, determinism, topic-structure recovery on a corpus with
// well-separated ground-truth topics, fold-in inference).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "topics/corpus.h"
#include "topics/lda_generative.h"
#include "topics/lda_gibbs.h"
#include "util/rng.h"

namespace cerl::topics {
namespace {

TEST(CorpusTest, CountMatrixMatchesTokens) {
  Corpus corpus;
  corpus.vocab_size = 4;
  corpus.docs.push_back({{0, 0, 2}});
  corpus.docs.push_back({{3}});
  linalg::Matrix counts = corpus.ToCountMatrix();
  EXPECT_DOUBLE_EQ(counts(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(counts(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(counts(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(counts(1, 3), 1.0);
  EXPECT_EQ(corpus.num_tokens(), 4);
}

GenerativeLdaConfig SmallConfig() {
  GenerativeLdaConfig c;
  c.num_docs = 200;
  c.vocab_size = 120;
  c.num_topics = 6;
  c.doc_length_mean = 50.0;
  c.alpha = 0.05;  // peaked documents
  c.beta = 0.02;   // distinct topics
  return c;
}

TEST(GenerativeTest, ProducesRequestedShape) {
  Rng rng(1);
  auto gen = GenerateLdaCorpus(SmallConfig(), &rng);
  EXPECT_EQ(gen.corpus.num_docs(), 200);
  EXPECT_EQ(gen.corpus.vocab_size, 120);
  EXPECT_EQ(gen.doc_topic.rows(), 200);
  EXPECT_EQ(gen.doc_topic.cols(), 6);
  EXPECT_EQ(gen.topic_word.rows(), 6);
  for (const auto& doc : gen.corpus.docs) {
    EXPECT_GE(doc.size(), 10);
    for (int w : doc.tokens) EXPECT_TRUE(w >= 0 && w < 120);
  }
}

TEST(GenerativeTest, GroundTruthDistributionsNormalized) {
  Rng rng(2);
  auto gen = GenerateLdaCorpus(SmallConfig(), &rng);
  for (int d = 0; d < gen.doc_topic.rows(); ++d) {
    double s = 0.0;
    for (int k = 0; k < gen.doc_topic.cols(); ++k) s += gen.doc_topic(d, k);
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
  for (int k = 0; k < gen.topic_word.rows(); ++k) {
    double s = 0.0;
    for (int w = 0; w < gen.topic_word.cols(); ++w) s += gen.topic_word(k, w);
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(GenerativeTest, DominantTopicMatchesArgmax) {
  Rng rng(3);
  auto gen = GenerateLdaCorpus(SmallConfig(), &rng);
  for (int d = 0; d < 50; ++d) {
    const double* row = gen.doc_topic.row(d);
    const int argmax = static_cast<int>(
        std::max_element(row, row + gen.doc_topic.cols()) - row);
    EXPECT_EQ(gen.dominant_topic[d], argmax);
  }
}

TEST(GibbsTest, DistributionsAreValid) {
  Rng rng(4);
  auto gen = GenerateLdaCorpus(SmallConfig(), &rng);
  LdaGibbsConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  LdaModel model = TrainLdaGibbs(gen.corpus, config, &rng);
  for (int d = 0; d < model.doc_topic().rows(); ++d) {
    double s = 0.0;
    for (int k = 0; k < 6; ++k) {
      const double v = model.doc_topic()(d, k);
      ASSERT_GE(v, 0.0);
      s += v;
    }
    ASSERT_NEAR(s, 1.0, 1e-9);
  }
  for (int k = 0; k < 6; ++k) {
    double s = 0.0;
    for (int w = 0; w < model.vocab_size(); ++w) s += model.topic_word()(k, w);
    ASSERT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(GibbsTest, DeterministicForSeed) {
  Rng gen_rng(5);
  auto gen = GenerateLdaCorpus(SmallConfig(), &gen_rng);
  LdaGibbsConfig config;
  config.num_topics = 6;
  config.iterations = 20;
  Rng a(99), b(99);
  LdaModel ma = TrainLdaGibbs(gen.corpus, config, &a);
  LdaModel mb = TrainLdaGibbs(gen.corpus, config, &b);
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(ma.doc_topic(), mb.doc_topic()), 0.0);
}

// Builds a corpus with two completely disjoint vocabularies; Gibbs must
// separate the documents into (at least) two distinct dominant topics.
TEST(GibbsTest, RecoversDisjointTopicStructure) {
  Corpus corpus;
  corpus.vocab_size = 40;
  Rng rng(6);
  for (int d = 0; d < 60; ++d) {
    Document doc;
    const bool first_half = d < 30;
    for (int i = 0; i < 40; ++i) {
      const int w = static_cast<int>(rng.UniformInt(20));
      doc.tokens.push_back(first_half ? w : 20 + w);
    }
    corpus.docs.push_back(std::move(doc));
  }
  LdaGibbsConfig config;
  config.num_topics = 2;
  config.iterations = 80;
  LdaModel model = TrainLdaGibbs(corpus, config, &rng);
  auto dominant = model.DominantTopics();
  // All docs in each group share a dominant topic; the groups differ.
  std::set<int> group_a(dominant.begin(), dominant.begin() + 30);
  std::set<int> group_b(dominant.begin() + 30, dominant.end());
  EXPECT_EQ(group_a.size(), 1u);
  EXPECT_EQ(group_b.size(), 1u);
  EXPECT_NE(*group_a.begin(), *group_b.begin());
}

TEST(GibbsTest, InferDocTopicsMatchesTrainingDomain) {
  Corpus corpus;
  corpus.vocab_size = 20;
  Rng rng(7);
  for (int d = 0; d < 40; ++d) {
    Document doc;
    for (int i = 0; i < 30; ++i) {
      const int w = static_cast<int>(rng.UniformInt(10));
      doc.tokens.push_back(d < 20 ? w : 10 + w);
    }
    corpus.docs.push_back(std::move(doc));
  }
  LdaGibbsConfig config;
  config.num_topics = 2;
  config.iterations = 60;
  LdaModel model = TrainLdaGibbs(corpus, config, &rng);

  // A fresh document drawn from the first vocabulary half should infer the
  // same dominant topic as the training docs of that half.
  Document fresh;
  for (int i = 0; i < 30; ++i) {
    fresh.tokens.push_back(static_cast<int>(rng.UniformInt(10)));
  }
  linalg::Vector theta = model.InferDocTopics(fresh, &rng, 40);
  double sum = 0.0;
  for (double v : theta) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const int inferred = static_cast<int>(
      std::max_element(theta.begin(), theta.end()) - theta.begin());
  EXPECT_EQ(inferred, model.DominantTopics()[0]);
}

TEST(GibbsTest, TrainedModelBeatsUniformPerplexity) {
  Rng rng(9);
  auto gen = GenerateLdaCorpus(SmallConfig(), &rng);
  LdaGibbsConfig config;
  config.num_topics = 6;
  config.iterations = 40;
  LdaModel model = TrainLdaGibbs(gen.corpus, config, &rng);
  const double perplexity =
      model.Perplexity(gen.corpus, model.doc_topic());
  // A uniform model scores ~vocab_size (120); a trained topic model on a
  // peaked-topic corpus must do much better.
  EXPECT_LT(perplexity, 80.0);
  EXPECT_GT(perplexity, 1.0);
}

TEST(GibbsTest, MoreTrainingDoesNotWorsenPerplexity) {
  Rng corpus_rng(10);
  auto gen = GenerateLdaCorpus(SmallConfig(), &corpus_rng);
  auto run = [&](int iterations) {
    Rng rng(11);
    LdaGibbsConfig config;
    config.num_topics = 6;
    config.iterations = iterations;
    LdaModel model = TrainLdaGibbs(gen.corpus, config, &rng);
    return model.Perplexity(gen.corpus, model.doc_topic());
  };
  // Gibbs mixes toward the posterior: 40 sweeps should fit the corpus
  // clearly better than 2 sweeps.
  EXPECT_LT(run(40), run(2));
}

TEST(GibbsTest, EmptyDocumentGetsUniformInference) {
  Corpus corpus;
  corpus.vocab_size = 10;
  Rng rng(8);
  for (int d = 0; d < 10; ++d) {
    Document doc;
    for (int i = 0; i < 20; ++i) {
      doc.tokens.push_back(static_cast<int>(rng.UniformInt(10)));
    }
    corpus.docs.push_back(std::move(doc));
  }
  LdaGibbsConfig config;
  config.num_topics = 3;
  config.iterations = 10;
  LdaModel model = TrainLdaGibbs(corpus, config, &rng);
  linalg::Vector theta = model.InferDocTopics(Document{}, &rng);
  for (double v : theta) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace cerl::topics
