// Tests for the NN layer: layer forward/backward shapes, gradient checks
// through Linear / CosineLinear / Mlp, optimizer convergence on convex and
// non-convex toys, elastic-net shrinkage, and parameter serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "grad_check.h"
#include "nn/cosine_linear.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace cerl::nn {
namespace {

using autodiff::CheckGradients;
using autodiff::Tape;
using autodiff::Var;
using linalg::Matrix;

Matrix RandomMatrix(Rng* rng, int rows, int cols) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal(0, 1);
  return m;
}

TEST(InitTest, XavierBoundsAndHeScale) {
  Rng rng(1);
  Matrix x = XavierUniform(&rng, 100, 50);
  const double bound = std::sqrt(6.0 / 150.0);
  for (int64_t i = 0; i < x.size(); ++i) {
    ASSERT_LE(std::fabs(x.data()[i]), bound);
  }
  Matrix h = HeNormal(&rng, 200, 100);
  double sumsq = 0.0;
  for (int64_t i = 0; i < h.size(); ++i) sumsq += h.data()[i] * h.data()[i];
  EXPECT_NEAR(sumsq / h.size(), 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ForwardShapeAndAffineValue) {
  Rng rng(2);
  Linear layer(&rng, 3, 2, Activation::kNone);
  layer.weight().value = Matrix{{1, 0}, {0, 1}, {1, 1}};
  layer.bias().value = Matrix{{0.5, -0.5}};
  Tape tape;
  Var x = tape.Constant(Matrix{{1, 2, 3}});
  Var out = layer.Forward(&tape, x);
  EXPECT_EQ(out.rows(), 1);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_DOUBLE_EQ(out.value()(0, 0), 1 + 3 + 0.5);
  EXPECT_DOUBLE_EQ(out.value()(0, 1), 2 + 3 - 0.5);
}

TEST(LinearTest, GradientMatchesNumeric) {
  Rng rng(3);
  Linear layer(&rng, 4, 3, Activation::kTanh);
  Matrix x = RandomMatrix(&rng, 5, 4);
  // Treat weight and bias as checked inputs by copying them in/out.
  CheckGradients(
      {layer.weight().value, layer.bias().value},
      [&](Tape* tape, const std::vector<Var>& v) {
        Var xin = tape->Constant(x);
        Var out = autodiff::Tanh(
            autodiff::AddRowBroadcast(autodiff::MatMul(xin, v[0]), v[1]));
        return autodiff::Sum(autodiff::Square(out));
      },
      1e-5);
}

TEST(CosineLinearTest, OutputsBoundedByActivation) {
  Rng rng(4);
  CosineLinear layer(&rng, 6, 4, Activation::kNone);
  Tape tape;
  Var x = tape.Constant(RandomMatrix(&rng, 20, 6));
  Var out = layer.Forward(&tape, x);
  // Pre-activation cosine similarity is bounded in [-1, 1].
  for (int64_t i = 0; i < out.value().size(); ++i) {
    ASSERT_GE(out.value().data()[i], -1.0 - 1e-9);
    ASSERT_LE(out.value().data()[i], 1.0 + 1e-9);
  }
}

TEST(CosineLinearTest, InvariantToInputScale) {
  Rng rng(5);
  CosineLinear layer(&rng, 5, 3, Activation::kNone);
  Matrix x = RandomMatrix(&rng, 4, 5);
  Matrix x10 = x;
  x10.Scale(10.0);
  Tape tape;
  Var a = layer.Forward(&tape, tape.Constant(x));
  Var b = layer.Forward(&tape, tape.Constant(x10));
  EXPECT_LT(Matrix::MaxAbsDiff(a.value(), b.value()), 1e-9);
}

TEST(MlpTest, BuildsRequestedArchitecture) {
  Rng rng(6);
  MlpConfig config;
  config.dims = {10, 8, 4};
  Mlp mlp(&rng, config);
  EXPECT_EQ(mlp.in_dim(), 10);
  EXPECT_EQ(mlp.out_dim(), 4);
  // 10*8 + 8 + 8*4 + 4 parameters.
  EXPECT_EQ(mlp.NumParameters(), 10 * 8 + 8 + 8 * 4 + 4);
  Tape tape;
  Var out = mlp.Forward(&tape, tape.Constant(RandomMatrix(&rng, 3, 10)));
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
}

TEST(MlpTest, CosineOutputLayerHasNoBias) {
  Rng rng(7);
  MlpConfig config;
  config.dims = {6, 5, 4};
  config.cosine_normalized_output = true;
  Mlp mlp(&rng, config);
  // Linear (W+b) + CosineLinear (W only).
  EXPECT_EQ(mlp.NumParameters(), 6 * 5 + 5 + 5 * 4);
}

TEST(MlpTest, FirstLayerWeightIsElasticTarget) {
  Rng rng(8);
  MlpConfig config;
  config.dims = {7, 5, 2};
  Mlp mlp(&rng, config);
  EXPECT_EQ(mlp.FirstLayerWeight().value.rows(), 7);
  EXPECT_EQ(mlp.FirstLayerWeight().value.cols(), 5);
}

TEST(SgdTest, MinimizesQuadratic) {
  // min ||w - c||^2 -> w = c.
  autodiff::Parameter w(Matrix(1, 3, 0.0), "w");
  Matrix target{{1.0, -2.0, 0.5}};
  Sgd opt({&w}, /*lr=*/0.1, /*momentum=*/0.9);
  for (int step = 0; step < 200; ++step) {
    Tape tape;
    Var wv = tape.Param(&w);
    Var loss = autodiff::Sum(
        autodiff::Square(autodiff::Sub(wv, tape.Constant(target))));
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(Matrix::MaxAbsDiff(w.value, target), 1e-4);
}

TEST(AdamTest, MinimizesQuadratic) {
  autodiff::Parameter w(Matrix(2, 2, 5.0), "w");
  Matrix target{{0.0, 1.0}, {-1.0, 2.0}};
  Adam opt({&w}, /*lr=*/0.05);
  for (int step = 0; step < 800; ++step) {
    Tape tape;
    Var wv = tape.Param(&w);
    Var loss = autodiff::Sum(
        autodiff::Square(autodiff::Sub(wv, tape.Constant(target))));
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(Matrix::MaxAbsDiff(w.value, target), 1e-3);
}

TEST(AdamTest, FitsXor) {
  // Non-convex sanity check: a small MLP can fit XOR.
  Rng rng(9);
  MlpConfig config;
  config.dims = {2, 8, 1};
  config.hidden_activation = Activation::kTanh;
  Mlp mlp(&rng, config);
  Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Matrix y{{0}, {1}, {1}, {0}};
  Adam opt(mlp.Parameters(), 0.05);
  double final_loss = 1.0;
  for (int step = 0; step < 600; ++step) {
    Tape tape;
    Var out = mlp.Forward(&tape, tape.Constant(x));
    Var loss = autodiff::MseLoss(out, tape.Constant(y));
    final_loss = loss.scalar();
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.02);
}

TEST(ElasticNetTest, ShrinksIrrelevantFeatureWeights) {
  // y depends only on feature 0; the elastic net should shrink the weights
  // of the 9 irrelevant features far below the relevant one.
  Rng rng(10);
  Linear layer(&rng, 10, 1, Activation::kNone);
  Matrix x = RandomMatrix(&rng, 200, 10);
  Matrix y(200, 1);
  for (int i = 0; i < 200; ++i) y(i, 0) = 2.0 * x(i, 0);
  Adam opt(layer.Parameters(), 0.03);
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    Var out = layer.Forward(&tape, tape.Constant(x));
    Var loss = autodiff::MseLoss(out, tape.Constant(y));
    Var w = tape.Param(&layer.weight());
    loss = autodiff::Add(loss,
                         autodiff::ScalarMul(autodiff::ElasticNetPenalty(w),
                                             5e-3));
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  const double relevant = std::fabs(layer.weight().value(0, 0));
  double max_irrelevant = 0.0;
  for (int j = 1; j < 10; ++j) {
    max_irrelevant =
        std::max(max_irrelevant, std::fabs(layer.weight().value(j, 0)));
  }
  EXPECT_GT(relevant, 1.5);
  EXPECT_LT(max_irrelevant, 0.15);
}

TEST(SerializeTest, RoundTripsExactly) {
  Rng rng(11);
  MlpConfig config;
  config.dims = {4, 6, 2};
  Mlp a(&rng, config, "m");
  Mlp b(&rng, config, "m");  // Different random init, same names/shapes.
  const std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParameters(path, a.Parameters()).ok());
  ASSERT_TRUE(LoadParameters(path, b.Parameters()).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(pa[i]->value, pb[i]->value), 0.0);
  }
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(12);
  MlpConfig small;
  small.dims = {4, 3, 2};
  MlpConfig big;
  big.dims = {4, 5, 2};
  Mlp a(&rng, small, "m");
  Mlp b(&rng, big, "m");
  const std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(SaveParameters(path, a.Parameters()).ok());
  EXPECT_FALSE(LoadParameters(path, b.Parameters()).ok());
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(13);
  MlpConfig config;
  config.dims = {2, 2};
  Mlp m(&rng, config);
  Status s = LoadParameters("/nonexistent/params.bin", m.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cerl::nn
