// Corruption robustness of the CERLCKP1 trainer checkpoint and the CERLENG1
// engine snapshot: programmatic truncation at EVERY byte offset and byte
// flips across header/dims/blob regions must all come back as clean Status
// errors — no crash, no OOM-sized allocation, and no partial mutation of the
// target trainer/engine. Structural corruptions (with the checksum
// recomputed so they reach the field validators) exercise the typed error
// paths behind the checksum. Runs under ASan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"
#include "stream/stream_engine.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace cerl {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::DataSplit;

constexpr int kInputDim = 25;

CerlConfig TinyConfig(uint64_t seed = 7) {
  CerlConfig c;
  c.net.rep_hidden = {6};
  c.net.rep_dim = 4;
  c.net.head_hidden = {4};
  c.train.epochs = 4;
  c.train.batch_size = 32;
  c.train.seed = seed;
  c.memory_capacity = 24;
  return c;
}

std::vector<DataSplit> TinyStream(int domains, uint64_t seed = 8) {
  data::SyntheticConfig dc;
  dc.num_confounders = 10;
  dc.num_instruments = 4;
  dc.num_irrelevant = 5;
  dc.num_adjusters = 6;  // 25 features total == kInputDim
  dc.num_domains = domains;
  dc.units_per_domain = 90;
  dc.seed = seed;
  auto stream = data::GenerateSyntheticStream(dc);
  Rng rng(seed + 1);
  return data::SplitStream(stream.domains, &rng);
}

// A trained trainer's serialized checkpoint (built once per suite).
const std::string& ValidTrainerPayload() {
  static const std::string* payload = [] {
    auto splits = TinyStream(2);
    CerlTrainer trainer(TinyConfig(), kInputDim);
    trainer.ObserveDomain(splits[0]);
    trainer.ObserveDomain(splits[1]);
    auto* out = new std::string;
    Status s = trainer.SerializeCheckpoint(out);
    CERL_CHECK_MSG(s.ok(), s.ToString().c_str());
    return out;
  }();
  return *payload;
}

// A 2-stream engine snapshot with one trained domain and one journaled
// domain per stream (built once per suite).
const std::string& ValidEnginePayload() {
  static const std::string* payload = [] {
    stream::StreamEngineOptions options;
    options.num_workers = 2;
    stream::StreamEngine engine(options);
    auto splits_a = TinyStream(2, 21);
    auto splits_b = TinyStream(2, 22);
    const int a = engine.AddStream("a", TinyConfig(31), kInputDim);
    const int b = engine.AddStream("b", TinyConfig(32), kInputDim);
    engine.PushDomain(a, splits_a[0]);
    engine.PushDomain(b, splits_b[0]);
    engine.Drain();
    engine.PushDomain(a, splits_a[1]);
    engine.PushDomain(b, splits_b[1]);
    // Snapshot immediately: domain 2 of each stream is typically still
    // queued or in flight; either way the container is structurally full
    // (trainer blobs + possibly a journal), which is all this suite needs.
    const std::string path = ::testing::TempDir() + "/corrupt_engine.snap";
    Status s = engine.SaveSnapshot(path);
    CERL_CHECK_MSG(s.ok(), s.ToString().c_str());
    auto bytes = ReadFileToString(path);
    CERL_CHECK(bytes.ok());
    return new std::string(bytes.value());
  }();
  return *payload;
}

// Every failed load must leave the target in its pristine state.
void ExpectTrainerUnmutated(CerlTrainer* trainer) {
  EXPECT_EQ(trainer->stages_seen(), 0);
  EXPECT_TRUE(trainer->memory().empty());
}

void ExpectTrainerRejects(const std::string& bytes) {
  CerlTrainer trainer(TinyConfig(), kInputDim);
  const Status s = trainer.DeserializeCheckpoint(bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  ExpectTrainerUnmutated(&trainer);
  // The trainer survived: a subsequent valid load must succeed.
  EXPECT_TRUE(trainer.DeserializeCheckpoint(ValidTrainerPayload()).ok());
}

std::string Truncated(const std::string& bytes, size_t len) {
  return bytes.substr(0, len);
}

std::string Flipped(const std::string& bytes, size_t pos, uint8_t mask) {
  std::string out = bytes;
  out[pos] = static_cast<char>(out[pos] ^ mask);
  return out;
}

// Re-finalizes a corrupted payload so it passes the checksum and reaches the
// structural validators (the interesting error paths).
std::string Refinalized(std::string payload_without_checksum) {
  AppendChecksum(&payload_without_checksum);
  return payload_without_checksum;
}

TEST(CheckpointCorruptionTest, TrainerTruncationAtEveryOffset) {
  const std::string& valid = ValidTrainerPayload();
  // Every prefix must be rejected; stride keeps the suite fast on large
  // payloads while still hitting every field boundary on small ones.
  const size_t step = valid.size() > (1u << 16) ? 7 : 1;
  for (size_t len = 0; len < valid.size(); len += step) {
    CerlTrainer trainer(TinyConfig(), kInputDim);
    const Status s = trainer.DeserializeCheckpoint(Truncated(valid, len));
    ASSERT_FALSE(s.ok()) << "truncation at " << len << " was accepted";
    ExpectTrainerUnmutated(&trainer);
  }
}

TEST(CheckpointCorruptionTest, TrainerByteFlipAtEveryOffset) {
  const std::string& valid = ValidTrainerPayload();
  const size_t step = valid.size() > (1u << 16) ? 7 : 1;
  for (size_t pos = 0; pos < valid.size(); pos += step) {
    CerlTrainer trainer(TinyConfig(), kInputDim);
    const Status s =
        trainer.DeserializeCheckpoint(Flipped(valid, pos, 0x40));
    ASSERT_FALSE(s.ok()) << "byte flip at " << pos << " was accepted";
    ExpectTrainerUnmutated(&trainer);
  }
}

TEST(CheckpointCorruptionTest, TrainerStructuralCorruptionsBehindChecksum) {
  const std::string& valid = ValidTrainerPayload();
  std::string payload = valid.substr(0, valid.size() - 8);  // drop checksum

  // Bad magic.
  ExpectTrainerRejects(Refinalized("X" + payload.substr(1)));
  // Zero stages.
  {
    std::string p = payload;
    std::memset(p.data() + 8, 0, 4);
    ExpectTrainerRejects(Refinalized(p));
  }
  // Input-dim mismatch (the trainer was built for kInputDim).
  {
    std::string p = payload;
    const uint32_t wrong = kInputDim + 3;
    std::memcpy(p.data() + 12, &wrong, 4);
    ExpectTrainerRejects(Refinalized(p));
  }
  // Scaler-dim corruption: the x-scaler mean length field (right after the
  // 16-byte header + 41 bytes of RNG state) must equal input_dim.
  {
    std::string p = payload;
    const uint32_t huge = 0x40000000;  // would be a 8 GiB allocation
    std::memcpy(p.data() + 57, &huge, 4);
    ExpectTrainerRejects(Refinalized(p));
  }
  // Truncation with a VALID checksum over the shorter payload: must be
  // caught by bounds checking, not the checksum.
  for (size_t len : std::vector<size_t>{20, 60, 100, payload.size() - 9}) {
    ExpectTrainerRejects(Refinalized(payload.substr(0, len)));
  }
  // Trailing garbage with a valid checksum.
  ExpectTrainerRejects(Refinalized(payload + std::string(13, '\x5a')));
  // Sanity: the untouched payload still loads (offsets above are live).
  {
    CerlTrainer trainer(TinyConfig(), kInputDim);
    ASSERT_TRUE(trainer.DeserializeCheckpoint(valid).ok());
    EXPECT_EQ(trainer.stages_seen(), 2);
  }
}

// A failed LoadSnapshot leaves the engine with zero streams, so one engine
// (and its worker threads) is reused across all corruption cases.
void ExpectEngineRejects(stream::StreamEngine* engine,
                         const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/corrupt_case.snap";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const Status s = engine->LoadSnapshot(path);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  EXPECT_EQ(engine->num_streams(), 0);  // all-or-nothing
}

TEST(CheckpointCorruptionTest, EngineTruncationAtSampledOffsets) {
  const std::string& valid = ValidEnginePayload();
  stream::StreamEngineOptions options;
  options.num_workers = 1;
  stream::StreamEngine engine(options);
  // The engine container embeds trainer blobs, so it is larger; sample
  // densely at the front (header/config region) and stride the rest.
  for (size_t len = 0; len < std::min<size_t>(valid.size(), 256); ++len) {
    ExpectEngineRejects(&engine, Truncated(valid, len));
  }
  const size_t step = std::max<size_t>(1, valid.size() / 512);
  for (size_t len = 256; len < valid.size(); len += step) {
    ExpectEngineRejects(&engine, Truncated(valid, len));
  }
}

TEST(CheckpointCorruptionTest, EngineByteFlipAtSampledOffsets) {
  const std::string& valid = ValidEnginePayload();
  stream::StreamEngineOptions options;
  options.num_workers = 1;
  stream::StreamEngine engine(options);
  for (size_t pos = 0; pos < std::min<size_t>(valid.size(), 256); ++pos) {
    ExpectEngineRejects(&engine, Flipped(valid, pos, 0x01));
  }
  const size_t step = std::max<size_t>(1, valid.size() / 512);
  for (size_t pos = 256; pos < valid.size(); pos += step) {
    ExpectEngineRejects(&engine, Flipped(valid, pos, 0x80));
  }
  // Flip in the trailing checksum itself.
  ExpectEngineRejects(&engine, Flipped(valid, valid.size() - 1, 0x10));
}

TEST(CheckpointCorruptionTest, EngineStructuralCorruptionsBehindChecksum) {
  const std::string& valid = ValidEnginePayload();
  std::string payload = valid.substr(0, valid.size() - 8);
  stream::StreamEngineOptions options;
  options.num_workers = 1;
  stream::StreamEngine engine(options);

  // Bad magic.
  ExpectEngineRejects(&engine, Refinalized("Y" + payload.substr(1)));
  // Absurd stream count (offset 8+4+1+1 = 14: workers u32, validate u8,
  // backlog-in-wal u8 — the CERLENG4 header).
  {
    std::string p = payload;
    const uint32_t huge = 0x7fffffff;
    std::memcpy(p.data() + 14, &huge, 4);
    ExpectEngineRejects(&engine, Refinalized(p));
  }
  // Absurd stream-name length (first stream's name_len at offset 18).
  {
    std::string p = payload;
    const uint32_t huge = 0x00ffffff;
    std::memcpy(p.data() + 18, &huge, 4);
    ExpectEngineRejects(&engine, Refinalized(p));
  }
  // Truncations with recomputed checksums: bounds checks must fire.
  for (size_t len : std::vector<size_t>{16, 30, 200, payload.size() / 2}) {
    ExpectEngineRejects(&engine, Refinalized(payload.substr(0, len)));
  }
  // Trailing garbage.
  ExpectEngineRejects(&engine, Refinalized(payload + std::string(5, '\x11')));
  // Sanity: the untouched container still loads.
  {
    const std::string path = ::testing::TempDir() + "/corrupt_sane.snap";
    std::ofstream out(path, std::ios::binary);
    out.write(valid.data(), static_cast<std::streamsize>(valid.size()));
    out.close();
    stream::StreamEngineOptions options;
    options.num_workers = 2;
    stream::StreamEngine engine(options);
    ASSERT_TRUE(engine.LoadSnapshot(path).ok());
    EXPECT_EQ(engine.num_streams(), 2);
  }
}

// Hostile seek offsets on the payload stream interface: seekoff used to
// compute eback() + off BEFORE the bounds check, so an offset from a corrupt
// length field overflowed the pointer arithmetic (UB, flagged by UBSan
// pre-fix). The range check must happen in the integer domain, every
// out-of-range seek must fail cleanly, and the stream must stay usable.
TEST(CheckpointCorruptionTest, ViewStreambufRejectsHostileSeekOffsets) {
  const std::string bytes = "0123456789";
  ViewStreambuf buf(bytes);
  std::istream in(&buf);
  const auto size = static_cast<std::streamoff>(bytes.size());

  // Sane seeks across all three anchors still work.
  in.seekg(3, std::ios::beg);
  EXPECT_EQ(in.get(), '3');
  in.seekg(2, std::ios::cur);
  EXPECT_EQ(in.get(), '6');
  in.seekg(-1, std::ios::end);
  EXPECT_EQ(in.get(), '9');
  in.seekg(0, std::ios::end);  // one past the last byte is a valid position
  EXPECT_FALSE(in.fail());

  const std::streamoff offsets[] = {
      std::numeric_limits<std::streamoff>::max(),
      std::numeric_limits<std::streamoff>::max() - 1,
      std::numeric_limits<std::streamoff>::min(),
      std::numeric_limits<std::streamoff>::min() + 1,
      size + 1,
      -size - 1,
      -1,
      1,
  };
  const std::ios::seekdir dirs[] = {std::ios::beg, std::ios::cur,
                                    std::ios::end};
  for (const auto dir : dirs) {
    for (const std::streamoff off : offsets) {
      in.clear();
      in.seekg(1, std::ios::beg);  // known-good current position
      ASSERT_FALSE(in.fail());
      const std::streamoff base =
          dir == std::ios::beg ? 0 : (dir == std::ios::cur ? 1 : size);
      // base is in [0, 10], so the in-range test below cannot itself
      // overflow: valid iff base + off lands in [0, size].
      const bool in_range = off >= -base && off <= size - base;
      in.seekg(off, dir);
      EXPECT_EQ(!in.fail(), in_range)
          << "dir=" << dir << " off=" << off;
      if (in_range) {
        EXPECT_EQ(static_cast<std::streamoff>(in.tellg()), base + off);
      }
    }
  }

  // seekpos takes the same integer-domain guard (it routes through seekoff).
  in.clear();
  in.seekg(std::streampos(std::numeric_limits<std::streamoff>::max()));
  EXPECT_TRUE(in.fail());
  in.clear();
  in.seekg(std::streampos(4));
  EXPECT_EQ(in.get(), '4');
}

}  // namespace
}  // namespace cerl
