// Gradient correctness for every autodiff primitive and composite, checked
// against central differences, plus tape-mechanics tests (parameter
// binding, gradient accumulation across multiple uses).
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "autodiff/tape.h"
#include "grad_check.h"
#include "util/rng.h"

namespace cerl::autodiff {
namespace {

using linalg::Matrix;

Matrix RandomMatrix(Rng* rng, int rows, int cols, double lo = -1.5,
                    double hi = 1.5) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(lo, hi);
  return m;
}

// Keeps values away from non-smooth points (|x| > margin).
Matrix RandomSignedAwayFromZero(Rng* rng, int rows, int cols,
                                double margin = 0.2) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    const double sign = rng->Uniform() < 0.5 ? -1.0 : 1.0;
    m.data()[i] = sign * rng->Uniform(margin, 1.5);
  }
  return m;
}

Matrix RandomPositive(Rng* rng, int rows, int cols, double lo = 0.3,
                      double hi = 2.0) {
  return RandomMatrix(rng, rows, cols, lo, hi);
}

TEST(TapeTest, ScalarOfOneByOne) {
  Tape tape;
  Var v = tape.Constant(Matrix(1, 1, 3.5));
  EXPECT_DOUBLE_EQ(v.scalar(), 3.5);
}

TEST(TapeTest, ParamGradientFlushedToParameter) {
  Parameter p(Matrix(2, 2, 1.0), "w");
  Tape tape;
  Var w = tape.Param(&p);
  Var loss = Sum(Square(w));
  p.ZeroGrad();
  tape.Backward(loss);
  // d/dw sum(w^2) = 2w = 2.
  for (int64_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.grad.data()[i], 2.0);
  }
}

TEST(TapeTest, DoubleBindingAccumulates) {
  Parameter p(Matrix(1, 1, 3.0), "w");
  Tape tape;
  Var w1 = tape.Param(&p);
  Var w2 = tape.Param(&p);
  Var loss = Add(Sum(Square(w1)), Sum(w2));  // d/dw = 2w + 1 = 7
  p.ZeroGrad();
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 7.0);
}

TEST(TapeTest, ConstantsReceiveNoGradientWork) {
  Tape tape;
  Var c = tape.Constant(Matrix(2, 2, 1.0));
  Var l = tape.Leaf(Matrix(2, 2, 2.0));
  Var loss = Sum(Mul(c, l));
  tape.Backward(loss);
  EXPECT_FALSE(tape.RequiresGrad(c.id()));
  EXPECT_TRUE(tape.RequiresGrad(l.id()));
}

TEST(GradTest, MatMul) {
  Rng rng(1);
  CheckGradients(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 4, 2)},
      [](Tape*, const std::vector<Var>& v) {
        return Sum(Square(MatMul(v[0], v[1])));
      });
}

TEST(GradTest, MatMulBt) {
  Rng rng(2);
  CheckGradients(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 5, 4)},
      [](Tape*, const std::vector<Var>& v) {
        return Sum(Square(MatMulBt(v[0], v[1])));
      });
}

TEST(GradTest, AddSubMul) {
  Rng rng(3);
  CheckGradients(
      {RandomMatrix(&rng, 3, 3), RandomMatrix(&rng, 3, 3),
       RandomMatrix(&rng, 3, 3)},
      [](Tape*, const std::vector<Var>& v) {
        return Sum(Square(Mul(Sub(v[0], v[1]), Add(v[1], v[2]))));
      });
}

TEST(GradTest, AddRowBroadcast) {
  Rng rng(4);
  CheckGradients(
      {RandomMatrix(&rng, 4, 3), RandomMatrix(&rng, 1, 3)},
      [](Tape*, const std::vector<Var>& v) {
        return Sum(Square(AddRowBroadcast(v[0], v[1])));
      });
}

TEST(GradTest, MulColBroadcast) {
  Rng rng(5);
  CheckGradients(
      {RandomMatrix(&rng, 4, 3), RandomSignedAwayFromZero(&rng, 4, 1)},
      [](Tape*, const std::vector<Var>& v) {
        return Sum(Square(MulColBroadcast(v[0], v[1])));
      });
}

TEST(GradTest, ScalarOps) {
  Rng rng(6);
  CheckGradients({RandomMatrix(&rng, 3, 2)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(ScalarAdd(ScalarMul(v[0], -2.5), 0.7));
                 });
}

TEST(GradTest, Reciprocal) {
  Rng rng(7);
  CheckGradients({RandomPositive(&rng, 3, 3)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Reciprocal(v[0]));
                 },
                 1e-5);
}

TEST(GradTest, ReluAwayFromKink) {
  Rng rng(8);
  CheckGradients({RandomSignedAwayFromZero(&rng, 4, 4)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Square(Relu(v[0])));
                 });
}

TEST(GradTest, Elu) {
  Rng rng(9);
  CheckGradients({RandomSignedAwayFromZero(&rng, 4, 4)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Square(Elu(v[0])));
                 });
}

TEST(GradTest, TanhSigmoid) {
  Rng rng(10);
  CheckGradients({RandomMatrix(&rng, 3, 4)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Mul(Tanh(v[0]), Sigmoid(v[0])));
                 });
}

TEST(GradTest, ExpLog) {
  Rng rng(11);
  CheckGradients({RandomPositive(&rng, 3, 3)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Mul(Log(v[0]), Exp(ScalarMul(v[0], 0.3))));
                 },
                 1e-5);
}

TEST(GradTest, SqrtSquareAbs) {
  Rng rng(12);
  CheckGradients({RandomPositive(&rng, 3, 3)},
                 [](Tape*, const std::vector<Var>& v) {
                   return Sum(Add(Sqrt(v[0]), Square(Abs(v[0]))));
                 },
                 1e-5);
}

TEST(GradTest, Reductions) {
  Rng rng(13);
  CheckGradients({RandomMatrix(&rng, 4, 5)},
                 [](Tape*, const std::vector<Var>& v) {
                   Var a = Sum(Square(RowSum(v[0])));
                   Var b = Sum(Square(ColSum(v[0])));
                   return Add(Add(a, b), Mean(Square(v[0])));
                 });
}

TEST(GradTest, TransposeConcatGather) {
  Rng rng(14);
  CheckGradients(
      {RandomMatrix(&rng, 3, 4), RandomMatrix(&rng, 2, 4)},
      [](Tape*, const std::vector<Var>& v) {
        Var cat = ConcatRows(v[0], v[1]);                  // 5 x 4
        Var picked = GatherRows(cat, {0, 4, 2, 2});        // reuse row 2
        return Sum(Square(MatMul(Transpose(picked), picked)));
      });
}

TEST(GradTest, RowL2NormalizeAndCosine) {
  Rng rng(15);
  CheckGradients(
      {RandomSignedAwayFromZero(&rng, 4, 3),
       RandomSignedAwayFromZero(&rng, 4, 3)},
      [](Tape*, const std::vector<Var>& v) {
        Var cos = CosineRowwise(v[0], v[1]);
        return Sum(Square(cos));
      },
      1e-5);
}

TEST(GradTest, MeanCosineDistance) {
  Rng rng(16);
  CheckGradients(
      {RandomSignedAwayFromZero(&rng, 5, 4),
       RandomSignedAwayFromZero(&rng, 5, 4)},
      [](Tape*, const std::vector<Var>& v) {
        return MeanCosineDistance(v[0], v[1]);
      },
      1e-5);
}

TEST(GradTest, MseAndPenalties) {
  Rng rng(17);
  CheckGradients(
      {RandomSignedAwayFromZero(&rng, 4, 2),
       RandomSignedAwayFromZero(&rng, 4, 2)},
      [](Tape*, const std::vector<Var>& v) {
        return Add(MseLoss(v[0], v[1]), ElasticNetPenalty(v[0]));
      },
      1e-5);
}

TEST(GradTest, TwoLayerNetworkComposition) {
  Rng rng(18);
  // x(2x3) -> W1(3x4) + b1 -> tanh -> W2(4x1) -> mse vs target
  CheckGradients(
      {RandomMatrix(&rng, 2, 3), RandomMatrix(&rng, 3, 4),
       RandomMatrix(&rng, 1, 4), RandomMatrix(&rng, 4, 1),
       RandomMatrix(&rng, 2, 1)},
      [](Tape*, const std::vector<Var>& v) {
        Var h = Tanh(AddRowBroadcast(MatMul(v[0], v[1]), v[2]));
        Var out = MatMul(h, v[3]);
        return MseLoss(out, v[4]);
      },
      1e-5);
}

TEST(ValueTest, CosineOfIdenticalRowsIsOne) {
  Tape tape;
  Rng rng(19);
  Matrix m = RandomSignedAwayFromZero(&rng, 6, 5);
  Var a = tape.Constant(m);
  Var b = tape.Constant(m);
  Var cos = CosineRowwise(a, b);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(cos.value()(i, 0), 1.0, 1e-9);
  EXPECT_NEAR(MeanCosineDistance(a, b).scalar(), 0.0, 1e-9);
}

TEST(ValueTest, CosineOfOppositeRowsIsMinusOne) {
  Tape tape;
  Matrix m = {{1.0, 2.0}, {-3.0, 0.5}};
  Matrix neg = m;
  neg.Scale(-1.0);
  Var cos = CosineRowwise(tape.Constant(m), tape.Constant(neg));
  EXPECT_NEAR(cos.value()(0, 0), -1.0, 1e-9);
  EXPECT_NEAR(cos.value()(1, 0), -1.0, 1e-9);
}

TEST(ValueTest, RowL2NormalizeProducesUnitRows) {
  Tape tape;
  Rng rng(20);
  Var x = tape.Constant(RandomSignedAwayFromZero(&rng, 5, 7));
  Var n = RowL2Normalize(x);
  for (int i = 0; i < 5; ++i) {
    double s = 0.0;
    for (int j = 0; j < 7; ++j) s += n.value()(i, j) * n.value()(i, j);
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace cerl::autodiff
