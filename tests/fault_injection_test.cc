// Tests for util/fault_injection: deterministic seeded firing, scope
// confinement via thread-local FaultScope, max_fires budgets, the
// CERL_FAULTS env spec, and the wired kIoWrite point in WriteFileAtomic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace cerl {
namespace {

// Every test leaves the global injector disarmed (it is process-global and
// this binary's tests share it).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisabledByDefaultCostsOneBranch) {
  // No rule armed: the macro short-circuits on the relaxed flag and the
  // injector is never consulted.
  EXPECT_FALSE(fault_internal::g_enabled.load());
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  EXPECT_EQ(FaultInjector::Global().fires(FaultPoint::kStageThrow), 0);
}

TEST_F(FaultInjectionTest, MaxFiresBoundsTheBudget) {
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, /*scope=*/"",
                              /*probability=*/1.0, /*max_fires=*/2,
                              /*seed=*/1);
  EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  EXPECT_EQ(FaultInjector::Global().fires(FaultPoint::kStageThrow), 2);
  // Other points are untouched.
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kNanGradient));
}

TEST_F(FaultInjectionTest, ScopeConfinesFiringToMatchingThreads) {
  FaultInjector::Global().Arm(FaultPoint::kNanGradient, "tenant-a", 1.0,
                              /*max_fires=*/0, /*seed=*/1);
  // No scope on this thread: the rule does not match.
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kNanGradient));
  {
    FaultScope scope("tenant-b");
    EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kNanGradient));
    {
      FaultScope inner("tenant-a");
      EXPECT_EQ(FaultScope::Current(), "tenant-a");
      EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kNanGradient));
    }
    // Destructor restores the outer scope.
    EXPECT_EQ(FaultScope::Current(), "tenant-b");
  }
  EXPECT_EQ(FaultScope::Current(), "");

  // Scopes are thread-local: another thread without a scope never fires.
  bool other_thread_fired = true;
  std::thread other([&other_thread_fired] {
    other_thread_fired = CERL_FAULT_POINT(FaultPoint::kNanGradient);
  });
  other.join();
  EXPECT_FALSE(other_thread_fired);
}

TEST_F(FaultInjectionTest, ProbabilityDrawsAreSeedDeterministic) {
  auto record = [] {
    FaultInjector::Global().Arm(FaultPoint::kSinkhornDiverge, "", 0.4,
                                /*max_fires=*/0, /*seed=*/77);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(CERL_FAULT_POINT(FaultPoint::kSinkhornDiverge));
    }
    FaultInjector::Global().Reset();
    return decisions;
  };
  const std::vector<bool> first = record();
  const std::vector<bool> second = record();
  EXPECT_EQ(first, second);
  // Sanity: 0.4 probability actually fires sometimes and skips sometimes.
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 40);
  EXPECT_LT(fired, 160);
}

TEST_F(FaultInjectionTest, ResetDisarmsAndZeroesCounters) {
  FaultInjector::Global().Arm(FaultPoint::kIoWrite, "", 1.0, 0, 1);
  EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kIoWrite));
  FaultInjector::Global().Reset();
  EXPECT_FALSE(fault_internal::g_enabled.load());
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kIoWrite));
  EXPECT_EQ(FaultInjector::Global().fires(FaultPoint::kIoWrite), 0);
}

TEST_F(FaultInjectionTest, MultipleRulesOnOnePointMatchByScope) {
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "tenant-a", 1.0,
                              /*max_fires=*/1, /*seed=*/1);
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "tenant-b", 1.0,
                              /*max_fires=*/1, /*seed=*/2);
  {
    FaultScope scope("tenant-a");
    EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
    EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kStageThrow));  // budget spent
  }
  {
    FaultScope scope("tenant-b");
    EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  }
  EXPECT_EQ(FaultInjector::Global().fires(FaultPoint::kStageThrow), 2);
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesTheSpec) {
  ::setenv("CERL_FAULTS",
           "stage_throw@tenant-x:1:1,io_write:1:2,not_a_point:1", 1);
  ::setenv("CERL_FAULTS_SEED", "9", 1);
  FaultInjector::ArmFromEnv();
  ::unsetenv("CERL_FAULTS");
  ::unsetenv("CERL_FAULTS_SEED");

  // stage_throw is scoped to tenant-x.
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  {
    FaultScope scope("tenant-x");
    EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
    EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kStageThrow));
  }
  // io_write is unscoped with a budget of 2; the unknown point was skipped.
  EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kIoWrite));
  EXPECT_TRUE(CERL_FAULT_POINT(FaultPoint::kIoWrite));
  EXPECT_FALSE(CERL_FAULT_POINT(FaultPoint::kIoWrite));
}

TEST_F(FaultInjectionTest, EmptyEnvSpecIsANoop) {
  ::unsetenv("CERL_FAULTS");
  FaultInjector::ArmFromEnv();
  EXPECT_FALSE(fault_internal::g_enabled.load());
}

TEST_F(FaultInjectionTest, IoWritePointFailsWriteFileAtomic) {
  const std::string path = ::testing::TempDir() + "/fault_io.bin";
  FaultInjector::Global().Arm(FaultPoint::kIoWrite, "", 1.0,
                              /*max_fires=*/1, /*seed=*/1);
  Status first = WriteFileAtomic(path, "payload");
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  // Budget spent: the next write goes through and publishes the payload.
  ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "payload");
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, PointNamesAreStable) {
  // The env spec depends on these strings; renaming one is a breaking
  // change to every chaos harness out there.
  EXPECT_STREQ(FaultPointName(FaultPoint::kNanGradient), "nan_gradient");
  EXPECT_STREQ(FaultPointName(FaultPoint::kSinkhornDiverge),
               "sinkhorn_diverge");
  EXPECT_STREQ(FaultPointName(FaultPoint::kIoWrite), "io_write");
  EXPECT_STREQ(FaultPointName(FaultPoint::kStageThrow), "stage_throw");
}

}  // namespace
}  // namespace cerl
