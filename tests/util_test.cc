// Tests for the util layer: Status/Result, RNG determinism and moments,
// scalar distributions, alias sampling, thread pool, CSV, flags.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "util/binary_io.h"
#include "util/csv.h"
#include "util/distributions.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/keyed_pool.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cerl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad dims"), std::string::npos);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    CERL_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, AdmissionControlCodes) {
  Status exhausted = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_STREQ(StatusCodeName(exhausted.code()), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(exhausted.ToString(), "RESOURCE_EXHAUSTED: queue full");

  Status unavailable = Status::Unavailable("quarantined");
  EXPECT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_STREQ(StatusCodeName(unavailable.code()), "UNAVAILABLE");
  EXPECT_EQ(unavailable.ToString(), "UNAVAILABLE: quarantined");
}

TEST(StatusTest, StatusErrorCarriesTheStatusThroughThrow) {
  try {
    throw StatusError(Status::NumericalError("nan loss"));
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kNumericalError);
    EXPECT_EQ(e.status().message(), "nan loss");
    EXPECT_STREQ(e.what(), "NUMERICAL_ERROR: nan loss");
    return;
  }
  FAIL() << "StatusError was not caught";
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveSemanticsTransferTheValueWithoutCopying) {
  // move_only payload: compiles only if Result forwards moves end to end.
  Result<std::unique_ptr<int>> holder(std::make_unique<int>(7));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> taken = std::move(holder).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);

  // Moving the Result itself carries the live value along...
  Result<std::unique_ptr<int>> source(std::make_unique<int>(9));
  Result<std::unique_ptr<int>> target(std::move(source));
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target.value(), 9);

  // ...and an error Result moves its Status intact.
  Result<std::unique_ptr<int>> bad(Status::Unavailable("shed"));
  Result<std::unique_ptr<int>> moved_bad(std::move(bad));
  ASSERT_FALSE(moved_bad.ok());
  EXPECT_EQ(moved_bad.status().code(), StatusCode::kUnavailable);

  // Mutable access through value()& supports in-place rebinding.
  Result<std::string> text(std::string("abc"));
  text.value() += "def";
  EXPECT_EQ(text.value(), "abcdef");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntUnbiasedCoverage) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, SaveRestoreStateContinuesBitIdentically) {
  Rng a(991);
  for (int i = 0; i < 57; ++i) a.NextU64();
  a.Normal();  // leaves a cached polar variate half the time
  const Rng::State state = a.SaveState();
  Rng b(123);  // unrelated seed; state restore must fully overwrite
  b.RestoreState(state);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Normal(), b.Normal()) << "normal " << i;
  }
}

TEST(BinaryIoTest, Fnv1a64KnownVectors) {
  // Reference values of the standard 64-bit FNV-1a parameters.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(BinaryIoTest, ChecksumRoundTripAndTamperDetection) {
  std::string payload = "some checkpoint bytes";
  const std::string original = payload;
  AppendChecksum(&payload);
  EXPECT_EQ(payload.size(), original.size() + 8);
  Result<std::string_view> ok = VerifyChecksum(payload, "test");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), original);
  // Any flipped bit — payload or checksum — must be detected.
  for (size_t pos = 0; pos < payload.size(); ++pos) {
    std::string tampered = payload;
    tampered[pos] ^= 0x04;
    EXPECT_FALSE(VerifyChecksum(tampered, "test").ok()) << "pos " << pos;
  }
  EXPECT_FALSE(VerifyChecksum("short", "test").ok());
}

TEST(BinaryIoTest, WriteFileAtomicPublishesAllOrNothing) {
  const std::string path = ::testing::TempDir() + "/atomic_util.bin";
  {
    std::ofstream prev(path, std::ios::binary);
    prev << "old contents";
  }
  ASSERT_TRUE(WriteFileAtomic(path, "new contents").ok());
  Result<std::string> readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), "new contents");
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // temp removed after publish
  // Unwritable destination directory fails cleanly.
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir/x.bin", "data").ok());
}

TEST(BinaryIoTest, Fnv1a64StreamMatchesAnySegmentation) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint64_t whole = Fnv1a64(data);
  // One-shot, byte-at-a-time, uneven chunks, and with empty updates mixed
  // in: every segmentation of the same bytes yields the same digest.
  {
    Fnv1a64Stream s;
    s.Update(data);
    EXPECT_EQ(s.digest(), whole);
  }
  {
    Fnv1a64Stream s;
    for (char c : data) s.Update(std::string_view(&c, 1));
    EXPECT_EQ(s.digest(), whole);
  }
  {
    Fnv1a64Stream s;
    s.Update(std::string_view(data).substr(0, 7));
    s.Update(std::string_view());  // empty update is a no-op
    s.Update(std::string_view(data).substr(7, 20));
    s.Update(std::string_view(data).substr(27));
    EXPECT_EQ(s.digest(), whole);
  }
  // A fresh stream's digest is the FNV offset basis (hash of "").
  EXPECT_EQ(Fnv1a64Stream().digest(), Fnv1a64(""));
}

TEST(BinaryIoTest, WriteF64VectorEmptyVectorIsJustTheCount) {
  // Regression: v.data() is null for an empty vector, and passing null to
  // string::append is UB even with length 0. The writer must emit the u32
  // zero count and nothing else.
  std::string out = "prefix";
  WriteF64Vector(&out, {});
  ASSERT_EQ(out.size(), 6 + 4);
  uint32_t count = 0xff;
  std::memcpy(&count, out.data() + 6, 4);
  EXPECT_EQ(count, 0u);

  // And the empty vector round-trips through the bounded reader.
  std::istringstream in(out.substr(6));
  BoundedReader r(&in, 4);
  std::vector<double> v = {1.0, 2.0};  // must be cleared by the read
  ASSERT_TRUE(ReadF64VectorExpected(&r, 0, &v, "empty").ok());
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIoTest, ConcurrentAtomicWritesToOnePathStayComplete) {
  // Regression for the shared ".tmp" suffix: concurrent writers used to
  // clobber each other's temp file and could publish a torn payload. Each
  // writer repeatedly publishes its own full-size pattern; every read must
  // observe one COMPLETE pattern, never a mix or a prefix.
  const std::string path = ::testing::TempDir() + "/atomic_race.bin";
  constexpr int kWriters = 4;
  constexpr int kRounds = 25;
  constexpr size_t kSize = 64 * 1024;
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string contents(kSize, static_cast<char>('A' + w));
      for (int r = 0; r < kRounds && !failed.load(); ++r) {
        if (!WriteFileAtomic(path, contents).ok()) failed.store(true);
      }
    });
  }
  for (int r = 0; r < kWriters * kRounds; ++r) {
    Result<std::string> read = ReadFileToString(path);
    if (!read.ok()) continue;  // not yet published the first time
    const std::string& bytes = read.value();
    ASSERT_EQ(bytes.size(), kSize) << "torn file published";
    ASSERT_NE(bytes.find_first_of("ABCD"), std::string::npos);
    ASSERT_EQ(bytes.find_first_not_of(bytes[0]), std::string::npos)
        << "mixed-writer file published";
  }
  for (auto& t : writers) t.join();
  EXPECT_FALSE(failed.load());
  Result<std::string> final_read = ReadFileToString(path);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(final_read.value().size(), kSize);
}

TEST(HistogramTest, RecordExtremeInputsStaysFinite) {
  // Regression: +inf and >= ~9.2e12 ms passed the NaN/negative guard and
  // overflowed the int64 nanosecond cast (UB, caught by UBSan pre-fix).
  ConcurrentLatencyHistogram h;
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(9e15);
  h.Record(std::numeric_limits<double>::max());
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(-std::numeric_limits<double>::infinity());
  h.Record(-5.0);
  h.Record(1.5);  // one sane sample
  EXPECT_EQ(h.count(), 7);
  const LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 7);
  // The clamp keeps the folded totals finite and ordered.
  EXPECT_TRUE(std::isfinite(snap.total_ms()));
  EXPECT_TRUE(std::isfinite(snap.max_ms()));
  EXPECT_GE(snap.max_ms(), 1.5);
  EXPECT_TRUE(std::isfinite(snap.Percentile(0.5)));
  EXPECT_TRUE(std::isfinite(snap.Percentile(1.0)));

  // The plain histogram takes the same hostile inputs (it stores doubles,
  // so the clamp lives in the concurrent variant's ns cast only).
  LatencyHistogram plain;
  plain.Record(std::numeric_limits<double>::quiet_NaN());
  plain.Record(-1.0);
  plain.Record(2.0);
  EXPECT_EQ(plain.count(), 3);
  EXPECT_GE(plain.max_ms(), 2.0);
}

TEST(BinaryIoTest, BoundedReaderStopsAtBudget) {
  const std::string bytes = "abcdefgh";
  std::istringstream in(bytes);
  BoundedReader r(&in, bytes.size());
  char buf[4];
  EXPECT_TRUE(r.ReadRaw(buf, 4, "head").ok());
  EXPECT_EQ(r.remaining(), 4u);
  // A length field larger than the remaining payload fails BEFORE reading.
  EXPECT_FALSE(r.Require(5, "huge field").ok());
  EXPECT_FALSE(r.ReadRaw(buf, 5, "huge field").ok());
  EXPECT_EQ(r.remaining(), 4u);  // budget unchanged by the failed read
  EXPECT_TRUE(r.ReadRaw(buf, 4, "tail").ok());
  EXPECT_EQ(r.remaining(), 0u);
  uint8_t b = 0;
  EXPECT_FALSE(r.ReadPod(&b, "past end").ok());
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(9);
  auto p = rng.Permutation(100);
  std::vector<int> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(DistributionsTest, GammaMomentsMatch) {
  Rng rng(21);
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sumsq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = SampleGamma(&rng, shape, scale);
    ASSERT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);        // E = k*theta = 6
  EXPECT_NEAR(var, shape * scale * scale, 0.5);  // V = k*theta^2 = 12
}

TEST(DistributionsTest, GammaSmallShape) {
  Rng rng(22);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += SampleGamma(&rng, 0.3, 1.0);
  EXPECT_NEAR(sum / n, 0.3, 0.02);
}

TEST(DistributionsTest, BetaInUnitIntervalWithRightMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = SampleBeta(&rng, 2.0, 3.0);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.4, 0.01);
}

TEST(DistributionsTest, DirichletSumsToOne) {
  Rng rng(24);
  auto v = SampleDirichletSym(&rng, 0.5, 10);
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-12);
  for (double x : v) EXPECT_GE(x, 0.0);
}

TEST(DistributionsTest, DirichletConcentrationControlsPeakedness) {
  Rng rng(25);
  double max_small = 0.0, max_large = 0.0;
  for (int i = 0; i < 200; ++i) {
    auto a = SampleDirichletSym(&rng, 0.05, 20);
    auto b = SampleDirichletSym(&rng, 5.0, 20);
    max_small += *std::max_element(a.begin(), a.end());
    max_large += *std::max_element(b.begin(), b.end());
  }
  EXPECT_GT(max_small / 200, max_large / 200 + 0.2);
}

TEST(DistributionsTest, BernoulliFrequency) {
  Rng rng(26);
  int ones = 0;
  for (int i = 0; i < 20000; ++i) ones += SampleBernoulli(&rng, 0.3);
  EXPECT_NEAR(ones / 20000.0, 0.3, 0.02);
}

TEST(DistributionsTest, CategoricalMatchesWeights) {
  Rng rng(27);
  std::vector<double> w = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[SampleCategorical(&rng, w)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.015);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.015);
}

TEST(DistributionsTest, AliasTableMatchesWeights) {
  Rng rng(28);
  std::vector<double> w = {0.5, 0.0, 3.5, 1.0};
  AliasTable table(w);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 50000; ++i) ++counts[table.Sample(&rng)];
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 50000.0, 0.7, 0.01);
  EXPECT_NEAR(counts[3] / 50000.0, 0.2, 0.01);
}

TEST(DistributionsTest, PoissonMean) {
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += SamplePoisson(&rng, 12.0);
  EXPECT_NEAR(sum / 20000, 12.0, 0.15);
  sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += SamplePoisson(&rng, 60.0);
  EXPECT_NEAR(sum / 20000, 60.0, 0.5);
}

TEST(DistributionsTest, SampleWithoutReplacementDistinct) {
  Rng rng(30);
  auto idx = SampleWithoutReplacement(&rng, 50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(std::unique(idx.begin(), idx.end()), idx.end());
  for (int i : idx) EXPECT_TRUE(i >= 0 && i < 50);
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*grain=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(KeyedLruPoolTest, ReturnsSameInstancePerKey) {
  KeyedLruPool<int> pool(4);
  int* a = pool.Acquire(7, [] { return std::make_unique<int>(70); });
  int* b = pool.Acquire(9, [] { return std::make_unique<int>(90); });
  EXPECT_NE(a, b);
  EXPECT_EQ(*a, 70);
  // A hit returns the identical object without invoking the factory.
  int* a_again = pool.Acquire(7, []() -> std::unique_ptr<int> {
    ADD_FAILURE() << "factory must not run on a hit";
    return nullptr;
  });
  EXPECT_EQ(a_again, a);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 2);
}

TEST(KeyedLruPoolTest, EvictsLeastRecentlyUsedByRecycling) {
  KeyedLruPool<int> pool(2);
  auto make = [](int v) {
    return [v] { return std::make_unique<int>(v); };
  };
  pool.Acquire(1, make(1));
  int* two = pool.Acquire(2, make(2));
  pool.Acquire(1, make(1));           // touch 1 => 2 becomes LRU
  int* three = pool.Acquire(3, []() -> std::unique_ptr<int> {
    ADD_FAILURE() << "eviction must recycle, not rebuild";
    return nullptr;
  });
  EXPECT_TRUE(pool.contains(1));
  EXPECT_FALSE(pool.contains(2));
  EXPECT_TRUE(pool.contains(3));
  EXPECT_EQ(pool.evictions(), 1);
  EXPECT_EQ(pool.size(), 2);
  // Key 3 took over key 2's instance (arena reuse): same object, stale
  // state — callers reset/validate acquired objects themselves.
  EXPECT_EQ(three, two);
  EXPECT_EQ(*three, 2);
}

TEST(KeyedLruPoolTest, PointerStableAcrossOtherAcquires) {
  KeyedLruPool<int> pool(3);
  int* a = pool.Acquire(1, [] { return std::make_unique<int>(1); });
  pool.Acquire(2, [] { return std::make_unique<int>(2); });
  pool.Acquire(3, [] { return std::make_unique<int>(3); });
  // 1 is the LRU but not yet evicted; its pointer must still be valid.
  int* a_again = pool.Acquire(1, [] { return std::make_unique<int>(-1); });
  EXPECT_EQ(a_again, a);
  EXPECT_EQ(*a, 1);
}

TEST(CsvTest, WritesHeaderAndRowsWithEscaping) {
  CsvWriter csv({"name", "value"});
  csv.AddRow({"plain", CsvWriter::Cell(1.5)});
  csv.AddRow({"with,comma", "with\"quote"});
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.5000");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/x.csv").ok());
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name", "news",
                        "--verbose", "--count=7"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "news");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
  EXPECT_FALSE(flags.Has("missing"));
}

}  // namespace
}  // namespace cerl
