// Tests for the causal layer: metrics, scalers, herding (vs random,
// property-style), the representation network, CFR training on a toy DGP
// with selection bias, and the strategy drivers.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/cfr.h"
#include "causal/herding.h"
#include "causal/metrics.h"
#include "causal/scaler.h"
#include "causal/strategies.h"
#include "linalg/ops.h"
#include "util/rng.h"

namespace cerl::causal {
namespace {

using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

TEST(MetricsTest, PerfectPredictionIsZero) {
  Vector truth = {1.0, 2.0, 3.0};
  CausalMetrics m = EvaluateIte(truth, truth);
  EXPECT_DOUBLE_EQ(m.pehe, 0.0);
  EXPECT_DOUBLE_EQ(m.ate_error, 0.0);
}

TEST(MetricsTest, HandComputedValues) {
  Vector truth = {1.0, 1.0};
  Vector pred = {2.0, 0.0};
  CausalMetrics m = EvaluateIte(truth, pred);
  EXPECT_DOUBLE_EQ(m.pehe, 1.0);       // sqrt((1 + 1) / 2)
  EXPECT_DOUBLE_EQ(m.ate_error, 0.0);  // errors cancel in the mean
  Vector biased = {2.0, 2.0};
  m = EvaluateIte(truth, biased);
  EXPECT_DOUBLE_EQ(m.pehe, 1.0);
  EXPECT_DOUBLE_EQ(m.ate_error, 1.0);
}

TEST(ScalerTest, FeatureStandardizeRoundTrip) {
  Matrix x = {{1.0, 10.0}, {3.0, 20.0}, {5.0, 30.0}};
  FeatureScaler scaler;
  scaler.Fit(x);
  Matrix z = scaler.Apply(x);
  Vector means = linalg::ColumnMeans(z);
  Vector stds = linalg::ColumnStds(z);
  for (double m : means) EXPECT_NEAR(m, 0.0, 1e-12);
  for (double s : stds) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(ScalerTest, OutcomeInverseTransform) {
  OutcomeScaler scaler;
  scaler.Fit({10.0, 20.0, 30.0});
  const double z = scaler.Transform(25.0);
  EXPECT_NEAR(scaler.InverseTransform(z), 25.0, 1e-12);
  EXPECT_GT(scaler.scale(), 0.0);
}

TEST(HerdingTest, SelectsExactCountDistinct) {
  Rng rng(1);
  Matrix rows(50, 4);
  for (int64_t i = 0; i < rows.size(); ++i) rows.data()[i] = rng.Normal();
  auto idx = HerdingSelect(rows, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::vector<int> sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(HerdingTest, FirstPickIsClosestToMean) {
  Matrix rows = {{10.0, 0.0}, {0.1, 0.0}, {-10.0, 1.0}, {5.0, -1.0}};
  // Mean ~ (1.275, 0); row 1 is nearest.
  auto idx = HerdingSelect(rows, 1);
  EXPECT_EQ(idx[0], 1);
}

// Property: herding approximates the population mean at least as well as
// random subsampling, across many draws.
TEST(HerdingTest, BeatsRandomSubsamplingOnMeanApproximation) {
  Rng rng(2);
  int herding_wins = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    Matrix rows(80, 6);
    for (int64_t i = 0; i < rows.size(); ++i) {
      rows.data()[i] = rng.Normal(rng.Uniform(-1, 1), 1.0);
    }
    auto herd = HerdingSelect(rows, 10);
    auto rand = RandomSelect(80, 10, &rng);
    if (MeanApproximationError(rows, herd) <=
        MeanApproximationError(rows, rand)) {
      ++herding_wins;
    }
  }
  EXPECT_GE(herding_wins, 18);  // Herding should essentially always win.
}

// Direct-form greedy score of candidate c given the selected prefix.
double HerdingScore(const Matrix& rows, const std::vector<int>& prefix,
                    int c) {
  const linalg::Vector mean = linalg::ColumnMeans(rows);
  linalg::Vector sum(rows.cols(), 0.0);
  for (int s : prefix) {
    for (int j = 0; j < rows.cols(); ++j) sum[j] += rows(s, j);
  }
  const double inv = 1.0 / static_cast<double>(prefix.size() + 1);
  double dist = 0.0;
  for (int j = 0; j < rows.cols(); ++j) {
    const double v = mean[j] - (sum[j] + rows(c, j)) * inv;
    dist += v * v;
  }
  return dist;
}

// The expanded-norm fast path must pick the same exemplars, in the same
// order, as the direct-form reference scan — except where the two
// candidates' scores tie within floating-point rounding (the expanded form
// rounds differently, and FP contraction makes the exact bits
// platform-dependent), in which case either pick is a correct greedy step.
TEST(HerdingTest, MatchesReferenceImplementation) {
  for (uint64_t seed = 11; seed < 16; ++seed) {
    Rng rng(seed);
    const int n = 120 + static_cast<int>(seed) * 7;
    const int d = 3 + static_cast<int>(seed % 4);
    Matrix rows(n, d);
    for (int64_t i = 0; i < rows.size(); ++i) {
      rows.data()[i] = rng.Normal(rng.Uniform(-1, 1), 1.0);
    }
    const int count = n / 3;
    const std::vector<int> fast = HerdingSelect(rows, count);
    const std::vector<int> reference = HerdingSelectReference(rows, count);
    ASSERT_EQ(fast.size(), reference.size());
    std::vector<int> prefix;
    for (int k = 0; k < count; ++k) {
      if (fast[k] != reference[k]) {
        // Both picks must be greedy-optimal within FP noise; after a tie
        // the two runs legitimately diverge, so stop comparing.
        const double fast_score = HerdingScore(rows, prefix, fast[k]);
        const double ref_score = HerdingScore(rows, prefix, reference[k]);
        EXPECT_NEAR(fast_score, ref_score,
                    1e-9 * (1.0 + std::fabs(ref_score)))
            << "seed " << seed << " pick " << k;
        break;
      }
      prefix.push_back(fast[k]);
    }
  }
}

TEST(HerdingTest, SelectingAllPerfectlyMatchesMean) {
  Rng rng(3);
  Matrix rows(15, 3);
  for (int64_t i = 0; i < rows.size(); ++i) rows.data()[i] = rng.Normal();
  auto idx = HerdingSelect(rows, 15);
  EXPECT_NEAR(MeanApproximationError(rows, idx), 0.0, 1e-12);
}

// Toy observational DGP with selection bias and heterogeneous effects:
//   mu0 = x1 + 0.5 x2, tau = 1 + x0, p(T=1) = sigmoid(x0 + x3).
CausalDataset ToyDgp(Rng* rng, int n) {
  const int p = 6;
  CausalDataset d;
  d.x = Matrix(n, p);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) d.x(i, j) = rng->Normal();
    const double tau = 1.0 + d.x(i, 0);
    d.mu0[i] = d.x(i, 1) + 0.5 * d.x(i, 2);
    d.mu1[i] = d.mu0[i] + tau;
    const double logit = d.x(i, 0) + d.x(i, 3);
    const double prop = 1.0 / (1.0 + std::exp(-logit));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

NetConfig SmallNet() {
  NetConfig net;
  net.rep_hidden = {16};
  net.rep_dim = 8;
  net.head_hidden = {8};
  return net;
}

TrainConfig FastTrain(uint64_t seed = 11) {
  TrainConfig t;
  t.epochs = 60;
  t.batch_size = 64;
  t.learning_rate = 3e-3;
  t.patience = 60;  // no early stop on the tiny toy
  t.alpha = 0.2;
  t.lambda = 1e-5;
  t.seed = seed;
  return t;
}

TEST(RepOutcomeNetTest, ShapesAndIteComputation) {
  Rng rng(4);
  RepOutcomeNet net(&rng, SmallNet(), 6);
  CausalDataset d = ToyDgp(&rng, 50);
  net.x_scaler().Fit(d.x);
  net.y_scaler().Fit(d.y);
  Matrix reps = net.Representations(d.x);
  EXPECT_EQ(reps.rows(), 50);
  EXPECT_EQ(reps.cols(), 8);
  // Cosine-normalized tanh representations stay within (-1, 1).
  for (int64_t i = 0; i < reps.size(); ++i) {
    ASSERT_LT(std::fabs(reps.data()[i]), 1.0);
  }
  Vector ite = net.PredictIte(d.x);
  Vector y1 = net.PredictOutcome(d.x, 1);
  Vector y0 = net.PredictOutcome(d.x, 0);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(ite[i], y1[i] - y0[i], 1e-9);
}

TEST(RepOutcomeNetTest, CopyParametersMatchesOutputs) {
  Rng rng1(5), rng2(6);
  RepOutcomeNet a(&rng1, SmallNet(), 6);
  RepOutcomeNet b(&rng2, SmallNet(), 6);
  CausalDataset d = ToyDgp(&rng1, 20);
  a.x_scaler().Fit(d.x);
  a.y_scaler().Fit(d.y);
  b.CopyParametersFrom(a);
  EXPECT_EQ(Matrix::MaxAbsDiff(a.Representations(d.x),
                               b.Representations(d.x)),
            0.0);
}

TEST(CfrTest, TrainingImprovesPeheOverInit) {
  Rng rng(7);
  CausalDataset train = ToyDgp(&rng, 600);
  CausalDataset valid = ToyDgp(&rng, 150);
  CausalDataset test = ToyDgp(&rng, 300);
  CfrModel model(SmallNet(), FastTrain(), 6);
  // Scalers must exist for the untrained evaluation.
  model.net().x_scaler().Fit(train.x);
  model.net().y_scaler().Fit(train.y);
  const CausalMetrics before = model.Evaluate(test);
  TrainStats stats = model.Train(train, valid);
  const CausalMetrics after = model.Evaluate(test);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_LT(after.pehe, before.pehe);
  // True ITE std is 1; a trained model should be well under that error.
  EXPECT_LT(after.pehe, 0.75);
  EXPECT_LT(after.ate_error, 0.4);
}

TEST(CfrTest, FineTunePreservesScalers) {
  Rng rng(8);
  CausalDataset train = ToyDgp(&rng, 300);
  CausalDataset valid = ToyDgp(&rng, 100);
  CfrModel model(SmallNet(), FastTrain(), 6);
  model.Train(train, valid);
  // Scalers should be identical objects (refit is not allowed in FineTune):
  // verify by checking the transformed output of a fixed point.
  Matrix probe(1, 6, 0.5);
  Matrix before = model.net().x_scaler().Apply(probe);
  CausalDataset train2 = ToyDgp(&rng, 300);
  CausalDataset valid2 = ToyDgp(&rng, 100);
  model.FineTune(train2, valid2);
  Matrix after = model.net().x_scaler().Apply(probe);
  EXPECT_EQ(Matrix::MaxAbsDiff(before, after), 0.0);
}

TEST(StrategiesTest, NamesAndStageEvalShape) {
  EXPECT_STREQ(StrategyName(Strategy::kA), "CFR-A");
  EXPECT_STREQ(StrategyName(Strategy::kB), "CFR-B");
  EXPECT_STREQ(StrategyName(Strategy::kC), "CFR-C");

  Rng rng(9);
  std::vector<DataSplit> stream;
  for (int d = 0; d < 2; ++d) {
    stream.push_back(data::SplitDataset(ToyDgp(&rng, 300), &rng));
  }
  StrategyConfig config;
  config.net = SmallNet();
  config.train = FastTrain();
  config.train.epochs = 15;
  StrategyRunResult result = RunCfrStrategy(Strategy::kA, stream, config);
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_EQ(result.stages[0].per_domain.size(), 1u);
  EXPECT_EQ(result.stages[1].per_domain.size(), 2u);
  EXPECT_GT(result.final_stage().pooled.pehe, 0.0);
}

TEST(BuildFactualLossTest, SingleGroupBatchIsHandled) {
  Rng rng(10);
  RepOutcomeNet net(&rng, SmallNet(), 6);
  CausalDataset d = ToyDgp(&rng, 12);
  std::vector<int> all_treated(12, 1);
  net.x_scaler().Fit(d.x);
  net.y_scaler().Fit(d.y);
  autodiff::Tape tape;
  autodiff::Var x = tape.Constant(net.x_scaler().Apply(d.x));
  FactualForward fwd = BuildFactualLoss(&net, &tape, x, all_treated,
                                        net.y_scaler().Transform(d.y));
  EXPECT_EQ(fwd.n_treated, 12);
  EXPECT_EQ(fwd.n_control, 0);
  EXPECT_EQ(fwd.rep_control.rows(), 0);
  EXPECT_TRUE(std::isfinite(fwd.loss.scalar()));
  tape.Backward(fwd.loss);  // Must not crash with an empty group.
}

// The scratch overload (tape-aliased targets, reused split buffers) must
// produce the same loss and gradients as the per-call-local path, and must
// keep the tape arena allocation-free across steady-state re-recordings.
TEST(BuildFactualLossTest, ScratchPathMatchesLocalAndIsZeroChurn) {
  Rng rng(11);
  RepOutcomeNet net(&rng, SmallNet(), 6);
  CausalDataset d = ToyDgp(&rng, 24);
  net.x_scaler().Fit(d.x);
  net.y_scaler().Fit(d.y);
  const Matrix x_scaled = net.x_scaler().Apply(d.x);
  const Vector y_scaled = net.y_scaler().Transform(d.y);

  double local_loss = 0.0;
  {
    autodiff::Tape tape;
    FactualForward fwd = BuildFactualLoss(
        &net, &tape, tape.Constant(x_scaled), d.t, y_scaled);
    local_loss = fwd.loss.scalar();
  }

  autodiff::Tape tape;
  FactualScratch scratch;
  int64_t allocs = -1;
  for (int step = 0; step < 4; ++step) {
    tape.Reset();
    FactualForward fwd = BuildFactualLoss(
        &net, &tape, tape.Constant(x_scaled), d.t, y_scaled, &scratch);
    EXPECT_DOUBLE_EQ(fwd.loss.scalar(), local_loss);
    tape.Backward(fwd.loss);
    if (step == 0) {
      allocs = tape.arena_allocations();
    } else {
      EXPECT_EQ(tape.arena_allocations(), allocs) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace cerl::causal
