// Tests for the effect-query serving plane (src/serve/ + the StreamEngine
// read path): bit-identity of snapshot predictions with the publishing
// trainer (directly, through a checkpoint round-trip, and under the forced
// scalar kernel table), the zero-allocation steady state of the inference
// arena, snapshot publish/version semantics, quarantined-stream staleness,
// and the per-stream query stats surface.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "linalg/simd.h"
#include "serve/batch_predictor.h"
#include "serve/effect_snapshot.h"
#include "stream/stream_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cerl::serve {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;
using stream::EffectQueryMeta;
using stream::QueryContext;
using stream::StreamEngine;
using stream::StreamEngineOptions;
using stream::StreamHealth;
using stream::StreamQueryStats;

constexpr int kFeatures = 8;

CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> out;
  for (int d = 0; d < domains; ++d) {
    out.push_back(data::SplitDataset(ShiftedToy(&rng, 300, shift * d), &rng));
  }
  return out;
}

// Small but representative config: cosine-normalized representation (the
// paper's default) so the snapshot's precomputed column normalization is on
// the tested path, elu hidden activations for the transcendental branch.
CerlConfig SmallConfig(uint64_t seed) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 10;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 10;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.train.async_validation = false;
  c.memory_capacity = 100;
  return c;
}

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "row " << i;
  }
}

// Trains `domains` stages and checks every bit-identity contract of one
// snapshot: batch vs the trainer, 1-row queries vs 1-row trainer forwards,
// and stability through a checkpoint round-trip. Runs under whichever
// kernel table is active, so the forced-scalar test reuses it wholesale.
void CheckSnapshotIdentity(uint64_t seed) {
  const CerlConfig config = SmallConfig(seed);
  const std::vector<DataSplit> domains = MakeStream(seed + 1, 2, 0.8);
  CerlTrainer trainer(config, kFeatures);
  for (const DataSplit& split : domains) trainer.ObserveDomain(split);

  auto snap = BuildEffectSnapshot(trainer, 1);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 1u);
  EXPECT_EQ(snap->stage, 2);
  EXPECT_EQ(snap->input_dim, kFeatures);
  EXPECT_EQ(snap->fingerprint, SnapshotFingerprint(*snap));

  const Matrix& x = domains.back().test.x;
  const Vector expected = trainer.PredictIte(x);

  BatchPredictor predictor;
  Vector got;
  predictor.PredictIte(*snap, x, &got);
  ExpectBitIdentical(expected, got);

  // Single-row queries against 1-row trainer forwards (same block shape on
  // both sides, so this is bitwise too).
  Matrix one(1, kFeatures);
  for (int r = 0; r < std::min(8, x.rows()); ++r) {
    for (int c = 0; c < kFeatures; ++c) one(0, c) = x(r, c);
    const Vector expected_one = trainer.PredictIte(one);
    EXPECT_EQ(predictor.PredictIteRow(*snap, x.row(r)), expected_one[0]);
  }

  // A snapshot built from a checkpoint round-trip of the trainer is the
  // same model: same fingerprint, same predictions.
  std::string blob;
  ASSERT_TRUE(trainer.SerializeCheckpoint(&blob).ok());
  CerlTrainer restored(config, kFeatures);
  ASSERT_TRUE(restored.DeserializeCheckpoint(blob).ok());
  auto snap2 = BuildEffectSnapshot(restored, 1);
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap2->fingerprint, snap->fingerprint);
  Vector got2;
  BatchPredictor predictor2;
  predictor2.PredictIte(*snap2, x, &got2);
  ExpectBitIdentical(expected, got2);
}

TEST(EffectSnapshotTest, PredictsBitIdenticalToTrainerAndCheckpoint) {
  CheckSnapshotIdentity(41);
}

TEST(EffectSnapshotTest, PredictsBitIdenticalUnderForcedScalarKernels) {
  // The whole flow — training, snapshot build (including the precomputed
  // cosine column normalization), and both prediction paths — on the
  // portable scalar kernel table, as CERL_FORCE_SCALAR=1 would select it.
  linalg::simd::ForceScalarForTesting(true);
  CheckSnapshotIdentity(43);
  linalg::simd::ForceScalarForTesting(false);
}

TEST(EffectSnapshotTest, BuildReturnsNullBeforeFirstStage)
{
  CerlTrainer trainer(SmallConfig(7), kFeatures);
  EXPECT_EQ(BuildEffectSnapshot(trainer, 1), nullptr);
}

TEST(BatchPredictorTest, SteadyStateMakesNoArenaAllocations) {
  const CerlConfig config = SmallConfig(47);
  const std::vector<DataSplit> domains = MakeStream(48, 1, 0.5);
  CerlTrainer trainer(config, kFeatures);
  trainer.ObserveDomain(domains[0]);
  auto snap = BuildEffectSnapshot(trainer, 1);
  ASSERT_NE(snap, nullptr);

  const Matrix& x = domains[0].test.x;
  BatchPredictor predictor;
  Vector ite;
  ite.reserve(static_cast<size_t>(x.rows()));
  // Warm-up: the largest batch this predictor will see, plus the 1-row
  // shape (a smaller block than the batch's 64-row panels, but shrinking
  // never allocates — the assertion below proves it).
  predictor.PredictIte(*snap, x, &ite);
  predictor.PredictIteRow(*snap, x.row(0));
  const int64_t warm = predictor.arena_allocations();
  EXPECT_GT(warm, 0);

  double sink = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    predictor.PredictIte(*snap, x, &ite);
    sink += predictor.PredictIteRow(*snap, x.row(iter % x.rows()));
  }
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_EQ(predictor.arena_allocations(), warm)
      << "query steady state allocated";
}

TEST(QueryPlaneTest, PublishesAfterEachDomainAndAnswersBitIdentically) {
  const CerlConfig config = SmallConfig(51);
  const std::vector<DataSplit> domains = MakeStream(52, 2, 0.8);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("tenant", config, kFeatures);
  QueryContext* ctx = engine.CreateQueryContext();

  // Before the first publish: typed precondition reject, counted.
  double ite_one = 0.0;
  const Matrix& x = domains[0].test.x;
  Status s = engine.QueryEffect(ctx, id, x.row(0), kFeatures, &ite_one);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.QueryEffect(ctx, 99, x.row(0), kFeatures, &ite_one).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
  engine.Drain();
  EffectQueryMeta meta;
  Vector ite;
  ASSERT_TRUE(engine.QueryEffectBatch(ctx, id, x, &ite, &meta).ok());
  EXPECT_EQ(meta.snapshot_version, 1u);
  EXPECT_EQ(meta.snapshot_stage, 1);
  EXPECT_FALSE(meta.stale);
  ExpectBitIdentical(engine.trainer(id).PredictIte(x), ite);

  // Wrong dimension count: rejected without touching the model.
  Matrix bad(2, kFeatures + 1);
  Vector bad_ite;
  EXPECT_EQ(engine.QueryEffectBatch(ctx, id, bad, &bad_ite).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(engine.PushDomain(id, domains[1]).ok());
  engine.Drain();
  ASSERT_TRUE(engine.QueryEffectBatch(ctx, id, x, &ite, &meta).ok());
  EXPECT_EQ(meta.snapshot_version, 2u);
  EXPECT_EQ(meta.snapshot_stage, 2);
  ExpectBitIdentical(engine.trainer(id).PredictIte(x), ite);
  // The single-row API agrees with a 1-row batch (same code path).
  Matrix one(1, kFeatures);
  for (int c = 0; c < kFeatures; ++c) one(0, c) = x(1, c);
  Vector one_ite;
  ASSERT_TRUE(engine.QueryEffectBatch(ctx, id, one, &one_ite).ok());
  ASSERT_TRUE(engine.QueryEffect(ctx, id, x.row(1), kFeatures, &ite_one).ok());
  EXPECT_EQ(ite_one, one_ite[0]);

  const StreamQueryStats stats = engine.query_stats(id);
  EXPECT_EQ(stats.snapshot_version, 2u);
  EXPECT_EQ(stats.snapshot_stage, 2);
  EXPECT_GE(stats.staleness_ms, 0.0);
  EXPECT_FALSE(stats.stale);
  EXPECT_EQ(stats.queries, 4);  // two batches + one 1-row batch + one row
  EXPECT_EQ(stats.rows, 2 * x.rows() + 2);
  EXPECT_EQ(stats.rejected, 2);  // pre-publish + bad dims (bad id excluded)
  EXPECT_EQ(stats.latency.count(), 4);
}

TEST(QueryPlaneTest, PublishOffServesNothing) {
  StreamEngineOptions options;
  options.num_workers = 2;
  options.publish_snapshots = false;
  StreamEngine engine(options);
  const CerlConfig config = SmallConfig(53);
  const int id = engine.AddStream("dark", config, kFeatures);
  QueryContext* ctx = engine.CreateQueryContext();
  const std::vector<DataSplit> domains = MakeStream(54, 1, 0.5);
  ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
  engine.Drain();
  Vector ite;
  EXPECT_EQ(engine.QueryEffectBatch(ctx, id, domains[0].test.x, &ite).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.effect_snapshot(id), nullptr);
  EXPECT_EQ(engine.query_stats(id).snapshot_version, 0u);
}

TEST(QueryPlaneTest, QuarantinedStreamServesLastGoodSnapshotAsStale) {
  FaultInjector::Global().Reset();
  StreamEngineOptions options;
  options.num_workers = 2;
  options.max_domain_retries = 0;
  options.quarantine_after_failures = 1;
  StreamEngine engine(options);
  const CerlConfig config = SmallConfig(57);
  const int id = engine.AddStream("sick", config, kFeatures);
  QueryContext* ctx = engine.CreateQueryContext();
  const std::vector<DataSplit> domains = MakeStream(58, 2, 0.5);

  ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
  engine.Drain();
  Vector before;
  EffectQueryMeta meta;
  ASSERT_TRUE(
      engine.QueryEffectBatch(ctx, id, domains[0].test.x, &before, &meta)
          .ok());
  ASSERT_EQ(meta.snapshot_version, 1u);
  ASSERT_FALSE(meta.stale);

  // Every further stage attempt of this stream throws: the next domain is
  // dropped and the stream quarantined.
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "sick",
                              /*probability=*/1.0, /*max_fires=*/0,
                              /*seed=*/5);
  ASSERT_TRUE(engine.PushDomain(id, domains[1]).ok());
  engine.Drain();
  ASSERT_EQ(engine.health(id), StreamHealth::kQuarantined);
  EXPECT_EQ(engine.PushDomain(id, domains[1]).code(),
            StatusCode::kUnavailable);

  // Still serving — the last-good model, flagged stale, version unchanged.
  Vector after;
  ASSERT_TRUE(
      engine.QueryEffectBatch(ctx, id, domains[0].test.x, &after, &meta)
          .ok());
  EXPECT_EQ(meta.snapshot_version, 1u);
  EXPECT_TRUE(meta.stale);
  ExpectBitIdentical(before, after);
  EXPECT_TRUE(engine.query_stats(id).stale);
  FaultInjector::Global().Reset();
}

TEST(QueryPlaneTest, LoadSnapshotRepublishesRestoredStreams) {
  const CerlConfig config = SmallConfig(61);
  const std::vector<DataSplit> domains = MakeStream(62, 1, 0.5);
  const std::string path = ::testing::TempDir() + "/serve_republish.snap";
  Vector expected;
  {
    StreamEngineOptions options;
    options.num_workers = 2;
    StreamEngine engine(options);
    const int id = engine.AddStream("restoreme", config, kFeatures);
    ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
    engine.Drain();
    expected = engine.trainer(id).PredictIte(domains[0].test.x);
    ASSERT_TRUE(engine.SaveSnapshot(path).ok());
  }
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.LoadSnapshot(path).ok());
  QueryContext* ctx = engine.CreateQueryContext();
  Vector ite;
  EffectQueryMeta meta;
  ASSERT_TRUE(
      engine.QueryEffectBatch(ctx, 0, domains[0].test.x, &ite, &meta).ok());
  EXPECT_EQ(meta.snapshot_version, 1u);  // publish sequence restarts
  EXPECT_EQ(meta.snapshot_stage, 1);
  ExpectBitIdentical(expected, ite);
}

}  // namespace
}  // namespace cerl::serve
