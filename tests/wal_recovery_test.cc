// WAL durability tests: torn-tail truncation at every byte offset,
// byte-flip corruption recovery (longest valid prefix), and engine-level
// crash simulation — a WAL image captured between accepted domains replays
// into a fresh engine bit-identically to the uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "storage/wal.h"
#include "stream/stream_engine.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;
using storage::Wal;

constexpr int kFeatures = 6;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

void CopyFile(const std::string& from, const std::string& to) {
  auto raw = ReadFileToString(from);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_TRUE(WriteFileAtomic(to, raw.value()).ok());
}

CausalDataset Toy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1));
    d.mu1[i] = d.mu0[i] + tau;
    d.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  for (int d = 0; d < domains; ++d) {
    stream.push_back(data::SplitDataset(Toy(&rng, 200, shift * d), &rng));
  }
  return stream;
}

CerlConfig FastConfig(uint64_t seed) {
  CerlConfig c;
  c.net.rep_hidden = {12};
  c.net.rep_dim = 6;
  c.net.head_hidden = {6};
  c.train.epochs = 8;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 8;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.memory_capacity = 60;
  return c;
}

void ExpectTrainersBitIdentical(CerlTrainer* a, CerlTrainer* b,
                                const Matrix& probe, const std::string& tag) {
  ASSERT_EQ(a->stages_seen(), b->stages_seen()) << tag;
  const Vector ia = a->PredictIte(probe);
  const Vector ib = b->PredictIte(probe);
  ASSERT_EQ(ia.size(), ib.size()) << tag;
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia[i], ib[i]) << tag << " unit " << i;
  }
  ASSERT_EQ(a->memory().size(), b->memory().size()) << tag;
  EXPECT_EQ(Matrix::MaxAbsDiff(a->memory().reps(), b->memory().reps()), 0.0)
      << tag;
}

// --- Raw Wal record-level recovery ----------------------------------------

std::vector<Wal::Record> TestRecords() {
  std::vector<Wal::Record> records;
  records.push_back({1, ""});  // empty payload is a legal record
  records.push_back({2, "alpha"});
  records.push_back({7, std::string(100, '\x5c')});
  std::string mixed = "bytes-with-nul";
  mixed[5] = '\0';
  mixed[6] = '\xff';
  records.push_back({2, mixed});
  return records;
}

TEST(WalRecoveryTest, ReopenRecoversAppendedRecords) {
  const std::string path = TempPath("wal_reopen.wal");
  const std::vector<Wal::Record> records = TestRecords();
  {
    auto wal = Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal.value()->recovered().empty());
    for (const Wal::Record& r : records) {
      ASSERT_TRUE(wal.value()->Append(r.type, r.payload).ok());
    }
    EXPECT_EQ(wal.value()->appended_records(), records.size());
  }
  auto wal = Wal::Open(path, {});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->truncated_bytes(), 0u);
  ASSERT_EQ(wal.value()->recovered().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(wal.value()->recovered()[i].type, records[i].type) << i;
    EXPECT_EQ(wal.value()->recovered()[i].payload, records[i].payload) << i;
  }
}

// Torn tail at EVERY byte offset: for each prefix length of the log file,
// Open must recover exactly the fully contained records, truncate the rest,
// and leave the file appendable from the clean boundary.
TEST(WalRecoveryTest, TornTailTruncatedAtEveryOffset) {
  const std::string path = TempPath("wal_torn_master.wal");
  const std::vector<Wal::Record> records = TestRecords();
  std::vector<size_t> boundaries = {0};  // byte offset after each record
  {
    auto wal = Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    for (const Wal::Record& r : records) {
      ASSERT_TRUE(wal.value()->Append(r.type, r.payload).ok());
      boundaries.push_back(wal.value()->size_bytes());
    }
  }
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  const std::string bytes = std::move(raw).value();
  ASSERT_EQ(bytes.size(), boundaries.back());

  const std::string torn = TempPath("wal_torn.wal");
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(torn, bytes.substr(0, cut)).ok());
    auto wal = Wal::Open(torn, {});
    ASSERT_TRUE(wal.ok()) << "cut=" << cut;
    // Complete records before the cut survive; the torn tail is dropped.
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    ASSERT_EQ(wal.value()->recovered().size(), complete) << "cut=" << cut;
    EXPECT_EQ(wal.value()->truncated_bytes(), cut - boundaries[complete])
        << "cut=" << cut;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(wal.value()->recovered()[i].payload, records[i].payload)
          << "cut=" << cut << " record " << i;
    }
    // The log continues cleanly from the truncation boundary.
    ASSERT_TRUE(wal.value()->Append(99, "post-crash").ok()) << "cut=" << cut;
    wal.value().reset();
    auto reopened = Wal::Open(torn, {});
    ASSERT_TRUE(reopened.ok()) << "cut=" << cut;
    ASSERT_EQ(reopened.value()->recovered().size(), complete + 1)
        << "cut=" << cut;
    EXPECT_EQ(reopened.value()->recovered().back().payload, "post-crash");
  }
}

// A flipped byte anywhere in the log invalidates the record containing it;
// recovery keeps exactly the records before the corruption.
TEST(WalRecoveryTest, ByteFlipCorruptionKeepsValidPrefix) {
  const std::string path = TempPath("wal_flip_master.wal");
  const std::vector<Wal::Record> records = TestRecords();
  std::vector<size_t> boundaries = {0};
  {
    auto wal = Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    for (const Wal::Record& r : records) {
      ASSERT_TRUE(wal.value()->Append(r.type, r.payload).ok());
      boundaries.push_back(wal.value()->size_bytes());
    }
  }
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  const std::string bytes = std::move(raw).value();

  const std::string flipped = TempPath("wal_flip.wal");
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    ASSERT_TRUE(WriteFileAtomic(flipped, corrupt).ok());
    auto wal = Wal::Open(flipped, {});
    ASSERT_TRUE(wal.ok()) << "pos=" << pos;
    // The record containing the flipped byte fails its checksum (or its
    // length field), so recovery stops right before it.
    size_t hit = 0;
    while (boundaries[hit + 1] <= pos) ++hit;
    ASSERT_EQ(wal.value()->recovered().size(), hit) << "pos=" << pos;
    for (size_t i = 0; i < hit; ++i) {
      EXPECT_EQ(wal.value()->recovered()[i].payload, records[i].payload)
          << "pos=" << pos << " record " << i;
    }
    EXPECT_GT(wal.value()->truncated_bytes(), 0u) << "pos=" << pos;
  }
}

// --- Engine-level crash replay --------------------------------------------

// Kill-between-accepted-domains simulation: every PushDomain appends its
// record before returning, so a copy of the WAL taken while training is
// still in flight is exactly the on-disk state of a process killed there.
// Recovering from that image must reproduce the uninterrupted run bitwise.
TEST(WalRecoveryTest, ReplayAfterSimulatedKillIsBitIdentical) {
  const int kStreams = 2;
  const int kDomains = 3;
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(FastConfig(500 + 31 * s));
    domains.push_back(MakeStream(60 + s, kDomains, 0.3 + 0.2 * s));
  }

  StreamEngineOptions plain;
  plain.num_workers = 2;
  StreamEngine reference(plain);
  for (int s = 0; s < kStreams; ++s) {
    reference.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
    for (const DataSplit& split : domains[s]) {
      ASSERT_TRUE(reference.PushDomain(s, split).ok());
    }
  }
  reference.Drain();

  const std::string wal_path = TempPath("wal_kill.wal");
  const std::string crash_image = TempPath("wal_kill_crash.wal");
  {
    StreamEngineOptions options = plain;
    options.wal_path = wal_path;
    StreamEngine original(options);
    ASSERT_TRUE(original.OpenStorage().ok());
    for (int s = 0; s < kStreams; ++s) {
      original.AddStream("tenant-" + std::to_string(s), configs[s],
                         kFeatures);
    }
    for (int d = 0; d < kDomains; ++d) {
      for (int s = 0; s < kStreams; ++s) {
        ASSERT_TRUE(original.PushDomain(s, domains[s][d]).ok());
      }
    }
    // "Crash": capture the log while most domains are still queued or
    // training. Accepted-implies-logged means the image holds all of them.
    CopyFile(wal_path, crash_image);
    original.Drain();  // the original finishes normally; we recover the copy
  }

  StreamEngineOptions options = plain;
  options.wal_path = crash_image;
  StreamEngine recovered(options);
  ASSERT_TRUE(recovered.Recover("").ok());
  ASSERT_EQ(recovered.num_streams(), kStreams);
  recovered.Drain();
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(recovered.name(s), "tenant-" + std::to_string(s));
    ASSERT_EQ(recovered.results(s).size(), static_cast<size_t>(kDomains));
    ExpectTrainersBitIdentical(&reference.trainer(s), &recovered.trainer(s),
                               domains[s][0].test.x,
                               "stream " + std::to_string(s));
  }
}

// A fault-injected WAL append rejects the push with IoError and the domain
// leaves no trace: not in the results, not in the recovered log.
TEST(WalRecoveryTest, FaultedAppendRejectsTheDomain) {
  const CerlConfig config = FastConfig(700);
  const std::vector<DataSplit> domains = MakeStream(70, 2, 0.4);
  const std::string wal_path = TempPath("wal_fault.wal");

  {
    StreamEngineOptions options;
    options.num_workers = 2;
    options.wal_path = wal_path;
    StreamEngine engine(options);
    ASSERT_TRUE(engine.OpenStorage().ok());
    const int id = engine.AddStream("faulted", config, kFeatures);

    FaultInjector::Global().Arm(FaultPoint::kIoWrite, /*scope=*/"",
                                /*probability=*/1.0, /*max_fires=*/1,
                                /*seed=*/1);
    const Status rejected = engine.PushDomain(id, domains[0]);
    FaultInjector::Global().Reset();
    EXPECT_EQ(rejected.code(), StatusCode::kIoError);

    ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
    engine.Drain();
    // The rejected push left no result slot; the accepted retry trained.
    ASSERT_EQ(engine.results(id).size(), 1u);
    EXPECT_EQ(engine.results(id)[0].domain_index, 0);
    EXPECT_EQ(engine.storage_stats().wal_records, 2u);  // AddStream + domain
  }

  // The log carries exactly the accepted mutations.
  auto wal = Wal::Open(wal_path, {});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->recovered().size(), 2u);
  EXPECT_EQ(wal.value()->truncated_bytes(), 0u);
}

// SaveSnapshot compacts the log down to what the snapshot does not subsume;
// snapshot + compacted WAL still recover the full run bit-identically.
TEST(WalRecoveryTest, SnapshotCompactionKeepsRecoveryExact) {
  const CerlConfig config = FastConfig(800);
  const std::vector<DataSplit> domains = MakeStream(80, 3, 0.5);
  const std::string wal_path = TempPath("wal_compact.wal");
  const std::string snap_path = TempPath("wal_compact.snap");

  StreamEngineOptions plain;
  plain.num_workers = 2;
  StreamEngine reference(plain);
  reference.AddStream("tenant", config, kFeatures);
  for (const DataSplit& split : domains) {
    ASSERT_TRUE(reference.PushDomain(0, split).ok());
  }
  reference.Drain();

  {
    StreamEngineOptions options = plain;
    options.wal_path = wal_path;
    StreamEngine original(options);
    ASSERT_TRUE(original.OpenStorage().ok());
    original.AddStream("tenant", config, kFeatures);
    ASSERT_TRUE(original.PushDomain(0, domains[0]).ok());
    ASSERT_TRUE(original.PushDomain(0, domains[1]).ok());
    original.Drain();
    const uint64_t bytes_before = original.storage_stats().wal_bytes;
    ASSERT_GT(bytes_before, 0u);
    ASSERT_TRUE(original.SaveSnapshot(snap_path).ok());
    // Drained engine + snapshot: every logged record is subsumed.
    EXPECT_LT(original.storage_stats().wal_bytes, bytes_before);
    ASSERT_TRUE(original.PushDomain(0, domains[2]).ok());
    original.Drain();
  }

  StreamEngineOptions options = plain;
  options.wal_path = wal_path;
  StreamEngine recovered(options);
  ASSERT_TRUE(recovered.Recover(snap_path).ok());
  recovered.Drain();
  ASSERT_EQ(recovered.num_streams(), 1);
  ExpectTrainersBitIdentical(&reference.trainer(0), &recovered.trainer(0),
                             domains[0].test.x, "compacted");
}

}  // namespace
}  // namespace cerl::stream
