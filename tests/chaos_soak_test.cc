// Chaos soak for StreamEngine fault isolation — the acceptance scenario of
// the robustness PR: with deterministic faults injected into K of N tenant
// streams, the process never aborts, only the faulted streams are
// quarantined, and the surviving streams' results and trainer state are
// BITWISE identical to a fault-free run. Also covers transient-fault
// recovery through rollback+retry and a snapshot taken mid-chaos restoring
// with health state intact.
//
// All faults here are scoped to a tenant name with probability 1 and a
// seeded injector, so every run of this binary exercises the exact same
// failure schedule — chaos, but reproducible chaos.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/stream_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kFeatures = 8;

CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  for (int d = 0; d < domains; ++d) {
    stream.push_back(
        data::SplitDataset(ShiftedToy(&rng, 300, shift * d), &rng));
  }
  return stream;
}

CerlConfig FastConfig(uint64_t seed, bool async_validation = false) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 12;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 12;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.train.async_validation = async_validation;
  c.memory_capacity = 80;
  return c;
}

void ExpectTrainersBitIdentical(CerlTrainer* a, CerlTrainer* b,
                                const Matrix& probe, const std::string& tag) {
  ASSERT_EQ(a->stages_seen(), b->stages_seen()) << tag;
  const Vector ia = a->PredictIte(probe);
  const Vector ib = b->PredictIte(probe);
  ASSERT_EQ(ia.size(), ib.size()) << tag;
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia[i], ib[i]) << tag << " unit " << i;
  }
  ASSERT_EQ(a->memory().size(), b->memory().size()) << tag;
  EXPECT_EQ(Matrix::MaxAbsDiff(a->memory().reps(), b->memory().reps()), 0.0)
      << tag;
}

void ExpectResultsBitIdentical(const std::vector<DomainResult>& a,
                               const std::vector<DomainResult>& b,
                               const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string at = tag + " domain " + std::to_string(i);
    ASSERT_EQ(a[i].domain_index, b[i].domain_index) << at;
    ASSERT_TRUE(a[i].status.ok()) << at;
    ASSERT_TRUE(b[i].status.ok()) << at;
    // Bitwise: exact double equality, no tolerance.
    EXPECT_EQ(a[i].stats.epochs_run, b[i].stats.epochs_run) << at;
    EXPECT_EQ(a[i].stats.best_valid_loss, b[i].stats.best_valid_loss) << at;
    EXPECT_EQ(a[i].stats.steps, b[i].stats.steps) << at;
    EXPECT_EQ(a[i].memory_units, b[i].memory_units) << at;
    ASSERT_EQ(a[i].has_metrics, b[i].has_metrics) << at;
    if (a[i].has_metrics) {
      EXPECT_EQ(a[i].metrics.pehe, b[i].metrics.pehe) << at;
      EXPECT_EQ(a[i].metrics.ate_error, b[i].metrics.ate_error) << at;
    }
  }
}

class ChaosSoakTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// The headline scenario: 4 tenants, 2 of them hit by persistent faults
// (one throws at ingest, one produces NaN losses in training). The faulted
// tenants must degrade and quarantine; the bystanders must be untouched —
// bit for bit.
TEST_F(ChaosSoakTest, KOfNFaultedStreamsAreIsolatedBitwise) {
  const int kStreams = 4;
  const int kDomains = 3;
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(FastConfig(500 + 31 * s, /*async_validation=*/s % 2));
    domains.push_back(MakeStream(60 + s, kDomains, 0.3 + 0.2 * s));
  }

  StreamEngineOptions options;
  options.num_workers = 4;
  options.max_domain_retries = 1;   // fail fast: persistent faults anyway
  options.retry_backoff_ms = 1;
  options.quarantine_after_failures = 2;

  // Fault-free reference run.
  StreamEngine reference(options);
  for (int s = 0; s < kStreams; ++s) {
    reference.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
    for (const DataSplit& split : domains[s]) {
      ASSERT_TRUE(reference.PushDomain(s, split).ok());
    }
  }
  reference.Drain();
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_EQ(reference.health(s), StreamHealth::kHealthy);
  }

  // Chaos run: tenant-1 throws at every stage ingest, tenant-2 poisons
  // every training loss. Probability 1, unbounded budget — the streams
  // cannot make progress and must quarantine after the drop streak.
  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "tenant-1",
                              /*probability=*/1.0, /*max_fires=*/0,
                              /*seed=*/11);
  FaultInjector::Global().Arm(FaultPoint::kNanGradient, "tenant-2",
                              /*probability=*/1.0, /*max_fires=*/0,
                              /*seed=*/12);
  StreamEngine chaos(options);
  for (int s = 0; s < kStreams; ++s) {
    chaos.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
    // Admission may reject late pushes once the stream quarantines
    // mid-burst; both outcomes are legal here.
    for (const DataSplit& split : domains[s]) {
      Status pushed = chaos.PushDomain(s, split);
      if (!pushed.ok()) {
        EXPECT_EQ(pushed.code(), StatusCode::kUnavailable) << "tenant " << s;
        EXPECT_TRUE(s == 1 || s == 2) << "healthy tenant shed a push";
      }
    }
  }
  chaos.Drain();  // the process is alive to reach this line at all

  // Faulted tenants: quarantined, with failures recorded as typed statuses
  // and trainer state rolled back to the last good stage. tenant-1 throws
  // at ingest, so it never trains a stage; tenant-2's NaN point lives in
  // the continual loss, which first engages at stage 2 — its first domain
  // legitimately succeeds, then every later one fails.
  for (int s : {1, 2}) {
    EXPECT_EQ(chaos.health(s), StreamHealth::kQuarantined) << "tenant " << s;
    EXPECT_GE(chaos.failed_domains(s), options.quarantine_after_failures);
    bool seen_failure = false;
    for (const DomainResult& r : chaos.results(s)) {
      if (!r.status.ok()) seen_failure = true;
      // Once a persistent fault bites, no later domain sneaks through.
      EXPECT_EQ(r.status.ok(), !seen_failure)
          << "tenant " << s << " domain " << r.domain_index;
    }
    EXPECT_TRUE(seen_failure) << "tenant " << s;
  }
  EXPECT_EQ(chaos.trainer(1).stages_seen(), 0);  // never got past ingest
  EXPECT_EQ(chaos.trainer(2).stages_seen(), 1);  // rolled back to stage 1

  // Bystanders: healthy, and bitwise identical to the fault-free run.
  for (int s : {0, 3}) {
    const std::string tag = "tenant-" + std::to_string(s);
    EXPECT_EQ(chaos.health(s), StreamHealth::kHealthy) << tag;
    EXPECT_EQ(chaos.failed_domains(s), 0) << tag;
    ExpectResultsBitIdentical(reference.results(s), chaos.results(s), tag);
    ExpectTrainersBitIdentical(&reference.trainer(s), &chaos.trainer(s),
                               domains[s][0].test.x, tag);
  }
}

// A single transient fault must be absorbed: the stream rolls back to its
// last-good checkpoint, replays the domain, and lands bit-identical to a
// run that never saw the fault (stage seeds derive from stages_seen, which
// the rollback rewinds).
TEST_F(ChaosSoakTest, TransientFaultRecoversBitIdentically) {
  const CerlConfig config = FastConfig(640);
  const std::vector<DataSplit> domains = MakeStream(70, 3, 0.5);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.max_domain_retries = 2;
  options.retry_backoff_ms = 1;

  StreamEngine reference(options);
  reference.AddStream("tenant-t", config, kFeatures);
  for (const DataSplit& split : domains) {
    ASSERT_TRUE(reference.PushDomain(0, split).ok());
  }
  reference.Drain();

  // One NaN excursion, then the injector budget is spent. The second
  // domain's first attempt fails; its retry replays cleanly.
  FaultInjector::Global().Arm(FaultPoint::kNanGradient, "tenant-t",
                              /*probability=*/1.0, /*max_fires=*/1,
                              /*seed=*/21);
  StreamEngine engine(options);
  engine.AddStream("tenant-t", config, kFeatures);
  ASSERT_TRUE(engine.PushDomain(0, domains[0]).ok());
  ASSERT_TRUE(engine.DrainStream(0).ok());  // let domain 0 seed last_good
  for (size_t d = 1; d < domains.size(); ++d) {
    ASSERT_TRUE(engine.PushDomain(0, domains[d]).ok());
  }
  engine.Drain();

  EXPECT_EQ(engine.health(0), StreamHealth::kHealthy);  // fully recovered
  EXPECT_EQ(engine.consecutive_failures(0), 0);
  EXPECT_EQ(engine.failed_domains(0), 0);
  const std::vector<DomainResult>& results = engine.results(0);
  ASSERT_EQ(results.size(), domains.size());
  int retried = 0;
  for (const DomainResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << "domain " << r.domain_index;
    retried += r.attempts > 1 ? 1 : 0;
  }
  EXPECT_EQ(retried, 1);  // exactly the faulted domain needed a retry
  ExpectResultsBitIdentical(reference.results(0), results, "transient");
  ExpectTrainersBitIdentical(&reference.trainer(0), &engine.trainer(0),
                             domains[0].test.x, "transient");
}

// A snapshot taken while chaos is in progress must restore with the health
// plane intact: the quarantined tenant stays quarantined (and still rejects
// pushes), the healthy tenant continues bit-identically.
TEST_F(ChaosSoakTest, MidChaosSnapshotRestoresHealthIntact) {
  const int kPreDomains = 2;   // before the snapshot
  const int kPostDomains = 1;  // after the restore
  const CerlConfig good_config = FastConfig(700);
  const CerlConfig sick_config = FastConfig(701);
  const std::vector<DataSplit> good_domains =
      MakeStream(80, kPreDomains + kPostDomains, 0.4);
  const std::vector<DataSplit> sick_domains = MakeStream(81, kPreDomains, 0.4);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.max_domain_retries = 1;
  options.retry_backoff_ms = 1;
  options.quarantine_after_failures = 2;

  // Fault-free reference for the healthy tenant only.
  StreamEngine reference(options);
  reference.AddStream("tenant-good", good_config, kFeatures);
  for (const DataSplit& split : good_domains) {
    ASSERT_TRUE(reference.PushDomain(0, split).ok());
  }
  reference.Drain();

  FaultInjector::Global().Arm(FaultPoint::kStageThrow, "tenant-sick",
                              /*probability=*/1.0, /*max_fires=*/0,
                              /*seed=*/31);
  const std::string path = ::testing::TempDir() + "/chaos_mid.snap";
  {
    StreamEngine original(options);
    const int good = original.AddStream("tenant-good", good_config,
                                        kFeatures);
    const int sick = original.AddStream("tenant-sick", sick_config,
                                        kFeatures);
    for (int d = 0; d < kPreDomains; ++d) {
      ASSERT_TRUE(original.PushDomain(good, good_domains[d]).ok());
      (void)original.PushDomain(sick, sick_domains[d]);
    }
    // Snapshot WITH the faults still armed and work possibly queued: the
    // fence waits out in-flight attempts (including their retries) and
    // journals the rest.
    ASSERT_TRUE(original.SaveSnapshot(path).ok());
    original.Drain();
    ASSERT_EQ(original.health(sick), StreamHealth::kQuarantined);
  }

  // "New process": faults disarmed, snapshot restored. Whatever of the
  // sick tenant's history was journaled replays cleanly now — but its
  // PERSISTED health must dominate: a stream snapshotted as quarantined
  // must come back quarantined even though the fault is gone.
  FaultInjector::Global().Reset();
  StreamEngine restored(options);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  restored.Drain();
  ASSERT_EQ(restored.num_streams(), 2);

  const int good = 0, sick = 1;
  EXPECT_EQ(restored.name(sick), "tenant-sick");
  if (restored.health(sick) == StreamHealth::kQuarantined) {
    // Quarantine persisted across the snapshot: pushes still shed.
    EXPECT_EQ(restored.PushDomain(sick, good_domains[0]).code(),
              StatusCode::kUnavailable);
  }
  // The healthy tenant continues exactly where the snapshot fenced it.
  EXPECT_EQ(restored.health(good), StreamHealth::kHealthy);
  for (int d = kPreDomains; d < kPreDomains + kPostDomains; ++d) {
    ASSERT_TRUE(restored.PushDomain(good, good_domains[d]).ok());
  }
  restored.Drain();
  ExpectTrainersBitIdentical(&reference.trainer(0), &restored.trainer(good),
                             good_domains[0].test.x, "mid-chaos good tenant");
}

// Sinkhorn divergence injected into the OT distance used by stage begin /
// migration: the typed NumericalError must travel up through the stage
// pipeline like any other failure and quarantine only the afflicted tenant.
TEST_F(ChaosSoakTest, SinkhornDivergenceIsContained) {
  const std::vector<DataSplit> domains = MakeStream(90, 2, 0.6);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.max_domain_retries = 1;
  options.retry_backoff_ms = 1;
  options.quarantine_after_failures = 1;  // first drop quarantines

  FaultInjector::Global().Arm(FaultPoint::kSinkhornDiverge, "tenant-ot",
                              /*probability=*/1.0, /*max_fires=*/0,
                              /*seed=*/41);
  StreamEngine engine(options);
  engine.AddStream("tenant-ot", FastConfig(800), kFeatures);
  engine.AddStream("tenant-ok", FastConfig(801), kFeatures);
  ASSERT_TRUE(engine.PushDomain(0, domains[0]).ok());
  ASSERT_TRUE(engine.PushDomain(1, domains[0]).ok());
  engine.Drain();

  EXPECT_EQ(engine.health(0), StreamHealth::kQuarantined);
  ASSERT_EQ(engine.results(0).size(), 1u);
  EXPECT_EQ(engine.results(0)[0].status.code(), StatusCode::kNumericalError);
  EXPECT_EQ(engine.health(1), StreamHealth::kHealthy);
  ASSERT_EQ(engine.results(1).size(), 1u);
  EXPECT_TRUE(engine.results(1)[0].status.ok());
}

}  // namespace
}  // namespace cerl::stream
