// Tests for StreamEngine::SaveSnapshot / LoadSnapshot: drain-consistent
// multi-stream checkpoints taken UNDER LOAD (domains still queued), bitwise
// continuation after restore (journal replay included), fresh-engine
// preconditions, and all-or-nothing restore on bad input.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/stream_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kFeatures = 8;

CausalDataset ShiftedToy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1)) + std::cos(d.x(i, 2));
    d.mu1[i] = d.mu0[i] + tau;
    const double prop =
        1.0 / (1.0 + std::exp(-(0.7 * d.x(i, 0) + 0.7 * d.x(i, 3) -
                                1.4 * shift)));
    d.t[i] = rng->Uniform() < prop ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  for (int d = 0; d < domains; ++d) {
    stream.push_back(
        data::SplitDataset(ShiftedToy(&rng, 300, shift * d), &rng));
  }
  return stream;
}

CerlConfig FastConfig(uint64_t seed, bool async_validation = false) {
  CerlConfig c;
  c.net.rep_hidden = {16};
  c.net.rep_dim = 8;
  c.net.head_hidden = {8};
  c.train.epochs = 12;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 12;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.train.async_validation = async_validation;
  c.memory_capacity = 80;
  return c;
}

void ExpectTrainersBitIdentical(CerlTrainer* a, CerlTrainer* b,
                                const Matrix& probe, const std::string& tag) {
  ASSERT_EQ(a->stages_seen(), b->stages_seen()) << tag;
  const Vector ia = a->PredictIte(probe);
  const Vector ib = b->PredictIte(probe);
  ASSERT_EQ(ia.size(), ib.size()) << tag;
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia[i], ib[i]) << tag << " unit " << i;
  }
  ASSERT_EQ(a->memory().size(), b->memory().size()) << tag;
  EXPECT_EQ(Matrix::MaxAbsDiff(a->memory().reps(), b->memory().reps()), 0.0)
      << tag;
  EXPECT_EQ(a->memory().y(), b->memory().y()) << tag;
  EXPECT_EQ(a->memory().t(), b->memory().t()) << tag;
}

// The acceptance scenario: a 4-stream engine is snapshotted WHILE domains
// are still queued (non-empty journal), restored into a fresh engine, and
// the continuation — journal replay plus one extra pushed domain per stream
// — must be bitwise identical to the uninterrupted run.
TEST(EngineCheckpointTest, FourStreamSnapshotUnderLoadContinuesBitIdentical) {
  const int kStreams = 4;
  const int kSnapshotDomains = 4;  // pushed before the snapshot
  const int kExtraDomains = 1;     // pushed after the restore
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(FastConfig(900 + 31 * s, /*async_validation=*/s % 2));
    domains.push_back(MakeStream(40 + s, kSnapshotDomains + kExtraDomains,
                                 0.4 + 0.3 * s));
  }

  // Uninterrupted reference: all domains through one engine.
  StreamEngineOptions options;
  options.num_workers = 4;
  StreamEngine reference(options);
  std::vector<int> ref_ids;
  for (int s = 0; s < kStreams; ++s) {
    ref_ids.push_back(reference.AddStream("tenant-" + std::to_string(s),
                                          configs[s], kFeatures));
    for (const DataSplit& split : domains[s]) {
      reference.PushDomain(ref_ids[s], split);
    }
  }
  reference.Drain();

  // Snapshotted run: push the first kSnapshotDomains of every stream, then
  // snapshot immediately — training a domain takes far longer than reaching
  // the snapshot fence, so most of the queue must land in the journal.
  const std::string path = ::testing::TempDir() + "/engine_underload.snap";
  StreamEngine::SnapshotInfo info;
  {
    StreamEngine original(options);
    std::vector<int> ids;
    for (int s = 0; s < kStreams; ++s) {
      ids.push_back(original.AddStream("tenant-" + std::to_string(s),
                                       configs[s], kFeatures));
      for (int d = 0; d < kSnapshotDomains; ++d) {
        original.PushDomain(ids[s], domains[s][d]);
      }
    }
    ASSERT_TRUE(original.SaveSnapshot(path, &info).ok());
    // The acceptance criterion requires the journal-replay path to be
    // exercised: work must still have been queued at the fence.
    ASSERT_GT(info.journaled_domains, 0);
    EXPECT_EQ(info.num_streams, kStreams);
    EXPECT_EQ(info.completed_domains + info.journaled_domains,
              kStreams * kSnapshotDomains);
    // The original engine keeps serving after the snapshot.
    original.Drain();
  }

  // Restore into a fresh engine ("new process"), let the journal replay,
  // push the remaining domains, and compare against the reference.
  StreamEngine restored(options);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  ASSERT_EQ(restored.num_streams(), kStreams);
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(restored.name(s), "tenant-" + std::to_string(s));
    for (int d = kSnapshotDomains; d < kSnapshotDomains + kExtraDomains;
         ++d) {
      restored.PushDomain(s, domains[s][d]);
    }
  }
  restored.Drain();
  for (int s = 0; s < kStreams; ++s) {
    ExpectTrainersBitIdentical(&reference.trainer(ref_ids[s]),
                               &restored.trainer(s), domains[s][0].test.x,
                               "stream " + std::to_string(s));
    // Domain indices continue across the restart: the journaled and
    // newly pushed domains carry their original positions.
    const std::vector<DomainResult>& results = restored.results(s);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.back().domain_index,
              kSnapshotDomains + kExtraDomains - 1);
  }
}

TEST(EngineCheckpointTest, DrainedSnapshotRoundTripsAndKeepsServing) {
  const CerlConfig config = FastConfig(77);
  const std::vector<DataSplit> domains = MakeStream(50, 3, 0.8);
  StreamEngineOptions options;
  options.num_workers = 2;

  StreamEngine original(options);
  const int id = original.AddStream("drained", config, kFeatures);
  original.PushDomain(id, domains[0]);
  original.PushDomain(id, domains[1]);
  original.Drain();

  const std::string path = ::testing::TempDir() + "/engine_drained.snap";
  StreamEngine::SnapshotInfo info;
  ASSERT_TRUE(original.SaveSnapshot(path, &info).ok());
  EXPECT_EQ(info.journaled_domains, 0);
  EXPECT_EQ(info.completed_domains, 2);

  StreamEngine restored(options);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  restored.Drain();  // empty journal: immediately idle
  ExpectTrainersBitIdentical(&original.trainer(id), &restored.trainer(0),
                             domains[0].test.x, "drained");

  // Both engines absorb the next domain identically.
  original.PushDomain(id, domains[2]);
  restored.PushDomain(0, domains[2]);
  original.Drain();
  restored.Drain();
  ExpectTrainersBitIdentical(&original.trainer(id), &restored.trainer(0),
                             domains[0].test.x, "drained+1");
}

TEST(EngineCheckpointTest, SnapshotOfEngineWithUntrainedStream) {
  // A registered stream with zero observed domains has no trainer blob yet;
  // the snapshot must carry it (name + config) and restore it functional.
  const CerlConfig config = FastConfig(88);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine original(options);
  original.AddStream("empty", config, kFeatures);
  const std::string path = ::testing::TempDir() + "/engine_empty.snap";
  ASSERT_TRUE(original.SaveSnapshot(path).ok());

  StreamEngine restored(options);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  ASSERT_EQ(restored.num_streams(), 1);
  EXPECT_EQ(restored.name(0), "empty");
  EXPECT_EQ(restored.trainer(0).stages_seen(), 0);

  const std::vector<DataSplit> domains = MakeStream(51, 1, 0.0);
  restored.PushDomain(0, domains[0]);
  restored.Drain();
  EXPECT_EQ(restored.trainer(0).stages_seen(), 1);
}

TEST(EngineCheckpointTest, LoadRequiresFreshEngine) {
  const CerlConfig config = FastConfig(99);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine original(options);
  original.AddStream("a", config, kFeatures);
  const std::string path = ::testing::TempDir() + "/engine_fresh.snap";
  ASSERT_TRUE(original.SaveSnapshot(path).ok());

  StreamEngine busy(options);
  busy.AddStream("existing", config, kFeatures);
  Status s = busy.LoadSnapshot(path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(busy.num_streams(), 1);  // untouched
}

TEST(EngineCheckpointTest, MissingSnapshotFileIsCleanError) {
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  Status s = engine.LoadSnapshot("/nonexistent/engine.snap");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(engine.num_streams(), 0);
}

TEST(EngineCheckpointTest, HealthStateRoundTripsThroughSnapshot) {
  // A quarantined stream must restore quarantined (still rejecting pushes),
  // and its failure counters must survive the CERLENG2 round trip.
  const CerlConfig config = FastConfig(121);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.quarantine_after_failures = 2;
  StreamEngine original(options);
  const int sick = original.AddStream("sick", config, kFeatures);
  const int fine = original.AddStream("fine", config, kFeatures);

  Rng rng(7);
  DataSplit good = data::SplitDataset(ShiftedToy(&rng, 200, 0.0), &rng);
  DataSplit bad = good;
  bad.train.x(0, 0) = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(original.PushDomain(sick, bad).ok());
  ASSERT_TRUE(original.PushDomain(sick, bad).ok());
  ASSERT_TRUE(original.PushDomain(fine, good).ok());
  original.Drain();
  ASSERT_EQ(original.health(sick), StreamHealth::kQuarantined);
  ASSERT_EQ(original.health(fine), StreamHealth::kHealthy);

  const std::string path = ::testing::TempDir() + "/engine_health.snap";
  ASSERT_TRUE(original.SaveSnapshot(path).ok());

  StreamEngine restored(options);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  restored.Drain();
  EXPECT_EQ(restored.health(0), StreamHealth::kQuarantined);
  EXPECT_EQ(restored.consecutive_failures(0), 2);
  EXPECT_EQ(restored.failed_domains(0), 2);
  EXPECT_EQ(restored.health(1), StreamHealth::kHealthy);
  EXPECT_EQ(restored.failed_domains(1), 0);
  // Quarantine is enforced, not just reported, after restore.
  EXPECT_EQ(restored.PushDomain(0, good).code(), StatusCode::kUnavailable);
  // The healthy stream keeps serving.
  ASSERT_TRUE(restored.PushDomain(1, good).ok());
  restored.Drain();
  EXPECT_EQ(restored.results(1).size(), 1u);
}

TEST(EngineCheckpointTest, SaveSnapshotRetriesTransientIoFailure) {
  const CerlConfig config = FastConfig(131);
  StreamEngineOptions options;
  options.num_workers = 2;
  options.snapshot_io_retries = 3;
  options.snapshot_retry_backoff_ms = 1;
  StreamEngine engine(options);
  engine.AddStream("retry", config, kFeatures);

  // Two injected write failures, then the third attempt lands.
  FaultInjector::Global().Arm(FaultPoint::kIoWrite, /*scope=*/"",
                              /*probability=*/1.0, /*max_fires=*/2,
                              /*seed=*/1);
  const std::string path = ::testing::TempDir() + "/engine_retry.snap";
  Status saved = engine.SaveSnapshot(path);
  const int fires = FaultInjector::Global().fires(FaultPoint::kIoWrite);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  EXPECT_EQ(fires, 2);  // both injected failures were consumed by retries

  StreamEngine restored(options);
  EXPECT_TRUE(restored.LoadSnapshot(path).ok());
  EXPECT_EQ(restored.num_streams(), 1);

  // With a budget exceeding the retry allowance the save surfaces IoError.
  FaultInjector::Global().Arm(FaultPoint::kIoWrite, "", 1.0,
                              /*max_fires=*/0, /*seed=*/1);
  Status exhausted = engine.SaveSnapshot(path);
  FaultInjector::Global().Reset();
  EXPECT_EQ(exhausted.code(), StatusCode::kIoError);
}

// CERLENG4 blob reuse: a stream whose trainer is unchanged since its last
// blob capture is embedded from the cache (reused), not re-serialized
// (dirty) — and the container is byte-identical either way.
TEST(EngineCheckpointTest, SnapshotInfoCountsReusedAndDirtyBlobs) {
  const int kStreams = 3;
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(FastConfig(700 + 13 * s));
    domains.push_back(MakeStream(60 + s, 1, 0.5));
  }

  const auto run = [&](bool reuse, const std::string& path,
                       StreamEngine::SnapshotInfo* info) {
    StreamEngineOptions options;
    options.num_workers = 2;
    options.snapshot_reuse_blobs = reuse;
    StreamEngine engine(options);
    for (int s = 0; s < kStreams; ++s) {
      engine.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
    }
    engine.AddStream("untrained", FastConfig(999), kFeatures);
    for (int s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(engine.PushDomain(s, domains[s][0]).ok());
    }
    engine.Drain();
    ASSERT_TRUE(engine.SaveSnapshot(path, info).ok());
    if (reuse) {
      // A second fence with nothing retrained reuses every blob again.
      StreamEngine::SnapshotInfo again;
      ASSERT_TRUE(engine.SaveSnapshot(path, &again).ok());
      EXPECT_EQ(again.reused_blobs, kStreams);
      EXPECT_EQ(again.dirty_streams, 0);
    }
  };

  const std::string reuse_path = ::testing::TempDir() + "/engine_reuse.snap";
  const std::string full_path = ::testing::TempDir() + "/engine_full.snap";
  StreamEngine::SnapshotInfo reuse_info, full_info;
  run(true, reuse_path, &reuse_info);
  run(false, full_path, &full_info);

  EXPECT_EQ(reuse_info.num_streams, kStreams + 1);
  // Reuse on: the finish task captured every trainer's blob at its domain
  // boundary, so the fence re-serializes nothing. Off: every trained
  // stream is serialized under the fence (the full-rewrite baseline).
  EXPECT_EQ(reuse_info.reused_blobs, kStreams);
  EXPECT_EQ(reuse_info.dirty_streams, 0);
  EXPECT_EQ(full_info.reused_blobs, 0);
  EXPECT_EQ(full_info.dirty_streams, kStreams);
  EXPECT_GE(reuse_info.serialize_ms, 0.0);

  // The cached blob IS the fence-time serialization: both containers
  // restore to bitwise-identical trainers (the containers themselves differ
  // only in timing-dependent cost-model rates).
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine a(options), b(options);
  ASSERT_TRUE(a.LoadSnapshot(reuse_path).ok());
  ASSERT_TRUE(b.LoadSnapshot(full_path).ok());
  for (int s = 0; s < kStreams; ++s) {
    ExpectTrainersBitIdentical(&a.trainer(s), &b.trainer(s),
                               domains[s][0].test.x,
                               "stream " + std::to_string(s));
  }
}

TEST(EngineCheckpointTest, SnapshotWriteIsAtomic) {
  // A snapshot over an existing file must never leave a torn file: the temp
  // is renamed into place, so the destination always parses.
  const CerlConfig config = FastConfig(111);
  const std::vector<DataSplit> domains = MakeStream(52, 1, 0.0);
  StreamEngineOptions options;
  options.num_workers = 2;
  StreamEngine engine(options);
  const int id = engine.AddStream("atomic", config, kFeatures);
  engine.PushDomain(id, domains[0]);
  engine.Drain();

  const std::string path = ::testing::TempDir() + "/engine_atomic.snap";
  {
    std::ofstream prev(path, std::ios::binary);
    prev << "previous generation checkpoint";
  }
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // no temp file left behind

  StreamEngine restored(options);
  EXPECT_TRUE(restored.LoadSnapshot(path).ok());
  EXPECT_EQ(restored.num_streams(), 1);
}

}  // namespace
}  // namespace cerl::stream
