// Tests for optimal transport: Sinkhorn marginal feasibility, limiting
// behaviour (identical sets, singletons, translations), and the
// differentiable IPM penalties (values and gradients).
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/ops.h"
#include "grad_check.h"
#include "linalg/ops.h"
#include "ot/ipm.h"
#include "ot/sinkhorn.h"
#include "util/rng.h"

namespace cerl::ot {
namespace {

using autodiff::Tape;
using autodiff::Var;
using linalg::Matrix;

Matrix RandomMatrix(Rng* rng, int rows, int cols, double shift = 0.0) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Normal(shift, 1.0);
  }
  return m;
}

TEST(SinkhornTest, PlanHasUniformMarginals) {
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, 7, 3);
  Matrix b = RandomMatrix(&rng, 11, 3, 0.5);
  SinkhornConfig config;
  auto result = SolveSinkhorn(linalg::PairwiseSquaredDistances(a, b), config);
  ASSERT_TRUE(result.ok());
  const Matrix& plan = result.value().plan;
  for (int i = 0; i < 7; ++i) {
    double row = 0.0;
    for (int j = 0; j < 11; ++j) row += plan(i, j);
    EXPECT_NEAR(row, 1.0 / 7, 1e-4);
  }
  for (int j = 0; j < 11; ++j) {
    double col = 0.0;
    for (int i = 0; i < 7; ++i) col += plan(i, j);
    EXPECT_NEAR(col, 1.0 / 11, 1e-4);
  }
}

TEST(SinkhornTest, IdenticalSetsNearZeroCost) {
  Rng rng(2);
  Matrix a = RandomMatrix(&rng, 10, 4);
  SinkhornConfig config;
  auto d = SinkhornDistance(a, a, config);
  ASSERT_TRUE(d.ok());
  // Entropic smoothing keeps it slightly above 0 but well below the mean
  // pairwise cost.
  double mean_cost = 0.0;
  Matrix c = linalg::PairwiseSquaredDistances(a, a);
  for (int64_t i = 0; i < c.size(); ++i) mean_cost += c.data()[i];
  mean_cost /= c.size();
  EXPECT_LT(d.value(), 0.25 * mean_cost);
}

TEST(SinkhornTest, SingletonMatchesSquaredDistance) {
  Matrix a = {{0.0, 0.0}};
  Matrix b = {{3.0, 4.0}};
  SinkhornConfig config;
  auto d = SinkhornDistance(a, b, config);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 25.0, 1e-9);  // Only one feasible plan.
}

TEST(SinkhornTest, TranslationIncreasesCost) {
  Rng rng(3);
  Matrix a = RandomMatrix(&rng, 20, 5);
  Matrix near = RandomMatrix(&rng, 20, 5, 0.2);
  Matrix far = RandomMatrix(&rng, 20, 5, 2.0);
  SinkhornConfig config;
  auto d_near = SinkhornDistance(a, near, config);
  auto d_far = SinkhornDistance(a, far, config);
  ASSERT_TRUE(d_near.ok());
  ASSERT_TRUE(d_far.ok());
  EXPECT_GT(d_far.value(), d_near.value());
}

TEST(SinkhornTest, EmptyInputRejected) {
  SinkhornConfig config;
  EXPECT_FALSE(SolveSinkhorn(Matrix(0, 3), config).ok());
  EXPECT_FALSE(SinkhornDistance(Matrix(0, 2), Matrix(3, 2), config).ok());
}

TEST(SinkhornTest, SmallRegularizationStaysFinite) {
  Rng rng(4);
  Matrix a = RandomMatrix(&rng, 15, 3);
  Matrix b = RandomMatrix(&rng, 15, 3, 5.0);  // Large costs.
  SinkhornConfig config;
  config.reg_fraction = 0.005;  // Stress: drives the scaling path to under-
  auto d = SinkhornDistance(a, b, config);  // flow, exercising the fallback.
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isfinite(d.value()));
  EXPECT_GT(d.value(), 0.0);
}

TEST(PairwiseVarTest, MatchesNumericValues) {
  Rng rng(5);
  Matrix a = RandomMatrix(&rng, 6, 4);
  Matrix b = RandomMatrix(&rng, 9, 4);
  Tape tape;
  Var d = PairwiseSquaredDistancesVar(tape.Constant(a), tape.Constant(b));
  Matrix expect = linalg::PairwiseSquaredDistances(a, b);
  EXPECT_LT(Matrix::MaxAbsDiff(d.value(), expect), 1e-9);
}

TEST(PairwiseVarTest, GradientCheck) {
  Rng rng(6);
  autodiff::CheckGradients(
      {RandomMatrix(&rng, 4, 3), RandomMatrix(&rng, 5, 3)},
      [](Tape*, const std::vector<Var>& v) {
        return autodiff::Sum(
            autodiff::Square(PairwiseSquaredDistancesVar(v[0], v[1])));
      },
      1e-5);
}

TEST(MmdTest, ZeroForIdenticalDistributionsAndGradient) {
  Rng rng(7);
  Matrix a = RandomMatrix(&rng, 8, 3);
  {
    Tape tape;
    Var penalty = LinearMmdPenalty(tape.Constant(a), tape.Constant(a));
    EXPECT_NEAR(penalty.scalar(), 0.0, 1e-12);
  }
  autodiff::CheckGradients(
      {RandomMatrix(&rng, 5, 3), RandomMatrix(&rng, 7, 3)},
      [](Tape*, const std::vector<Var>& v) {
        return LinearMmdPenalty(v[0], v[1]);
      },
      1e-5);
}

TEST(WassersteinPenaltyTest, DecreasesAsDistributionsAlign) {
  Rng rng(8);
  SinkhornConfig config;
  Matrix a = RandomMatrix(&rng, 12, 4);
  Matrix close = RandomMatrix(&rng, 12, 4, 0.3);
  Matrix far = RandomMatrix(&rng, 12, 4, 3.0);
  Tape tape;
  Var pen_close = WassersteinPenalty(tape.Constant(a), tape.Constant(close),
                                     config);
  Var pen_far = WassersteinPenalty(tape.Constant(a), tape.Constant(far),
                                   config);
  EXPECT_GT(pen_far.scalar(), pen_close.scalar());
  EXPECT_GT(pen_close.scalar(), 0.0);
}

TEST(WassersteinPenaltyTest, GradientPullsGroupsTogether) {
  // Minimizing the penalty by gradient descent on one group must shrink the
  // separation — a behavioural check on the (envelope-style) gradient.
  Rng rng(9);
  SinkhornConfig config;
  Matrix fixed = RandomMatrix(&rng, 10, 3);
  autodiff::Parameter moving(RandomMatrix(&rng, 10, 3, 4.0), "m");
  double initial = 0.0, final = 0.0;
  for (int step = 0; step < 60; ++step) {
    Tape tape;
    Var pen = WassersteinPenalty(tape.Param(&moving), tape.Constant(fixed),
                                 config);
    if (step == 0) initial = pen.scalar();
    final = pen.scalar();
    moving.ZeroGrad();
    tape.Backward(pen);
    for (int64_t i = 0; i < moving.value.size(); ++i) {
      moving.value.data()[i] -= 0.1 * moving.grad.data()[i];
    }
  }
  EXPECT_LT(final, 0.2 * initial);
}

TEST(IpmPenaltyTest, EmptyGroupYieldsZero) {
  Tape tape;
  SinkhornConfig config;
  Var empty = tape.Constant(Matrix(0, 3));
  Var some = tape.Constant(Matrix(4, 3, 1.0));
  EXPECT_DOUBLE_EQ(
      IpmPenalty(IpmKind::kWasserstein, empty, some, config).scalar(), 0.0);
  EXPECT_DOUBLE_EQ(
      IpmPenalty(IpmKind::kLinearMmd, some, empty, config).scalar(), 0.0);
}

TEST(IpmPenaltyTest, DispatchesBothKinds) {
  Rng rng(10);
  Tape tape;
  SinkhornConfig config;
  Var a = tape.Constant(RandomMatrix(&rng, 6, 3));
  Var b = tape.Constant(RandomMatrix(&rng, 8, 3, 1.0));
  EXPECT_GT(IpmPenalty(IpmKind::kWasserstein, a, b, config).scalar(), 0.0);
  EXPECT_GT(IpmPenalty(IpmKind::kLinearMmd, a, b, config).scalar(), 0.0);
}

}  // namespace
}  // namespace cerl::ot
