// Spill/fault-back tests for the paged tenant-state storage engine: an
// engine bounded to max_resident_streams < num_streams must train a
// multi-tenant run bit-identically to the all-resident engine, keep serving
// effect queries for spilled tenants, and embed spilled blobs in snapshots.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/stream_engine.h"
#include "util/rng.h"

namespace cerl::stream {
namespace {

using core::CerlConfig;
using core::CerlTrainer;
using data::CausalDataset;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kFeatures = 6;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

CausalDataset Toy(Rng* rng, int n, double shift) {
  CausalDataset d;
  d.x = Matrix(n, kFeatures);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    const double tau = 1.0 + std::sin(d.x(i, 0));
    d.mu0[i] = std::sin(d.x(i, 1));
    d.mu1[i] = d.mu0[i] + tau;
    d.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    d.y[i] = (d.t[i] == 1 ? d.mu1[i] : d.mu0[i]) + rng->Normal(0, 0.1);
  }
  return d;
}

std::vector<DataSplit> MakeStream(uint64_t seed, int domains, double shift) {
  Rng rng(seed);
  std::vector<DataSplit> stream;
  for (int d = 0; d < domains; ++d) {
    stream.push_back(data::SplitDataset(Toy(&rng, 180, shift * d), &rng));
  }
  return stream;
}

CerlConfig FastConfig(uint64_t seed) {
  CerlConfig c;
  c.net.rep_hidden = {12};
  c.net.rep_dim = 6;
  c.net.head_hidden = {6};
  c.train.epochs = 6;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 6;
  c.train.alpha = 0.2;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  c.memory_capacity = 50;
  return c;
}

void ExpectTrainersBitIdentical(CerlTrainer* a, CerlTrainer* b,
                                const Matrix& probe, const std::string& tag) {
  ASSERT_EQ(a->stages_seen(), b->stages_seen()) << tag;
  const Vector ia = a->PredictIte(probe);
  const Vector ib = b->PredictIte(probe);
  ASSERT_EQ(ia.size(), ib.size()) << tag;
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia[i], ib[i]) << tag << " unit " << i;
  }
  ASSERT_EQ(a->memory().size(), b->memory().size()) << tag;
  EXPECT_EQ(Matrix::MaxAbsDiff(a->memory().reps(), b->memory().reps()), 0.0)
      << tag;
}

// The acceptance scenario: 6 tenants bounded to 2 resident, pushed in two
// waves so tenants go cold between waves (spill) and warm up again on the
// next push (fault-back). Every trainer must end bit-identical to the
// unbounded engine's.
TEST(EngineSpillTest, BoundedResidencyIsBitIdenticalToAllResident) {
  const int kStreams = 6;
  const int kWaves = 2;
  std::vector<CerlConfig> configs;
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    configs.push_back(FastConfig(300 + 17 * s));
    domains.push_back(MakeStream(20 + s, kWaves, 0.3 + 0.2 * s));
  }

  StreamEngineOptions plain;
  plain.num_workers = 3;
  StreamEngine reference(plain);
  for (int s = 0; s < kStreams; ++s) {
    reference.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
  }
  for (int w = 0; w < kWaves; ++w) {
    for (int s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(reference.PushDomain(s, domains[s][w]).ok());
    }
    reference.Drain();
  }

  StreamEngineOptions bounded = plain;
  bounded.storage_path = TempPath("spill_identity.store");
  bounded.max_resident_streams = 2;
  bounded.buffer_pool_frames = 8;
  StreamEngine engine(bounded);
  ASSERT_TRUE(engine.OpenStorage().ok());
  for (int s = 0; s < kStreams; ++s) {
    engine.AddStream("tenant-" + std::to_string(s), configs[s], kFeatures);
  }
  for (int w = 0; w < kWaves; ++w) {
    for (int s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(engine.PushDomain(s, domains[s][w]).ok());
    }
    engine.Drain();
    // The drained engine respects the residency bound: every stream is
    // idle and trained, so the spiller can always reach the budget.
    const StreamEngine::StorageStats stats = engine.storage_stats();
    EXPECT_LE(stats.resident_streams, bounded.max_resident_streams)
        << "wave " << w;
    EXPECT_EQ(stats.resident_streams + stats.spilled_streams, kStreams);
  }

  const StreamEngine::StorageStats stats = engine.storage_stats();
  EXPECT_GE(stats.spills, kStreams - bounded.max_resident_streams);
  // Wave 2 pushed into spilled tenants: their state faulted back in.
  EXPECT_GE(stats.fault_backs, 1);
  EXPECT_GT(stats.store_blob_bytes, 0u);
  EXPECT_GT(stats.store_pages, 1u);

  // Results were produced for every domain despite the spill traffic.
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_EQ(engine.results(s).size(), static_cast<size_t>(kWaves));
    for (int w = 0; w < kWaves; ++w) {
      EXPECT_TRUE(engine.results(s)[w].status.ok())
          << "stream " << s << " wave " << w << ": "
          << engine.results(s)[w].status.ToString();
    }
  }

  // EnsureResident faults the spilled trainers back for inspection; the
  // restored state is bitwise the unbounded engine's.
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.EnsureResident(s).ok()) << "stream " << s;
    ExpectTrainersBitIdentical(&reference.trainer(s), &engine.trainer(s),
                               domains[s][0].test.x,
                               "stream " + std::to_string(s));
  }
  const StreamEngine::StorageStats after = engine.storage_stats();
  EXPECT_EQ(after.resident_streams, kStreams);
  EXPECT_EQ(after.spilled_streams, 0);
}

// Spilled tenants stay queryable: the published EffectSnapshot is
// independent of the trainer's residency.
TEST(EngineSpillTest, SpilledStreamsKeepServingQueries) {
  const int kStreams = 4;
  StreamEngineOptions options;
  options.num_workers = 2;
  options.storage_path = TempPath("spill_serve.store");
  options.max_resident_streams = 1;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.OpenStorage().ok());
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    domains.push_back(MakeStream(90 + s, 1, 0.4));
    engine.AddStream("tenant-" + std::to_string(s), FastConfig(400 + s),
                     kFeatures);
  }
  QueryContext* ctx = engine.CreateQueryContext();
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.PushDomain(s, domains[s][0]).ok());
  }
  engine.Drain();
  ASSERT_GT(engine.storage_stats().spilled_streams, 0);

  for (int s = 0; s < kStreams; ++s) {
    Vector ite;
    EffectQueryMeta meta;
    const Status answered =
        engine.QueryEffectBatch(ctx, s, domains[s][0].test.x, &ite, &meta);
    ASSERT_TRUE(answered.ok()) << "stream " << s << ": "
                               << answered.ToString();
    EXPECT_EQ(ite.size(), domains[s][0].test.x.rows()) << "stream " << s;
    EXPECT_EQ(meta.snapshot_stage, 1) << "stream " << s;
  }
}

// SaveSnapshot of an engine with spilled tenants embeds their store blobs:
// the snapshot restores into a plain (storage-less) engine bit-identically.
TEST(EngineSpillTest, SnapshotEmbedsSpilledBlobs) {
  const int kStreams = 4;
  StreamEngineOptions options;
  options.num_workers = 2;
  options.storage_path = TempPath("spill_snap.store");
  options.max_resident_streams = 1;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.OpenStorage().ok());
  std::vector<std::vector<DataSplit>> domains;
  for (int s = 0; s < kStreams; ++s) {
    domains.push_back(MakeStream(120 + s, 1, 0.5));
    engine.AddStream("tenant-" + std::to_string(s), FastConfig(500 + s),
                     kFeatures);
  }
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.PushDomain(s, domains[s][0]).ok());
  }
  engine.Drain();
  const StreamEngine::StorageStats stats = engine.storage_stats();
  ASSERT_GT(stats.spilled_streams, 0);

  const std::string path = TempPath("spill_snap.snap");
  StreamEngine::SnapshotInfo info;
  ASSERT_TRUE(engine.SaveSnapshot(path, &info).ok());
  // Spilled streams contribute reused blobs (page-store reads, not
  // re-serializations): the fence never faults them back in.
  EXPECT_GE(info.reused_blobs, stats.spilled_streams);
  EXPECT_EQ(engine.storage_stats().spilled_streams, stats.spilled_streams);

  StreamEngineOptions plain;
  plain.num_workers = 2;
  StreamEngine restored(plain);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  restored.Drain();
  ASSERT_EQ(restored.num_streams(), kStreams);
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.EnsureResident(s).ok());
    ExpectTrainersBitIdentical(&engine.trainer(s), &restored.trainer(s),
                               domains[s][0].test.x,
                               "stream " + std::to_string(s));
  }
}

// EnsureResident on a resident stream is a cheap no-op; on an unknown id a
// clean NotFound; spill bookkeeping survives both.
TEST(EngineSpillTest, EnsureResidentEdgeCases) {
  StreamEngineOptions options;
  options.num_workers = 2;
  options.storage_path = TempPath("spill_edges.store");
  options.max_resident_streams = 1;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.OpenStorage().ok());
  const int id = engine.AddStream("only", FastConfig(600), kFeatures);
  EXPECT_EQ(engine.EnsureResident(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.EnsureResident(-1).code(), StatusCode::kNotFound);
  // Untrained and resident: nothing to fault back.
  ASSERT_TRUE(engine.EnsureResident(id).ok());
  const std::vector<DataSplit> domains = MakeStream(130, 1, 0.3);
  ASSERT_TRUE(engine.PushDomain(id, domains[0]).ok());
  engine.Drain();
  // A single stream within the budget never spills.
  EXPECT_EQ(engine.storage_stats().spills, 0);
  ASSERT_TRUE(engine.EnsureResident(id).ok());
  EXPECT_EQ(engine.trainer(id).stages_seen(), 1);
}

}  // namespace
}  // namespace cerl::stream
