// Tests for the cross-stream fused Sinkhorn micro-solver
// (ot/fused_micro_solver.h). The load-bearing property is BIT-IDENTITY:
// every problem solved through a fused group must produce exactly the solo
// SolveSinkhorn result — cost, iteration count, info flags, transport plan,
// and the retained warm-start duals (verified through follow-up solves).
// Covered: group sizes 1..4 (padding lanes), batch-composition
// independence, warm-start continuity across drifting solves,
// zero-iteration warm accepts, ejection of numerically degenerate lanes
// (log-domain fallback) riding next to healthy lanes, mixed-shape grouping,
// max_iterations edge cases, the threaded flat-combining batcher, and the
// SolveSinkhorn config.batcher routing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "linalg/ops.h"
#include "ot/fused_micro_solver.h"
#include "ot/sinkhorn.h"
#include "util/rng.h"

namespace cerl::ot {
namespace {

using linalg::Matrix;

Matrix RandomCost(Rng* rng, int rows, int cols, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = scale * rng->Uniform(0.0, 1.0);
  }
  return m;
}

void Drift(Rng* rng, Matrix* cost, double scale) {
  for (int64_t i = 0; i < cost->size(); ++i) {
    cost->data()[i] = std::fabs(cost->data()[i] + rng->Uniform(0.0, scale));
  }
}

SinkhornConfig MicroConfig() {
  SinkhornConfig config;
  config.max_iterations = 200;
  config.tolerance = 1e-6;
  return config;
}

void ExpectBitIdentical(const Result<SinkhornSolveInfo>& fused,
                        const Result<SinkhornSolveInfo>& solo,
                        const SinkhornWorkspace& ws_fused,
                        const SinkhornWorkspace& ws_solo,
                        const std::string& what) {
  ASSERT_EQ(fused.ok(), solo.ok()) << what;
  if (!fused.ok()) {
    EXPECT_EQ(fused.status().message(), solo.status().message()) << what;
    return;
  }
  const SinkhornSolveInfo& f = fused.value();
  const SinkhornSolveInfo& s = solo.value();
  EXPECT_EQ(f.cost, s.cost) << what;  // exact, not NEAR
  EXPECT_EQ(f.iterations, s.iterations) << what;
  EXPECT_EQ(f.warm_started, s.warm_started) << what;
  EXPECT_EQ(f.used_log_domain, s.used_log_domain) << what;
  ASSERT_EQ(ws_fused.plan().rows(), ws_solo.plan().rows()) << what;
  ASSERT_EQ(ws_fused.plan().cols(), ws_solo.plan().cols()) << what;
  EXPECT_EQ(0, std::memcmp(ws_fused.plan().data(), ws_solo.plan().data(),
                           static_cast<size_t>(ws_fused.plan().size()) *
                               sizeof(double)))
      << what << ": plans differ";
}

// Solves `costs` once solo (fresh workspaces) and once through
// SolveSinkhornMicroBatch (fresh workspaces), asserting bit-identity
// problem by problem. Returns nothing — the workspaces die with the call —
// so sequences that need warm-start continuity drive the solvers directly.
void CheckBatchMatchesSolo(const std::vector<Matrix>& costs,
                           const SinkhornConfig& config) {
  const size_t n = costs.size();
  std::vector<SinkhornWorkspace> solo_ws(n), fused_ws(n);
  std::vector<Result<SinkhornSolveInfo>> solo;
  solo.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    solo.push_back(SolveSinkhorn(costs[i], config, &solo_ws[i]));
  }
  std::vector<const Matrix*> cost_ptrs;
  std::vector<SinkhornConfig> configs(n, config);
  std::vector<SinkhornWorkspace*> ws_ptrs;
  for (size_t i = 0; i < n; ++i) {
    cost_ptrs.push_back(&costs[i]);
    ws_ptrs.push_back(&fused_ws[i]);
  }
  std::vector<Result<SinkhornSolveInfo>> fused =
      SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
  ASSERT_EQ(fused.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ExpectBitIdentical(fused[i], solo[i], fused_ws[i], solo_ws[i],
                       "problem " + std::to_string(i));
  }
}

TEST(FusedMicroSolverTest, GroupSizesOneThroughFourMatchSolo) {
  Rng rng(101);
  for (int group : {1, 2, 3, 4}) {
    std::vector<Matrix> costs;
    for (int i = 0; i < group; ++i) costs.push_back(RandomCost(&rng, 9, 7));
    CheckBatchMatchesSolo(costs, MicroConfig());
  }
}

TEST(FusedMicroSolverTest, MoreThanFourProblemsSplitIntoGroups) {
  Rng rng(103);
  std::vector<Matrix> costs;
  for (int i = 0; i < 11; ++i) costs.push_back(RandomCost(&rng, 6, 8));
  CheckBatchMatchesSolo(costs, MicroConfig());
}

TEST(FusedMicroSolverTest, MixedShapesGroupBySameShapeOnly) {
  Rng rng(107);
  std::vector<Matrix> costs;
  // Interleaved shapes: the greedy grouping must fuse only like with like.
  for (int i = 0; i < 4; ++i) {
    costs.push_back(RandomCost(&rng, 5, 6));
    costs.push_back(RandomCost(&rng, 8, 3));
    costs.push_back(RandomCost(&rng, 1, 9));
  }
  CheckBatchMatchesSolo(costs, MicroConfig());
}

// A problem's result must not depend on WHICH problems it is batched with
// (this is what makes the engine deterministic despite timing-dependent
// batch composition). Solve the same problem inside several different
// batches and compare against its solo result each time.
TEST(FusedMicroSolverTest, ResultIndependentOfBatchComposition) {
  Rng rng(109);
  const Matrix probe = RandomCost(&rng, 7, 7);
  const SinkhornConfig config = MicroConfig();
  SinkhornWorkspace solo_ws;
  const auto solo = SolveSinkhorn(probe, config, &solo_ws);
  ASSERT_TRUE(solo.ok());
  for (int companions : {1, 2, 3}) {
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<Matrix> costs;
      costs.push_back(probe);
      for (int i = 0; i < companions; ++i) {
        costs.push_back(RandomCost(&rng, 7, 7, 1.0 + trial));
      }
      std::vector<const Matrix*> cost_ptrs;
      std::vector<SinkhornConfig> configs(costs.size(), config);
      std::vector<SinkhornWorkspace> ws(costs.size());
      std::vector<SinkhornWorkspace*> ws_ptrs;
      for (size_t i = 0; i < costs.size(); ++i) {
        cost_ptrs.push_back(&costs[i]);
        ws_ptrs.push_back(&ws[i]);
      }
      const auto fused = SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
      ExpectBitIdentical(fused[0], solo, ws[0], solo_ws,
                         "companions=" + std::to_string(companions));
    }
  }
}

// Warm-start continuity: a drifting sequence solved fused must track the
// solo sequence bitwise at every step — the scattered duals ARE the solo
// duals, so warm starts keep agreeing forever.
TEST(FusedMicroSolverTest, WarmStartSequenceStaysBitIdentical) {
  Rng rng(113);
  const int kProblems = 3, kSteps = 5;
  std::vector<Matrix> costs;
  for (int i = 0; i < kProblems; ++i) costs.push_back(RandomCost(&rng, 8, 6));
  const SinkhornConfig config = MicroConfig();
  std::vector<SinkhornWorkspace> solo_ws(kProblems), fused_ws(kProblems);
  for (int step = 0; step < kSteps; ++step) {
    std::vector<Result<SinkhornSolveInfo>> solo;
    for (int i = 0; i < kProblems; ++i) {
      solo.push_back(SolveSinkhorn(costs[i], config, &solo_ws[i]));
    }
    std::vector<const Matrix*> cost_ptrs;
    std::vector<SinkhornConfig> configs(kProblems, config);
    std::vector<SinkhornWorkspace*> ws_ptrs;
    for (int i = 0; i < kProblems; ++i) {
      cost_ptrs.push_back(&costs[i]);
      ws_ptrs.push_back(&fused_ws[i]);
    }
    const auto fused = SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
    for (int i = 0; i < kProblems; ++i) {
      ExpectBitIdentical(fused[i], solo[i], fused_ws[i], solo_ws[i],
                         "step " + std::to_string(step) + " problem " +
                             std::to_string(i));
      if (fused[i].ok() && step > 0) {
        EXPECT_TRUE(fused[i].value().warm_started);
      }
    }
    for (int i = 0; i < kProblems; ++i) Drift(&rng, &costs[i], 0.05);
  }
}

// Re-solving an unchanged cost warm hits the zero-iteration accept (the
// retained duals already satisfy both marginals) — in the fused path this
// exercises the per-lane K^T u verification sweep. Three rounds: round 0
// may stop at max_iterations with a near-miss (duals not yet inside the
// tolerance), round 1 converges from them, round 2 must zero-accept.
TEST(FusedMicroSolverTest, ZeroIterationWarmAcceptMatchesSolo) {
  Rng rng(127);
  std::vector<Matrix> costs;
  for (int i = 0; i < 4; ++i) costs.push_back(RandomCost(&rng, 6, 6));
  const SinkhornConfig config = MicroConfig();
  std::vector<SinkhornWorkspace> solo_ws(4), fused_ws(4);
  std::vector<const Matrix*> cost_ptrs;
  std::vector<SinkhornConfig> configs(4, config);
  std::vector<SinkhornWorkspace*> ws_ptrs;
  for (int i = 0; i < 4; ++i) {
    cost_ptrs.push_back(&costs[i]);
    ws_ptrs.push_back(&fused_ws[i]);
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<Result<SinkhornSolveInfo>> solo;
    for (int i = 0; i < 4; ++i) {
      solo.push_back(SolveSinkhorn(costs[i], config, &solo_ws[i]));
    }
    const auto fused = SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
    for (int i = 0; i < 4; ++i) {
      ExpectBitIdentical(fused[i], solo[i], fused_ws[i], solo_ws[i],
                         "round " + std::to_string(round));
      if (round == 2) {
        ASSERT_TRUE(fused[i].ok());
        EXPECT_EQ(fused[i].value().iterations, 0) << "unchanged cost";
      }
    }
  }
}

// A lane that degenerates (regularization so small the scaling underflows)
// must eject to the full solo cascade — landing in the log-domain fallback
// exactly like solo — WITHOUT disturbing the healthy lanes in its group.
TEST(FusedMicroSolverTest, DegenerateLaneEjectsAndMatchesSoloFallback) {
  Rng rng(131);
  std::vector<Matrix> costs;
  costs.push_back(RandomCost(&rng, 8, 8));
  costs.push_back(RandomCost(&rng, 8, 8, 50.0));  // the problem lane
  costs.push_back(RandomCost(&rng, 8, 8));
  costs.push_back(RandomCost(&rng, 8, 8));
  std::vector<SinkhornConfig> configs(4, MicroConfig());
  configs[1].reg_fraction = 1e-9;  // exp(-C/reg) underflows -> log domain
  std::vector<SinkhornWorkspace> solo_ws(4), fused_ws(4);
  std::vector<Result<SinkhornSolveInfo>> solo;
  for (int i = 0; i < 4; ++i) {
    solo.push_back(SolveSinkhorn(costs[i], configs[i], &solo_ws[i]));
  }
  ASSERT_TRUE(solo[1].ok());
  ASSERT_TRUE(solo[1].value().used_log_domain)
      << "fixture must actually trigger the fallback";
  std::vector<const Matrix*> cost_ptrs;
  std::vector<SinkhornWorkspace*> ws_ptrs;
  for (int i = 0; i < 4; ++i) {
    cost_ptrs.push_back(&costs[i]);
    ws_ptrs.push_back(&fused_ws[i]);
  }
  const auto fused = SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
  for (int i = 0; i < 4; ++i) {
    ExpectBitIdentical(fused[i], solo[i], fused_ws[i], solo_ws[i],
                       "problem " + std::to_string(i));
  }
}

// Tiny iteration budgets hit the final-violation (near-miss / eject) paths.
TEST(FusedMicroSolverTest, IterationBudgetEdgeCasesMatchSolo) {
  Rng rng(137);
  for (int max_iter : {0, 1, 2, 3}) {
    std::vector<Matrix> costs;
    for (int i = 0; i < 4; ++i) costs.push_back(RandomCost(&rng, 7, 5));
    SinkhornConfig config = MicroConfig();
    config.max_iterations = max_iter;
    CheckBatchMatchesSolo(costs, config);
  }
}

TEST(FusedMicroSolverTest, OneByOneProblemsMatchSolo) {
  Rng rng(139);
  std::vector<Matrix> costs;
  for (int i = 0; i < 4; ++i) costs.push_back(RandomCost(&rng, 1, 1));
  CheckBatchMatchesSolo(costs, MicroConfig());
}

// --- the threaded batcher -----------------------------------------------

// Concurrent submissions through MicroSolveBatcher (via the SolveSinkhorn
// config.batcher routing, the way the stream engine uses it) must produce
// each thread's solo-bitwise result no matter how the flat-combining
// leader batches them.
TEST(MicroSolveBatcherTest, ConcurrentSubmissionsAreSoloBitwise) {
  Rng rng(149);
  const int kThreads = 8, kSolvesPerThread = 16;
  std::vector<Matrix> costs;
  std::vector<SinkhornWorkspace> solo_ws(kThreads);
  std::vector<std::vector<double>> solo_costs(kThreads);
  std::vector<std::vector<int>> solo_iters(kThreads);
  const SinkhornConfig base = MicroConfig();
  for (int t = 0; t < kThreads; ++t) {
    costs.push_back(RandomCost(&rng, 6, 6));
  }
  // Reference: each thread's drifting sequence solved solo, serially.
  {
    std::vector<Matrix> seq = costs;
    std::vector<Rng> rngs;
    for (int t = 0; t < kThreads; ++t) rngs.emplace_back(1000 + t);
    for (int t = 0; t < kThreads; ++t) {
      for (int s = 0; s < kSolvesPerThread; ++s) {
        const auto r = SolveSinkhorn(seq[t], base, &solo_ws[t]);
        ASSERT_TRUE(r.ok());
        solo_costs[t].push_back(r.value().cost);
        solo_iters[t].push_back(r.value().iterations);
        Drift(&rngs[t], &seq[t], 0.05);
      }
    }
  }
  // Live: every thread routes through one shared batcher.
  MicroSolveBatcher batcher;
  SinkhornConfig routed = base;
  routed.batcher = &batcher;
  ASSERT_LT(6 * 6, routed.min_parallel_elements)
      << "fixture must stay below the micro threshold";
  std::vector<SinkhornWorkspace> live_ws(kThreads);
  std::vector<std::vector<double>> live_costs(kThreads);
  std::vector<std::vector<int>> live_iters(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Matrix cost = costs[t];
      Rng thread_rng(1000 + t);
      for (int s = 0; s < kSolvesPerThread; ++s) {
        const auto r = SolveSinkhorn(cost, routed, &live_ws[t]);
        ASSERT_TRUE(r.ok());
        live_costs[t].push_back(r.value().cost);
        live_iters[t].push_back(r.value().iterations);
        Drift(&thread_rng, &cost, 0.05);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(live_costs[t].size(), solo_costs[t].size());
    for (int s = 0; s < kSolvesPerThread; ++s) {
      EXPECT_EQ(live_costs[t][s], solo_costs[t][s])
          << "thread " << t << " solve " << s;
      EXPECT_EQ(live_iters[t][s], solo_iters[t][s])
          << "thread " << t << " solve " << s;
    }
    EXPECT_EQ(0, std::memcmp(live_ws[t].plan().data(),
                             solo_ws[t].plan().data(),
                             static_cast<size_t>(live_ws[t].plan().size()) *
                                 sizeof(double)))
        << "thread " << t << " final plan";
  }
}

// Problems at or above min_parallel_elements must bypass the batcher (the
// routing is strictly for micro solves).
TEST(MicroSolveBatcherTest, LargeSolvesBypassBatcher) {
  Rng rng(151);
  MicroSolveBatcher batcher;
  SinkhornConfig config = MicroConfig();
  config.batcher = &batcher;
  config.min_parallel_elements = 16;  // 5x5 = 25 >= 16 -> solo path
  const Matrix cost = RandomCost(&rng, 5, 5);
  SinkhornWorkspace ws_routed, ws_plain;
  const auto routed = SolveSinkhorn(cost, config, &ws_routed);
  SinkhornConfig plain = config;
  plain.batcher = nullptr;
  const auto solo = SolveSinkhorn(cost, plain, &ws_plain);
  ExpectBitIdentical(routed, solo, ws_routed, ws_plain, "bypass");
}

}  // namespace
}  // namespace cerl::ot
