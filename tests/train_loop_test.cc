// Tests for the shared mini-batch training engine: early-stopping snapshot
// restore, patience accounting, and full per-epoch sample coverage
// including the tail batch (regression: the pre-extraction loops dropped
// up to batch_size-1 samples per epoch).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "train/train_loop.h"

namespace cerl::train {
namespace {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

// Minimizes w^2 on a 1x1 parameter; every batch makes the same step so the
// parameter trajectory is strictly decreasing in |w|.
Var QuadraticLoss(Tape* tape, Parameter* w) {
  return autodiff::Sum(autodiff::Square(tape->Param(w)));
}

TEST(TrainLoopTest, EarlyStoppingRestoresBestValidationSnapshot) {
  Parameter w(linalg::Matrix(1, 1, 5.0), "w");
  LoopOptions options;
  options.epochs = 100;
  options.batch_size = 4;
  options.patience = 3;

  // Scripted validation losses: initial 10, best after epoch 0, then only
  // worse. The engine must restore the parameter value it had when the
  // best validation loss was observed.
  const std::vector<double> script = {10.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> w_at_call;
  size_t call = 0;
  auto valid_loss = [&]() {
    w_at_call.push_back(w.value(0, 0));
    const double v = script[std::min(call, script.size() - 1)];
    ++call;
    return v;
  };

  TrainLoop loop(options, {&w});
  TrainStats stats = loop.Run(
      /*n=*/8, [&](Tape* tape, IndexSpan) {
        return QuadraticLoss(tape, &w);
      },
      valid_loss);

  EXPECT_DOUBLE_EQ(stats.best_valid_loss, 1.0);
  // Best was the call right after epoch 0; the restored parameter must be
  // bit-identical to its value at that call, not the later (smaller) ones.
  EXPECT_DOUBLE_EQ(w.value(0, 0), w_at_call[1]);
  EXPECT_NE(w.value(0, 0), w_at_call.back());
}

TEST(TrainLoopTest, EpochCountRespectsPatience) {
  Parameter w(linalg::Matrix(1, 1, 1.0), "w");
  LoopOptions options;
  options.epochs = 200;
  options.batch_size = 2;
  options.patience = 7;

  // Validation never improves on the initial loss, so the loop must stop
  // after exactly `patience` epochs.
  TrainLoop loop(options, {&w});
  TrainStats stats = loop.Run(
      /*n=*/6, [&](Tape* tape, IndexSpan) {
        return QuadraticLoss(tape, &w);
      },
      [&]() { return 1.0; });

  EXPECT_EQ(stats.epochs_run, options.patience);
  EXPECT_DOUBLE_EQ(stats.best_valid_loss, 1.0);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(TrainLoopTest, EveryEpochVisitsAllSamplesIncludingTailBatch) {
  Parameter w(linalg::Matrix(1, 1, 1.0), "w");
  const int n = 10;
  LoopOptions options;
  options.epochs = 3;
  options.batch_size = 4;  // 10 % 4 != 0: tail batch of 2 must not be dropped
  options.patience = 100;

  std::vector<std::vector<int>> epoch_visits(options.epochs);
  int steps = 0;
  TrainLoop loop(options, {&w});
  TrainStats stats = loop.Run(
      n,
      [&](Tape* tape, IndexSpan idx) {
        const int epoch = steps / 3;  // ceil(10/4) = 3 steps per epoch
        epoch_visits[epoch].insert(epoch_visits[epoch].end(), idx.begin(),
                                   idx.end());
        ++steps;
        return QuadraticLoss(tape, &w);
      },
      [&]() { return 1.0; });

  EXPECT_EQ(stats.epochs_run, options.epochs);
  EXPECT_EQ(stats.steps, static_cast<int64_t>(options.epochs) * 3);
  EXPECT_EQ(stats.samples_seen, static_cast<int64_t>(options.epochs) * n);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (auto& visits : epoch_visits) {
    std::sort(visits.begin(), visits.end());
    EXPECT_EQ(visits, all);  // every sample exactly once per epoch
  }
}

TEST(TrainLoopTest, BatchSizeLargerThanDatasetIsOneFullBatch) {
  Parameter w(linalg::Matrix(1, 1, 1.0), "w");
  LoopOptions options;
  options.epochs = 2;
  options.batch_size = 128;
  options.patience = 100;

  std::vector<size_t> batch_sizes;
  TrainLoop loop(options, {&w});
  TrainStats stats = loop.Run(
      /*n=*/5,
      [&](Tape* tape, IndexSpan idx) {
        batch_sizes.push_back(idx.size());
        return QuadraticLoss(tape, &w);
      },
      [&]() { return 1.0; });

  EXPECT_EQ(stats.steps, 2);
  for (size_t b : batch_sizes) EXPECT_EQ(b, 5u);
}

TEST(TrainLoopTest, ConvergesOnQuadratic) {
  Parameter w(linalg::Matrix(1, 1, 3.0), "w");
  LoopOptions options;
  options.epochs = 400;
  options.batch_size = 8;
  options.patience = 400;
  options.learning_rate = 5e-2;

  TrainLoop loop(options, {&w});
  loop.Run(
      /*n=*/8, [&](Tape* tape, IndexSpan) {
        return QuadraticLoss(tape, &w);
      },
      // Validation tracks the true objective, so the best snapshot is the
      // most converged iterate.
      [&]() { return w.value(0, 0) * w.value(0, 0); });

  EXPECT_NEAR(w.value(0, 0), 0.0, 1e-2);
}

// The assembled-minibatch path must hand the loss the correct rows and be
// bit-deterministic: pipelined (prefetching) assembly produces exactly the
// same final parameters as serial assembly for a fixed seed.
TEST(TrainLoopAssemblyTest, GatheredRowsMatchBatchIndices) {
  const int n = 23, d = 5;
  linalg::Matrix x(n, d);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < d; ++c) x(r, c) = 100.0 * r + c;
  Parameter w(linalg::Matrix(1, 1, 1.0), "w");
  LoopOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.patience = 100;

  TrainLoop loop(options, {&w});
  loop.Run(
      n, {&x},
      [&](Tape* tape, IndexSpan idx,
          const std::vector<linalg::Matrix>& gathered) {
        EXPECT_EQ(gathered.size(), 1u);
        EXPECT_EQ(gathered[0].rows(), idx.size());
        EXPECT_EQ(gathered[0].cols(), d);
        for (int i = 0; i < idx.size(); ++i)
          for (int c = 0; c < d; ++c)
            EXPECT_DOUBLE_EQ(gathered[0](i, c), x(idx[i], c));
        return QuadraticLoss(tape, &w);
      },
      [&]() { return 1.0; });
}

TEST(TrainLoopAssemblyTest, PipelinedAssemblyMatchesSerialBitExactly) {
  const int n = 53, d = 7;  // odd n: exercises the tail batch every epoch
  auto train_once = [&](bool pipelined) {
    Rng data_rng(99);
    linalg::Matrix x(n, d), y(n, 1);
    for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.Normal();
    for (int64_t i = 0; i < y.size(); ++i) y.data()[i] = data_rng.Normal();
    Parameter w(linalg::Matrix(d, 1, 0.1), "w");
    Parameter b(linalg::Matrix(1, 1, 0.0), "b");
    LoopOptions options;
    options.epochs = 5;
    options.batch_size = 8;
    options.patience = 100;
    options.seed = 4242;
    options.pipeline_assembly = pipelined;

    TrainLoop loop(options, {&w, &b});
    loop.Run(
        n, {&x, &y},
        [&](Tape* tape, IndexSpan idx,
            const std::vector<linalg::Matrix>& gathered) {
          Var xb = tape->ConstantView(&gathered[0]);
          Var pred = autodiff::MatMul(xb, tape->Param(&w));
          Var shifted = autodiff::AddRowBroadcast(pred, tape->Param(&b));
          (void)idx;
          return autodiff::MseLoss(shifted, tape->ConstantView(&gathered[1]));
        },
        // Constant validation keeps the initial snapshot; compare the LIVE
        // parameters via a final improving epoch instead: use the true loss
        // so the most-trained iterate is restored.
        [&]() {
          double s = 0.0;
          for (int r = 0; r < n; ++r) {
            double p = b.value(0, 0);
            for (int c = 0; c < d; ++c) p += x(r, c) * w.value(c, 0);
            const double e = p - y(r, 0);
            s += e * e;
          }
          return s / n;
        });
    std::vector<double> out;
    for (int64_t i = 0; i < w.value.size(); ++i)
      out.push_back(w.value.data()[i]);
    out.push_back(b.value(0, 0));
    return out;
  };

  const std::vector<double> serial = train_once(false);
  const std::vector<double> pipelined = train_once(true);
  ASSERT_EQ(serial.size(), pipelined.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pipelined[i]) << "param element " << i;
  }
}

TEST(TrainLoopSnapshotTest, SnapshotRestoreRoundTrips) {
  Parameter a(linalg::Matrix(2, 3, 1.5), "a");
  Parameter b(linalg::Matrix(1, 1, -2.0), "b");
  std::vector<Parameter*> params = {&a, &b};
  auto snapshot = SnapshotValues(params);
  a.value.Fill(9.0);
  b.value.Fill(9.0);
  RestoreValues(params, snapshot);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a.value(i, j), 1.5);
  EXPECT_DOUBLE_EQ(b.value(0, 0), -2.0);
}

}  // namespace
}  // namespace cerl::train
