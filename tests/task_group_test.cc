// Tests for util::TaskGroup, the fenced-submit / per-stream serialization
// primitive: strict FIFO order and mutual exclusion within a group,
// independence across groups sharing one pool, and group-scoped Wait.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "util/task_group.h"
#include "util/thread_pool.h"

namespace cerl {
namespace {

TEST(TaskGroupTest, RunsTasksInSubmissionOrderExactlyOnce) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::vector<int> order;  // written only by group tasks => serialized
  const int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&order, i] { order.push_back(i); });
  }
  group.Wait();
  ASSERT_EQ(order.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(group.submitted(), kTasks);
  EXPECT_EQ(group.completed(), kTasks);
}

TEST(TaskGroupTest, TasksOfOneGroupNeverOverlap) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 200; ++i) {
    group.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      in_flight.fetch_sub(1);
    });
  }
  group.Wait();
  EXPECT_EQ(max_in_flight.load(), 1);
}

TEST(TaskGroupTest, GroupsDoNotBlockEachOther) {
  // Group A's task blocks until group B's task has run. If groups
  // serialized against each other (pool-global fencing), this would
  // deadlock; with per-group serialization B's task runs on another worker
  // and releases A.
  ThreadPool pool(2);
  TaskGroup a(&pool), b(&pool);
  std::mutex mutex;
  std::condition_variable cv;
  bool b_ran = false;

  a.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return b_ran; }));
  });
  b.Submit([&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      b_ran = true;
    }
    cv.notify_all();
  });
  a.Wait();
  b.Wait();
  EXPECT_TRUE(b_ran);
}

TEST(TaskGroupTest, WaitScopedToOwnGroup) {
  ThreadPool pool(2);
  TaskGroup slow(&pool), fast(&pool);
  std::mutex mutex;
  std::condition_variable cv;
  bool release_slow = false;
  std::atomic<bool> slow_done{false};

  slow.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release_slow; });
    slow_done = true;
  });
  fast.Submit([] {});
  // Waiting on `fast` must return while `slow`'s task is still blocked.
  fast.Wait();
  EXPECT_FALSE(slow_done.load());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_slow = true;
  }
  cv.notify_all();
  slow.Wait();
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroupTest, SubmitAfterDrainRestartsPump) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  int runs = 0;
  group.Submit([&] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 1);
  group.Submit([&] { ++runs; });
  group.Submit([&] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 3);
}

TEST(TaskGroupTest, FencedSubmitSeesPriorTasksEffects) {
  // Each task reads the value the previous task wrote (no atomics): the
  // group's serialization must carry the happens-before edge.
  ThreadPool pool(4);
  TaskGroup group(&pool);
  long long value = 0;
  const int kTasks = 300;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&value] { value = value * 3 + 1; });
  }
  group.Wait();
  long long expected = 0;
  for (int i = 0; i < kTasks; ++i) expected = expected * 3 + 1;
  EXPECT_EQ(value, expected);
}

TEST(TaskGroupTest, SmallTasksNeverTouchTheHeap) {
  // The scheduling hot path (Submit + the group's self-resubmitting pump)
  // must stay allocation-free for small closures: TaskFn's inline storage
  // holds them, and the pump lambda is a single captured pointer. A heap
  // allocation per stage task would put malloc on every scheduler decision.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> runs{0};
  group.Submit([&runs] { runs.fetch_add(1); });
  group.Wait();  // warm up: pool/group internals allocate lazily

  const int64_t before = TaskFn::heap_allocations();
  const int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&runs] { runs.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(runs.load(), kTasks + 1);
  EXPECT_EQ(TaskFn::heap_allocations(), before);

  // A closure past kInlineBytes boxes (and is counted) — the counter works.
  struct Fat {
    char pad[128];
  } fat{};
  group.Submit([&runs, fat] {
    (void)fat;
    runs.fetch_add(1);
  });
  group.Wait();
  EXPECT_EQ(TaskFn::heap_allocations(), before + 1);
}

TEST(TaskGroupTest, DestructorDrains) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.Submit([&runs] { runs.fetch_add(1); });
    }
  }  // ~TaskGroup waits
  EXPECT_EQ(runs.load(), 50);
}

}  // namespace
}  // namespace cerl
