// End-to-end integration: the full pipeline (data generation -> strategies
// -> CERL) at miniature scale, asserting the qualitative shape the paper
// reports in Tables I/II — strategy A degrades on shifted new data, CERL
// remains usable on both old and new domains without raw-data access.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "data/synthetic.h"
#include "data/topic_benchmark.h"
#include "util/rng.h"

namespace cerl {
namespace {

using causal::Strategy;
using causal::StrategyConfig;
using core::CerlConfig;
using core::CerlTrainer;

StrategyConfig MiniStrategyConfig(uint64_t seed) {
  StrategyConfig c;
  c.net.rep_hidden = {48};
  c.net.rep_dim = 16;
  c.net.head_hidden = {24};
  c.train.epochs = 60;
  c.train.batch_size = 64;
  c.train.learning_rate = 3e-3;
  c.train.patience = 20;
  c.train.alpha = 0.3;
  c.train.lambda = 1e-5;
  c.train.seed = seed;
  return c;
}

CerlConfig MiniCerlConfig(uint64_t seed) {
  CerlConfig c;
  const StrategyConfig base = MiniStrategyConfig(seed);
  c.net = base.net;
  c.train = base.train;
  c.memory_capacity = 600;
  return c;
}

TEST(SyntheticIntegrationTest, TableTwoShape) {
  // Averaged over two simulations: single-seed comparisons are noisy at
  // this miniature scale (the paper averages 10 repetitions of 10k units).
  double a_new = 0.0, b_prev = 0.0, c_prev = 0.0, c_new = 0.0;
  double cerl_prev = 0.0, cerl_new = 0.0;
  const int seeds = 2;
  for (int s = 0; s < seeds; ++s) {
    data::SyntheticConfig data_config;
    data_config.units_per_domain = 1200;
    data_config.num_domains = 2;
    data_config.seed = 17 + 100 * s;
    data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
    Rng split_rng(18 + s);
    auto splits = data::SplitStream(stream.domains, &split_rng);

    StrategyConfig config = MiniStrategyConfig(19 + s);
    auto run_a = RunCfrStrategy(Strategy::kA, splits, config);
    auto run_b = RunCfrStrategy(Strategy::kB, splits, config);
    auto run_c = RunCfrStrategy(Strategy::kC, splits, config);

    CerlTrainer cerl(MiniCerlConfig(19 + s), data_config.num_features());
    cerl.ObserveDomain(splits[0]);
    cerl.ObserveDomain(splits[1]);
    const auto prev = cerl.Evaluate(splits[0].test);
    const auto neu = cerl.Evaluate(splits[1].test);
    ASSERT_TRUE(std::isfinite(prev.pehe));
    ASSERT_TRUE(std::isfinite(neu.pehe));
    // Everything well below the trivial predict-zero error (tau = sin^2 has
    // RMS ~ 0.6 around its mean, and ~0.61 including the mean offset).
    ASSERT_LT(prev.pehe, 0.8);
    ASSERT_LT(neu.pehe, 0.8);

    a_new += run_a.final_stage().per_domain[1].pehe / seeds;
    b_prev += run_b.final_stage().per_domain[0].pehe / seeds;
    c_prev += run_c.final_stage().per_domain[0].pehe / seeds;
    c_new += run_c.final_stage().per_domain[1].pehe / seeds;
    cerl_prev += prev.pehe / seeds;
    cerl_new += neu.pehe / seeds;
  }

  // CFR-A never saw domain 2; CERL adapts to it. CERL should do at least as
  // well there (with slack for noise).
  EXPECT_LT(cerl_new, a_new + 0.05);
  // On previous-domain data CERL must retain at least as well as plain
  // fine-tuning (CFR-B) — without touching domain-1 raw data again. The
  // strict ordering is asserted on the forgetting-inducing stream in
  // core_test and in the table2 bench (3-repetition averages); here we
  // allow a noise cushion because two miniature seeds are compared.
  EXPECT_LT(cerl_prev, 1.25 * b_prev + 0.05);
  // And it tracks the ideal retrain-on-everything strategy within a modest
  // factor on both domains (the paper reports near-parity at 10k units x
  // 10 repetitions; at this miniature scale we check the direction).
  EXPECT_LT(cerl_prev, 2.5 * c_prev + 0.05);
  EXPECT_LT(cerl_new, 1.6 * c_new + 0.05);
}

TEST(TopicIntegrationTest, RunsEndToEndOnNewsLikeData) {
  data::TopicBenchmarkConfig config;
  config.corpus.num_docs = 500;
  config.corpus.vocab_size = 140;
  config.corpus.num_topics = 8;
  config.corpus.doc_length_mean = 40.0;
  config.lda.num_topics = 8;
  config.lda.iterations = 25;
  config.shift = data::DomainShift::kSubstantial;
  config.seed = 23;
  data::TopicBenchmark bench = data::GenerateTopicBenchmark(config);
  Rng split_rng(24);
  auto splits = data::SplitStream(bench.domains, &split_rng);

  StrategyConfig strat = MiniStrategyConfig(25);
  strat.train.epochs = 60;
  strat.train.patience = 60;
  auto run_c = RunCfrStrategy(Strategy::kC, splits, strat);

  CerlConfig cerl_config = MiniCerlConfig(25);
  cerl_config.train.epochs = 60;
  cerl_config.train.patience = 60;
  CerlTrainer cerl(cerl_config, bench.domains[0].num_features());
  cerl.ObserveDomain(splits[0]);
  cerl.ObserveDomain(splits[1]);

  const auto prev = cerl.Evaluate(splits[0].test);
  const auto neu = cerl.Evaluate(splits[1].test);
  ASSERT_TRUE(std::isfinite(prev.pehe));
  ASSERT_TRUE(std::isfinite(neu.pehe));

  // Predict-zero PEHE equals the RMS of the true ITE. At this miniature
  // scale (105 training docs in domain 1) not even the retrain-on-all
  // ideal beats predict-zero on the small previous domain, so the
  // meaningful claims are relative: CERL learns real effects where data
  // exists, and tracks the ideal within a modest factor on the rest.
  auto rms_ite = [](const data::CausalDataset& d) {
    double s = 0.0;
    auto ite = d.TrueIte();
    for (double v : ite) s += v * v;
    return std::sqrt(s / ite.size());
  };
  EXPECT_LT(neu.pehe, 0.75 * rms_ite(splits[1].test));
  EXPECT_LT(prev.pehe, 2.0 * run_c.final_stage().per_domain[0].pehe);
  // Memory respects the budget.
  EXPECT_LE(cerl.memory().size(), cerl_config.memory_capacity);
}

TEST(FiveDomainIntegrationTest, SequentialStreamStaysStable) {
  // Fig. 3/4 shape at miniature scale: five sequential domains, pooled
  // error stays bounded as domains accumulate.
  data::SyntheticConfig data_config;
  data_config.units_per_domain = 400;
  data_config.num_domains = 5;
  data_config.seed = 29;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng split_rng(30);
  auto splits = data::SplitStream(stream.domains, &split_rng);

  CerlConfig config = MiniCerlConfig(31);
  config.train.epochs = 20;
  config.memory_capacity = 200;
  CerlTrainer cerl(config, data_config.num_features());

  std::vector<double> pooled_pehe;
  for (int d = 0; d < 5; ++d) {
    cerl.ObserveDomain(splits[d]);
    auto eval = causal::EvaluateStage(
        d, splits,
        [&cerl](const linalg::Matrix& x) { return cerl.PredictIte(x); });
    pooled_pehe.push_back(eval.pooled.pehe);
    EXPECT_LE(cerl.memory().size(), config.memory_capacity);
  }
  // No blow-up: the last pooled error remains in the useful range.
  for (double pehe : pooled_pehe) {
    ASSERT_TRUE(std::isfinite(pehe));
    ASSERT_LT(pehe, 0.9);
  }
}

}  // namespace
}  // namespace cerl
