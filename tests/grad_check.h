// Central-difference gradient checking harness for autodiff tests.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autodiff/tape.h"

namespace cerl::autodiff {

/// Builds a scalar loss from leaf Vars bound to the given input values.
using LossBuilder = std::function<Var(Tape*, const std::vector<Var>&)>;

/// Verifies analytic gradients of `build` against central differences for
/// every element of every input. rel_tol is relative to max(1, |numeric|).
inline void CheckGradients(const std::vector<linalg::Matrix>& inputs,
                           const LossBuilder& build, double rel_tol = 1e-6,
                           double eps = 1e-5) {
  // Analytic pass.
  Tape tape;
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const auto& m : inputs) leaves.push_back(tape.Leaf(m));
  Var loss = build(&tape, leaves);
  ASSERT_EQ(loss.value().rows(), 1);
  ASSERT_EQ(loss.value().cols(), 1);
  tape.Backward(loss);

  auto eval = [&](const std::vector<linalg::Matrix>& values) {
    Tape t2;
    std::vector<Var> l2;
    l2.reserve(values.size());
    for (const auto& m : values) l2.push_back(t2.Leaf(m));
    return build(&t2, l2).scalar();
  };

  for (size_t input = 0; input < inputs.size(); ++input) {
    const linalg::Matrix& analytic = tape.GradRef(leaves[input].id());
    for (int64_t e = 0; e < inputs[input].size(); ++e) {
      std::vector<linalg::Matrix> plus = inputs;
      std::vector<linalg::Matrix> minus = inputs;
      plus[input].data()[e] += eps;
      minus[input].data()[e] -= eps;
      const double numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
      const double got = analytic.data()[e];
      const double scale = std::max(1.0, std::fabs(numeric));
      ASSERT_NEAR(got, numeric, rel_tol * scale)
          << "input " << input << " element " << e;
    }
  }
}

}  // namespace cerl::autodiff
