// Golden-format compatibility: small CERLCKP1 / CERLENG1 fixtures are
// committed under tests/testdata/ and every build must keep loading them
// bit-identically (PredictIte parity against committed hexfloat values).
// This freezes the on-disk formats — an accidental layout change breaks
// these tests, not production restores.
//
// Regenerating (only when the format is INTENTIONALLY revised):
//   CERL_REGEN_GOLDEN=1 ./build/tests/golden_format_test
// rewrites the fixtures in the source tree; commit them with the change.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"
#include "linalg/simd.h"
#include "stream/stream_engine.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace cerl {
namespace {

// The committed hexfloats pin the SCALAR kernel arithmetic: they must load
// bit-identically on any machine, including ones without AVX2. Each test
// (and the regen path) forces the scalar table so the fixture values stay
// machine-independent; production numerics are covered by the parity suite
// in simd_kernel_test.cc instead.
class ScalarKernelGuard {
 public:
  ScalarKernelGuard() { linalg::simd::ForceScalarForTesting(true); }
  ~ScalarKernelGuard() { linalg::simd::ForceScalarForTesting(false); }
};

using core::CerlConfig;
using core::CerlTrainer;
using data::DataSplit;
using linalg::Matrix;
using linalg::Vector;

constexpr int kGoldenDim = 25;
constexpr int kProbeRows = 12;

std::string TestDataDir() { return CERL_TESTDATA_DIR; }
std::string TrainerFixture() { return TestDataDir() + "/golden_trainer.ckpt"; }
std::string EngineFixture() { return TestDataDir() + "/golden_engine.snap"; }
std::string ExpectedFile() { return TestDataDir() + "/golden_expected.txt"; }

bool RegenRequested() {
  const char* env = std::getenv("CERL_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

// Everything below is pinned: the fixtures were generated with exactly these
// configs/seeds, and loading requires the same architecture.
CerlConfig GoldenTrainerConfig() {
  CerlConfig c;
  c.net.rep_hidden = {6};
  c.net.rep_dim = 4;
  c.net.head_hidden = {4};
  c.train.epochs = 4;
  c.train.batch_size = 32;
  c.train.seed = 1213;
  c.memory_capacity = 24;
  return c;
}

CerlConfig GoldenStreamConfig(uint64_t seed) {
  CerlConfig c = GoldenTrainerConfig();
  c.train.seed = seed;
  return c;
}

std::vector<DataSplit> GoldenStreamData(int domains, uint64_t seed) {
  data::SyntheticConfig dc;
  dc.num_confounders = 10;
  dc.num_instruments = 4;
  dc.num_irrelevant = 5;
  dc.num_adjusters = 6;  // 25 features total == kGoldenDim
  dc.num_domains = domains;
  dc.units_per_domain = 90;
  dc.seed = seed;
  auto stream = data::GenerateSyntheticStream(dc);
  Rng rng(seed + 1);
  return data::SplitStream(stream.domains, &rng);
}

// Deterministic probe inputs (bit-reproducible: our own Rng, no std::
// distributions).
Matrix ProbeInputs() {
  Rng rng(424242);
  Matrix x(kProbeRows, kGoldenDim);
  for (int i = 0; i < kProbeRows; ++i) {
    for (int j = 0; j < kGoldenDim; ++j) x(i, j) = rng.Normal();
  }
  return x;
}

// The expected-values file: one "%a" hexfloat per line, sections separated
// by labels. Hexfloat round-trips doubles exactly, so parity is bitwise.
void WriteExpected(const std::vector<Vector>& sections,
                   const std::vector<std::string>& labels) {
  std::string out;
  for (size_t s = 0; s < sections.size(); ++s) {
    out += "# " + labels[s] + "\n";
    for (double v : sections[s]) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%a\n", v);
      out += buf;
    }
  }
  Status written = WriteFileAtomic(ExpectedFile(), out);
  ASSERT_TRUE(written.ok()) << written.ToString();
}

std::vector<Vector> ReadExpected(size_t num_sections) {
  std::vector<Vector> sections;
  std::ifstream in(ExpectedFile());
  EXPECT_TRUE(in.good()) << "missing fixture " << ExpectedFile();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      sections.emplace_back();
      continue;
    }
    EXPECT_FALSE(sections.empty());
    sections.back().push_back(std::strtod(line.c_str(), nullptr));
  }
  EXPECT_EQ(sections.size(), num_sections);
  sections.resize(num_sections);
  return sections;
}

void ExpectExactly(const Vector& actual, const Vector& expected,
                   const std::string& tag) {
  ASSERT_EQ(actual.size(), expected.size()) << tag;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << tag << " value " << i;
  }
}

// Builds the golden trainer state: 2 observed domains.
void RegenerateTrainerFixture(Vector* expected_ite) {
  auto splits = GoldenStreamData(2, 3001);
  CerlTrainer trainer(GoldenTrainerConfig(), kGoldenDim);
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  ASSERT_TRUE(trainer.SaveCheckpoint(TrainerFixture()).ok());
  *expected_ite = trainer.PredictIte(ProbeInputs());
}

// Builds the golden engine state: 2 streams; each has one trained domain
// and one journaled domain (pushed back-to-back, so domain 0 is in flight
// and domain 1 is still queued when the snapshot fence lands).
void RegenerateEngineFixture(Vector* expected_a, Vector* expected_b) {
  stream::StreamEngineOptions options;
  options.num_workers = 2;
  stream::StreamEngine engine(options);
  auto splits_a = GoldenStreamData(2, 3002);
  auto splits_b = GoldenStreamData(2, 3003);
  const int a = engine.AddStream("golden-a", GoldenStreamConfig(41),
                                 kGoldenDim);
  const int b = engine.AddStream("golden-b", GoldenStreamConfig(42),
                                 kGoldenDim);
  engine.PushDomain(a, splits_a[0]);
  engine.PushDomain(a, splits_a[1]);
  engine.PushDomain(b, splits_b[0]);
  engine.PushDomain(b, splits_b[1]);
  stream::StreamEngine::SnapshotInfo info;
  ASSERT_TRUE(engine.SaveSnapshot(EngineFixture(), &info).ok());
  // The fixture must exercise the journal codec.
  ASSERT_GT(info.journaled_domains, 0) << "regen raced: rerun";

  // Expected values come from REPLAYING the fixture, so verification does
  // not depend on this process's engine continuing.
  stream::StreamEngine replay(options);
  ASSERT_TRUE(replay.LoadSnapshot(EngineFixture()).ok());
  replay.Drain();
  *expected_a = replay.trainer(0).PredictIte(ProbeInputs());
  *expected_b = replay.trainer(1).PredictIte(ProbeInputs());
}

TEST(GoldenFormatTest, RegenerateIfRequested) {
  if (!RegenRequested()) return;
  ScalarKernelGuard scalar_guard;
  Vector trainer_ite, engine_a, engine_b;
  RegenerateTrainerFixture(&trainer_ite);
  RegenerateEngineFixture(&engine_a, &engine_b);
  WriteExpected({trainer_ite, engine_a, engine_b},
                {"trainer PredictIte", "engine stream golden-a PredictIte",
                 "engine stream golden-b PredictIte"});
}

TEST(GoldenFormatTest, TrainerFixtureLoadsBitIdentically) {
  ScalarKernelGuard scalar_guard;
  const std::vector<Vector> expected = ReadExpected(3);
  CerlTrainer trainer(GoldenTrainerConfig(), kGoldenDim);
  Status s = trainer.LoadCheckpoint(TrainerFixture());
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(trainer.stages_seen(), 2);
  ExpectExactly(trainer.PredictIte(ProbeInputs()), expected[0],
                "golden trainer");
}

TEST(GoldenFormatTest, EngineFixtureLoadsAndReplaysBitIdentically) {
  ScalarKernelGuard scalar_guard;
  const std::vector<Vector> expected = ReadExpected(3);
  stream::StreamEngineOptions options;
  options.num_workers = 2;
  stream::StreamEngine engine(options);
  Status s = engine.LoadSnapshot(EngineFixture());
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(engine.num_streams(), 2);
  EXPECT_EQ(engine.name(0), "golden-a");
  EXPECT_EQ(engine.name(1), "golden-b");
  // Journal replay is part of the frozen semantics: draining trains the
  // journaled domain of each stream, deterministically.
  engine.Drain();
  EXPECT_EQ(engine.trainer(0).stages_seen(), 2);
  EXPECT_EQ(engine.trainer(1).stages_seen(), 2);
  ExpectExactly(engine.trainer(0).PredictIte(ProbeInputs()), expected[1],
                "golden engine stream a");
  ExpectExactly(engine.trainer(1).PredictIte(ProbeInputs()), expected[2],
                "golden engine stream b");
}

}  // namespace
}  // namespace cerl
