// Tests for the cost-aware scheduling stack: WorkStealingPool ordering /
// stealing / deadline submits, StageCostModel EWMA convergence, and the
// StreamEngine-level guarantees the scheduler must preserve — starvation
// freedom under heavy skew and bit-identical results no matter which worker
// runs (or steals) a stage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/cost_model.h"
#include "stream/stream_engine.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/scheduler.h"

namespace cerl {
namespace {

using Clock = std::chrono::steady_clock;

// Blocks pool workers until Release(), so tests can stage a known set of
// ready tasks before any of them runs.
class Gate {
 public:
  void Hold() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(WorkStealingPoolTest, CostAwarePopsHighestPriorityFirst) {
  WorkStealingPoolOptions options;
  options.num_threads = 1;
  options.cost_aware = true;
  WorkStealingPool pool(options);

  Gate gate;
  pool.Execute([&gate] { gate.Hold(); });

  std::vector<int> order;
  std::mutex order_mutex;
  const double priorities[] = {1.0, 5.0, 3.0, -2.0, 4.0};
  for (int i = 0; i < 5; ++i) {
    ExecOptions opts;
    opts.priority = priorities[i];
    pool.Execute(
        [i, &order, &order_mutex] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(i);
        },
        opts);
  }
  gate.Release();
  pool.Wait();

  ASSERT_EQ(order.size(), 5u);
  // Descending priority: 5.0, 4.0, 3.0, 1.0, -2.0.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 0, 3}));
  EXPECT_EQ(pool.steal_count(), 0);  // single worker: nothing to steal from
}

TEST(WorkStealingPoolTest, EqualPriorityTiesAreFifo) {
  WorkStealingPoolOptions options;
  options.num_threads = 1;
  options.cost_aware = true;
  WorkStealingPool pool(options);

  Gate gate;
  pool.Execute([&gate] { gate.Hold(); });

  std::vector<int> order;
  std::mutex order_mutex;
  for (int i = 0; i < 6; ++i) {
    ExecOptions opts;
    opts.priority = 7.0;
    opts.home = 0;
    pool.Execute(
        [i, &order, &order_mutex] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(i);
        },
        opts);
  }
  gate.Release();
  pool.Wait();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(WorkStealingPoolTest, FifoPolicyIgnoresPriority) {
  WorkStealingPoolOptions options;
  options.num_threads = 1;
  options.cost_aware = false;  // legacy round-robin baseline
  WorkStealingPool pool(options);

  Gate gate;
  pool.Execute([&gate] { gate.Hold(); });

  std::vector<int> order;
  std::mutex order_mutex;
  const double priorities[] = {1.0, 5.0, 3.0, -2.0, 4.0};
  for (int i = 0; i < 5; ++i) {
    ExecOptions opts;
    opts.priority = priorities[i];
    pool.Execute(
        [i, &order, &order_mutex] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(i);
        },
        opts);
  }
  gate.Release();
  pool.Wait();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.steal_count(), 0);
}

TEST(WorkStealingPoolTest, IdleWorkerStealsHomedTasks) {
  WorkStealingPoolOptions options;
  options.num_threads = 2;
  options.cost_aware = true;
  WorkStealingPool pool(options);

  // Park both workers, stage tasks all homed to worker 0, then release:
  // both workers drain queue 0, so every pop by worker 1 is a steal. With
  // more tasks than one worker can monopolize, at least one steal must
  // happen (worker 1 has nothing else to do).
  // Homeless gates spread one per queue; cross-queue pops of homeless
  // tasks are not steals, so only the homed work below counts.
  Gate gate;
  for (int w = 0; w < 2; ++w) {
    pool.Execute([&gate] { gate.Hold(); });
  }
  std::atomic<int> ran{0};
  std::atomic<int> off_home{0};
  for (int i = 0; i < 16; ++i) {
    ExecOptions opts;
    opts.home = 0;
    pool.Execute(
        [&pool, &ran, &off_home] {
          if (pool.current_worker() != 0) ++off_home;
          ++ran;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        opts);
  }
  gate.Release();
  pool.Wait();

  EXPECT_EQ(ran.load(), 16);
  EXPECT_GT(pool.steal_count(), 0);
  EXPECT_EQ(pool.steal_count(), off_home.load());
}

TEST(WorkStealingPoolTest, CurrentWorkerIsMinusOneOffPool) {
  WorkStealingPoolOptions options;
  options.num_threads = 2;
  WorkStealingPool pool(options);
  EXPECT_EQ(pool.current_worker(), -1);
  std::atomic<int> inside{-2};
  pool.Execute([&pool, &inside] { inside = pool.current_worker(); });
  pool.Wait();
  EXPECT_GE(inside.load(), 0);
  EXPECT_LT(inside.load(), 2);
}

TEST(WorkStealingPoolTest, ExecuteAfterHonorsDeadlineWithoutHoldingAWorker) {
  WorkStealingPoolOptions options;
  options.num_threads = 1;
  options.cost_aware = true;
  WorkStealingPool pool(options);

  // The parked task must not occupy the single worker: an immediate task
  // submitted after it still runs right away.
  const auto start = Clock::now();
  std::atomic<bool> delayed_ran{false};
  Clock::time_point delayed_at;
  pool.ExecuteAfter(
      30,
      [&delayed_ran, &delayed_at] {
        delayed_at = Clock::now();
        delayed_ran = true;
      },
      ExecOptions{});
  std::atomic<bool> immediate_ran{false};
  Clock::time_point immediate_at;
  pool.Execute([&immediate_ran, &immediate_at] {
    immediate_at = Clock::now();
    immediate_ran = true;
  });
  pool.Wait();  // must cover the parked deadline task too

  ASSERT_TRUE(delayed_ran.load());
  ASSERT_TRUE(immediate_ran.load());
  const auto ms = [](Clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  EXPECT_GE(ms(delayed_at - start), 29.0);  // deadline honored
  EXPECT_LT(ms(immediate_at - start), 25.0);  // worker was never parked on it
}

TEST(WorkStealingPoolTest, ExecuteAfterZeroDelayIsImmediate) {
  WorkStealingPoolOptions options;
  options.num_threads = 1;
  WorkStealingPool pool(options);
  std::atomic<bool> ran{false};
  pool.ExecuteAfter(0, [&ran] { ran = true; }, ExecOptions{});
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// --- StageCostModel ------------------------------------------------------

TEST(StageCostModelTest, ColdPredictionsScaleWithSubmittedWork) {
  stream::StageCostModel model;
  const stream::DomainShape small{100, 2};
  const stream::DomainShape large{400, 2};
  const double p_small =
      model.PredictMs(stream::StageKind::kTrain, small);
  const double p_large =
      model.PredictMs(stream::StageKind::kTrain, large);
  EXPECT_GT(p_small, 0.0);
  EXPECT_DOUBLE_EQ(p_large, 4.0 * p_small);  // linear in units x epochs
  EXPECT_EQ(model.observations(), 0);
  EXPECT_EQ(model.scored_predictions(), 0);  // cold predictions unscored
}

TEST(StageCostModelTest, EwmaConvergesToObservedRate) {
  stream::StageCostModel model;
  const double true_rate = 0.035;  // ms per work unit
  Rng rng(7);
  // Feed varied shapes at a fixed underlying rate; the per-unit EWMA must
  // converge so predictions transfer across sizes.
  for (int i = 0; i < 40; ++i) {
    stream::DomainShape shape;
    shape.n_units = 50 + static_cast<int64_t>(rng.UniformInt(400));
    shape.epochs = 1 + static_cast<int>(rng.UniformInt(4));
    for (int stage = 0; stage < stream::kNumStages; ++stage) {
      const auto kind = static_cast<stream::StageKind>(stage);
      const double ms =
          true_rate * static_cast<double>(stream::StageWorkUnits(kind, shape));
      model.Observe(kind, shape, ms);
    }
  }
  const stream::DomainShape probe{333, 3};
  for (int stage = 0; stage < stream::kNumStages; ++stage) {
    const auto kind = static_cast<stream::StageKind>(stage);
    const double predicted = model.PredictMs(kind, probe);
    const double truth =
        true_rate * static_cast<double>(stream::StageWorkUnits(kind, probe));
    EXPECT_NEAR(predicted, truth, 0.02 * truth) << "stage " << stage;
  }
  // Constant-rate observations => warm predictions were near-perfect.
  EXPECT_GT(model.scored_predictions(), 0);
  EXPECT_LT(model.mean_abs_pct_error(), 0.05);
  EXPECT_GT(model.ewma_stage_ms(stream::StageKind::kTrain), 0.0);
}

TEST(StageCostModelTest, EwmaTracksRateDrift) {
  stream::StageCostModel model;
  const stream::DomainShape shape{200, 2};
  const auto kind = stream::StageKind::kTrain;
  const double work = static_cast<double>(stream::StageWorkUnits(kind, shape));
  for (int i = 0; i < 30; ++i) model.Observe(kind, shape, 0.01 * work);
  const double before = model.PredictMs(kind, shape);
  for (int i = 0; i < 30; ++i) model.Observe(kind, shape, 0.05 * work);
  const double after = model.PredictMs(kind, shape);
  EXPECT_NEAR(before, 0.01 * work, 0.05 * 0.01 * work);
  EXPECT_NEAR(after, 0.05 * work, 0.05 * 0.05 * work);
}

TEST(StageCostModelTest, SerializeRoundtripRestoresRates) {
  stream::StageCostModel model;
  const stream::DomainShape shape{128, 3};
  for (int stage = 0; stage < stream::kNumStages; ++stage) {
    const auto kind = static_cast<stream::StageKind>(stage);
    for (int i = 0; i < 5; ++i) {
      model.Observe(kind, shape,
                    0.02 * (stage + 1) *
                        static_cast<double>(stream::StageWorkUnits(kind, shape)));
    }
  }
  std::string blob;
  model.Serialize(&blob);

  stream::StageCostModel restored;
  std::istringstream in(blob);
  BoundedReader reader(&in, blob.size());
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  const stream::DomainShape probe{512, 2};
  for (int stage = 0; stage < stream::kNumStages; ++stage) {
    const auto kind = static_cast<stream::StageKind>(stage);
    EXPECT_DOUBLE_EQ(restored.PredictMs(kind, probe),
                     model.PredictMs(kind, probe));
  }
  // Diagnostics restore cold by design.
  EXPECT_EQ(restored.mean_abs_pct_error(), 0.0);
  EXPECT_EQ(restored.ewma_stage_ms(stream::StageKind::kTrain), 0.0);
}

TEST(StageCostModelTest, DeserializeRejectsCorruptRates) {
  stream::StageCostModel model;
  std::string blob;
  model.Serialize(&blob);
  ASSERT_GE(blob.size(), sizeof(double));
  const double bad = -1.0;
  blob.replace(0, sizeof(double),
               reinterpret_cast<const char*>(&bad), sizeof(double));
  stream::StageCostModel restored;
  std::istringstream in(blob);
  BoundedReader reader(&in, blob.size());
  EXPECT_FALSE(restored.Deserialize(&reader).ok());
}

// --- Engine-level scheduling guarantees ----------------------------------

constexpr int kFeatures = 6;

data::DataSplit ToyDomain(Rng* rng, int units, double shift) {
  data::CausalDataset d;
  d.x = linalg::Matrix(units, kFeatures);
  d.t.resize(units);
  d.y.resize(units);
  d.mu0.assign(units, 0.0);
  d.mu1.assign(units, 1.0);
  for (int i = 0; i < units; ++i) {
    for (int j = 0; j < kFeatures; ++j) d.x(i, j) = rng->Normal(shift, 1.0);
    d.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    d.y[i] = std::sin(d.x(i, 0)) + d.t[i] + 0.1 * rng->Normal();
  }
  return data::SplitDataset(d, rng);
}

core::CerlConfig TinyConfig(uint64_t seed) {
  core::CerlConfig c;
  c.net.rep_hidden = {8};
  c.net.rep_dim = 4;
  c.net.head_hidden = {4};
  c.train.epochs = 3;
  c.train.batch_size = 32;
  c.train.patience = 3;
  c.train.alpha = 0.2;
  c.train.seed = seed;
  c.memory_capacity = 50;
  return c;
}

// One heavy backlogged tenant plus many light ones, fewer workers than
// streams: every domain must complete — the cost-aware policy may reorder,
// but it must never starve anyone (work conservation + per-stream FIFO).
TEST(SchedulerEngineTest, StarvationFreedomUnderHeavySkew) {
  stream::StreamEngineOptions options;
  options.num_workers = 2;
  options.schedule_policy = stream::SchedulePolicy::kCostAware;
  stream::StreamEngine engine(options);

  Rng rng(11);
  const int kLights = 8;
  const int heavy = engine.AddStream("heavy", TinyConfig(1), kFeatures);
  std::vector<int> lights;
  for (int i = 0; i < kLights; ++i) {
    lights.push_back(engine.AddStream("light-" + std::to_string(i),
                                      TinyConfig(100 + i), kFeatures));
  }
  // Deep heavy backlog first, then a trickle of light domains.
  for (int d = 0; d < 6; ++d) {
    ASSERT_TRUE(engine.PushDomain(heavy, ToyDomain(&rng, 300, 0.1 * d)).ok());
  }
  for (int r = 0; r < 2; ++r) {
    for (int id : lights) {
      ASSERT_TRUE(engine.PushDomain(id, ToyDomain(&rng, 40, 0.2 * r)).ok());
    }
  }
  engine.Drain();

  EXPECT_EQ(engine.results(heavy).size(), 6u);
  for (int id : lights) EXPECT_EQ(engine.results(id).size(), 2u);

  const stream::StreamSchedStats heavy_stats = engine.sched_stats(heavy);
  EXPECT_EQ(heavy_stats.queue_depth, 0);
  EXPECT_EQ(heavy_stats.stages_executed, 6 * stream::kNumStages);
  EXPECT_EQ(heavy_stats.completion_latency.count(), 6);
  EXPECT_GT(heavy_stats.ewma_stage_cost_ms[1], 0.0);  // train stage warm

  const stream::StreamSchedStats total = engine.TotalSchedStats();
  EXPECT_EQ(total.completion_latency.count(), 6 + kLights * 2);
  EXPECT_EQ(total.stages_executed,
            static_cast<int64_t>((6 + kLights * 2) * stream::kNumStages));
}

// Stages executed by thieves must be bitwise identical to home (and to a
// fully serial run): scheduling picks WHEN a stage runs, never what it
// computes. The skew (one worker's homes finish early) forces steals.
TEST(SchedulerEngineTest, StolenStagesAreBitIdenticalToSerial) {
  stream::StreamEngineOptions options;
  options.num_workers = 3;
  options.schedule_policy = stream::SchedulePolicy::kCostAware;
  stream::StreamEngine engine(options);

  const int kStreams = 3;  // homes 0, 1, 2 — one per worker
  const int domains_per_stream[kStreams] = {6, 1, 1};
  std::vector<std::vector<data::DataSplit>> streams(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    Rng rng(40 + s);
    for (int d = 0; d < domains_per_stream[s]; ++d) {
      streams[s].push_back(ToyDomain(&rng, s == 0 ? 250 : 40, 0.1 * d));
    }
  }

  std::vector<int> ids;
  for (int s = 0; s < kStreams; ++s) {
    ids.push_back(engine.AddStream("s" + std::to_string(s),
                                   TinyConfig(70 + s), kFeatures));
  }
  for (int s = 0; s < kStreams; ++s) {
    for (const data::DataSplit& split : streams[s]) {
      ASSERT_TRUE(engine.PushDomain(ids[s], split).ok());
    }
  }
  engine.Drain();

  // Workers 1 and 2 run out of home work almost immediately; stream 0's
  // remaining stages get stolen.
  EXPECT_GT(engine.steal_count(), 0);

  for (int s = 0; s < kStreams; ++s) {
    core::CerlTrainer serial(TinyConfig(70 + s), kFeatures);
    std::vector<double> serial_valid;
    for (const data::DataSplit& split : streams[s]) {
      serial_valid.push_back(serial.ObserveDomain(split).best_valid_loss);
    }
    const std::vector<stream::DomainResult>& results = engine.results(ids[s]);
    ASSERT_EQ(results.size(), streams[s].size());
    for (size_t d = 0; d < results.size(); ++d) {
      EXPECT_EQ(results[d].stats.best_valid_loss, serial_valid[d])
          << "stream " << s << " domain " << d;
    }
    const linalg::Vector engine_ite =
        engine.trainer(ids[s]).PredictIte(streams[s].back().test.x);
    const linalg::Vector serial_ite =
        serial.PredictIte(streams[s].back().test.x);
    ASSERT_EQ(engine_ite.size(), serial_ite.size());
    for (size_t i = 0; i < engine_ite.size(); ++i) {
      ASSERT_EQ(engine_ite[i], serial_ite[i]) << "stream " << s;
    }
  }
}

// Both policies produce identical RESULTS on identical inputs — the A/B in
// the SLO bench compares timing of the same computation, not two different
// computations.
TEST(SchedulerEngineTest, PoliciesAgreeBitwise) {
  std::vector<std::vector<data::DataSplit>> streams(4);
  for (int s = 0; s < 4; ++s) {
    Rng rng(90 + s);
    for (int d = 0; d < 2; ++d) {
      streams[s].push_back(ToyDomain(&rng, 60 + 40 * s, 0.15 * d));
    }
  }
  std::vector<double> valid[2];
  for (int policy = 0; policy < 2; ++policy) {
    stream::StreamEngineOptions options;
    options.num_workers = 2;
    options.schedule_policy = policy == 0
                                  ? stream::SchedulePolicy::kRoundRobin
                                  : stream::SchedulePolicy::kCostAware;
    stream::StreamEngine engine(options);
    std::vector<int> ids;
    for (int s = 0; s < 4; ++s) {
      ids.push_back(engine.AddStream("s" + std::to_string(s),
                                     TinyConfig(300 + s), kFeatures));
    }
    for (int s = 0; s < 4; ++s) {
      for (const data::DataSplit& split : streams[s]) {
        ASSERT_TRUE(engine.PushDomain(ids[s], split).ok());
      }
    }
    engine.Drain();
    for (int s = 0; s < 4; ++s) {
      for (const stream::DomainResult& r : engine.results(ids[s])) {
        valid[policy].push_back(r.stats.best_valid_loss);
      }
    }
  }
  ASSERT_EQ(valid[0].size(), valid[1].size());
  for (size_t i = 0; i < valid[0].size(); ++i) {
    EXPECT_EQ(valid[0][i], valid[1][i]) << "domain " << i;
  }
}

}  // namespace
}  // namespace cerl
