// Async-vs-sync validation equivalence for train::TrainLoop and its model
// consumers: the asynchronous path (snapshot after the last batch, score on
// a worker, resolve early stop one epoch late) must restore bit-identical
// best parameters and report the identical best validation loss; only the
// epoch at which the loop notices the stop may shift, by at most one.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "causal/cfr.h"
#include "train/train_loop.h"
#include "util/rng.h"

namespace cerl::train {
namespace {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

struct RunOutcome {
  std::vector<double> params;
  TrainStats stats;
};

// Linear regression y ~ x w + b with an injected-noise plateau: validation
// improves early, then stalls, so patience-based early stopping triggers.
RunOutcome RunLinear(bool async, int epochs, int patience) {
  const int n = 61, d = 6;
  Rng data_rng(77);
  linalg::Matrix x(n, d), y(n, 1);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.Normal();
  for (int r = 0; r < n; ++r) {
    double target = 0.3;
    for (int c = 0; c < d; ++c) target += 0.5 * x(r, c) * (c % 2 ? 1 : -1);
    y(r, 0) = target + 0.05 * data_rng.Normal();
  }
  Parameter w(linalg::Matrix(d, 1, 0.0), "w");
  Parameter b(linalg::Matrix(1, 1, 0.0), "b");

  LoopOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.patience = patience;
  options.learning_rate = 5e-2;
  options.seed = 911;

  // Shared criterion body: mse of (w_val, b_val) over the full data.
  auto mse_of = [&](const linalg::Matrix& w_val, const linalg::Matrix& b_val) {
    double s = 0.0;
    for (int r = 0; r < n; ++r) {
      double p = b_val(0, 0);
      for (int c = 0; c < d; ++c) p += x(r, c) * w_val(c, 0);
      const double e = p - y(r, 0);
      s += e * e;
    }
    return s / n;
  };

  TrainLoop loop(options, {&w, &b});
  if (async) {
    loop.EnableAsyncValidation(
        [&](const std::vector<linalg::Matrix>& snapshot) {
          return mse_of(snapshot[0], snapshot[1]);
        });
  }
  RunOutcome out;
  out.stats = loop.Run(
      n, {&x, &y},
      [&](Tape* tape, IndexSpan, const std::vector<linalg::Matrix>& g) {
        Var xb = tape->ConstantView(&g[0]);
        Var pred = autodiff::MatMul(xb, tape->Param(&w));
        Var shifted = autodiff::AddRowBroadcast(pred, tape->Param(&b));
        return autodiff::MseLoss(shifted, tape->ConstantView(&g[1]));
      },
      [&]() { return mse_of(w.value, b.value); });
  for (int64_t i = 0; i < w.value.size(); ++i) {
    out.params.push_back(w.value.data()[i]);
  }
  out.params.push_back(b.value(0, 0));
  return out;
}

TEST(AsyncValidationTest, EarlyStopMatchesSyncBitwise) {
  const RunOutcome sync = RunLinear(/*async=*/false, /*epochs=*/300,
                                    /*patience=*/4);
  const RunOutcome async = RunLinear(/*async=*/true, /*epochs=*/300,
                                     /*patience=*/4);
  // Early stopping actually fired (otherwise this test is vacuous).
  ASSERT_LT(sync.stats.epochs_run, 300);
  // The decision lands at most one epoch late...
  EXPECT_GE(async.stats.epochs_run, sync.stats.epochs_run);
  EXPECT_LE(async.stats.epochs_run, sync.stats.epochs_run + 1);
  // ...and the selected snapshot is the same one, bit for bit.
  EXPECT_EQ(async.stats.best_valid_loss, sync.stats.best_valid_loss);
  ASSERT_EQ(async.params.size(), sync.params.size());
  for (size_t i = 0; i < sync.params.size(); ++i) {
    EXPECT_EQ(async.params[i], sync.params[i]) << "param element " << i;
  }
}

TEST(AsyncValidationTest, ExhaustedEpochBudgetMatchesSyncExactly) {
  // No early stop: every epoch is scored in both modes, including the last
  // (the async loop drains the in-flight score after the final epoch).
  const RunOutcome sync = RunLinear(/*async=*/false, /*epochs=*/7,
                                    /*patience=*/100);
  const RunOutcome async = RunLinear(/*async=*/true, /*epochs=*/7,
                                     /*patience=*/100);
  EXPECT_EQ(async.stats.epochs_run, sync.stats.epochs_run);
  EXPECT_EQ(async.stats.best_valid_loss, sync.stats.best_valid_loss);
  for (size_t i = 0; i < sync.params.size(); ++i) {
    EXPECT_EQ(async.params[i], sync.params[i]);
  }
}

// End-to-end through CfrModel: the async flag must not change what the
// model predicts, only how validation is scheduled.
TEST(AsyncValidationTest, CfrModelPredictionsBitIdentical) {
  const int n = 260, p = 6;
  Rng rng(5);
  data::CausalDataset d;
  d.x = linalg::Matrix(n, p);
  d.t.resize(n);
  d.y.resize(n);
  d.mu0.resize(n);
  d.mu1.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) d.x(i, j) = rng.Normal();
    d.mu0[i] = std::sin(d.x(i, 0));
    d.mu1[i] = d.mu0[i] + 1.0 + 0.5 * d.x(i, 1);
    d.t[i] = rng.Uniform() < 0.45 ? 1 : 0;
    d.y[i] = (d.t[i] ? d.mu1[i] : d.mu0[i]) + 0.1 * rng.Normal();
  }
  Rng split_rng(6);
  data::DataSplit split = data::SplitDataset(d, &split_rng);

  causal::NetConfig net;
  net.rep_hidden = {12};
  net.rep_dim = 6;
  net.head_hidden = {8};

  auto train_once = [&](bool async) {
    causal::TrainConfig train;
    train.epochs = 40;
    train.batch_size = 32;
    train.patience = 5;
    train.seed = 99;
    train.async_validation = async;
    causal::CfrModel model(net, train, p);
    causal::TrainStats stats = model.Train(split.train, split.valid);
    return std::make_pair(model.PredictIte(split.test.x), stats);
  };

  auto sync = train_once(false);
  auto async = train_once(true);
  EXPECT_EQ(async.second.best_valid_loss, sync.second.best_valid_loss);
  EXPECT_GE(async.second.epochs_run, sync.second.epochs_run);
  EXPECT_LE(async.second.epochs_run, sync.second.epochs_run + 1);
  ASSERT_EQ(async.first.size(), sync.first.size());
  for (size_t i = 0; i < sync.first.size(); ++i) {
    EXPECT_EQ(async.first[i], sync.first[i]) << "unit " << i;
  }
}

}  // namespace
}  // namespace cerl::train
