// Collapsed Gibbs sampling for LDA (Griffiths & Steyvers 2004). The paper
// trains a 50-topic LDA on its corpus and uses the per-document topic
// distribution z(x) to simulate reader opinions and device-selection bias;
// this trainer provides exactly that z(x).
#pragma once

#include "linalg/matrix.h"
#include "topics/corpus.h"
#include "util/rng.h"

namespace cerl::topics {

/// Gibbs-training hyperparameters.
struct LdaGibbsConfig {
  int num_topics = 50;
  double alpha = 0.1;   ///< doc-topic smoothing
  double beta = 0.01;   ///< topic-word smoothing
  int iterations = 150; ///< full Gibbs sweeps
};

/// A trained LDA model: smoothed posterior point estimates.
class LdaModel {
 public:
  LdaModel(linalg::Matrix doc_topic, linalg::Matrix topic_word);

  /// num_docs x num_topics; rows sum to 1. This is z(x) for training docs.
  const linalg::Matrix& doc_topic() const { return doc_topic_; }

  /// num_topics x vocab_size; rows sum to 1.
  const linalg::Matrix& topic_word() const { return topic_word_; }

  int num_topics() const { return topic_word_.rows(); }
  int vocab_size() const { return topic_word_.cols(); }

  /// Infers z(x) for an unseen document by folding in: a short Gibbs run
  /// holding topic_word fixed.
  linalg::Vector InferDocTopics(const Document& doc, Rng* rng,
                                int iterations = 30, double alpha = 0.1) const;

  /// Index of each training doc's most probable topic.
  std::vector<int> DominantTopics() const;

  /// Per-token perplexity of the model on a corpus, using the given
  /// document-topic mixtures (rows aligned with corpus docs). Lower is
  /// better; a uniform model scores ~vocab_size.
  double Perplexity(const Corpus& corpus,
                    const linalg::Matrix& doc_topic) const;

 private:
  linalg::Matrix doc_topic_;
  linalg::Matrix topic_word_;
};

/// Runs collapsed Gibbs on `corpus` and returns the smoothed estimates.
LdaModel TrainLdaGibbs(const Corpus& corpus, const LdaGibbsConfig& config,
                       Rng* rng);

}  // namespace cerl::topics
