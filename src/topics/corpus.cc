#include "topics/corpus.h"

namespace cerl::topics {

int64_t Corpus::num_tokens() const {
  int64_t n = 0;
  for (const auto& d : docs) n += d.size();
  return n;
}

linalg::Matrix Corpus::ToCountMatrix() const {
  linalg::Matrix m(num_docs(), vocab_size);
  for (int d = 0; d < num_docs(); ++d) {
    double* row = m.row(d);
    for (int w : docs[d].tokens) {
      CERL_DCHECK(w >= 0 && w < vocab_size);
      row[w] += 1.0;
    }
  }
  return m;
}

}  // namespace cerl::topics
