#include "topics/lda_gibbs.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/distributions.h"

namespace cerl::topics {

LdaModel::LdaModel(linalg::Matrix doc_topic, linalg::Matrix topic_word)
    : doc_topic_(std::move(doc_topic)), topic_word_(std::move(topic_word)) {}

linalg::Vector LdaModel::InferDocTopics(const Document& doc, Rng* rng,
                                        int iterations, double alpha) const {
  const int k_topics = num_topics();
  linalg::Vector counts(k_topics, 0.0);
  if (doc.tokens.empty()) {
    return linalg::Vector(k_topics, 1.0 / k_topics);
  }
  std::vector<int> z(doc.tokens.size());
  std::vector<double> weights(k_topics);
  // Initialize assignments from the word-topic likelihood alone.
  for (size_t i = 0; i < doc.tokens.size(); ++i) {
    const int w = doc.tokens[i];
    for (int k = 0; k < k_topics; ++k) weights[k] = topic_word_(k, w);
    z[i] = SampleCategorical(rng, weights);
    counts[z[i]] += 1.0;
  }
  for (int it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < doc.tokens.size(); ++i) {
      const int w = doc.tokens[i];
      counts[z[i]] -= 1.0;
      for (int k = 0; k < k_topics; ++k) {
        weights[k] = (counts[k] + alpha) * topic_word_(k, w);
      }
      z[i] = SampleCategorical(rng, weights);
      counts[z[i]] += 1.0;
    }
  }
  const double denom = static_cast<double>(doc.tokens.size()) +
                       alpha * static_cast<double>(k_topics);
  linalg::Vector theta(k_topics);
  for (int k = 0; k < k_topics; ++k) theta[k] = (counts[k] + alpha) / denom;
  return theta;
}

double LdaModel::Perplexity(const Corpus& corpus,
                            const linalg::Matrix& doc_topic) const {
  CERL_CHECK_EQ(doc_topic.rows(), corpus.num_docs());
  CERL_CHECK_EQ(doc_topic.cols(), num_topics());
  CERL_CHECK_EQ(corpus.vocab_size, vocab_size());
  double log_likelihood = 0.0;
  int64_t tokens = 0;
  for (int d = 0; d < corpus.num_docs(); ++d) {
    const double* theta = doc_topic.row(d);
    for (int w : corpus.docs[d].tokens) {
      double p = 0.0;
      for (int k = 0; k < num_topics(); ++k) p += theta[k] * topic_word_(k, w);
      log_likelihood += std::log(std::max(p, 1e-300));
      ++tokens;
    }
  }
  CERL_CHECK_GT(tokens, 0);
  return std::exp(-log_likelihood / static_cast<double>(tokens));
}

std::vector<int> LdaModel::DominantTopics() const {
  std::vector<int> out(doc_topic_.rows());
  for (int d = 0; d < doc_topic_.rows(); ++d) {
    const double* row = doc_topic_.row(d);
    out[d] = static_cast<int>(
        std::max_element(row, row + doc_topic_.cols()) - row);
  }
  return out;
}

LdaModel TrainLdaGibbs(const Corpus& corpus, const LdaGibbsConfig& config,
                       Rng* rng) {
  const int num_docs = corpus.num_docs();
  const int vocab = corpus.vocab_size;
  const int k_topics = config.num_topics;
  CERL_CHECK_GT(num_docs, 0);
  CERL_CHECK_GT(vocab, 0);
  CERL_CHECK_GT(k_topics, 1);

  // Count tables: n_dk (doc-topic), n_kw (topic-word), n_k (topic totals).
  std::vector<std::vector<int>> n_dk(num_docs, std::vector<int>(k_topics, 0));
  std::vector<std::vector<int>> n_kw(k_topics, std::vector<int>(vocab, 0));
  std::vector<int64_t> n_k(k_topics, 0);

  // Token-level topic assignments, randomly initialized.
  std::vector<std::vector<int>> z(num_docs);
  for (int d = 0; d < num_docs; ++d) {
    const auto& tokens = corpus.docs[d].tokens;
    z[d].resize(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      const int k = static_cast<int>(rng->UniformInt(k_topics));
      z[d][i] = k;
      ++n_dk[d][k];
      ++n_kw[k][tokens[i]];
      ++n_k[k];
    }
  }

  const double vbeta = config.beta * vocab;
  std::vector<double> weights(k_topics);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (int d = 0; d < num_docs; ++d) {
      const auto& tokens = corpus.docs[d].tokens;
      auto& zd = z[d];
      auto& ndk = n_dk[d];
      for (size_t i = 0; i < tokens.size(); ++i) {
        const int w = tokens[i];
        const int old_k = zd[i];
        --ndk[old_k];
        --n_kw[old_k][w];
        --n_k[old_k];
        for (int k = 0; k < k_topics; ++k) {
          weights[k] = (ndk[k] + config.alpha) * (n_kw[k][w] + config.beta) /
                       (static_cast<double>(n_k[k]) + vbeta);
        }
        const int new_k = SampleCategorical(rng, weights);
        zd[i] = new_k;
        ++ndk[new_k];
        ++n_kw[new_k][w];
        ++n_k[new_k];
      }
    }
  }

  // Smoothed point estimates from the final state.
  linalg::Matrix doc_topic(num_docs, k_topics);
  for (int d = 0; d < num_docs; ++d) {
    const double denom = static_cast<double>(corpus.docs[d].size()) +
                         config.alpha * k_topics;
    for (int k = 0; k < k_topics; ++k) {
      doc_topic(d, k) = (n_dk[d][k] + config.alpha) / denom;
    }
  }
  linalg::Matrix topic_word(k_topics, vocab);
  for (int k = 0; k < k_topics; ++k) {
    const double denom = static_cast<double>(n_k[k]) + vbeta;
    for (int w = 0; w < vocab; ++w) {
      topic_word(k, w) = (n_kw[k][w] + config.beta) / denom;
    }
  }
  return LdaModel(std::move(doc_topic), std::move(topic_word));
}

}  // namespace cerl::topics
