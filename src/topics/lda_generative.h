// Ground-truth LDA corpus synthesis. The paper's News/BlogCatalog benchmarks
// start from real bag-of-words corpora (NY Times, BlogCatalog) that are not
// redistributable; we substitute corpora drawn from an LDA generative
// process with matched shape (documents, vocabulary, topic count). The
// downstream pipeline (train LDA by Gibbs -> topic mixtures z(x) -> simulate
// outcome/treatment) is identical to the paper's.
#pragma once

#include "linalg/matrix.h"
#include "topics/corpus.h"
#include "util/rng.h"

namespace cerl::topics {

/// Parameters of the generative LDA corpus.
struct GenerativeLdaConfig {
  int num_docs = 1000;
  int vocab_size = 1000;
  int num_topics = 50;
  double doc_length_mean = 80.0;  ///< Poisson mean tokens per document
  int doc_length_min = 10;
  double alpha = 0.08;  ///< doc-topic Dirichlet (small => peaked documents)
  double beta = 0.05;   ///< topic-word Dirichlet (small => distinct topics)
};

/// A synthesized corpus plus its generative ground truth.
struct GeneratedCorpus {
  Corpus corpus;
  linalg::Matrix doc_topic;   ///< num_docs x num_topics true mixtures
  linalg::Matrix topic_word;  ///< num_topics x vocab_size true topics
  std::vector<int> dominant_topic;  ///< argmax of each doc's true mixture
};

/// Draws topics, document mixtures, and tokens.
GeneratedCorpus GenerateLdaCorpus(const GenerativeLdaConfig& config, Rng* rng);

}  // namespace cerl::topics
