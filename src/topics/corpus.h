// Bag-of-words corpus representation shared by the generative LDA (corpus
// synthesis) and the collapsed-Gibbs LDA trainer. Documents keep their flat
// token stream (needed for Gibbs) and can be exported as count features.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace cerl::topics {

/// One document: a flat stream of word ids (with repetition).
struct Document {
  std::vector<int> tokens;
  int size() const { return static_cast<int>(tokens.size()); }
};

/// A collection of documents over a fixed vocabulary.
struct Corpus {
  int vocab_size = 0;
  std::vector<Document> docs;

  int num_docs() const { return static_cast<int>(docs.size()); }
  int64_t num_tokens() const;

  /// Dense doc x vocab count matrix (the News benchmark's covariates are
  /// word counts x_i in N^V).
  linalg::Matrix ToCountMatrix() const;
};

}  // namespace cerl::topics
