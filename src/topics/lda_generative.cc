#include "topics/lda_generative.h"

#include <algorithm>

#include "util/check.h"
#include "util/distributions.h"

namespace cerl::topics {

GeneratedCorpus GenerateLdaCorpus(const GenerativeLdaConfig& config,
                                  Rng* rng) {
  CERL_CHECK_GT(config.num_docs, 0);
  CERL_CHECK_GT(config.vocab_size, 1);
  CERL_CHECK_GT(config.num_topics, 1);

  GeneratedCorpus out;
  out.corpus.vocab_size = config.vocab_size;
  out.corpus.docs.resize(config.num_docs);
  out.doc_topic = linalg::Matrix(config.num_docs, config.num_topics);
  out.topic_word = linalg::Matrix(config.num_topics, config.vocab_size);
  out.dominant_topic.resize(config.num_docs);

  // Topic-word distributions phi_k ~ Dir(beta), with an alias table per
  // topic for O(1) token draws.
  std::vector<AliasTable> word_samplers;
  word_samplers.reserve(config.num_topics);
  for (int k = 0; k < config.num_topics; ++k) {
    std::vector<double> phi =
        SampleDirichletSym(rng, config.beta, config.vocab_size);
    for (int w = 0; w < config.vocab_size; ++w) out.topic_word(k, w) = phi[w];
    word_samplers.emplace_back(phi);
  }

  for (int d = 0; d < config.num_docs; ++d) {
    std::vector<double> theta =
        SampleDirichletSym(rng, config.alpha, config.num_topics);
    for (int k = 0; k < config.num_topics; ++k) out.doc_topic(d, k) = theta[k];
    out.dominant_topic[d] = static_cast<int>(
        std::max_element(theta.begin(), theta.end()) - theta.begin());

    const int len = std::max(config.doc_length_min,
                             SamplePoisson(rng, config.doc_length_mean));
    AliasTable topic_sampler(theta);
    Document& doc = out.corpus.docs[d];
    doc.tokens.reserve(len);
    for (int i = 0; i < len; ++i) {
      const int k = topic_sampler.Sample(rng);
      doc.tokens.push_back(word_samplers[k].Sample(rng));
    }
  }
  return out;
}

}  // namespace cerl::topics
