#include "nn/optim.h"

#include <cmath>

namespace cerl::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
}

void Sgd::Step() {
  if (velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    linalg::Matrix& vel = velocity_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      double g = p->grad.data()[j];
      if (weight_decay_ != 0.0) g += weight_decay_ * p->value.data()[j];
      vel.data()[j] = momentum_ * vel.data()[j] + g;
      p->value.data()[j] -= lr_ * vel.data()[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
}

void Adam::Step() {
  if (m_.empty()) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter* p : params_) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    linalg::Matrix& m = m_[i];
    linalg::Matrix& v = v_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      const double g = p->grad.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * g;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * g * g;
      const double mhat = m.data()[j] / bc1;
      const double vhat = v.data()[j] / bc2;
      double update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ != 0.0) update += weight_decay_ * p->value.data()[j];
      p->value.data()[j] -= lr_ * update;
    }
  }
}

}  // namespace cerl::nn
