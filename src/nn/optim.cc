#include "nn/optim.h"

#include <cmath>

#include "linalg/simd.h"
#include "util/thread_pool.h"

namespace cerl::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
}

void Sgd::Step() {
  if (velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    linalg::Matrix& vel = velocity_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      double g = p->grad.data()[j];
      if (weight_decay_ != 0.0) g += weight_decay_ * p->value.data()[j];
      vel.data()[j] = momentum_ * vel.data()[j] + g;
      p->value.data()[j] -= lr_ * vel.data()[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
}

void Adam::Step() {
  if (m_.empty()) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter* p : params_) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  ++t_;
  const double inv_bc1 =
      1.0 / (1.0 - std::pow(beta1_, static_cast<double>(t_)));
  const double inv_bc2 =
      1.0 / (1.0 - std::pow(beta2_, static_cast<double>(t_)));
  // The update is elementwise (adam_update kernel, see linalg/simd.h), so
  // splitting a parameter across the pool at a fixed grain is
  // deterministic. Small tensors (biases) stay serial to skip fork/join.
  const auto& ks = linalg::simd::Kernels();
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    linalg::Matrix& m = m_[i];
    linalg::Matrix& v = v_[i];
    ParallelFor(
        0, p->value.size(),
        [&](int64_t lo, int64_t hi) {
          ks.adam_update(p->value.data() + lo, p->grad.data() + lo,
                         m.data() + lo, v.data() + lo, hi - lo, beta1_,
                         beta2_, inv_bc1, inv_bc2, eps_, lr_, weight_decay_);
        },
        /*grain=*/4096);
  }
}

}  // namespace cerl::nn
