#include "nn/init.h"

#include <cmath>

namespace cerl::nn {

linalg::Matrix XavierUniform(Rng* rng, int fan_in, int fan_out) {
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  linalg::Matrix m(fan_in, fan_out);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-a, a);
  return m;
}

linalg::Matrix HeNormal(Rng* rng, int fan_in, int fan_out) {
  const double s = std::sqrt(2.0 / fan_in);
  linalg::Matrix m(fan_in, fan_out);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal(0.0, s);
  return m;
}

linalg::Matrix Zeros(int rows, int cols) { return linalg::Matrix(rows, cols); }

}  // namespace cerl::nn
