// Module base class: anything with trainable Parameters and a
// Var -> Var forward pass on a caller-supplied tape.
#pragma once

#include <vector>

#include "autodiff/tape.h"

namespace cerl::nn {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// Activation functions available to layers.
enum class Activation { kNone, kRelu, kElu, kTanh, kSigmoid };

/// Applies the chosen activation as a tape op.
Var ApplyActivation(Var x, Activation act);

/// Base class for trainable components.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters (used by optimizers/serialization).
  virtual void CollectParameters(std::vector<Parameter*>* out) = 0;

  /// Forward pass: binds parameters to `tape` and returns the output Var.
  virtual Var Forward(Tape* tape, Var x) = 0;

  /// All parameters, in a stable order.
  std::vector<Parameter*> Parameters();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t NumParameters();
};

}  // namespace cerl::nn
