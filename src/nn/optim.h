// First-order optimizers over Parameter lists: SGD with momentum and Adam.
// The parameter list is fixed at construction; per-parameter state (momentum
// buffers, Adam moments) is allocated lazily on the first step.
#pragma once

#include <vector>

#include "autodiff/tape.h"

namespace cerl::nn {

using autodiff::Parameter;

/// Optimizer interface.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Changes the learning rate (e.g. for decay schedules).
  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  double lr_ = 1e-3;
};

/// SGD with classical momentum and optional decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void Step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<linalg::Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with optional decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void Step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<linalg::Matrix> m_, v_;
};

}  // namespace cerl::nn
