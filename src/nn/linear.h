// Fully connected layer: out = act(x W + b), W stored as (in x out).
#pragma once

#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace cerl::nn {

/// Dense affine layer with optional activation.
class Linear : public Module {
 public:
  /// Initializes W via He-normal (relu/elu) or Xavier (otherwise), b = 0.
  Linear(Rng* rng, int in_dim, int out_dim,
         Activation activation = Activation::kNone,
         std::string name = "linear");

  void CollectParameters(std::vector<Parameter*>* out) override;
  Var Forward(Tape* tape, Var x) override;

  int in_dim() const { return weight_.value.rows(); }
  int out_dim() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Activation activation_;
};

}  // namespace cerl::nn
