#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace cerl::nn {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'L', 'P', 'A', 'R', '1'};

}  // namespace

Status SaveParametersToStream(std::ostream& out,
                              const std::vector<autodiff::Parameter*>& params) {
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* p : params) {
    const uint32_t name_len = static_cast<uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const uint32_t rows = p->value.rows();
    const uint32_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(double)));
  }
  if (!out) return Status::IoError("parameter stream write failed");
  return Status::Ok();
}

Status LoadParametersFromStream(
    std::istream& in, const std::vector<autodiff::Parameter*>& params) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad parameter-block magic");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: stream has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  for (auto* p : params) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in) return Status::IoError("truncated parameter block");
    // The expected name is known, so a corrupted length field is rejected
    // before it can drive a huge allocation.
    if (name_len != p->name.size()) {
      return Status::InvalidArgument(
          "parameter name length mismatch: stream has " +
          std::to_string(name_len) + ", model expects '" + p->name + "'");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in) return Status::IoError("truncated parameter block");
    if (name != p->name) {
      return Status::InvalidArgument("parameter name mismatch: stream '" +
                                     name + "' vs model '" + p->name + "'");
    }
    if (static_cast<int>(rows) != p->value.rows() ||
        static_cast<int>(cols) != p->value.cols()) {
      return Status::InvalidArgument("shape mismatch for parameter " + name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    if (!in) return Status::IoError("truncated parameter block");
  }
  return Status::Ok();
}

Status SaveParameters(const std::string& path,
                      const std::vector<autodiff::Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  CERL_RETURN_IF_ERROR(SaveParametersToStream(out, params));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::string& path,
                      const std::vector<autodiff::Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return LoadParametersFromStream(in, params);
}

}  // namespace cerl::nn
