#include "nn/mlp.h"

namespace cerl::nn {

Mlp::Mlp(Rng* rng, const MlpConfig& config, std::string name) {
  CERL_CHECK_GE(config.dims.size(), 2u);
  in_dim_ = config.dims.front();
  out_dim_ = config.dims.back();
  const int n_layers = static_cast<int>(config.dims.size()) - 1;
  for (int i = 0; i < n_layers; ++i) {
    const bool last = (i == n_layers - 1);
    const std::string layer_name = name + ".layer" + std::to_string(i);
    if (last && config.cosine_normalized_output) {
      layers_.push_back(std::make_unique<CosineLinear>(
          rng, config.dims[i], config.dims[i + 1], config.output_activation,
          layer_name));
    } else {
      layers_.push_back(std::make_unique<Linear>(
          rng, config.dims[i], config.dims[i + 1],
          last ? config.output_activation : config.hidden_activation,
          layer_name));
    }
  }
}

void Mlp::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

Var Mlp::Forward(Tape* tape, Var x) {
  Var h = x;
  for (auto& layer : layers_) h = layer->Forward(tape, h);
  return h;
}

Parameter& Mlp::FirstLayerWeight() {
  CERL_CHECK(!layers_.empty());
  auto* linear = dynamic_cast<Linear*>(layers_.front().get());
  if (linear != nullptr) return linear->weight();
  auto* cosine = dynamic_cast<CosineLinear*>(layers_.front().get());
  CERL_CHECK(cosine != nullptr);
  std::vector<Parameter*> params;
  cosine->CollectParameters(&params);
  return *params.front();
}

}  // namespace cerl::nn
