// Cosine-normalized layer (Luo et al. 2018), Eq. 2 of the paper:
//   r = sigma(cos(w, x)) = sigma((w . x) / (|w| |x|)).
// Each output unit's pre-activation is the cosine similarity between the
// input row and that unit's weight column, bounding it to [-1, 1]. The paper
// applies this in the *last* representation layer so that representation
// magnitudes are comparable between treatment/control groups and across
// sequentially arriving domains.
#pragma once

#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace cerl::nn {

/// Dense layer with cosine normalization instead of a raw dot product.
class CosineLinear : public Module {
 public:
  CosineLinear(Rng* rng, int in_dim, int out_dim,
               Activation activation = Activation::kTanh,
               std::string name = "cosine_linear");

  void CollectParameters(std::vector<Parameter*>* out) override;
  Var Forward(Tape* tape, Var x) override;

  int in_dim() const { return weight_.value.rows(); }
  int out_dim() const { return weight_.value.cols(); }

 private:
  Parameter weight_;
  Activation activation_;
};

}  // namespace cerl::nn
