// Multi-layer perceptron: a stack of Linear layers with a shared hidden
// activation, an optional output activation, and optionally a cosine-
// normalized final layer (used by the representation networks, Eq. 2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/cosine_linear.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace cerl::nn {

/// Configuration for an Mlp.
struct MlpConfig {
  std::vector<int> dims;  ///< layer sizes, e.g. {in, h1, h2, out}
  Activation hidden_activation = Activation::kElu;
  Activation output_activation = Activation::kNone;
  /// If true, the final layer is CosineLinear (cosine normalization).
  bool cosine_normalized_output = false;
};

/// Feed-forward network assembled from Linear / CosineLinear layers.
class Mlp : public Module {
 public:
  Mlp(Rng* rng, const MlpConfig& config, std::string name = "mlp");

  void CollectParameters(std::vector<Parameter*>* out) override;
  Var Forward(Tape* tape, Var x) override;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  /// The first Linear's weight (feature-selection layer for the elastic-net
  /// penalty, Eq. 1). Requires at least one Linear layer.
  Parameter& FirstLayerWeight();

 private:
  std::vector<std::unique_ptr<Module>> layers_;
  int in_dim_ = 0;
  int out_dim_ = 0;
};

}  // namespace cerl::nn
