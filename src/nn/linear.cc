#include "nn/linear.h"

#include "autodiff/ops.h"
#include "nn/init.h"

namespace cerl::nn {

Linear::Linear(Rng* rng, int in_dim, int out_dim, Activation activation,
               std::string name)
    : activation_(activation) {
  const bool relu_family =
      activation == Activation::kRelu || activation == Activation::kElu;
  weight_ = Parameter(relu_family ? HeNormal(rng, in_dim, out_dim)
                                  : XavierUniform(rng, in_dim, out_dim),
                      name + ".weight");
  bias_ = Parameter(Zeros(1, out_dim), name + ".bias");
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

Var Linear::Forward(Tape* tape, Var x) {
  Var w = tape->Param(&weight_);
  Var b = tape->Param(&bias_);
  Var out = autodiff::AddRowBroadcast(autodiff::MatMul(x, w), b);
  return ApplyActivation(out, activation_);
}

}  // namespace cerl::nn
