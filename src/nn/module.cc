#include "nn/module.h"

#include "autodiff/ops.h"

namespace cerl::nn {

Var ApplyActivation(Var x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return autodiff::Relu(x);
    case Activation::kElu: return autodiff::Elu(x);
    case Activation::kTanh: return autodiff::Tanh(x);
    case Activation::kSigmoid: return autodiff::Sigmoid(x);
  }
  return x;
}

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParameters(&out);
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

int64_t Module::NumParameters() {
  int64_t n = 0;
  for (Parameter* p : Parameters()) n += p->value.size();
  return n;
}

}  // namespace cerl::nn
