// Weight initialization schemes. All draw from an explicit Rng for
// reproducibility.
#pragma once

#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
linalg::Matrix XavierUniform(Rng* rng, int fan_in, int fan_out);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)); suited to ReLU-family nets.
linalg::Matrix HeNormal(Rng* rng, int fan_in, int fan_out);

/// All-zeros (biases).
linalg::Matrix Zeros(int rows, int cols);

}  // namespace cerl::nn
