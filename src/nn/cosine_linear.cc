#include "nn/cosine_linear.h"

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "nn/init.h"

namespace cerl::nn {

CosineLinear::CosineLinear(Rng* rng, int in_dim, int out_dim,
                           Activation activation, std::string name)
    : weight_(Parameter(XavierUniform(rng, in_dim, out_dim), name + ".weight")),
      activation_(activation) {}

void CosineLinear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
}

Var CosineLinear::Forward(Tape* tape, Var x) {
  Var w = tape->Param(&weight_);
  // cos(w_j, x_i) = <x_i/|x_i|, w_j/|w_j|>; no bias term by construction.
  Var cos = autodiff::MatMul(autodiff::RowL2Normalize(x),
                             autodiff::ColL2Normalize(w));
  return ApplyActivation(cos, activation_);
}

}  // namespace cerl::nn
