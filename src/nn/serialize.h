// Binary save/load of Parameter lists. Used by the adaptation strategies
// (checkpoint a model, reload it for fine-tuning) and by the CERL pipeline
// (the "old model" g_{w_{d-1}} is kept as weights, never as raw data).
//
// Format: magic "CERLPAR1", u64 count, then per parameter:
//   u32 name_len, name bytes, u32 rows, u32 cols, rows*cols doubles (LE).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "util/status.h"

namespace cerl::nn {

/// Writes all parameters to `path`, overwriting.
Status SaveParameters(const std::string& path,
                      const std::vector<autodiff::Parameter*>& params);

/// Loads into the given parameters; count, names, and shapes must match the
/// file (strict round-trip of SaveParameters).
Status LoadParameters(const std::string& path,
                      const std::vector<autodiff::Parameter*>& params);

/// Stream variants, used to embed parameter blocks inside larger container
/// formats (e.g. CERL checkpoints).
Status SaveParametersToStream(std::ostream& out,
                              const std::vector<autodiff::Parameter*>& params);
Status LoadParametersFromStream(
    std::istream& in, const std::vector<autodiff::Parameter*>& params);

}  // namespace cerl::nn
