#include "serve/effect_snapshot.h"

#include <utility>

#include "causal/rep_outcome_net.h"
#include "core/cerl_trainer.h"
#include "linalg/simd.h"
#include "util/check.h"

namespace cerl::serve {
namespace {

// Incremental FNV-1a (util::Fnv1a64 is one-shot over a contiguous buffer;
// the snapshot payload is many separate arrays).
void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= 1099511628211ULL;
  }
}

// ColL2Normalize(w) replayed outside the tape, op for op (composite.cc:
// Transpose -> Square -> RowSum -> ScalarAdd(eps) -> Sqrt -> Reciprocal ->
// MulColBroadcast -> Transpose). Every step is either a dispatched kernel
// with a bitwise scalar/AVX2 contract or a plain scalar loop matching
// autodiff/ops.cc's forward exactly, so the result is the same bits the
// tape would produce each forward pass on these frozen weights.
linalg::Matrix ColL2NormalizeLikeTape(const linalg::Matrix& w) {
  constexpr double kEps = 1e-12;  // composite.h default
  const auto& ks = linalg::simd::Kernels();
  linalg::Matrix t(w.cols(), w.rows());
  for (int r = 0; r < w.rows(); ++r) {
    for (int c = 0; c < w.cols(); ++c) t(c, r) = w(r, c);
  }
  linalg::Matrix sq(t.rows(), t.cols());
  ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kSquare), t.data(),
                sq.data(), sq.size());
  linalg::Vector norm(t.rows());
  for (int r = 0; r < sq.rows(); ++r) {
    const double* row = sq.row(r);
    double s = 0.0;  // RowSum's left-to-right accumulation order
    for (int c = 0; c < sq.cols(); ++c) s += row[c];
    norm[r] = s + kEps;
  }
  ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kSqrt), norm.data(),
                norm.data(), static_cast<int64_t>(norm.size()));
  ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kReciprocal),
                norm.data(), norm.data(), static_cast<int64_t>(norm.size()));
  linalg::Matrix scaled(t.rows(), t.cols());
  ks.mul_col_broadcast(t.data(), norm.data(), t.rows(), t.cols(),
                       scaled.data());
  linalg::Matrix out(w.rows(), w.cols());
  for (int r = 0; r < scaled.rows(); ++r) {
    for (int c = 0; c < scaled.cols(); ++c) out(c, r) = scaled(r, c);
  }
  return out;
}

// Consumes this MLP's parameters (Linear: weight then bias; CosineLinear:
// weight only — the same order CollectParameters emits) from `params`
// starting at *next, mirroring nn::Mlp's layer construction rules.
std::vector<DenseLayer> BuildLayers(
    const nn::MlpConfig& config,
    const std::vector<autodiff::Parameter*>& params, size_t* next) {
  std::vector<DenseLayer> layers;
  const int n_layers = static_cast<int>(config.dims.size()) - 1;
  layers.reserve(n_layers);
  for (int i = 0; i < n_layers; ++i) {
    const bool last = i == n_layers - 1;
    DenseLayer layer;
    layer.activation =
        last ? config.output_activation : config.hidden_activation;
    layer.cosine = last && config.cosine_normalized_output;
    CERL_CHECK_LT(*next, params.size());
    const linalg::Matrix& w = params[(*next)++]->value;
    CERL_CHECK_EQ(w.rows(), config.dims[i]);
    CERL_CHECK_EQ(w.cols(), config.dims[i + 1]);
    if (layer.cosine) {
      layer.weight = ColL2NormalizeLikeTape(w);
    } else {
      layer.weight = w;
      CERL_CHECK_LT(*next, params.size());
      const linalg::Matrix& b = params[(*next)++]->value;  // 1 x out
      CERL_CHECK_EQ(b.size(), w.cols());
      layer.bias.assign(b.data(), b.data() + b.size());
    }
    layers.push_back(std::move(layer));
  }
  return layers;
}

void HashLayers(uint64_t* h, const std::vector<DenseLayer>& layers) {
  for (const DenseLayer& layer : layers) {
    HashBytes(h, layer.weight.data(),
              static_cast<size_t>(layer.weight.size()) * sizeof(double));
    HashBytes(h, layer.bias.data(), layer.bias.size() * sizeof(double));
  }
}

}  // namespace

std::shared_ptr<const EffectSnapshot> BuildEffectSnapshot(
    core::CerlTrainer& trainer, uint64_t version) {
  if (trainer.stages_seen() == 0) return nullptr;  // no model yet
  causal::RepOutcomeNet* net = trainer.current_net();
  auto snap = std::make_shared<EffectSnapshot>();
  snap->version = version;
  snap->stage = trainer.stages_seen();
  snap->input_dim = net->input_dim();
  snap->rep_dim = net->rep_dim();
  const std::vector<autodiff::Parameter*> params = net->Parameters();
  size_t next = 0;
  snap->rep = BuildLayers(causal::RepMlpConfig(net->config(), net->input_dim()),
                          params, &next);
  snap->head0 = BuildLayers(causal::HeadMlpConfig(net->config()), params,
                            &next);
  snap->head1 = BuildLayers(causal::HeadMlpConfig(net->config()), params,
                            &next);
  CERL_CHECK_EQ(next, params.size());
  snap->x_mean = net->x_scaler().mean();
  snap->x_std = net->x_scaler().std();
  snap->y_mean = net->y_scaler().mean();
  snap->y_scale = net->y_scaler().scale();
  snap->fingerprint = SnapshotFingerprint(*snap);
  snap->published_at = std::chrono::steady_clock::now();
  return snap;
}

uint64_t SnapshotFingerprint(const EffectSnapshot& snap) {
  uint64_t h = 14695981039346656037ULL;
  HashLayers(&h, snap.rep);
  HashLayers(&h, snap.head0);
  HashLayers(&h, snap.head1);
  HashBytes(&h, snap.x_mean.data(), snap.x_mean.size() * sizeof(double));
  HashBytes(&h, snap.x_std.data(), snap.x_std.size() * sizeof(double));
  HashBytes(&h, &snap.y_mean, sizeof(snap.y_mean));
  HashBytes(&h, &snap.y_scale, sizeof(snap.y_scale));
  return h;
}

}  // namespace cerl::serve
