// EffectSnapshot — the immutable read-side model a stream publishes for
// effect queries (the serving half of the continual-causal deployment: the
// engine trains on incrementally arriving domains while this snapshot
// answers "which treatment, for this user, now?").
//
// A snapshot is built copy-on-publish from a trainer sitting at a domain
// boundary: the current model's layer weights, the fitted input/outcome
// scalers, and the stage counter are copied into plain dense-layer form (no
// Tape, no Parameters, no trainer pointers), then the whole object is
// frozen behind shared_ptr<const ...> and swapped into the stream's read
// slot with an RCU-style atomic exchange (stream_engine.h "QueryEffect").
// Readers therefore never see a half-updated model: they either hold the
// old snapshot or the new one, and the shared_ptr keeps whichever they hold
// alive for the duration of the query — writers never wait on readers.
//
// Bit-identity contract: serve::BatchPredictor evaluated on a snapshot is
// bitwise equal to CerlTrainer::PredictIte on the trainer the snapshot was
// built from (and hence to a checkpoint round-trip of that trainer), under
// either kernel table (CERL_FORCE_SCALAR covered). The cosine layer's
// column normalization is precomputed here at build time with exactly the
// tape's op sequence — the weights are frozen, so normalizing once at
// publish produces the same bits as renormalizing every forward pass.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "nn/module.h"

namespace cerl::core {
class CerlTrainer;
}

namespace cerl::serve {

/// One dense layer of the forward-only predictor, frozen at publish.
struct DenseLayer {
  /// in_dim x out_dim. For cosine layers this is the column-L2-normalized
  /// weight (tape sequence precomputed at build; see BuildEffectSnapshot).
  linalg::Matrix weight;
  /// Bias row (out_dim); empty for cosine layers (no bias by construction).
  linalg::Vector bias;
  nn::Activation activation = nn::Activation::kNone;
  bool cosine = false;
};

/// Immutable read-side model of one stream at one domain boundary.
struct EffectSnapshot {
  /// Per-stream publish sequence number, 1-based and strictly increasing.
  uint64_t version = 0;
  /// Trainer stages_seen at publish (== trained domains).
  int stage = 0;
  int input_dim = 0;
  int rep_dim = 0;

  /// g_w then h_0 / h_1, in forward order.
  std::vector<DenseLayer> rep;
  std::vector<DenseLayer> head0;
  std::vector<DenseLayer> head1;

  /// Input standardization (x - mean) / std, per column.
  linalg::Vector x_mean;
  linalg::Vector x_std;
  /// Outcome de-standardization: y_raw = y_scaled * y_scale + y_mean; ITE
  /// scales by y_scale alone (means cancel in the difference).
  double y_mean = 0.0;
  double y_scale = 1.0;

  /// FNV-1a over every weight/bias/scaler byte in build order — recomputable
  /// via SnapshotFingerprint, so concurrency tests can prove a reader never
  /// observed a torn snapshot.
  uint64_t fingerprint = 0;
  std::chrono::steady_clock::time_point published_at;
};

/// Copies the trainer's current model into an immutable snapshot tagged
/// `version`. The caller must own the trainer (drained stream or the
/// stream's serialized task group) and have trained >= 1 stage; returns
/// nullptr if the trainer has no model yet.
std::shared_ptr<const EffectSnapshot> BuildEffectSnapshot(
    core::CerlTrainer& trainer, uint64_t version);

/// Recomputes the FNV-1a fingerprint over the snapshot's numeric payload
/// (same traversal order as BuildEffectSnapshot).
uint64_t SnapshotFingerprint(const EffectSnapshot& snap);

}  // namespace cerl::serve
