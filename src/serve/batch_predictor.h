// BatchPredictor — forward-only effect evaluation over an EffectSnapshot.
//
// The training stack runs forwards through the autodiff Tape (it needs the
// graph for backward). A query does not: this predictor replays the tape's
// exact forward op sequence — Standardize, Gemm + add_row_broadcast +
// activation per Linear, the RowL2Normalize / precomputed-ColL2Normalize
// pair per cosine layer — directly into a reusable arena of scratch
// matrices, with no Tape, no nodes, and no allocations after warm-up
// (asserted via arena_allocations() in tests/serve_test.cc).
//
// Batches are processed in 64-row blocks. 64 == the Gemm row-panel size
// (linalg/gemm.cc kBlockM), so block boundaries coincide with the panel
// boundaries a full-batch Gemm would use: every output row is produced by
// the same microkernel call shape in the same accumulation order, which is
// what makes the blocked batched forward BITWISE equal to the trainer's
// single full-batch tape forward (and keeps each per-block Gemm under the
// serial-dispatch flops threshold — no thread-pool hop on the query path).
//
// One predictor per reader thread (it owns mutable scratch); the snapshot
// is shared and immutable, so any number of predictors evaluate the same
// snapshot concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/effect_snapshot.h"

namespace cerl::serve {

class BatchPredictor {
 public:
  /// Gemm's row-panel size (kBlockM); see file comment.
  static constexpr int kRowBlock = 64;

  /// ITE per row of x_raw (raw covariates, n x input_dim), original outcome
  /// units — bitwise equal to CerlTrainer::PredictIte on the source
  /// trainer. `ite` is resized to n (reuse the same vector to stay
  /// allocation-free).
  void PredictIte(const EffectSnapshot& snap, const linalg::Matrix& x_raw,
                  linalg::Vector* ite);

  /// Single-user ITE: one covariate row of input_dim doubles. Same path as
  /// a 1-row batch.
  double PredictIteRow(const EffectSnapshot& snap, const double* x);

  /// Potential outcomes per row in original units (y * y_scale + y_mean),
  /// matching RepOutcomeNet::PredictOutcome for each arm.
  void PredictOutcomes(const EffectSnapshot& snap,
                       const linalg::Matrix& x_raw, linalg::Vector* y0,
                       linalg::Vector* y1);

  /// Scratch growth events (0 in steady state: every buffer reaches its
  /// high-water size during the first full block and is reused verbatim
  /// afterwards). The zero-allocation contract of the query hot path is
  /// asserted against this counter.
  int64_t arena_allocations() const { return allocations_; }

 private:
  /// One scratch matrix plus its high-water element count; Acquire counts
  /// an allocation only when the buffer must grow (vector capacity is
  /// monotone, so shrinking shapes never allocate).
  struct Buf {
    linalg::Matrix m;
    int64_t high_water = 0;
  };

  linalg::Matrix& Acquire(Buf* buf, int rows, int cols);

  /// Runs `in` (rows x layers.front().weight.rows()) through the layer
  /// stack; the last layer lands in `out_buf`. Returns the result matrix.
  const linalg::Matrix& ForwardMlp(const std::vector<DenseLayer>& layers,
                                   const linalg::Matrix& in, Buf* out_buf);

  void ForwardLayer(const DenseLayer& layer, const linalg::Matrix& in,
                    linalg::Matrix* out);

  /// Forward one <= kRowBlock row block already staged in x_; rep lands in
  /// rep_, head outputs in y0_/y1_.
  void ForwardBlock(const EffectSnapshot& snap, int rows);

  /// Stages rows [r0, r0+rows) of x_raw into x_, standardized.
  void StageBlock(const EffectSnapshot& snap, const linalg::Matrix& x_raw,
                  int r0, int rows);

  Buf x_;           ///< standardized input block
  Buf pre_;         ///< linear pre-bias / cosine-normalized input
  Buf norm_;        ///< cosine per-row reciprocal norms (rows x 1)
  Buf pp_[2];       ///< hidden-layer ping-pong
  Buf rep_;         ///< representation block (survives both head passes)
  Buf y0_, y1_;     ///< head outputs (rows x 1)
  int64_t allocations_ = 0;
};

}  // namespace cerl::serve
