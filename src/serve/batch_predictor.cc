#include "serve/batch_predictor.h"

#include <algorithm>
#include <cmath>

#include "linalg/gemm.h"
#include "linalg/simd.h"
#include "util/check.h"

namespace cerl::serve {
namespace {

// Elementwise activations, matching autodiff/ops.cc forwards exactly: relu
// through the dispatched ew_forward kernel (bitwise across tables, in-place
// aliasing allowed), the transcendentals as the same scalar libm loops the
// tape runs (elu = expm1, tanh = std::tanh, sigmoid = 1/(1+exp(-x))).
void ApplyActivationInPlace(nn::Activation act, linalg::Matrix* m) {
  double* d = m->data();
  const int64_t n = m->size();
  switch (act) {
    case nn::Activation::kNone:
      return;
    case nn::Activation::kRelu:
      linalg::simd::Kernels().ew_forward(
          static_cast<int>(linalg::simd::EwFwd::kRelu), d, d, n);
      return;
    case nn::Activation::kElu:
      for (int64_t i = 0; i < n; ++i) {
        d[i] = d[i] > 0.0 ? d[i] : std::expm1(d[i]);
      }
      return;
    case nn::Activation::kTanh:
      for (int64_t i = 0; i < n; ++i) d[i] = std::tanh(d[i]);
      return;
    case nn::Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) d[i] = 1.0 / (1.0 + std::exp(-d[i]));
      return;
  }
}

}  // namespace

linalg::Matrix& BatchPredictor::Acquire(Buf* buf, int rows, int cols) {
  const int64_t need = static_cast<int64_t>(rows) * cols;
  if (need > buf->high_water) {
    ++allocations_;
    buf->high_water = need;
  }
  buf->m.Resize(rows, cols);
  return buf->m;
}

void BatchPredictor::ForwardLayer(const DenseLayer& layer,
                                  const linalg::Matrix& in,
                                  linalg::Matrix* out) {
  const auto& ks = linalg::simd::Kernels();
  const int rows = in.rows();
  if (layer.cosine) {
    // RowL2Normalize(in), tape op order: Square -> RowSum -> ScalarAdd(eps)
    // -> Sqrt -> Reciprocal -> MulColBroadcast. The weight side was
    // normalized once at snapshot build with the identical sequence.
    constexpr double kEps = 1e-12;  // composite.h default
    linalg::Matrix& scratch = Acquire(&pre_, rows, in.cols());
    ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kSquare), in.data(),
                  scratch.data(), scratch.size());
    linalg::Matrix& norm = Acquire(&norm_, rows, 1);
    for (int r = 0; r < rows; ++r) {
      const double* row = scratch.row(r);
      double s = 0.0;  // RowSum's left-to-right accumulation order
      for (int c = 0; c < scratch.cols(); ++c) s += row[c];
      norm(r, 0) = s + kEps;
    }
    ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kSqrt), norm.data(),
                  norm.data(), rows);
    ks.ew_forward(static_cast<int>(linalg::simd::EwFwd::kReciprocal),
                  norm.data(), norm.data(), rows);
    // The squares are dead; scratch becomes the normalized input (reads
    // `in` and norm, so no operand aliases the destination).
    ks.mul_col_broadcast(in.data(), norm.data(), rows, in.cols(),
                         scratch.data());
    linalg::Gemm(linalg::Trans::kNo, linalg::Trans::kNo, 1.0, scratch,
                 layer.weight, 0.0, out);
  } else {
    linalg::Matrix& pre = Acquire(&pre_, rows, layer.weight.cols());
    linalg::Gemm(linalg::Trans::kNo, linalg::Trans::kNo, 1.0, in,
                 layer.weight, 0.0, &pre);
    ks.add_row_broadcast(pre.data(), layer.bias.data(), rows, pre.cols(),
                         out->data());
  }
  ApplyActivationInPlace(layer.activation, out);
}

const linalg::Matrix& BatchPredictor::ForwardMlp(
    const std::vector<DenseLayer>& layers, const linalg::Matrix& in,
    Buf* out_buf) {
  const int rows = in.rows();
  const linalg::Matrix* cur = &in;
  const int n_layers = static_cast<int>(layers.size());
  for (int i = 0; i < n_layers; ++i) {
    // Hidden layers ping-pong between two buffers (layer i reads the
    // other parity's output); the last layer lands in the caller's buffer,
    // which outlives the call (rep_ must survive both head passes).
    Buf* dst = (i == n_layers - 1) ? out_buf : &pp_[i % 2];
    linalg::Matrix& out = Acquire(dst, rows, layers[i].weight.cols());
    ForwardLayer(layers[i], *cur, &out);
    cur = &out;
  }
  return *cur;
}

void BatchPredictor::StageBlock(const EffectSnapshot& snap,
                                const linalg::Matrix& x_raw, int r0,
                                int rows) {
  linalg::Matrix& x = Acquire(&x_, rows, snap.input_dim);
  const double* mean = snap.x_mean.data();
  const double* std = snap.x_std.data();
  for (int r = 0; r < rows; ++r) {
    const double* src = x_raw.row(r0 + r);
    double* dst = x.row(r);
    // linalg::Standardize's expression, per element.
    for (int c = 0; c < snap.input_dim; ++c) {
      dst[c] = (src[c] - mean[c]) / std[c];
    }
  }
}

void BatchPredictor::ForwardBlock(const EffectSnapshot& snap, int rows) {
  const linalg::Matrix& rep = ForwardMlp(snap.rep, x_.m, &rep_);
  // Same head order as RepOutcomeNet::PredictIte (h_1 then h_0).
  ForwardMlp(snap.head1, rep, &y1_);
  ForwardMlp(snap.head0, rep, &y0_);
  (void)rows;
}

void BatchPredictor::PredictIte(const EffectSnapshot& snap,
                                const linalg::Matrix& x_raw,
                                linalg::Vector* ite) {
  CERL_CHECK_EQ(x_raw.cols(), snap.input_dim);
  const int n = x_raw.rows();
  ite->resize(n);
  for (int r0 = 0; r0 < n; r0 += kRowBlock) {
    const int rows = std::min(kRowBlock, n - r0);
    StageBlock(snap, x_raw, r0, rows);
    ForwardBlock(snap, rows);
    for (int i = 0; i < rows; ++i) {
      (*ite)[r0 + i] = snap.y_scale * (y1_.m(i, 0) - y0_.m(i, 0));
    }
  }
}

double BatchPredictor::PredictIteRow(const EffectSnapshot& snap,
                                     const double* x) {
  linalg::Matrix& xb = Acquire(&x_, 1, snap.input_dim);
  const double* mean = snap.x_mean.data();
  const double* std = snap.x_std.data();
  double* dst = xb.row(0);
  for (int c = 0; c < snap.input_dim; ++c) {
    dst[c] = (x[c] - mean[c]) / std[c];
  }
  ForwardBlock(snap, 1);
  return snap.y_scale * (y1_.m(0, 0) - y0_.m(0, 0));
}

void BatchPredictor::PredictOutcomes(const EffectSnapshot& snap,
                                     const linalg::Matrix& x_raw,
                                     linalg::Vector* y0, linalg::Vector* y1) {
  CERL_CHECK_EQ(x_raw.cols(), snap.input_dim);
  const int n = x_raw.rows();
  y0->resize(n);
  y1->resize(n);
  for (int r0 = 0; r0 < n; r0 += kRowBlock) {
    const int rows = std::min(kRowBlock, n - r0);
    StageBlock(snap, x_raw, r0, rows);
    ForwardBlock(snap, rows);
    for (int i = 0; i < rows; ++i) {
      // OutcomeScaler::InverseTransform's expression.
      (*y0)[r0 + i] = y0_.m(i, 0) * snap.y_scale + snap.y_mean;
      (*y1)[r0 + i] = y1_.m(i, 0) * snap.y_scale + snap.y_mean;
    }
  }
}

}  // namespace cerl::serve
