#include "train/train_loop.h"

#include <algorithm>

#include "nn/optim.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cerl::train {

std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params) {
  std::vector<linalg::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const auto* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot) {
  CERL_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

TrainLoop::TrainLoop(const LoopOptions& options,
                     std::vector<Parameter*> params, Rng* rng)
    : options_(options),
      params_(std::move(params)),
      external_rng_(rng),
      owned_rng_(options.seed) {}

TrainStats TrainLoop::Run(int n, const BatchLossFn& batch_loss,
                          const ValidLossFn& valid_loss) {
  CERL_CHECK(n > 0);
  CERL_CHECK(options_.batch_size > 0);
  Rng& rng = external_rng_ != nullptr ? *external_rng_ : owned_rng_;
  nn::Adam optimizer(params_, options_.learning_rate);
  const int batch = std::min(options_.batch_size, n);

  WallTimer timer;
  TrainStats stats;
  double best_valid = valid_loss();
  std::vector<linalg::Matrix> best_snapshot = SnapshotValues(params_);
  int since_best = 0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const std::vector<int> perm = rng.Permutation(n);
    // Every sample is visited once per epoch: the final batch may be
    // shorter than `batch` but is never dropped.
    for (int start = 0; start < n; start += batch) {
      const int end = std::min(start + batch, n);
      std::vector<int> idx(perm.begin() + start, perm.begin() + end);

      Tape tape;
      Var loss = batch_loss(&tape, idx);
      CERL_CHECK(loss.valid());
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step();
      ++stats.steps;
      stats.samples_seen += end - start;
    }

    const double epoch_valid = valid_loss();
    stats.epochs_run = epoch + 1;
    if (epoch_valid < best_valid - options_.min_improvement) {
      best_valid = epoch_valid;
      best_snapshot = SnapshotValues(params_);
      since_best = 0;
    } else if (++since_best >= options_.patience) {
      break;
    }
    if (options_.verbose && options_.log_every > 0 &&
        epoch % options_.log_every == 0) {
      CERL_LOG(Info) << options_.log_label << " epoch " << epoch
                     << " valid loss " << epoch_valid;
    }
  }

  RestoreValues(params_, best_snapshot);
  stats.best_valid_loss = best_valid;
  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace cerl::train
