#include "train/train_loop.h"

#include <algorithm>
#include <array>
#include <memory>

#include "nn/optim.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cerl::train {

std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params) {
  std::vector<linalg::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const auto* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot) {
  CERL_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

TrainLoop::TrainLoop(const LoopOptions& options,
                     std::vector<Parameter*> params, Rng* rng)
    : options_(options),
      params_(std::move(params)),
      external_rng_(rng),
      owned_rng_(options.seed) {}

TrainStats TrainLoop::Run(int n, const BatchLossFn& batch_loss,
                          const ValidLossFn& valid_loss) {
  return Run(
      n, /*gather_sources=*/{},
      [&batch_loss](Tape* tape, IndexSpan batch,
                    const std::vector<linalg::Matrix>&) {
        return batch_loss(tape, batch);
      },
      valid_loss);
}

TrainStats TrainLoop::Run(
    int n, const std::vector<const linalg::Matrix*>& gather_sources,
    const GatheredBatchLossFn& batch_loss, const ValidLossFn& valid_loss) {
  CERL_CHECK(n > 0);
  CERL_CHECK(options_.batch_size > 0);
  for (const linalg::Matrix* src : gather_sources) {
    CERL_CHECK(src != nullptr);
    CERL_CHECK_EQ(src->rows(), n);
  }
  Rng& rng = external_rng_ != nullptr ? *external_rng_ : owned_rng_;
  nn::Adam optimizer(params_, options_.learning_rate);
  const int batch = std::min(options_.batch_size, n);
  const int steps_per_epoch = (n + batch - 1) / batch;

  // One persistent tape per distinct batch shape: the graph topology is
  // fixed for a fixed batch size, so Reset() + re-record reuses every node
  // buffer and the steady-state step allocates nothing. The tail batch
  // (n % batch) gets its own tape so it does not thrash the full-batch
  // arena once per epoch.
  Tape full_tape;
  Tape tail_tape;

  // Double-buffered gathered minibatches: batch k reads buffers[k % 2]
  // while the assembler worker fills buffers[(k + 1) % 2]. A buffer is
  // stable for the whole step, so losses may alias it via ConstantView.
  std::array<std::vector<linalg::Matrix>, 2> buffers;
  for (auto& b : buffers) b.resize(gather_sources.size());
  auto gather_into = [&gather_sources](std::vector<linalg::Matrix>* dst,
                                       const int* idx, int count) {
    for (size_t s = 0; s < gather_sources.size(); ++s) {
      gather_sources[s]->GatherRowsInto(idx, count, &(*dst)[s]);
    }
  };
  // The assembler is a dedicated single-thread pool: tasks submitted to the
  // global pool must not ParallelFor/Wait (a worker waiting on its own pool
  // deadlocks), while a dedicated worker may — its gathers fan out to the
  // global pool concurrently with the backward pass's GEMMs. `perm` is
  // declared before `assembler` so that if an exception unwinds this frame
  // with a prefetch in flight, the pool joins (destructor) while the
  // permutation the task reads is still alive.
  const bool pipelined = options_.pipeline_assembly &&
                         !gather_sources.empty() && steps_per_epoch > 1;
  std::vector<int> perm;
  std::unique_ptr<ThreadPool> assembler;
  if (pipelined) assembler = std::make_unique<ThreadPool>(1);

  WallTimer timer;
  TrainStats stats;
  double best_valid = valid_loss();
  std::vector<linalg::Matrix> best_snapshot = SnapshotValues(params_);
  int since_best = 0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    perm = rng.Permutation(n);
    if (!gather_sources.empty()) {
      // Prime the first batch synchronously; later batches are either
      // prefetched (pipelined) or gathered on demand.
      gather_into(&buffers[0], perm.data(), std::min(batch, n));
    }
    // Every sample is visited once per epoch: the final batch may be
    // shorter than `batch` but is never dropped.
    for (int step = 0, start = 0; start < n; ++step, start += batch) {
      const int end = std::min(start + batch, n);
      const int count = end - start;
      std::vector<linalg::Matrix>& gathered = buffers[step & 1];
      if (step > 0 && !gather_sources.empty()) {
        if (pipelined) {
          assembler->Wait();  // the prefetch of this batch
        } else {
          gather_into(&gathered, perm.data() + start, count);
        }
      }
      if (pipelined && end < n) {
        const int next_count = std::min(start + 2 * batch, n) - end;
        std::vector<linalg::Matrix>* next = &buffers[(step + 1) & 1];
        const int* next_idx = perm.data() + end;
        assembler->Submit([&gather_into, next, next_idx, next_count] {
          gather_into(next, next_idx, next_count);
        });
      }

      Tape& tape = count == batch ? full_tape : tail_tape;
      tape.Reset();
      Var loss =
          batch_loss(&tape, IndexSpan(perm.data() + start, count), gathered);
      CERL_CHECK(loss.valid());
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step();
      ++stats.steps;
      stats.samples_seen += count;
    }
    if (pipelined) assembler->Wait();  // no gather may outlive `perm`

    const double epoch_valid = valid_loss();
    stats.epochs_run = epoch + 1;
    if (epoch_valid < best_valid - options_.min_improvement) {
      best_valid = epoch_valid;
      best_snapshot = SnapshotValues(params_);
      since_best = 0;
    } else if (++since_best >= options_.patience) {
      break;
    }
    if (options_.verbose && options_.log_every > 0 &&
        epoch % options_.log_every == 0) {
      CERL_LOG(Info) << options_.log_label << " epoch " << epoch
                     << " valid loss " << epoch_valid;
    }
  }

  RestoreValues(params_, best_snapshot);
  stats.best_valid_loss = best_valid;
  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace cerl::train
