#include "train/train_loop.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <string>

#include "nn/optim.h"
#include "util/check.h"
#include "util/status.h"
#include "util/keyed_pool.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cerl::train {

namespace {
// Persistent tapes retained per batch-shape key. Two is enough for the
// default key (full + tail batch); shape-refined keys (treated/control
// splits) rotate through a few more before reuse kicks in.
constexpr int kTapePoolCapacity = 8;
}  // namespace

std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params) {
  std::vector<linalg::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const auto* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot) {
  CERL_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

TrainLoop::TrainLoop(const LoopOptions& options,
                     std::vector<Parameter*> params, Rng* rng)
    : options_(options),
      params_(std::move(params)),
      external_rng_(rng),
      owned_rng_(options.seed) {}

void TrainLoop::EnableAsyncValidation(SnapshotValidLossFn fn) {
  async_valid_fn_ = std::move(fn);
}

void TrainLoop::SetBatchShapeKey(BatchShapeKeyFn fn) {
  shape_key_fn_ = std::move(fn);
}

TrainStats TrainLoop::Run(int n, const BatchLossFn& batch_loss,
                          const ValidLossFn& valid_loss) {
  return Run(
      n, /*gather_sources=*/{},
      [&batch_loss](Tape* tape, IndexSpan batch,
                    const std::vector<linalg::Matrix>&) {
        return batch_loss(tape, batch);
      },
      valid_loss);
}

TrainStats TrainLoop::Run(
    int n, const std::vector<const linalg::Matrix*>& gather_sources,
    const GatheredBatchLossFn& batch_loss, const ValidLossFn& valid_loss) {
  CERL_CHECK(n > 0);
  CERL_CHECK(options_.batch_size > 0);
  for (const linalg::Matrix* src : gather_sources) {
    CERL_CHECK(src != nullptr);
    CERL_CHECK_EQ(src->rows(), n);
  }
  Rng& rng = external_rng_ != nullptr ? *external_rng_ : owned_rng_;
  nn::Adam optimizer(params_, options_.learning_rate);
  const int batch = std::min(options_.batch_size, n);
  const int steps_per_epoch = (n + batch - 1) / batch;

  // One persistent tape per distinct batch shape: the graph topology is
  // fixed for a fixed shape key, so Reset() + re-record reuses every node
  // buffer and the steady-state step allocates nothing. By default the key
  // is the batch size — full batches share one tape, the tail batch (n %
  // batch) gets its own so it does not thrash the full-batch arena once per
  // epoch. A caller-provided shape key (SetBatchShapeKey) refines this so
  // content-dependent topologies (treated/control splits) each keep a
  // warmed arena too.
  KeyedLruPool<Tape> tapes(kTapePoolCapacity);

  // Double-buffered gathered minibatches: batch k reads buffers[k % 2]
  // while the assembler worker fills buffers[(k + 1) % 2]. A buffer is
  // stable for the whole step, so losses may alias it via ConstantView.
  std::array<std::vector<linalg::Matrix>, 2> buffers;
  for (auto& b : buffers) b.resize(gather_sources.size());
  auto gather_into = [&gather_sources](std::vector<linalg::Matrix>* dst,
                                       const int* idx, int count) {
    for (size_t s = 0; s < gather_sources.size(); ++s) {
      gather_sources[s]->GatherRowsInto(idx, count, &(*dst)[s]);
    }
  };
  // The assembler is a dedicated single-thread pool: tasks submitted to the
  // global pool must not ParallelFor/Wait (a worker waiting on its own pool
  // deadlocks), while a dedicated worker may — its gathers fan out to the
  // global pool concurrently with the backward pass's GEMMs. `perm` is
  // declared before `assembler` so that if an exception unwinds this frame
  // with a prefetch in flight, the pool joins (destructor) while the
  // permutation the task reads is still alive.
  const bool pipelined = options_.pipeline_assembly &&
                         !gather_sources.empty() && steps_per_epoch > 1;
  std::vector<int> perm;
  std::unique_ptr<ThreadPool> assembler;
  if (pipelined) assembler = std::make_unique<ThreadPool>(1);

  // Asynchronous validation (EnableAsyncValidation): a dedicated
  // single-thread worker — separate from the assembler so a long validation
  // pass does not stall batch prefetch — scores the snapshot taken after
  // epoch e's last batch while epoch e+1 trains; the early-stop decision
  // for epoch e resolves after epoch e+1's batches. `pending_snapshot` is
  // written only by this thread and read only by the validator between
  // Submit and Wait (which carry the fences).
  // (`pending_snapshot`/`pending_value` are declared before `validator` so
  // that if an exception unwinds with a score in flight, the pool joins —
  // destructor — while the buffers the task reads are still alive, exactly
  // like the perm/assembler ordering above.)
  const bool async_valid = async_valid_fn_ != nullptr;
  std::vector<linalg::Matrix> pending_snapshot;
  double pending_value = 0.0;
  bool pending = false;
  std::unique_ptr<ThreadPool> validator;
  if (async_valid) validator = std::make_unique<ThreadPool>(1);

  WallTimer timer;
  TrainStats stats;
  double best_valid = valid_loss();
  std::vector<linalg::Matrix> best_snapshot = SnapshotValues(params_);
  int since_best = 0;

  // Applies one epoch's validation outcome. `snapshot` is the parameter
  // state the value was scored on (null => snapshot the live parameters,
  // valid only for the synchronous path where nothing has trained since).
  // Returns true when patience is exhausted.
  auto resolve = [&](double value, std::vector<linalg::Matrix>* snapshot) {
    if (value < best_valid - options_.min_improvement) {
      best_valid = value;
      best_snapshot =
          snapshot != nullptr ? std::move(*snapshot) : SnapshotValues(params_);
      since_best = 0;
      return false;
    }
    return ++since_best >= options_.patience;
  };

  bool stop = false;
  for (int epoch = 0; epoch < options_.epochs && !stop; ++epoch) {
    perm = rng.Permutation(n);
    if (!gather_sources.empty()) {
      // Prime the first batch synchronously; later batches are either
      // prefetched (pipelined) or gathered on demand.
      gather_into(&buffers[0], perm.data(), std::min(batch, n));
    }
    // Every sample is visited once per epoch: the final batch may be
    // shorter than `batch` but is never dropped.
    for (int step = 0, start = 0; start < n; ++step, start += batch) {
      const int end = std::min(start + batch, n);
      const int count = end - start;
      std::vector<linalg::Matrix>& gathered = buffers[step & 1];
      if (step > 0 && !gather_sources.empty()) {
        if (pipelined) {
          assembler->Wait();  // the prefetch of this batch
        } else {
          gather_into(&gathered, perm.data() + start, count);
        }
      }
      if (pipelined && end < n) {
        const int next_count = std::min(start + 2 * batch, n) - end;
        std::vector<linalg::Matrix>* next = &buffers[(step + 1) & 1];
        const int* next_idx = perm.data() + end;
        assembler->Submit([&gather_into, next, next_idx, next_count] {
          gather_into(next, next_idx, next_count);
        });
      }

      const IndexSpan span(perm.data() + start, count);
      const uint64_t shape_key = shape_key_fn_
                                     ? shape_key_fn_(span)
                                     : static_cast<uint64_t>(count);
      Tape& tape =
          *tapes.Acquire(shape_key, [] { return std::make_unique<Tape>(); });
      tape.Reset();
      Var loss = batch_loss(&tape, span, gathered);
      CERL_CHECK(loss.valid());
      // A non-finite loss must surface here, before Backward() poisons the
      // parameters: the early-stopping snapshot would otherwise silently
      // restore over the excursion (NaN never beats best_valid), leaving
      // corrupted training invisible to the caller's health guards.
      if (!std::isfinite(loss.scalar())) {
        throw StatusError(
            Status::NumericalError("non-finite training loss at step " +
                                   std::to_string(stats.steps)));
      }
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step();
      ++stats.steps;
      stats.samples_seen += count;
    }
    if (pipelined) assembler->Wait();  // no gather may outlive `perm`
    stats.epochs_run = epoch + 1;

    if (!async_valid) {
      const double epoch_valid = valid_loss();
      stop = resolve(epoch_valid, /*snapshot=*/nullptr);
      if (options_.verbose && options_.log_every > 0 &&
          epoch % options_.log_every == 0) {
        CERL_LOG(Info) << options_.log_label << " epoch " << epoch
                       << " valid loss " << epoch_valid;
      }
      continue;
    }

    // Resolve the previous epoch's score (it ran during this epoch's
    // batches), then launch this epoch's scoring unless stopping.
    if (pending) {
      validator->Wait();
      pending = false;
      stop = resolve(pending_value, &pending_snapshot);
      if (options_.verbose && options_.log_every > 0 &&
          (epoch - 1) % options_.log_every == 0) {
        CERL_LOG(Info) << options_.log_label << " epoch " << epoch - 1
                       << " valid loss " << pending_value << " (async)";
      }
    }
    if (!stop) {
      pending_snapshot = SnapshotValues(params_);
      validator->Submit([this, &pending_value, &pending_snapshot] {
        pending_value = async_valid_fn_(pending_snapshot);
      });
      pending = true;
    }
  }
  if (pending) {
    // Epoch budget exhausted with the final epoch's score still in flight:
    // it must still compete for the best snapshot, exactly as the
    // synchronous loop scores its last epoch.
    validator->Wait();
    resolve(pending_value, &pending_snapshot);
  }

  RestoreValues(params_, best_snapshot);
  stats.best_valid_loss = best_valid;
  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace cerl::train
