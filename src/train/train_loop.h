// Shared mini-batch training engine.
//
// Every gradient-trained objective in this codebase (CFR's Eq. 5, CERL's
// continual Eq. 9, and whatever future stages add) shares the same loop
// mechanics: shuffled mini-batch index assembly (including the final
// partial batch), one Adam step per batch, patience-based early stopping
// on a validation criterion, and snapshot/restore of the best parameters.
// TrainLoop owns those mechanics once; callers supply only
//   - a per-batch loss builder: (Tape*, batch index span[, pre-gathered
//     minibatch matrices]) -> scalar Var, and
//   - a validation-loss callback: () -> double.
//
// The loop is zero-churn in steady state: two persistent tapes (one for
// full batches, one for the tail batch) are Reset() and re-recorded each
// step, so after the first epoch no tape-node Matrix is allocated. Batch
// indices are passed as a span of the epoch permutation (no per-step index
// vector). When the caller registers gather sources, the loop assembles
// each batch's row-gathers itself and — by default — prefetches batch k+1
// on a dedicated util::ThreadPool worker while batch k runs its
// forward/backward, double-buffering the gathered matrices. Gathers are
// pure row copies, so the pipelined path is bit-identical to the serial
// one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::train {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// Non-owning view of a contiguous run of batch indices (a slice of the
/// epoch permutation). Valid only for the duration of the batch callback.
class IndexSpan {
 public:
  IndexSpan() = default;
  IndexSpan(const int* data, int size) : data_(data), size_(size) {}
  IndexSpan(const std::vector<int>& v)  // NOLINT: implicit for call sites
      : data_(v.data()), size_(static_cast<int>(v.size())) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const int* data() const { return data_; }
  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  int operator[](int i) const { return data_[i]; }

 private:
  const int* data_ = nullptr;
  int size_ = 0;
};

/// Loop mechanics configuration (the subset of a model's training config
/// that the engine itself consumes).
struct LoopOptions {
  int epochs = 120;
  int batch_size = 128;
  double learning_rate = 1e-3;
  int patience = 15;             ///< early-stopping patience (epochs)
  double min_improvement = 1e-6; ///< required drop in valid loss to count
  uint64_t seed = 1234;          ///< shuffle seed when no Rng* is supplied
  bool pipeline_assembly = true; ///< overlap batch k+1 gathers with batch k
  bool verbose = false;
  int log_every = 10;            ///< epochs between verbose log lines
  std::string log_label = "train";
};

/// Summary of one training run.
struct TrainStats {
  int epochs_run = 0;
  double best_valid_loss = 0.0;
  double wall_seconds = 0.0;     ///< total Run() wall time
  int64_t steps = 0;             ///< optimizer steps taken
  int64_t samples_seen = 0;      ///< sum of batch sizes over all steps
};

/// Copies current parameter values (early-stopping snapshots).
std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params);

/// Writes a snapshot back into the parameters.
void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot);

/// Builds the scalar training loss for one mini-batch. The tape arrives
/// Reset() but retains buffers from the previous step with the same batch
/// size; `batch` spans the epoch permutation (the tail batch may be smaller
/// than LoopOptions::batch_size but is never dropped).
using BatchLossFn = std::function<Var(Tape* tape, IndexSpan batch)>;

/// Loss builder for the assembled-minibatch path: `gathered[s]` holds the
/// batch's rows of the s-th registered gather source, assembled (and
/// possibly prefetched) by the loop. The matrices are stable for the whole
/// step, so Tape::ConstantView may alias them.
using GatheredBatchLossFn = std::function<Var(
    Tape* tape, IndexSpan batch,
    const std::vector<linalg::Matrix>& gathered)>;

/// Full validation criterion used for early stopping / snapshot selection.
using ValidLossFn = std::function<double()>;

/// Mini-batch gradient-descent driver with early stopping.
class TrainLoop {
 public:
  /// `params` is the joint trainable set (optimized by Adam and covered by
  /// snapshots). If `rng` is non-null it supplies the shuffles (callers that
  /// thread one deterministic stream through init + training); otherwise the
  /// loop seeds its own stream from `options.seed`.
  TrainLoop(const LoopOptions& options, std::vector<Parameter*> params,
            Rng* rng = nullptr);

  /// Runs up to `options.epochs` epochs over `n` samples. Each epoch visits
  /// every index in 0..n-1 exactly once in shuffled order, including the
  /// final partial batch when n % batch_size != 0. After each epoch
  /// `valid_loss` decides early stopping; on exit the best-validation
  /// snapshot is restored into the parameters.
  TrainStats Run(int n, const BatchLossFn& batch_loss,
                 const ValidLossFn& valid_loss);

  /// Assembled-minibatch variant: for each batch the loop gathers the
  /// batch's rows of every matrix in `gather_sources` (all must have `n`
  /// rows) and hands them to `batch_loss`. With pipeline_assembly the next
  /// batch's gathers overlap the current batch's backward pass.
  TrainStats Run(int n,
                 const std::vector<const linalg::Matrix*>& gather_sources,
                 const GatheredBatchLossFn& batch_loss,
                 const ValidLossFn& valid_loss);

 private:
  LoopOptions options_;
  std::vector<Parameter*> params_;
  Rng* external_rng_;
  Rng owned_rng_;
};

}  // namespace cerl::train
