// Shared mini-batch training engine.
//
// Every gradient-trained objective in this codebase (CFR's Eq. 5, CERL's
// continual Eq. 9, and whatever future stages add) shares the same loop
// mechanics: shuffled mini-batch index assembly (including the final
// partial batch), one Adam step per batch, patience-based early stopping
// on a validation criterion, and snapshot/restore of the best parameters.
// TrainLoop owns those mechanics once; callers supply only
//   - a per-batch loss builder: (Tape*, batch indices) -> scalar Var, and
//   - a validation-loss callback: () -> double.
// Keeping exactly one loop means batching, tape reuse, and parallel batch
// assembly optimizations land in one place instead of per-model copies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::train {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// Loop mechanics configuration (the subset of a model's training config
/// that the engine itself consumes).
struct LoopOptions {
  int epochs = 120;
  int batch_size = 128;
  double learning_rate = 1e-3;
  int patience = 15;             ///< early-stopping patience (epochs)
  double min_improvement = 1e-6; ///< required drop in valid loss to count
  uint64_t seed = 1234;          ///< shuffle seed when no Rng* is supplied
  bool verbose = false;
  int log_every = 10;            ///< epochs between verbose log lines
  std::string log_label = "train";
};

/// Summary of one training run.
struct TrainStats {
  int epochs_run = 0;
  double best_valid_loss = 0.0;
  double wall_seconds = 0.0;     ///< total Run() wall time
  int64_t steps = 0;             ///< optimizer steps taken
  int64_t samples_seen = 0;      ///< sum of batch sizes over all steps
};

/// Copies current parameter values (early-stopping snapshots).
std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params);

/// Writes a snapshot back into the parameters.
void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot);

/// Builds the scalar training loss for one mini-batch. The tape is fresh
/// per batch; `batch` holds dataset indices (the tail batch may be smaller
/// than LoopOptions::batch_size but is never dropped).
using BatchLossFn = std::function<Var(Tape* tape, const std::vector<int>& batch)>;

/// Full validation criterion used for early stopping / snapshot selection.
using ValidLossFn = std::function<double()>;

/// Mini-batch gradient-descent driver with early stopping.
class TrainLoop {
 public:
  /// `params` is the joint trainable set (optimized by Adam and covered by
  /// snapshots). If `rng` is non-null it supplies the shuffles (callers that
  /// thread one deterministic stream through init + training); otherwise the
  /// loop seeds its own stream from `options.seed`.
  TrainLoop(const LoopOptions& options, std::vector<Parameter*> params,
            Rng* rng = nullptr);

  /// Runs up to `options.epochs` epochs over `n` samples. Each epoch visits
  /// every index in 0..n-1 exactly once in shuffled order, including the
  /// final partial batch when n % batch_size != 0. After each epoch
  /// `valid_loss` decides early stopping; on exit the best-validation
  /// snapshot is restored into the parameters.
  TrainStats Run(int n, const BatchLossFn& batch_loss,
                 const ValidLossFn& valid_loss);

 private:
  LoopOptions options_;
  std::vector<Parameter*> params_;
  Rng* external_rng_;
  Rng owned_rng_;
};

}  // namespace cerl::train
