// Shared mini-batch training engine.
//
// Every gradient-trained objective in this codebase (CFR's Eq. 5, CERL's
// continual Eq. 9, and whatever future stages add) shares the same loop
// mechanics: shuffled mini-batch index assembly (including the final
// partial batch), one Adam step per batch, patience-based early stopping
// on a validation criterion, and snapshot/restore of the best parameters.
// TrainLoop owns those mechanics once; callers supply only
//   - a per-batch loss builder: (Tape*, batch index span[, pre-gathered
//     minibatch matrices]) -> scalar Var, and
//   - a validation-loss callback: () -> double.
//
// The loop is zero-churn in steady state: persistent tapes — pooled by
// batch shape (by default the batch size, so full batches and the tail
// batch each keep one; callers with shape-dependent graphs may refine the
// key, e.g. CFR keys by the treated/control split) — are Reset() and
// re-recorded each step, so after the first epoch no tape-node Matrix is
// allocated. Batch indices are passed as a span of the epoch permutation
// (no per-step index vector). When the caller registers gather sources,
// the loop assembles each batch's row-gathers itself and — by default —
// prefetches batch k+1 on a dedicated util::ThreadPool worker while batch
// k runs its forward/backward, double-buffering the gathered matrices.
// Gathers are pure row copies, so the pipelined path is bit-identical to
// the serial one.
//
// Validation can also come off the training thread: with
// EnableAsyncValidation the loop snapshots the parameters after the last
// batch of each epoch, scores the snapshot on a dedicated worker while the
// next epoch's batches proceed, and resolves the early-stop decision one
// epoch late. The best snapshot (and therefore the restored parameters)
// is bit-identical to the synchronous loop; only the epoch at which the
// loop notices it should stop shifts by at most one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::train {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// Non-owning view of a contiguous run of batch indices (a slice of the
/// epoch permutation). Valid only for the duration of the batch callback.
class IndexSpan {
 public:
  IndexSpan() = default;
  IndexSpan(const int* data, int size) : data_(data), size_(size) {}
  IndexSpan(const std::vector<int>& v)  // NOLINT: implicit for call sites
      : data_(v.data()), size_(static_cast<int>(v.size())) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const int* data() const { return data_; }
  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  int operator[](int i) const { return data_[i]; }

 private:
  const int* data_ = nullptr;
  int size_ = 0;
};

/// Loop mechanics configuration (the subset of a model's training config
/// that the engine itself consumes).
struct LoopOptions {
  int epochs = 120;
  int batch_size = 128;
  double learning_rate = 1e-3;
  int patience = 15;             ///< early-stopping patience (epochs)
  double min_improvement = 1e-6; ///< required drop in valid loss to count
  uint64_t seed = 1234;          ///< shuffle seed when no Rng* is supplied
  bool pipeline_assembly = true; ///< overlap batch k+1 gathers with batch k
  bool verbose = false;
  int log_every = 10;            ///< epochs between verbose log lines
  std::string log_label = "train";
};

/// Summary of one training run.
struct TrainStats {
  int epochs_run = 0;
  double best_valid_loss = 0.0;
  double wall_seconds = 0.0;     ///< total Run() wall time
  int64_t steps = 0;             ///< optimizer steps taken
  int64_t samples_seen = 0;      ///< sum of batch sizes over all steps
};

/// Copies current parameter values (early-stopping snapshots).
std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params);

/// Writes a snapshot back into the parameters.
void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot);

/// Builds the scalar training loss for one mini-batch. The tape arrives
/// Reset() but retains buffers from the previous step with the same batch
/// size; `batch` spans the epoch permutation (the tail batch may be smaller
/// than LoopOptions::batch_size but is never dropped).
using BatchLossFn = std::function<Var(Tape* tape, IndexSpan batch)>;

/// Loss builder for the assembled-minibatch path: `gathered[s]` holds the
/// batch's rows of the s-th registered gather source, assembled (and
/// possibly prefetched) by the loop. The matrices are stable for the whole
/// step, so Tape::ConstantView may alias them.
using GatheredBatchLossFn = std::function<Var(
    Tape* tape, IndexSpan batch,
    const std::vector<linalg::Matrix>& gathered)>;

/// Full validation criterion used for early stopping / snapshot selection.
using ValidLossFn = std::function<double()>;

/// Validation criterion evaluated against an explicit parameter snapshot
/// (ordered like the loop's `params`). Used by the asynchronous validation
/// path, where the live parameters keep training while the snapshot is
/// scored on a worker — the callback must not read the live parameters
/// (score a dedicated validation clone of the model instead) and must be
/// safe to run concurrently with batch steps (it may fan work out to the
/// global pool, like any kernel).
using SnapshotValidLossFn =
    std::function<double(const std::vector<linalg::Matrix>& snapshot)>;

/// Optional tape-pool key for a batch: batches mapping to the same key
/// reuse the same persistent tape. Defaults to the batch size; callers
/// whose graph topology also depends on the batch *content* (e.g. the
/// treated/control split) can fold that into the key so every shape finds
/// a warmed arena. Purely a reuse hint — any key function yields identical
/// numerics.
using BatchShapeKeyFn = std::function<uint64_t(IndexSpan batch)>;

/// Mini-batch gradient-descent driver with early stopping.
class TrainLoop {
 public:
  /// `params` is the joint trainable set (optimized by Adam and covered by
  /// snapshots). If `rng` is non-null it supplies the shuffles (callers that
  /// thread one deterministic stream through init + training); otherwise the
  /// loop seeds its own stream from `options.seed`.
  TrainLoop(const LoopOptions& options, std::vector<Parameter*> params,
            Rng* rng = nullptr);

  /// Runs up to `options.epochs` epochs over `n` samples. Each epoch visits
  /// every index in 0..n-1 exactly once in shuffled order, including the
  /// final partial batch when n % batch_size != 0. After each epoch
  /// `valid_loss` decides early stopping; on exit the best-validation
  /// snapshot is restored into the parameters.
  TrainStats Run(int n, const BatchLossFn& batch_loss,
                 const ValidLossFn& valid_loss);

  /// Assembled-minibatch variant: for each batch the loop gathers the
  /// batch's rows of every matrix in `gather_sources` (all must have `n`
  /// rows) and hands them to `batch_loss`. With pipeline_assembly the next
  /// batch's gathers overlap the current batch's backward pass.
  TrainStats Run(int n,
                 const std::vector<const linalg::Matrix*>& gather_sources,
                 const GatheredBatchLossFn& batch_loss,
                 const ValidLossFn& valid_loss);

  /// Switches Run to asynchronous validation: after each epoch's last batch
  /// the parameters are snapshotted and `fn` scores the snapshot on a
  /// dedicated worker while the next epoch trains; the early-stop decision
  /// resolves one epoch late. `valid_loss` is still used for the initial
  /// (pre-training) criterion. Restored best parameters are bit-identical
  /// to the synchronous loop; TrainStats::epochs_run may be one higher.
  void EnableAsyncValidation(SnapshotValidLossFn fn);

  /// Refines the tape-pool key (see BatchShapeKeyFn). Default: batch size.
  void SetBatchShapeKey(BatchShapeKeyFn fn);

 private:
  LoopOptions options_;
  std::vector<Parameter*> params_;
  Rng* external_rng_;
  Rng owned_rng_;
  SnapshotValidLossFn async_valid_fn_;  ///< non-null => async validation
  BatchShapeKeyFn shape_key_fn_;
};

}  // namespace cerl::train
