// Primitive differentiable operations on tape Vars. Every op appends one
// node to the Var's tape. Gradient correctness for each primitive is
// verified against central differences in tests/autodiff_grad_test.cc.
#pragma once

#include <vector>

#include "autodiff/tape.h"

namespace cerl::autodiff {

/// C = A * B.
Var MatMul(Var a, Var b);

/// C = A * B^T.
Var MatMulBt(Var a, Var b);

/// Elementwise; shapes must match.
Var Add(Var a, Var b);
Var Sub(Var a, Var b);
Var Mul(Var a, Var b);

/// out = a + bias, bias is 1 x cols broadcast over rows (bias add).
Var AddRowBroadcast(Var a, Var bias);

/// out(i, j) = a(i, j) * s(i, 0); s is rows x 1 broadcast across columns.
Var MulColBroadcast(Var a, Var s);

/// Scalar ops.
Var ScalarMul(Var a, double k);
Var ScalarAdd(Var a, double k);

/// Elementwise unary ops.
Var Reciprocal(Var a);  ///< 1/a (a must be nonzero)
Var Relu(Var a);
Var Elu(Var a);         ///< alpha = 1
Var Tanh(Var a);
Var Sigmoid(Var a);
Var Exp(Var a);
Var Log(Var a);         ///< a must be positive
Var Sqrt(Var a);        ///< a must be non-negative
Var Square(Var a);
Var Abs(Var a);         ///< subgradient 0 at 0

/// Reductions.
Var Sum(Var a);      ///< 1 x 1
Var Mean(Var a);     ///< 1 x 1
Var RowSum(Var a);   ///< rows x 1
Var ColSum(Var a);   ///< 1 x cols

/// Structure ops.
Var Transpose(Var a);
Var ConcatRows(Var a, Var b);  ///< vertical stack
/// Rows by index. The indices are copied into tape-owned storage (reused
/// across Tape::Reset), so callers may pass transient spans.
Var GatherRows(Var a, const int* index, int n);
Var GatherRows(Var a, const std::vector<int>& index);

}  // namespace cerl::autodiff
