// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// A Tape owns a growing arena of nodes; each op appends a node whose
// backward closure scatters the node's gradient into its dependencies.
// Because dependencies always precede their consumers in the arena,
// reverse insertion order is a valid reverse-topological order.
//
// Model parameters live outside the tape as `Parameter` (value + grad).
// Each training step binds parameters as leaves via Tape::Param; after
// Tape::Backward the leaf gradients are accumulated back into the bound
// Parameter::grad. Binding the same Parameter several times in one tape is
// supported (the gradients add), which the CERL losses rely on (the same
// representation network is applied to data, memory, and distillation
// inputs within a single objective).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace cerl::autodiff {

using linalg::Matrix;

class Tape;

/// A trainable tensor: value plus accumulated gradient.
struct Parameter {
  Matrix value;
  Matrix grad;
  std::string name;

  Parameter() = default;
  Parameter(Matrix v, std::string n = "")
      : value(std::move(v)), grad(value.rows(), value.cols()),
        name(std::move(n)) {}

  /// Resets the gradient to zero (call before each optimization step).
  void ZeroGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
    grad.Fill(0.0);
  }
};

/// Lightweight handle to a tape node.
class Var {
 public:
  Var() : tape_(nullptr), id_(-1) {}
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr && id_ >= 0; }
  Tape* tape() const { return tape_; }
  int id() const { return id_; }

  const Matrix& value() const;
  const Matrix& grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Scalar convenience for 1x1 nodes.
  double scalar() const;

 private:
  Tape* tape_;
  int id_;
};

/// The autodiff graph arena for one forward/backward pass.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Constant input; no gradient is tracked through it.
  Var Constant(Matrix value);

  /// Leaf with gradient tracking (not bound to any Parameter).
  Var Leaf(Matrix value);

  /// Leaf bound to a Parameter: after Backward, the leaf gradient is added
  /// into p->grad. The value is snapshotted at bind time.
  Var Param(Parameter* p);

  /// Runs reverse-mode accumulation from scalar `root` (must be 1x1) and
  /// flushes gradients of bound parameters into their Parameter::grad.
  void Backward(const Var& root);

  /// Number of nodes currently on the tape.
  int size() const { return static_cast<int>(nodes_.size()); }

  // --- Internal API used by op implementations -----------------------------

  using BackwardFn = std::function<void(Tape*)>;

  /// Appends a node; requires_grad is inferred from deps unless forced.
  Var AddNode(Matrix value, std::vector<int> deps, BackwardFn backward,
              bool force_requires_grad = false);

  const Matrix& ValueOf(int id) const {
    CERL_DCHECK(id >= 0 && id < size());
    return nodes_[id].value;
  }
  bool RequiresGrad(int id) const { return nodes_[id].requires_grad; }

  /// Gradient of node `id`, lazily initialized to zeros.
  Matrix& GradRef(int id);

  /// True if the node has a non-null gradient buffer already.
  bool HasGrad(int id) const { return !nodes_[id].grad.empty(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // empty until first accumulation
    bool requires_grad = false;
    BackwardFn backward;  // null for leaves/constants
  };

  std::vector<Node> nodes_;
  std::vector<std::pair<int, Parameter*>> bindings_;
};

}  // namespace cerl::autodiff
