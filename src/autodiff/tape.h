// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// A Tape owns an arena of nodes; each op appends a node whose backward
// kernel scatters the node's gradient into its dependencies. Because
// dependencies always precede their consumers in the arena, reverse
// insertion order is a valid reverse-topological order.
//
// The arena is reusable: Tape::Reset() rewinds the tape to empty while
// retaining every node's value/grad Matrix buffer, the parameter-binding
// vector, and the gather-index pool. Re-recording a graph with the same
// topology and shapes (the steady state of mini-batch training, where the
// graph is fixed for a fixed batch size) then performs zero heap
// allocations: each op writes its forward result into the buffer the
// previous pass left at the same arena position (shape-checked; a mismatch
// reallocates just that node). Gradient buffers are invalidated logically
// via a pass generation counter, so Reset() is O(1).
//
// Backward functions are not heap-allocated std::function closures: each
// node stores a plain function pointer plus a small trivially-copyable
// payload (dependency ids, a scalar, an index-pool slice), so recording a
// node never touches the allocator.
//
// Model parameters live outside the tape as `Parameter` (value + grad).
// Each training step binds parameters as leaves via Tape::Param; after
// Tape::Backward the leaf gradients are accumulated back into the bound
// Parameter::grad. Binding the same Parameter several times in one tape is
// supported (the gradients add), which the CERL losses rely on (the same
// representation network is applied to data, memory, and distillation
// inputs within a single objective). Param leaves ALIAS the parameter's
// value matrix instead of copying it; the caller must keep the parameter
// alive and unmodified until Backward() has run (optimizer steps happen
// after Backward, so the training loop satisfies this by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace cerl::autodiff {

using linalg::Matrix;

class Tape;

/// A trainable tensor: value plus accumulated gradient.
struct Parameter {
  Matrix value;
  Matrix grad;
  std::string name;

  Parameter() = default;
  Parameter(Matrix v, std::string n = "")
      : value(std::move(v)), grad(value.rows(), value.cols()),
        name(std::move(n)) {}

  /// Resets the gradient to zero (call before each optimization step).
  void ZeroGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
    grad.Fill(0.0);
  }
};

/// Lightweight handle to a tape node.
class Var {
 public:
  Var() : tape_(nullptr), id_(-1) {}
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr && id_ >= 0; }
  Tape* tape() const { return tape_; }
  int id() const { return id_; }

  const Matrix& value() const;
  const Matrix& grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Scalar convenience for 1x1 nodes.
  double scalar() const;

 private:
  Tape* tape_;
  int id_;
};

/// The autodiff graph arena for one forward/backward pass, reusable across
/// passes via Reset().
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Rewinds the tape to empty while retaining node buffers, binding and
  /// index-pool capacity. Re-recording the same graph afterwards reuses the
  /// retained Matrix storage allocation-free. Outstanding Vars from the
  /// previous pass are invalidated.
  void Reset();

  /// Constant input; no gradient is tracked through it. The value is copied
  /// into (reused) tape storage.
  Var Constant(const Matrix& value);
  /// Overload that moves only when the retained buffer cannot absorb the
  /// value without reallocating; otherwise copies into the reused buffer.
  Var Constant(Matrix&& value);

  /// Constant that ALIASES external storage instead of copying. `value`
  /// must stay alive and unmodified until the pass (Backward) completes,
  /// and must NOT point into this tape's own nodes (arena growth moves
  /// them — use Constant(v.value()) to detach a node instead). This is the
  /// zero-copy path for pre-assembled minibatch data.
  Var ConstantView(const Matrix* value);

  /// Leaf with gradient tracking (not bound to any Parameter).
  Var Leaf(const Matrix& value);
  Var Leaf(Matrix&& value);

  /// Leaf bound to a Parameter: after Backward, the leaf gradient is added
  /// into p->grad. The leaf aliases p->value (no copy); see the class
  /// comment for the lifetime contract.
  Var Param(Parameter* p);

  /// Runs reverse-mode accumulation from scalar `root` (must be 1x1) and
  /// flushes gradients of bound parameters into their Parameter::grad.
  void Backward(const Var& root);

  /// Number of nodes currently on the tape.
  int size() const { return size_; }

  /// Matrix buffer (re)allocations performed by the arena since
  /// construction. Flat across steady-state reuse passes; tests use this to
  /// prove the zero-churn property.
  int64_t arena_allocations() const { return arena_allocations_; }

  // --- Internal API used by op implementations -----------------------------

  /// Small trivially-copyable payload carried by every node instead of a
  /// heap-allocated closure capture.
  struct BackwardCtx {
    int a = -1;      ///< first dependency id (-1: none)
    int b = -1;      ///< second dependency id (-1: none)
    int aux = 0;     ///< op-specific (row split, index-pool offset)
    int aux2 = 0;    ///< op-specific (index-pool length)
    double k = 0.0;  ///< op-specific scalar
  };
  /// Backward kernel: plain function pointer, no captures.
  using BackwardKernel = void (*)(Tape*, int self, const BackwardCtx&);

  /// Appends a node of the given shape, reusing the retained value buffer at
  /// this arena position when shapes match. Returns the node handle and sets
  /// `*out` to the node's value buffer, which the op must FULLY overwrite
  /// (reused buffers hold the previous pass's values, not zeros).
  /// requires_grad is inferred from ctx.a / ctx.b.
  Var NewNode(int rows, int cols, BackwardKernel kernel,
              const BackwardCtx& ctx, Matrix** out);

  const Matrix& ValueOf(int id) const {
    CERL_DCHECK(id >= 0 && id < size_);
    const Node& node = nodes_[id];
    return node.alias != nullptr ? *node.alias : node.value;
  }
  bool RequiresGrad(int id) const { return nodes_[id].requires_grad; }

  /// Gradient of node `id`; zero-initialized on first touch per pass.
  Matrix& GradRef(int id);

  /// True if gradient has been accumulated into the node this pass.
  bool HasGrad(int id) const { return nodes_[id].grad_gen == gen_; }

  /// Copies `n` gather indices into the tape-owned pool (capacity is
  /// retained across Reset) and returns the pool offset.
  int StoreIndices(const int* idx, int n);
  const int* Indices(int offset) const { return index_pool_.data() + offset; }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    const Matrix* alias = nullptr;  ///< external value (Param/ConstantView)
    uint32_t grad_gen = 0;          ///< grad is live iff == Tape::gen_
    bool requires_grad = false;
    BackwardKernel kernel = nullptr;
    BackwardCtx ctx;
  };

  /// Claims the next arena slot (reusing a retired node after Reset) and
  /// stamps the common fields. The slot's value/grad buffers are left as the
  /// previous pass retired them. Growing the arena moves existing nodes, so
  /// callers must not hold references into `nodes_` across a claim.
  Node& ClaimSlot();
  /// Shared body of the Constant overloads (M is `const Matrix&` to copy or
  /// `Matrix` to move).
  template <typename M>
  Var ConstantImpl(M&& value);

  std::vector<Node> nodes_;
  int size_ = 0;       ///< live prefix of nodes_
  uint32_t gen_ = 1;   ///< pass generation; bumped by Reset()
  std::vector<std::pair<int, Parameter*>> bindings_;
  std::vector<int> index_pool_;
  int index_size_ = 0;  ///< live prefix of index_pool_
  int64_t arena_allocations_ = 0;
};

}  // namespace cerl::autodiff
