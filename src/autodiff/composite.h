// Composite differentiable expressions assembled from the primitives in
// ops.h. These implement the building blocks the paper's losses need:
// row-wise L2 normalization (cosine normalization, Eq. 2), row-wise cosine
// similarity (distillation Eq. 6 and transformation Eq. 7 losses), MSE, and
// elastic-net penalties (Eq. 1). Gradients follow from the primitives.
#pragma once

#include "autodiff/ops.h"

namespace cerl::autodiff {

/// Rows rescaled to unit L2 norm: out_i = x_i / sqrt(|x_i|^2 + eps).
Var RowL2Normalize(Var x, double eps = 1e-12);

/// Columns rescaled to unit L2 norm (used for weight vectors in cosine
/// normalization).
Var ColL2Normalize(Var w, double eps = 1e-12);

/// Row-wise cosine similarity between same-shaped a and b: rows x 1.
Var CosineRowwise(Var a, Var b, double eps = 1e-12);

/// Mean over rows of (1 - cos(a_i, b_i)) — the paper's distillation /
/// transformation loss shape (Eqs. 6, 7). Scalar.
Var MeanCosineDistance(Var a, Var b, double eps = 1e-12);

/// Mean squared error between prediction and target (same shape). Scalar.
Var MseLoss(Var pred, Var target);

/// ||w||_2^2 (scalar).
Var L2Penalty(Var w);

/// ||w||_1 (scalar, subgradient at 0 is 0).
Var L1Penalty(Var w);

/// Elastic net ||w||_2^2 + ||w||_1 (Eq. 1). Scalar.
Var ElasticNetPenalty(Var w);

}  // namespace cerl::autodiff
