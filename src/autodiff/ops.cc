// Op implementations write their forward result directly into the tape's
// (reused) node buffer via Tape::NewNode — steady-state re-recording of a
// fixed-topology graph allocates nothing — and register capture-free
// backward kernels (function pointer + small payload) that accumulate into
// GradRef in place: Gemm with beta=1 for the matmul family, axpy/loop
// accumulation everywhere else. No backward materializes a temporary
// Matrix.
#include "autodiff/ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/gemm.h"
#include "linalg/simd.h"

namespace cerl::autodiff {
namespace {

using Ctx = Tape::BackwardCtx;
using linalg::Gemm;
using linalg::Trans;

Tape* SameTape(Var a, Var b) {
  CERL_CHECK(a.valid() && b.valid());
  CERL_CHECK(a.tape() == b.tape());
  return a.tape();
}

void MatMulBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  if (t->RequiresGrad(ctx.a)) {
    Gemm(Trans::kNo, Trans::kYes, 1.0, g, t->ValueOf(ctx.b), 1.0,
         &t->GradRef(ctx.a));
  }
  if (t->RequiresGrad(ctx.b)) {
    Gemm(Trans::kYes, Trans::kNo, 1.0, t->ValueOf(ctx.a), g, 1.0,
         &t->GradRef(ctx.b));
  }
}

void MatMulBtBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  if (t->RequiresGrad(ctx.a)) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, g, t->ValueOf(ctx.b), 1.0,
         &t->GradRef(ctx.a));
  }
  if (t->RequiresGrad(ctx.b)) {
    Gemm(Trans::kYes, Trans::kNo, 1.0, g, t->ValueOf(ctx.a), 1.0,
         &t->GradRef(ctx.b));
  }
}

void AddBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  if (t->RequiresGrad(ctx.a)) t->GradRef(ctx.a).Add(g);
  if (t->RequiresGrad(ctx.b)) t->GradRef(ctx.b).Add(g);
}

void SubBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  if (t->RequiresGrad(ctx.a)) t->GradRef(ctx.a).Add(g);
  if (t->RequiresGrad(ctx.b)) t->GradRef(ctx.b).Sub(g);
}

void MulBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  const auto& ks = linalg::simd::Kernels();
  if (t->RequiresGrad(ctx.a)) {
    ks.vec_mul_accum(g.data(), t->ValueOf(ctx.b).data(),
                     t->GradRef(ctx.a).data(), g.size());
  }
  if (t->RequiresGrad(ctx.b)) {
    ks.vec_mul_accum(g.data(), t->ValueOf(ctx.a).data(),
                     t->GradRef(ctx.b).data(), g.size());
  }
}

void AddRowBroadcastBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  if (t->RequiresGrad(ctx.a)) t->GradRef(ctx.a).Add(g);
  if (t->RequiresGrad(ctx.b)) {
    Matrix& gb = t->GradRef(ctx.b);
    const auto& ks = linalg::simd::Kernels();
    for (int r = 0; r < g.rows(); ++r) {
      ks.vec_accum(g.row(r), gb.row(0), g.cols());
    }
  }
}

void MulColBroadcastBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  const Matrix& av = t->ValueOf(ctx.a);
  const Matrix& sv = t->ValueOf(ctx.b);
  if (t->RequiresGrad(ctx.a)) {
    Matrix& ga = t->GradRef(ctx.a);
    const auto& ks = linalg::simd::Kernels();
    for (int r = 0; r < g.rows(); ++r) {
      ks.vec_axpy(sv(r, 0), g.row(r), ga.row(r), g.cols());
    }
  }
  if (t->RequiresGrad(ctx.b)) {
    Matrix& gs = t->GradRef(ctx.b);
    for (int r = 0; r < g.rows(); ++r) {
      const double* grow = g.row(r);
      const double* arow = av.row(r);
      double acc = 0.0;
      for (int c = 0; c < g.cols(); ++c) acc += grow[c] * arow[c];
      gs(r, 0) += acc;
    }
  }
}

void ScalarMulBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  t->GradRef(ctx.a).Axpy(ctx.k, t->GradRef(self));
}

void ScalarAddBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  t->GradRef(ctx.a).Add(t->GradRef(self));
}

// Elementwise unary ops are instantiated per forward function so it
// inlines into the loop. The derivative formulas live in the SIMD kernel
// layer (linalg::simd::EwGrad documents each expression), selected here by
// tag: the backward pass `ga += g * dfdx(x, y)` runs through the dispatched
// ew_backward kernel, which is plain elementwise arithmetic and therefore
// bitwise identical between the scalar and AVX2 tables.
// kFwdTag selects the dispatched ew_forward kernel for ops whose forward
// is plain arithmetic or IEEE-exact (relu/reciprocal/sqrt/square/abs);
// transcendental forwards pass -1 and keep the scalar libm loop, since a
// vectorized approximation would change their bits.
template <double (*Fwd)(double), linalg::simd::EwGrad kGrad, int kFwdTag = -1>
struct EwOp {
  static void Backward(Tape* t, int self, const Ctx& ctx) {
    if (!t->RequiresGrad(ctx.a)) return;
    const Matrix& g = t->GradRef(self);
    linalg::simd::Kernels().ew_backward(
        static_cast<int>(kGrad), g.data(), t->ValueOf(ctx.a).data(),
        t->ValueOf(self).data(), t->GradRef(ctx.a).data(), g.size());
  }

  static Var Apply(Var a) {
    Tape* tape = a.tape();
    Ctx ctx;
    ctx.a = a.id();
    Matrix* out = nullptr;
    Var v = tape->NewNode(a.rows(), a.cols(), &Backward, ctx, &out);
    const Matrix& av = tape->ValueOf(ctx.a);
    if constexpr (kFwdTag >= 0) {
      linalg::simd::Kernels().ew_forward(kFwdTag, av.data(), out->data(),
                                         av.size());
    } else {
      for (int64_t i = 0; i < av.size(); ++i) {
        out->data()[i] = Fwd(av.data()[i]);
      }
    }
    return v;
  }
};

void SumBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  const double g = t->GradRef(self)(0, 0);
  Matrix& ga = t->GradRef(ctx.a);
  linalg::simd::Kernels().vec_add_scalar(g, ga.data(), ga.size());
}

void RowSumBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  const Matrix& g = t->GradRef(self);
  Matrix& ga = t->GradRef(ctx.a);
  const auto& ks = linalg::simd::Kernels();
  for (int r = 0; r < ga.rows(); ++r) {
    ks.vec_add_scalar(g(r, 0), ga.row(r), ga.cols());
  }
}

void ColSumBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  const Matrix& g = t->GradRef(self);
  Matrix& ga = t->GradRef(ctx.a);
  const auto& ks = linalg::simd::Kernels();
  for (int r = 0; r < ga.rows(); ++r) {
    ks.vec_accum(g.row(0), ga.row(r), ga.cols());
  }
}

void TransposeBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  const Matrix& g = t->GradRef(self);  // cols x rows of a
  Matrix& ga = t->GradRef(ctx.a);
  for (int r = 0; r < ga.rows(); ++r) {
    double* row = ga.row(r);
    for (int c = 0; c < ga.cols(); ++c) row[c] += g(c, r);
  }
}

void ConcatRowsBackward(Tape* t, int self, const Ctx& ctx) {
  const Matrix& g = t->GradRef(self);
  const int a_rows = ctx.aux;
  const auto& ks = linalg::simd::Kernels();
  if (t->RequiresGrad(ctx.a)) {
    // The first a_rows rows of g and all of ga are contiguous blocks.
    Matrix& ga = t->GradRef(ctx.a);
    ks.vec_accum(g.row(0), ga.data(), ga.size());
  }
  if (t->RequiresGrad(ctx.b)) {
    Matrix& gb = t->GradRef(ctx.b);
    ks.vec_accum(g.row(a_rows), gb.data(), gb.size());
  }
}

void GatherRowsBackward(Tape* t, int self, const Ctx& ctx) {
  if (!t->RequiresGrad(ctx.a)) return;
  const Matrix& g = t->GradRef(self);
  Matrix& ga = t->GradRef(ctx.a);
  const int* index = t->Indices(ctx.aux);
  const auto& ks = linalg::simd::Kernels();
  for (int i = 0; i < ctx.aux2; ++i) {
    ks.vec_accum(g.row(i), ga.row(index[i]), ga.cols());
  }
}

// The forward functions. Each op's derivative formula is the matching
// linalg::simd::EwGrad entry (see simd.h); keep the two in sync.
double ReciprocalFwd(double x) { return 1.0 / x; }
double ReluFwd(double x) { return x > 0.0 ? x : 0.0; }
double EluFwd(double x) { return x > 0.0 ? x : std::expm1(x); }
double TanhFwd(double x) { return std::tanh(x); }
double SigmoidFwd(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double ExpFwd(double x) { return std::exp(x); }
double LogFwd(double x) { return std::log(x); }
double SqrtFwd(double x) { return std::sqrt(x); }
double SquareFwd(double x) { return x * x; }
double AbsFwd(double x) { return std::fabs(x); }

}  // namespace

Var MatMul(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK_EQ(a.cols(), b.rows());
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), b.cols(), &MatMulBackward, ctx, &out);
  Gemm(Trans::kNo, Trans::kNo, 1.0, tape->ValueOf(ctx.a),
       tape->ValueOf(ctx.b), 0.0, out);
  return v;
}

Var MatMulBt(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK_EQ(a.cols(), b.cols());
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), b.rows(), &MatMulBtBackward, ctx, &out);
  Gemm(Trans::kNo, Trans::kYes, 1.0, tape->ValueOf(ctx.a),
       tape->ValueOf(ctx.b), 0.0, out);
  return v;
}

Var Add(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &AddBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  linalg::simd::Kernels().vec_add(av.data(), bv.data(), out->data(),
                                  av.size());
  return v;
}

Var Sub(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &SubBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  linalg::simd::Kernels().vec_sub(av.data(), bv.data(), out->data(),
                                  av.size());
  return v;
}

Var Mul(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &MulBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  linalg::simd::Kernels().vec_mul(av.data(), bv.data(), out->data(),
                                  av.size());
  return v;
}

Var AddRowBroadcast(Var a, Var bias) {
  Tape* tape = SameTape(a, bias);
  CERL_CHECK_EQ(bias.rows(), 1);
  CERL_CHECK_EQ(bias.cols(), a.cols());
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = bias.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &AddRowBroadcastBackward, ctx,
                        &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  linalg::simd::Kernels().add_row_broadcast(av.data(), bv.data(), av.rows(),
                                            av.cols(), out->data());
  return v;
}

Var MulColBroadcast(Var a, Var s) {
  Tape* tape = SameTape(a, s);
  CERL_CHECK_EQ(s.cols(), 1);
  CERL_CHECK_EQ(s.rows(), a.rows());
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = s.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &MulColBroadcastBackward, ctx,
                        &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& sv = tape->ValueOf(ctx.b);
  linalg::simd::Kernels().mul_col_broadcast(av.data(), sv.data(), av.rows(),
                                            av.cols(), out->data());
  return v;
}

Var ScalarMul(Var a, double k) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  ctx.k = k;
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &ScalarMulBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  linalg::simd::Kernels().vec_scale(k, av.data(), out->data(), av.size());
  return v;
}

Var ScalarAdd(Var a, double k) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  ctx.k = k;
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), a.cols(), &ScalarAddBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  for (int64_t i = 0; i < av.size(); ++i) out->data()[i] = av.data()[i] + k;
  return v;
}

Var Reciprocal(Var a) { return EwOp<&ReciprocalFwd, linalg::simd::EwGrad::kReciprocal,
                 static_cast<int>(linalg::simd::EwFwd::kReciprocal)>::Apply(a); }

Var Relu(Var a) { return EwOp<&ReluFwd, linalg::simd::EwGrad::kRelu,
                 static_cast<int>(linalg::simd::EwFwd::kRelu)>::Apply(a); }

Var Elu(Var a) { return EwOp<&EluFwd, linalg::simd::EwGrad::kElu>::Apply(a); }

Var Tanh(Var a) { return EwOp<&TanhFwd, linalg::simd::EwGrad::kTanh>::Apply(a); }

Var Sigmoid(Var a) { return EwOp<&SigmoidFwd, linalg::simd::EwGrad::kSigmoid>::Apply(a); }

Var Exp(Var a) { return EwOp<&ExpFwd, linalg::simd::EwGrad::kExp>::Apply(a); }

Var Log(Var a) { return EwOp<&LogFwd, linalg::simd::EwGrad::kLog>::Apply(a); }

Var Sqrt(Var a) { return EwOp<&SqrtFwd, linalg::simd::EwGrad::kSqrt,
                 static_cast<int>(linalg::simd::EwFwd::kSqrt)>::Apply(a); }

Var Square(Var a) { return EwOp<&SquareFwd, linalg::simd::EwGrad::kSquare,
                 static_cast<int>(linalg::simd::EwFwd::kSquare)>::Apply(a); }

Var Abs(Var a) { return EwOp<&AbsFwd, linalg::simd::EwGrad::kAbs,
                 static_cast<int>(linalg::simd::EwFwd::kAbs)>::Apply(a); }

Var Sum(Var a) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(1, 1, &SumBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  double s = 0.0;
  for (int64_t i = 0; i < av.size(); ++i) s += av.data()[i];
  (*out)(0, 0) = s;
  return v;
}

Var Mean(Var a) {
  const int64_t n = a.value().size();
  CERL_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0 / static_cast<double>(n));
}

Var RowSum(Var a) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows(), 1, &RowSumBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  for (int r = 0; r < av.rows(); ++r) {
    const double* row = av.row(r);
    double s = 0.0;
    for (int c = 0; c < av.cols(); ++c) s += row[c];
    (*out)(r, 0) = s;
  }
  return v;
}

Var ColSum(Var a) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(1, a.cols(), &ColSumBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  out->Fill(0.0);  // reused buffers are not zeroed by the tape
  for (int r = 0; r < av.rows(); ++r) {
    const double* row = av.row(r);
    for (int c = 0; c < av.cols(); ++c) (*out)(0, c) += row[c];
  }
  return v;
}

Var Transpose(Var a) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.cols(), a.rows(), &TransposeBackward, ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  for (int r = 0; r < av.rows(); ++r) {
    const double* src = av.row(r);
    for (int c = 0; c < av.cols(); ++c) (*out)(c, r) = src[c];
  }
  return v;
}

Var ConcatRows(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK_EQ(a.cols(), b.cols());
  Ctx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  ctx.aux = a.rows();
  Matrix* out = nullptr;
  Var v = tape->NewNode(a.rows() + b.rows(), a.cols(), &ConcatRowsBackward,
                        ctx, &out);
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  for (int r = 0; r < av.rows(); ++r) {
    std::copy(av.row(r), av.row(r) + av.cols(), out->row(r));
  }
  for (int r = 0; r < bv.rows(); ++r) {
    std::copy(bv.row(r), bv.row(r) + bv.cols(), out->row(av.rows() + r));
  }
  return v;
}

Var GatherRows(Var a, const int* index, int n) {
  Tape* tape = a.tape();
  Ctx ctx;
  ctx.a = a.id();
  ctx.aux = tape->StoreIndices(index, n);
  ctx.aux2 = n;
  Matrix* out = nullptr;
  Var v = tape->NewNode(n, a.cols(), &GatherRowsBackward, ctx, &out);
  tape->ValueOf(ctx.a).GatherRowsInto(tape->Indices(ctx.aux), n, out);
  return v;
}

Var GatherRows(Var a, const std::vector<int>& index) {
  return GatherRows(a, index.data(), static_cast<int>(index.size()));
}

}  // namespace cerl::autodiff
