#include "autodiff/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "linalg/gemm.h"

namespace cerl::autodiff {
namespace {

using linalg::Gemm;
using linalg::Trans;

Tape* SameTape(Var a, Var b) {
  CERL_CHECK(a.valid() && b.valid());
  CERL_CHECK(a.tape() == b.tape());
  return a.tape();
}

// Helper that appends a node and rebinds a backward closure that knows the
// new node's id. All ops below use this pattern.
Var AddWithBackward(Tape* tape, Matrix value, std::vector<int> deps,
                    std::function<void(Tape*, int)> backward) {
  // Two-phase: create the node with a placeholder, then wrap the closure
  // with the now-known id.
  struct Slot {
    std::function<void(Tape*, int)> fn;
    int id = -1;
  };
  auto slot = std::make_shared<Slot>();
  slot->fn = std::move(backward);
  Var v = tape->AddNode(
      std::move(value), std::move(deps),
      [slot](Tape* t) { slot->fn(t, slot->id); });
  slot->id = v.id();
  return v;
}

}  // namespace

Var MatMul(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK_EQ(a.cols(), b.rows());
  Matrix out = linalg::MatMul(a.value(), b.value());
  const int a_id = a.id(), b_id = b.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) {
          Gemm(Trans::kNo, Trans::kYes, 1.0, g, t->ValueOf(b_id), 1.0,
               &t->GradRef(a_id));
        }
        if (t->RequiresGrad(b_id)) {
          Gemm(Trans::kYes, Trans::kNo, 1.0, t->ValueOf(a_id), g, 1.0,
               &t->GradRef(b_id));
        }
      });
}

Var MatMulBt(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK_EQ(a.cols(), b.cols());
  Matrix out = linalg::MatMulT(Trans::kNo, Trans::kYes, a.value(), b.value());
  const int a_id = a.id(), b_id = b.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) {
          Gemm(Trans::kNo, Trans::kNo, 1.0, g, t->ValueOf(b_id), 1.0,
               &t->GradRef(a_id));
        }
        if (t->RequiresGrad(b_id)) {
          Gemm(Trans::kYes, Trans::kNo, 1.0, g, t->ValueOf(a_id), 1.0,
               &t->GradRef(b_id));
        }
      });
}

Var Add(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.Add(b.value());
  const int a_id = a.id(), b_id = b.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) t->GradRef(a_id).Add(g);
        if (t->RequiresGrad(b_id)) t->GradRef(b_id).Add(g);
      });
}

Var Sub(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.Sub(b.value());
  const int a_id = a.id(), b_id = b.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) t->GradRef(a_id).Add(g);
        if (t->RequiresGrad(b_id)) t->GradRef(b_id).Sub(g);
      });
}

Var Mul(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  CERL_CHECK(a.value().SameShape(b.value()));
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  Matrix out(av.rows(), av.cols());
  for (int64_t i = 0; i < av.size(); ++i) {
    out.data()[i] = av.data()[i] * bv.data()[i];
  }
  const int a_id = a.id(), b_id = b.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) {
          Matrix& ga = t->GradRef(a_id);
          const Matrix& bv = t->ValueOf(b_id);
          for (int64_t i = 0; i < g.size(); ++i) {
            ga.data()[i] += g.data()[i] * bv.data()[i];
          }
        }
        if (t->RequiresGrad(b_id)) {
          Matrix& gb = t->GradRef(b_id);
          const Matrix& av = t->ValueOf(a_id);
          for (int64_t i = 0; i < g.size(); ++i) {
            gb.data()[i] += g.data()[i] * av.data()[i];
          }
        }
      });
}

Var AddRowBroadcast(Var a, Var bias) {
  Tape* tape = SameTape(a, bias);
  const Matrix& av = a.value();
  const Matrix& bv = bias.value();
  CERL_CHECK_EQ(bv.rows(), 1);
  CERL_CHECK_EQ(bv.cols(), av.cols());
  Matrix out = av;
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += bv(0, c);
  }
  const int a_id = a.id(), b_id = bias.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id}, [a_id, b_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) t->GradRef(a_id).Add(g);
        if (t->RequiresGrad(b_id)) {
          Matrix& gb = t->GradRef(b_id);
          for (int r = 0; r < g.rows(); ++r) {
            const double* row = g.row(r);
            for (int c = 0; c < g.cols(); ++c) gb(0, c) += row[c];
          }
        }
      });
}

Var MulColBroadcast(Var a, Var s) {
  Tape* tape = SameTape(a, s);
  const Matrix& av = a.value();
  const Matrix& sv = s.value();
  CERL_CHECK_EQ(sv.cols(), 1);
  CERL_CHECK_EQ(sv.rows(), av.rows());
  Matrix out = av;
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.row(r);
    const double k = sv(r, 0);
    for (int c = 0; c < out.cols(); ++c) row[c] *= k;
  }
  const int a_id = a.id(), s_id = s.id();
  return AddWithBackward(
      tape, std::move(out), {a_id, s_id}, [a_id, s_id](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        const Matrix& av = t->ValueOf(a_id);
        const Matrix& sv = t->ValueOf(s_id);
        if (t->RequiresGrad(a_id)) {
          Matrix& ga = t->GradRef(a_id);
          for (int r = 0; r < g.rows(); ++r) {
            const double k = sv(r, 0);
            const double* grow = g.row(r);
            double* garow = ga.row(r);
            for (int c = 0; c < g.cols(); ++c) garow[c] += grow[c] * k;
          }
        }
        if (t->RequiresGrad(s_id)) {
          Matrix& gs = t->GradRef(s_id);
          for (int r = 0; r < g.rows(); ++r) {
            const double* grow = g.row(r);
            const double* arow = av.row(r);
            double acc = 0.0;
            for (int c = 0; c < g.cols(); ++c) acc += grow[c] * arow[c];
            gs(r, 0) += acc;
          }
        }
      });
}

Var ScalarMul(Var a, double k) {
  Tape* tape = a.tape();
  Matrix out = a.value();
  out.Scale(k);
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id, k](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const Matrix& g = t->GradRef(self);
        Matrix& ga = t->GradRef(a_id);
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[i] += k * g.data()[i];
        }
      });
}

Var ScalarAdd(Var a, double k) {
  Tape* tape = a.tape();
  Matrix out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += k;
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        t->GradRef(a_id).Add(t->GradRef(self));
      });
}

namespace {

// Shared implementation for elementwise unary ops whose local derivative can
// be written in terms of the input x and output y.
Var ElementwiseUnary(Var a, double (*fwd)(double),
                     double (*dfdx)(double, double)) {
  Tape* tape = a.tape();
  const Matrix& av = a.value();
  Matrix out(av.rows(), av.cols());
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = fwd(av.data()[i]);
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id, dfdx](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const Matrix& g = t->GradRef(self);
        const Matrix& x = t->ValueOf(a_id);
        const Matrix& y = t->ValueOf(self);
        Matrix& ga = t->GradRef(a_id);
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[i] += g.data()[i] * dfdx(x.data()[i], y.data()[i]);
        }
      });
}

}  // namespace

Var Reciprocal(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return 1.0 / x; },
      [](double, double y) { return -y * y; });
}

Var Relu(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var Elu(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return x > 0.0 ? x : std::expm1(x); },
      [](double x, double y) { return x > 0.0 ? 1.0 : y + 1.0; });
}

Var Tanh(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Var Sigmoid(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Var Exp(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Var Log(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return std::log(x); },
      [](double x, double) { return 1.0 / x; });
}

Var Sqrt(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return std::sqrt(x); },
      [](double, double y) { return y > 0.0 ? 0.5 / y : 0.0; });
}

Var Square(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Var Abs(Var a) {
  return ElementwiseUnary(
      a, [](double x) { return std::fabs(x); },
      [](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Var Sum(Var a) {
  Tape* tape = a.tape();
  const Matrix& av = a.value();
  double s = 0.0;
  for (int64_t i = 0; i < av.size(); ++i) s += av.data()[i];
  Matrix out(1, 1, s);
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const double g = t->GradRef(self)(0, 0);
        Matrix& ga = t->GradRef(a_id);
        for (int64_t i = 0; i < ga.size(); ++i) ga.data()[i] += g;
      });
}

Var Mean(Var a) {
  const int64_t n = a.value().size();
  CERL_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0 / static_cast<double>(n));
}

Var RowSum(Var a) {
  Tape* tape = a.tape();
  const Matrix& av = a.value();
  Matrix out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    const double* row = av.row(r);
    double s = 0.0;
    for (int c = 0; c < av.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const Matrix& g = t->GradRef(self);
        Matrix& ga = t->GradRef(a_id);
        for (int r = 0; r < ga.rows(); ++r) {
          const double k = g(r, 0);
          double* row = ga.row(r);
          for (int c = 0; c < ga.cols(); ++c) row[c] += k;
        }
      });
}

Var ColSum(Var a) {
  Tape* tape = a.tape();
  const Matrix& av = a.value();
  Matrix out(1, av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    const double* row = av.row(r);
    for (int c = 0; c < av.cols(); ++c) out(0, c) += row[c];
  }
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const Matrix& g = t->GradRef(self);
        Matrix& ga = t->GradRef(a_id);
        for (int r = 0; r < ga.rows(); ++r) {
          double* row = ga.row(r);
          for (int c = 0; c < ga.cols(); ++c) row[c] += g(0, c);
        }
      });
}

Var Transpose(Var a) {
  Tape* tape = a.tape();
  Matrix out = a.value().Transposed();
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id}, [a_id](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        t->GradRef(a_id).Add(t->GradRef(self).Transposed());
      });
}

Var ConcatRows(Var a, Var b) {
  Tape* tape = SameTape(a, b);
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CERL_CHECK_EQ(av.cols(), bv.cols());
  Matrix out(av.rows() + bv.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    std::copy(av.row(r), av.row(r) + av.cols(), out.row(r));
  }
  for (int r = 0; r < bv.rows(); ++r) {
    std::copy(bv.row(r), bv.row(r) + bv.cols(), out.row(av.rows() + r));
  }
  const int a_id = a.id(), b_id = b.id();
  const int a_rows = av.rows();
  return AddWithBackward(
      tape, std::move(out), {a_id, b_id},
      [a_id, b_id, a_rows](Tape* t, int self) {
        const Matrix& g = t->GradRef(self);
        if (t->RequiresGrad(a_id)) {
          Matrix& ga = t->GradRef(a_id);
          for (int r = 0; r < ga.rows(); ++r) {
            const double* src = g.row(r);
            double* dst = ga.row(r);
            for (int c = 0; c < ga.cols(); ++c) dst[c] += src[c];
          }
        }
        if (t->RequiresGrad(b_id)) {
          Matrix& gb = t->GradRef(b_id);
          for (int r = 0; r < gb.rows(); ++r) {
            const double* src = g.row(a_rows + r);
            double* dst = gb.row(r);
            for (int c = 0; c < gb.cols(); ++c) dst[c] += src[c];
          }
        }
      });
}

Var GatherRows(Var a, std::vector<int> index) {
  Tape* tape = a.tape();
  Matrix out = a.value().GatherRows(index);
  const int a_id = a.id();
  return AddWithBackward(
      tape, std::move(out), {a_id},
      [a_id, index = std::move(index)](Tape* t, int self) {
        if (!t->RequiresGrad(a_id)) return;
        const Matrix& g = t->GradRef(self);
        Matrix& ga = t->GradRef(a_id);
        for (size_t i = 0; i < index.size(); ++i) {
          const double* src = g.row(static_cast<int>(i));
          double* dst = ga.row(index[i]);
          for (int c = 0; c < ga.cols(); ++c) dst[c] += src[c];
        }
      });
}

}  // namespace cerl::autodiff
