#include "autodiff/tape.h"

#include <utility>

namespace cerl::autodiff {

const Matrix& Var::value() const {
  CERL_CHECK(valid());
  return tape_->ValueOf(id_);
}

const Matrix& Var::grad() const {
  CERL_CHECK(valid());
  return tape_->GradRef(id_);
}

double Var::scalar() const {
  const Matrix& v = value();
  CERL_CHECK(v.rows() == 1 && v.cols() == 1);
  return v(0, 0);
}

void Tape::Reset() {
  size_ = 0;
  index_size_ = 0;
  bindings_.clear();  // capacity retained
  ++gen_;             // logically invalidates every node's gradient
}

Tape::Node& Tape::ClaimSlot() {
  if (size_ == static_cast<int>(nodes_.size())) nodes_.emplace_back();
  Node& node = nodes_[size_++];
  node.alias = nullptr;
  node.requires_grad = false;
  node.kernel = nullptr;
  node.ctx = BackwardCtx();
  return node;
}

template <typename M>
Var Tape::ConstantImpl(M&& value) {
  // `value` may reference another node's matrix (detach patterns like
  // Constant(v.value())): when appending would grow the arena and move the
  // nodes, the copy must happen before the growth.
  if (size_ == static_cast<int>(nodes_.size())) {
    Node node;
    node.value = std::forward<M>(value);
    ++arena_allocations_;
    nodes_.push_back(std::move(node));
    ++size_;
  } else {
    Node& node = ClaimSlot();
    if (node.value.SameShape(value)) {
      node.value.CopyFrom(value);  // keep the retained buffer
    } else {
      node.value = std::forward<M>(value);
      ++arena_allocations_;
    }
  }
  return Var(this, size_ - 1);
}

Var Tape::Constant(const Matrix& value) { return ConstantImpl(value); }

Var Tape::Constant(Matrix&& value) { return ConstantImpl(std::move(value)); }

Var Tape::ConstantView(const Matrix* value) {
  CERL_CHECK(value != nullptr);
  Node& node = ClaimSlot();
  node.alias = value;
  return Var(this, size_ - 1);
}

Var Tape::Leaf(const Matrix& value) {
  Var v = Constant(value);
  nodes_[v.id()].requires_grad = true;
  return v;
}

Var Tape::Leaf(Matrix&& value) {
  Var v = Constant(std::move(value));
  nodes_[v.id()].requires_grad = true;
  return v;
}

Var Tape::Param(Parameter* p) {
  CERL_CHECK(p != nullptr);
  Var v = ConstantView(&p->value);
  nodes_[v.id()].requires_grad = true;
  bindings_.emplace_back(v.id(), p);
  return v;
}

Var Tape::NewNode(int rows, int cols, BackwardKernel kernel,
                  const BackwardCtx& ctx, Matrix** out) {
  CERL_DCHECK(ctx.a < size_ && ctx.b < size_);
  Node& node = ClaimSlot();
  node.ctx = ctx;
  node.requires_grad = (ctx.a >= 0 && nodes_[ctx.a].requires_grad) ||
                       (ctx.b >= 0 && nodes_[ctx.b].requires_grad);
  if (node.requires_grad) node.kernel = kernel;
  if (node.value.rows() != rows || node.value.cols() != cols) {
    node.value = Matrix(rows, cols);
    ++arena_allocations_;
  }
  *out = &node.value;
  return Var(this, size_ - 1);
}

Matrix& Tape::GradRef(int id) {
  CERL_CHECK(id >= 0 && id < size_);
  Node& node = nodes_[id];
  if (node.grad_gen != gen_) {
    const Matrix& v = ValueOf(id);
    if (!node.grad.SameShape(v)) {
      node.grad = Matrix(v.rows(), v.cols());
      ++arena_allocations_;
    } else {
      node.grad.Fill(0.0);
    }
    node.grad_gen = gen_;
  }
  return node.grad;
}

int Tape::StoreIndices(const int* idx, int n) {
  const int offset = index_size_;
  if (index_size_ + n > static_cast<int>(index_pool_.size())) {
    index_pool_.resize(index_size_ + n);
  }
  std::copy(idx, idx + n, index_pool_.begin() + offset);
  index_size_ += n;
  return offset;
}

void Tape::Backward(const Var& root) {
  CERL_CHECK(root.valid() && root.tape() == this);
  const Matrix& rv = ValueOf(root.id());
  CERL_CHECK_MSG(rv.rows() == 1 && rv.cols() == 1,
                 "Backward root must be a scalar");
  GradRef(root.id())(0, 0) = 1.0;
  for (int id = root.id(); id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.requires_grad || node.kernel == nullptr) continue;
    if (node.grad_gen != gen_) continue;  // No gradient flowed to this node.
    node.kernel(this, id, node.ctx);
  }
  for (const auto& [id, param] : bindings_) {
    if (nodes_[id].grad_gen != gen_) continue;
    if (!param->grad.SameShape(param->value)) param->ZeroGrad();
    param->grad.Add(nodes_[id].grad);
  }
}

}  // namespace cerl::autodiff
