#include "autodiff/tape.h"

namespace cerl::autodiff {

const Matrix& Var::value() const {
  CERL_CHECK(valid());
  return tape_->ValueOf(id_);
}

const Matrix& Var::grad() const {
  CERL_CHECK(valid());
  return tape_->GradRef(id_);
}

double Var::scalar() const {
  const Matrix& v = value();
  CERL_CHECK(v.rows() == 1 && v.cols() == 1);
  return v(0, 0);
}

Var Tape::Constant(Matrix value) {
  return AddNode(std::move(value), {}, nullptr, /*force_requires_grad=*/false);
}

Var Tape::Leaf(Matrix value) {
  return AddNode(std::move(value), {}, nullptr, /*force_requires_grad=*/true);
}

Var Tape::Param(Parameter* p) {
  CERL_CHECK(p != nullptr);
  Var v = Leaf(p->value);
  bindings_.emplace_back(v.id(), p);
  return v;
}

Var Tape::AddNode(Matrix value, std::vector<int> deps, BackwardFn backward,
                  bool force_requires_grad) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = force_requires_grad;
  for (int d : deps) {
    CERL_CHECK(d >= 0 && d < size());
    if (nodes_[d].requires_grad) node.requires_grad = true;
  }
  if (node.requires_grad) node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, size() - 1);
}

Matrix& Tape::GradRef(int id) {
  CERL_CHECK(id >= 0 && id < size());
  Node& node = nodes_[id];
  if (node.grad.empty() || !node.grad.SameShape(node.value)) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
  return node.grad;
}

void Tape::Backward(const Var& root) {
  CERL_CHECK(root.valid() && root.tape() == this);
  const Matrix& rv = ValueOf(root.id());
  CERL_CHECK_MSG(rv.rows() == 1 && rv.cols() == 1,
                 "Backward root must be a scalar");
  GradRef(root.id())(0, 0) = 1.0;
  for (int id = root.id(); id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.requires_grad || !node.backward) continue;
    if (node.grad.empty()) continue;  // No gradient flowed to this node.
    node.backward(this);
  }
  for (const auto& [id, param] : bindings_) {
    if (nodes_[id].grad.empty()) continue;
    if (!param->grad.SameShape(param->value)) param->ZeroGrad();
    param->grad.Add(nodes_[id].grad);
  }
}

}  // namespace cerl::autodiff
