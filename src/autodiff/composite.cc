#include "autodiff/composite.h"

namespace cerl::autodiff {

Var RowL2Normalize(Var x, double eps) {
  Var norm = Sqrt(ScalarAdd(RowSum(Square(x)), eps));
  return MulColBroadcast(x, Reciprocal(norm));
}

Var ColL2Normalize(Var w, double eps) {
  return Transpose(RowL2Normalize(Transpose(w), eps));
}

Var CosineRowwise(Var a, Var b, double eps) {
  return RowSum(Mul(RowL2Normalize(a, eps), RowL2Normalize(b, eps)));
}

Var MeanCosineDistance(Var a, Var b, double eps) {
  Var cos = CosineRowwise(a, b, eps);
  // mean(1 - cos) = 1 - mean(cos).
  return ScalarAdd(ScalarMul(Mean(cos), -1.0), 1.0);
}

Var MseLoss(Var pred, Var target) { return Mean(Square(Sub(pred, target))); }

Var L2Penalty(Var w) { return Sum(Square(w)); }

Var L1Penalty(Var w) { return Sum(Abs(w)); }

Var ElasticNetPenalty(Var w) { return Add(L2Penalty(w), L1Penalty(w)); }

}  // namespace cerl::autodiff
