// Realistic correlation-matrix generation following Hardin, Garcia & Golan,
// "A method for generating realistic correlation matrices", Annals of
// Applied Statistics (2013) — the construction the paper's synthetic study
// cites (its Algorithm 3):
//
//  1. Per variable type (confounders, instruments, adjustments, irrelevant),
//     build a hub-Toeplitz block: the first variable is the hub and its
//     correlation with the i-th variable decays per Eq. 12 of the paper,
//        R_{i,1} = rho_max - ((i-2)/(d-2))^gamma (rho_max - rho_min),
//     and the remainder of the block is filled with the Toeplitz structure
//     (constant along diagonals).
//  2. Assemble the blocks along the diagonal (zero cross-type correlation).
//  3. Add weak cross-type correlation via a random Gram perturbation
//     N_ij = eps * u_i . u_j (i != j, unit vectors u), which preserves unit
//     diagonal and keeps the matrix positive definite for eps < lambda_min.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace cerl::corrgen {

/// One variable-type block of the correlation matrix.
struct HubBlockSpec {
  int size = 1;          ///< number of variables of this type
  double rho_max = 0.7;  ///< correlation between the hub and its neighbour
  double rho_min = 0.1;  ///< correlation between the hub and the farthest var
  double gamma = 1.0;    ///< decay-rate exponent (Eq. 12)
};

/// Hub correlation sequence: rho(offset) for offset = 1..size-1 (Eq. 12).
std::vector<double> HubCorrelationSequence(const HubBlockSpec& spec);

/// Builds one hub-Toeplitz correlation block (unit diagonal, symmetric).
linalg::Matrix HubToeplitzBlock(const HubBlockSpec& spec);

/// Block-diagonal correlation matrix from per-type blocks; zero across types.
linalg::Matrix BlockDiagonalCorrelation(const std::vector<HubBlockSpec>& specs);

/// Hardin-Garcia-Golan Algorithm 3: adds cross-type noise
/// eps * (U^T U - I) with unit columns u_i in R^noise_dim and
/// eps = noise_fraction * lambda_min(r). Returns a matrix that is verified
/// positive definite; fails with NumericalError otherwise.
Result<linalg::Matrix> AddCrossTypeNoise(const linalg::Matrix& r,
                                         double noise_fraction, int noise_dim,
                                         Rng* rng);

/// Shrinks a symmetric unit-diagonal matrix toward the identity just enough
/// to make its smallest eigenvalue >= min_eigenvalue:
///   R' = (R + c I) / (1 + c). Hub-Toeplitz blocks with fast decay (small
/// gamma) are not guaranteed PD, so the generator repairs them this way
/// before adding cross-type noise. Unit diagonal is preserved.
Result<linalg::Matrix> RepairToPositiveDefinite(const linalg::Matrix& r,
                                                double min_eigenvalue = 1e-3);

/// Full pipeline: blocks -> assembly -> noise. noise_fraction in [0, 1).
Result<linalg::Matrix> GenerateCorrelationMatrix(
    const std::vector<HubBlockSpec>& specs, double noise_fraction,
    int noise_dim, Rng* rng);

/// Covariance from correlation and per-variable standard deviations:
/// Sigma = D R D with D = diag(stds).
linalg::Matrix CorrelationToCovariance(const linalg::Matrix& corr,
                                       const linalg::Vector& stds);

}  // namespace cerl::corrgen
