#include "corrgen/hub_correlation.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"

namespace cerl::corrgen {

std::vector<double> HubCorrelationSequence(const HubBlockSpec& spec) {
  CERL_CHECK_GE(spec.size, 1);
  CERL_CHECK(spec.rho_max >= spec.rho_min);
  const int d = spec.size;
  std::vector<double> rho;
  rho.reserve(std::max(0, d - 1));
  for (int i = 2; i <= d; ++i) {
    // Eq. 12 with offset k = i - 1. For d == 2 the single off-diagonal
    // correlation is rho_max.
    double frac = d > 2 ? static_cast<double>(i - 2) / (d - 2) : 0.0;
    rho.push_back(spec.rho_max -
                  std::pow(frac, spec.gamma) * (spec.rho_max - spec.rho_min));
  }
  return rho;
}

linalg::Matrix HubToeplitzBlock(const HubBlockSpec& spec) {
  const int d = spec.size;
  linalg::Matrix block = linalg::Matrix::Identity(d);
  const std::vector<double> rho = HubCorrelationSequence(spec);
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      const double v = rho[j - i - 1];  // Toeplitz: depends on |i - j| only.
      block(i, j) = v;
      block(j, i) = v;
    }
  }
  return block;
}

linalg::Matrix BlockDiagonalCorrelation(
    const std::vector<HubBlockSpec>& specs) {
  int n = 0;
  for (const auto& s : specs) n += s.size;
  linalg::Matrix r = linalg::Matrix::Identity(n);
  int offset = 0;
  for (const auto& s : specs) {
    const linalg::Matrix block = HubToeplitzBlock(s);
    for (int i = 0; i < s.size; ++i) {
      for (int j = 0; j < s.size; ++j) {
        r(offset + i, offset + j) = block(i, j);
      }
    }
    offset += s.size;
  }
  return r;
}

Result<linalg::Matrix> AddCrossTypeNoise(const linalg::Matrix& r,
                                         double noise_fraction, int noise_dim,
                                         Rng* rng) {
  if (noise_fraction < 0.0 || noise_fraction >= 1.0) {
    return Status::InvalidArgument("noise_fraction must be in [0, 1)");
  }
  if (noise_fraction == 0.0) return r;
  CERL_CHECK_GE(noise_dim, 1);

  auto min_eig = linalg::MinEigenvalue(r);
  if (!min_eig.ok()) return min_eig.status();
  if (min_eig.value() <= 0.0) {
    return Status::NumericalError("base correlation matrix is not PD");
  }
  const double eps = noise_fraction * min_eig.value();

  const int n = r.rows();
  // Random unit vectors u_i as columns of an noise_dim x n matrix.
  linalg::Matrix u(noise_dim, n);
  for (int j = 0; j < n; ++j) {
    double norm2 = 0.0;
    for (int i = 0; i < noise_dim; ++i) {
      const double v = rng->Normal();
      u(i, j) = v;
      norm2 += v * v;
    }
    const double inv = 1.0 / std::sqrt(std::max(norm2, 1e-300));
    for (int i = 0; i < noise_dim; ++i) u(i, j) *= inv;
  }

  linalg::Matrix out = r;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double dot = 0.0;
      for (int k = 0; k < noise_dim; ++k) dot += u(k, i) * u(k, j);
      out(i, j) += eps * dot;
      out(j, i) = out(i, j);
    }
  }
  if (!linalg::IsPositiveDefinite(out)) {
    return Status::NumericalError("noised correlation matrix lost PD");
  }
  return out;
}

Result<linalg::Matrix> RepairToPositiveDefinite(const linalg::Matrix& r,
                                                double min_eigenvalue) {
  CERL_CHECK_GT(min_eigenvalue, 0.0);
  CERL_CHECK_LT(min_eigenvalue, 1.0);
  auto lambda_min = linalg::MinEigenvalue(r);
  if (!lambda_min.ok()) return lambda_min.status();
  if (lambda_min.value() >= min_eigenvalue) return r;
  // (lambda + c) / (1 + c) >= m  <=>  c >= (m - lambda) / (1 - m).
  const double c =
      (min_eigenvalue - lambda_min.value()) / (1.0 - min_eigenvalue);
  linalg::Matrix out = r;
  const double scale = 1.0 / (1.0 + c);
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      out(i, j) = (r(i, j) + (i == j ? c : 0.0)) * scale;
    }
  }
  return out;
}

Result<linalg::Matrix> GenerateCorrelationMatrix(
    const std::vector<HubBlockSpec>& specs, double noise_fraction,
    int noise_dim, Rng* rng) {
  auto repaired =
      RepairToPositiveDefinite(BlockDiagonalCorrelation(specs));
  if (!repaired.ok()) return repaired.status();
  return AddCrossTypeNoise(repaired.value(), noise_fraction, noise_dim, rng);
}

linalg::Matrix CorrelationToCovariance(const linalg::Matrix& corr,
                                       const linalg::Vector& stds) {
  CERL_CHECK_EQ(corr.rows(), static_cast<int>(stds.size()));
  linalg::Matrix cov = corr;
  for (int i = 0; i < cov.rows(); ++i) {
    for (int j = 0; j < cov.cols(); ++j) {
      cov(i, j) *= stds[i] * stds[j];
    }
  }
  return cov;
}

}  // namespace cerl::corrgen
