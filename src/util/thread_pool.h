// Fixed-size thread pool plus a ParallelFor helper used by the GEMM kernels
// and data generators. The pool is created once (per process by default) and
// reused; tasks must not throw.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cerl {

/// A minimal fixed-size thread pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end), split into contiguous chunks across the
/// global pool. Falls back to serial execution for small ranges or when
/// `grain` covers the whole range.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body_range,
                 int64_t grain = 1024);

}  // namespace cerl
