// Fixed-size thread pool plus a ParallelFor helper used by the GEMM kernels
// and data generators. The pool is created once (per process by default) and
// reused; tasks must not throw.
//
// Tasks are move-only TaskFns (no per-submit heap allocation for typical
// captures; see task_fn.h). Scheduling is strict FIFO: the pool implements
// Executor but ignores ExecOptions — priority/affinity scheduling lives in
// WorkStealingPool (scheduler.h), which the stream engine uses.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/executor.h"

namespace cerl {

/// A minimal fixed-size FIFO thread pool.
class ThreadPool : public Executor {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(TaskFn task);

  /// Executor: FIFO — scheduling options are ignored.
  void Execute(TaskFn task, const ExecOptions& options) override;
  using Executor::Execute;

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<TaskFn> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end), split into contiguous chunks across the
/// global pool. Falls back to serial execution for small ranges or when
/// `grain` covers the whole range.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body_range,
                 int64_t grain = 1024);

}  // namespace cerl
