// Log-bucketed latency histogram with percentile queries — the SLO-facing
// half of the scheduler stats (p50/p99/p999 domain-completion latency).
//
// Fixed 512 geometric buckets spanning 1 microsecond to ~8 minutes with
// ~4% resolution: recording is an O(1) bucket increment (no allocation, no
// stored samples), percentiles interpolate within the winning bucket, and
// two histograms merge by adding counts — the engine keeps one per stream
// and the load generator folds them into a fleet-wide distribution.
// Quantization error is bounded by the 4% bucket width, far inside the 25%
// regression gate the bench applies to the reported percentiles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace cerl {

class ConcurrentLatencyHistogram;

/// Fixed-size log-bucketed histogram of latencies in milliseconds.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 512;

  /// Records one latency sample (clamped to the bucket range; the exact
  /// maximum is tracked separately so the tail never under-reports).
  void Record(double ms);

  /// Latency at quantile `q` in [0, 1] (0.5 = p50, 0.999 = p999): the
  /// interpolated value within the bucket where the cumulative count
  /// crosses q. Returns 0 when empty; the exact maximum for q = 1.
  double Percentile(double q) const;

  int64_t count() const { return count_; }
  double max_ms() const { return max_ms_; }
  double total_ms() const { return total_ms_; }
  /// Arithmetic mean (0 when empty).
  double mean_ms() const { return count_ == 0 ? 0.0 : total_ms_ / count_; }

  /// Adds `other`'s counts into this histogram.
  void Merge(const LatencyHistogram& other);

 private:
  friend class ConcurrentLatencyHistogram;

  static int BucketIndex(double ms);
  /// Lower edge of bucket `i` in ms.
  static double BucketLowMs(int i);

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  double max_ms_ = 0.0;
  double total_ms_ = 0.0;
};

/// Wait-free recording variant for query hot paths: the same log buckets as
/// LatencyHistogram, but every field is a relaxed atomic, so one thread can
/// Record while another Snapshots — no mutex, no torn reads (TSan-clean by
/// construction). Record is two relaxed fetch_adds (bucket + total) plus a
/// rare CAS when the running maximum moves; Snapshot folds the counters into
/// a plain LatencyHistogram for percentile queries and merging. Concurrent
/// Record/Snapshot is safe; a snapshot taken mid-record may miss the
/// in-flight sample (eventually-consistent stats, exact once quiescent).
class ConcurrentLatencyHistogram {
 public:
  /// Records one latency sample. Safe from any thread, never blocks.
  void Record(double ms);

  /// Folds the current counts into a plain histogram (percentiles, Merge).
  LatencyHistogram Snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<int64_t>, LatencyHistogram::kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  /// Totals in nanoseconds as integers: doubles have no atomic fetch_add in
  /// C++17, and at ns resolution an int64 holds ~292 years of latency.
  std::atomic<int64_t> total_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

}  // namespace cerl
