// Log-bucketed latency histogram with percentile queries — the SLO-facing
// half of the scheduler stats (p50/p99/p999 domain-completion latency).
//
// Fixed 512 geometric buckets spanning 1 microsecond to ~8 minutes with
// ~4% resolution: recording is an O(1) bucket increment (no allocation, no
// stored samples), percentiles interpolate within the winning bucket, and
// two histograms merge by adding counts — the engine keeps one per stream
// and the load generator folds them into a fleet-wide distribution.
// Quantization error is bounded by the 4% bucket width, far inside the 25%
// regression gate the bench applies to the reported percentiles.
#pragma once

#include <array>
#include <cstdint>

namespace cerl {

/// Fixed-size log-bucketed histogram of latencies in milliseconds.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 512;

  /// Records one latency sample (clamped to the bucket range; the exact
  /// maximum is tracked separately so the tail never under-reports).
  void Record(double ms);

  /// Latency at quantile `q` in [0, 1] (0.5 = p50, 0.999 = p999): the
  /// interpolated value within the bucket where the cumulative count
  /// crosses q. Returns 0 when empty; the exact maximum for q = 1.
  double Percentile(double q) const;

  int64_t count() const { return count_; }
  double max_ms() const { return max_ms_; }
  double total_ms() const { return total_ms_; }
  /// Arithmetic mean (0 when empty).
  double mean_ms() const { return count_ == 0 ? 0.0 : total_ms_ / count_; }

  /// Adds `other`'s counts into this histogram.
  void Merge(const LatencyHistogram& other);

 private:
  static int BucketIndex(double ms);
  /// Lower edge of bucket `i` in ms.
  static double BucketLowMs(int i);

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  double max_ms_ = 0.0;
  double total_ms_ = 0.0;
};

}  // namespace cerl
