// Serialized task submission on a shared executor (a "strand").
//
// A TaskGroup guarantees that its tasks run one at a time, in submission
// order (fenced submit: every task observes the effects of all tasks
// submitted to the same group before it), while tasks of DIFFERENT groups
// interleave freely across the executor's workers. This is the primitive the
// stream engine uses to serialize the per-stream stage pipeline
// (ingest -> train -> migrate) without one stream's work blocking another:
// unlike ThreadPool::Wait — which fences the whole pool — TaskGroup::Wait
// only drains this group.
//
// The group never occupies a worker while idle: a pump task is scheduled on
// the executor only while the group has pending work, and it re-submits
// itself after each task so long-queued groups share workers fairly with
// other groups (and other executor users) instead of holding a worker until
// drained. HOW the ready pumps are ordered is the executor's policy: on the
// FIFO ThreadPool groups round-robin; on the cost-aware WorkStealingPool
// the pump carries the group's ExecOptions (priority = the stream's
// expected pending work, home = its preferred worker), refreshed via
// SetExecOptions before each pump submission — the hook the stream engine's
// longest-expected-queue-first dispatch is built on.
//
// Blocking inside a group task follows the same rule as any pool task:
// tasks that block on the pool they run on (ParallelFor on the same pool,
// ThreadPool::Wait) can deadlock once every worker is blocked. Run groups
// whose tasks fan work out to the global pool on a dedicated pool (the
// stream engine owns one), exactly like TrainLoop's assembler worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "util/executor.h"

namespace cerl {

/// FIFO-serialized executor strand on top of an Executor.
class TaskGroup {
 public:
  /// The executor must outlive the group.
  explicit TaskGroup(Executor* executor);

  /// Drains pending tasks (Wait) before destruction.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task. Tasks of one group run strictly one at a time in
  /// submission order; the completion of task k happens-before the start of
  /// task k+1 (the internal mutex carries the memory fence).
  void Submit(TaskFn task);

  /// Sets the scheduling options attached to the group's NEXT pump
  /// submission (each task completion re-submits the pump, so a refreshed
  /// priority takes effect within one task). Purely advisory — execution
  /// order within the group is always FIFO regardless.
  void SetExecOptions(const ExecOptions& options);

  /// Blocks until every task submitted to THIS group so far has finished.
  /// Tasks of other groups (and unrelated executor work) are not waited on.
  void Wait();

  /// Tasks submitted over the group's lifetime (monotonic; for tests/stats).
  int64_t submitted() const;

  /// Tasks fully executed so far.
  int64_t completed() const;

 private:
  /// Runs the front task, then re-submits itself while work remains.
  void Pump();

  Executor* executor_;
  mutable std::mutex mutex_;
  std::condition_variable cv_idle_;
  std::deque<TaskFn> pending_;
  ExecOptions exec_options_;  ///< applied to pump submissions
  bool pump_active_ = false;  ///< a Pump task is scheduled or running
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
};

}  // namespace cerl
