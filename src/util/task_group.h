// Serialized task submission on a shared ThreadPool (a "strand").
//
// A TaskGroup guarantees that its tasks run one at a time, in submission
// order (fenced submit: every task observes the effects of all tasks
// submitted to the same group before it), while tasks of DIFFERENT groups
// interleave freely across the pool's workers. This is the primitive the
// stream engine uses to serialize the per-stream stage pipeline
// (ingest -> train -> migrate) without one stream's work blocking another:
// unlike ThreadPool::Wait — which fences the whole pool — TaskGroup::Wait
// only drains this group.
//
// The group never occupies a worker while idle: a pump task is scheduled on
// the pool only while the group has pending work, and it re-submits itself
// after each task so long-queued groups round-robin fairly with other groups
// (and other pool users) instead of holding a worker until drained.
//
// Blocking inside a group task follows the same rule as any pool task:
// tasks that block on the pool they run on (ParallelFor on the same pool,
// ThreadPool::Wait) can deadlock once every worker is blocked. Run groups
// whose tasks fan work out to the global pool on a dedicated pool (the
// stream engine owns one), exactly like TrainLoop's assembler worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "util/thread_pool.h"

namespace cerl {

/// FIFO-serialized executor on top of a ThreadPool.
class TaskGroup {
 public:
  /// The pool must outlive the group.
  explicit TaskGroup(ThreadPool* pool);

  /// Drains pending tasks (Wait) before destruction.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task. Tasks of one group run strictly one at a time in
  /// submission order; the completion of task k happens-before the start of
  /// task k+1 (the internal mutex carries the memory fence).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to THIS group so far has finished.
  /// Tasks of other groups (and unrelated pool work) are not waited on.
  void Wait();

  /// Tasks submitted over the group's lifetime (monotonic; for tests/stats).
  int64_t submitted() const;

  /// Tasks fully executed so far.
  int64_t completed() const;

 private:
  /// Runs the front task, then re-submits itself while work remains.
  void Pump();

  ThreadPool* pool_;
  mutable std::mutex mutex_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> pending_;
  bool pump_active_ = false;  ///< a Pump task is scheduled or running
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
};

}  // namespace cerl
