// Bounded LRU pool of heavy reusable objects keyed by a 64-bit shape key.
//
// The arena pattern used throughout the hot path (autodiff::Tape,
// ot::SinkhornWorkspace) reuses buffers only while consecutive uses share a
// shape; heterogeneous shapes thrash a single arena. KeyedLruPool keeps a
// small set of arenas — one per recently seen shape — so each shape finds
// its own warmed-up instance: TrainLoop keys tapes by batch shape and the
// loss builders key Sinkhorn workspaces by (n_treated, n_control).
//
// Capacity is deliberately small (entries are scanned linearly) and the
// pool is NOT thread-safe: it is owned by a single loss builder / loop,
// like the arenas it stores.
#pragma once

#include <cstdint>
#include <iterator>
#include <list>
#include <memory>
#include <utility>

#include "util/check.h"

namespace cerl {

template <typename V>
class KeyedLruPool {
 public:
  explicit KeyedLruPool(int capacity) : capacity_(capacity) {
    CERL_CHECK_GE(capacity, 1);
  }

  /// Returns the entry for `key`; on a miss the least-recently-used entry
  /// is RECYCLED under the new key when the pool is full (arenas keep their
  /// high-water buffers — a destroy-and-rebuild would make out-of-capacity
  /// key sets pay full cold-start allocation on every miss), otherwise a
  /// fresh instance comes from `make()` (must return std::unique_ptr<V>).
  /// Callers must therefore treat an acquired object as possibly carrying
  /// another key's state — both arena users already do: Tape::Reset
  /// re-checks every node's shape, and SinkhornWorkspace keys its warm
  /// start by the problem shape itself. The returned pointer stays valid
  /// until this entry is evicted — i.e. at least until `capacity - 1` other
  /// keys have been acquired — never merely because other hits reordered
  /// the LRU list.
  template <typename Factory>
  V* Acquire(uint64_t key, Factory&& make) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);  // mark most recent
        ++hits_;
        return entries_.front().second.get();
      }
    }
    ++misses_;
    if (static_cast<int>(entries_.size()) == capacity_) {
      // Recycle the LRU entry's instance under the new key.
      entries_.splice(entries_.begin(), entries_, std::prev(entries_.end()));
      entries_.front().first = key;
      ++evictions_;
    } else {
      entries_.emplace_front(key, make());
    }
    return entries_.front().second.get();
  }

  /// True if `key` is currently pooled (does not touch LRU order).
  bool contains(uint64_t key) const {
    for (const auto& e : entries_) {
      if (e.first == key) return true;
    }
    return false;
  }

  int size() const { return static_cast<int>(entries_.size()); }
  int capacity() const { return capacity_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

 private:
  // front = most recently used.
  std::list<std::pair<uint64_t, std::unique_ptr<V>>> entries_;
  int capacity_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace cerl
