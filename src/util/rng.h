// Deterministic random number generation. We implement xoshiro256++ seeded
// through SplitMix64 rather than relying on std:: engines/distributions so
// that every sampled value is bit-reproducible across platforms and standard
// library versions (std distributions are implementation-defined).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cerl {

/// xoshiro256++ generator (Blackman & Vigna). Cheap, high quality, and
/// deterministic for a given seed on every platform.
class Rng {
 public:
  /// Seeds the four 64-bit words of state via SplitMix64 on `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via the Marsaglia polar method (deterministic, no
  /// platform-dependent std::normal_distribution).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Creates an independent-looking child stream (seeded from this stream).
  Rng Split();

  /// Full generator state, for checkpointing: the four xoshiro256++ words
  /// plus the cached polar-method variate. Restoring it makes the stream
  /// continue bit-identically from where SaveState was taken.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Random permutation of 0..n-1.
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_[4];
  // Cached second variate from the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cerl
