// Minimal leveled logger writing to stderr. Intended for coarse progress
// reporting from trainers and benches; hot loops should not log.
#pragma once

#include <sstream>
#include <string>

namespace cerl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cerl

#define CERL_LOG(level)                                              \
  ::cerl::internal::LogMessage(::cerl::LogLevel::k##level, __FILE__, \
                               __LINE__)
