// Minimal command-line flag parsing for bench and example binaries.
// Supports --name=value and --name value; unknown flags are reported.
#pragma once

#include <map>
#include <string>

namespace cerl {

/// Parsed --key=value flags with typed getters and defaults.
class Flags {
 public:
  /// Parses argv; non-flag arguments are ignored. Unknown flags are kept
  /// (callers validate with Has/keys as needed).
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cerl
