#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace cerl {

ThreadPool::ThreadPool(int num_threads) {
  CERL_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(TaskFn task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Execute(TaskFn task, const ExecOptions& /*options*/) {
  Submit(std::move(task));
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskFn task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body_range,
                 int64_t grain) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = ThreadPool::Global();
  const int workers = pool.num_threads();
  if (n <= grain || workers <= 1) {
    body_range(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers, (n + grain - 1) / grain);
  const int64_t step = (n + chunks - 1) / chunks;
  // Per-call completion latch rather than ThreadPool::Wait(): the global
  // pool serves concurrent callers (e.g. the training thread's GEMMs and
  // the minibatch assembler's gathers), and a pool-global wait would block
  // each caller on the other's tasks.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    if (begin + c * step >= end) break;
    ++remaining;
  }
  const int64_t submitted = remaining;
  for (int64_t c = 0; c < submitted; ++c) {
    const int64_t lo = begin + c * step;
    const int64_t hi = std::min(end, lo + step);
    pool.Submit([lo, hi, &body_range, &done_mutex, &done_cv, &remaining] {
      body_range(lo, hi);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace cerl
