#include "util/distributions.h"

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace cerl {

double SampleGamma(Rng* rng, double shape, double scale) {
  CERL_CHECK_GT(shape, 0.0);
  CERL_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = rng->Uniform();
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng->Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

double SampleBeta(Rng* rng, double a, double b) {
  const double x = SampleGamma(rng, a, 1.0);
  const double y = SampleGamma(rng, b, 1.0);
  return x / (x + y);
}

int SampleBernoulli(Rng* rng, double p) {
  CERL_CHECK_GE(p, 0.0);
  CERL_CHECK_LE(p, 1.0);
  return rng->Uniform() < p ? 1 : 0;
}

std::vector<double> SampleDirichlet(Rng* rng,
                                    const std::vector<double>& alpha) {
  CERL_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = SampleGamma(rng, alpha[i], 1.0);
    sum += out[i];
  }
  CERL_CHECK_GT(sum, 0.0);
  for (double& v : out) v /= sum;
  return out;
}

std::vector<double> SampleDirichletSym(Rng* rng, double alpha, int k) {
  return SampleDirichlet(rng, std::vector<double>(k, alpha));
}

int SampleCategorical(Rng* rng, const std::vector<double>& weights) {
  CERL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CERL_CHECK_GE(w, 0.0);
    total += w;
  }
  CERL_CHECK_GT(total, 0.0);
  double u = rng->Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  CERL_CHECK_GT(n, 0);
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  CERL_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (int i = 0; i < n; ++i) {
    CERL_CHECK_GE(weights[i], 0.0);
    scaled[i] = weights[i] * n / total;
  }
  std::vector<int> small, large;
  small.reserve(n);
  large.reserve(n);
  for (int i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (int i : large) prob_[i] = 1.0;
  for (int i : small) prob_[i] = 1.0;  // Numerical leftovers.
}

int AliasTable::Sample(Rng* rng) const {
  const int i = static_cast<int>(rng->UniformInt(prob_.size()));
  return rng->Uniform() < prob_[i] ? i : alias_[i];
}

int SamplePoisson(Rng* rng, double lambda) {
  CERL_CHECK_GT(lambda, 0.0);
  if (lambda > 30.0) {
    const double x = rng->Normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
  }
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng->Uniform();
  } while (p > limit);
  return k - 1;
}

std::vector<int> SampleWithoutReplacement(Rng* rng, int n, int k) {
  CERL_CHECK_GE(n, k);
  CERL_CHECK_GE(k, 0);
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(rng->UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace cerl
