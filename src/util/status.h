// Lightweight Status / Result<T> error handling, in the spirit of
// absl::Status / RocksDB's Status. Library code returns Status (or Result<T>)
// for operations that can fail for reasons outside the caller's control
// (I/O, numerically singular inputs); programming contracts use CERL_CHECK.
#pragma once

#include <exception>
#include <string>
#include <utility>
#include <variant>

namespace cerl {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kIoError,
  kNumericalError,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a short human-readable name for a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kNumericalError: return "NUMERICAL_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status NumericalError(std::string m) {
    return Status(StatusCode::kNumericalError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Minimal StatusOr analogue.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Requires ok(). Use status() to inspect errors first.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// OK status if this holds a value, the stored error otherwise.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

/// Exception wrapper for a non-OK Status, for propagating data-dependent
/// failures through call paths that do not return Status (autodiff losses,
/// stage lambdas running on pool workers). Catch sites unwrap the Status and
/// resume typed error handling; the exception never crosses a thread-pool
/// boundary uncaught.
class StatusError : public std::exception {
 public:
  explicit StatusError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

/// Propagates a non-OK Status to the caller.
#define CERL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::cerl::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace cerl
