#include "util/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"

namespace cerl {

namespace {

// Worker identity for current_worker(): written once per worker thread at
// startup, compared against `this` so nested pools cannot confuse each
// other.
thread_local const WorkStealingPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

/// A ready task. `seq` is the global submission index: the FIFO tie-break
/// within a priority level, so equal-priority strands round-robin exactly
/// like the legacy pool.
struct WorkStealingPool::Item {
  TaskFn task;
  double priority = 0.0;  ///< as submitted (ExecOptions::priority)
  /// Aged ordering key, fixed at enqueue: priority - (enqueue - pool epoch)
  /// in ms. Comparing keys is equivalent to comparing the time-varying
  /// effective priority `priority + waiting_time_ms` at any later instant —
  /// the +now terms cancel — so waiting tasks age linearly without the heap
  /// ever being re-ordered, and no finite priority can starve.
  double key = 0.0;
  int home = -1;  ///< queue it was enqueued on; -1 = homeless (spread)
  uint64_t seq = 0;

  /// Heap order: higher aged key wins; equal keys run in submission order.
  /// (std::push_heap keeps the *greatest* element on top under this
  /// "less-than".)
  bool operator<(const Item& other) const {
    if (key != other.key) return key < other.key;
    return seq > other.seq;
  }
};

/// A parked deadline task (min-heap by `due`, then submission order).
struct WorkStealingPool::Timer {
  std::chrono::steady_clock::time_point due;
  Item item;

  /// std::push_heap builds a max-heap; invert so the EARLIEST due is on top.
  bool operator<(const Timer& other) const {
    if (due != other.due) return due > other.due;
    return item.seq > other.item.seq;
  }
};

struct WorkStealingPool::Worker {
  std::condition_variable cv;
  /// Max-heap by (priority, then lower seq) via Item::operator<.
  std::vector<Item> heap;
  bool idle = false;
  std::thread thread;
};

WorkStealingPool::WorkStealingPool(const WorkStealingPoolOptions& options)
    : cost_aware_(options.cost_aware),
      epoch_(std::chrono::steady_clock::now()) {
  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker slot exists: a worker's pop scan
  // walks all queues.
  for (int i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  for (auto& w : workers_) w->cv.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void WorkStealingPool::Execute(TaskFn task, const ExecOptions& options) {
  CERL_CHECK(static_cast<bool>(task));
  std::lock_guard<std::mutex> lock(mutex_);
  Item item;
  item.task = std::move(task);
  item.priority = options.priority;
  item.home = options.home;
  item.seq = next_seq_++;
  ++in_flight_;
  EnqueueReadyLocked(std::move(item));
}

void WorkStealingPool::ExecuteAfter(int delay_ms, TaskFn task,
                                    const ExecOptions& options) {
  CERL_CHECK(static_cast<bool>(task));
  if (delay_ms <= 0) {
    Execute(std::move(task), options);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Timer timer;
  timer.due = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(delay_ms);
  timer.item.task = std::move(task);
  timer.item.priority = options.priority;
  timer.item.home = options.home;
  timer.item.seq = next_seq_++;
  ++in_flight_;
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end());
  // Idle workers may be waiting with no deadline (or a later one): wake them
  // all to re-arm against the possibly-earlier due time. Timers are rare
  // (retry backoff), so the herd wakeup is irrelevant.
  for (auto& w : workers_) {
    if (w->idle) w->cv.notify_one();
  }
}

void WorkStealingPool::EnqueueReadyLocked(Item item) {
  int wake = -1;
  if (!cost_aware_) {
    fifo_.push_back(std::move(item.task));
    for (int i = 0; i < num_threads(); ++i) {
      if (workers_[i]->idle) {
        wake = i;
        break;
      }
    }
  } else {
    // Aged key: see Item::key. Timer tasks are keyed from promotion, not
    // submission — backoff delays deliberately do not accrue priority.
    item.key = item.priority -
               std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
    int q = item.home;
    if (q < 0 || q >= num_threads()) {
      // Homeless tasks spread round-robin; they stay marked homeless so a
      // cross-queue pop is not counted as a steal.
      q = next_spread_;
      next_spread_ = (next_spread_ + 1) % num_threads();
    }
    workers_[q]->heap.push_back(std::move(item));
    std::push_heap(workers_[q]->heap.begin(), workers_[q]->heap.end());
    // Wake the home worker when it is idle (affinity), otherwise any idle
    // worker — it will steal the task rather than let it wait for the busy
    // home.
    if (workers_[q]->idle) {
      wake = q;
    } else {
      for (int i = 0; i < num_threads(); ++i) {
        if (workers_[i]->idle) {
          wake = i;
          break;
        }
      }
    }
  }
  if (wake >= 0) workers_[wake]->cv.notify_one();
}

void WorkStealingPool::PromoteTimersLocked(
    std::chrono::steady_clock::time_point now) {
  while (!timers_.empty() && timers_.front().due <= now) {
    std::pop_heap(timers_.begin(), timers_.end());
    Item item = std::move(timers_.back().item);
    timers_.pop_back();
    // The promoting worker re-scans immediately after, so the wake below is
    // only needed for OTHER idle workers; EnqueueReadyLocked handles it.
    EnqueueReadyLocked(std::move(item));
  }
}

bool WorkStealingPool::PopLocked(int w, Item* out) {
  if (!cost_aware_) {
    if (fifo_.empty()) return false;
    out->task = std::move(fifo_.front());
    out->home = -1;
    fifo_.pop_front();
    return true;
  }
  // Globally highest priority; exact ties prefer the worker's own queue
  // (affinity), then lower seq (FIFO). The scan is O(workers), each a heap
  // top peek.
  int best = -1;
  const Item* best_item = nullptr;
  for (int i = 0; i < num_threads(); ++i) {
    const std::vector<Item>& heap = workers_[i]->heap;
    if (heap.empty()) continue;
    const Item& top = heap.front();
    if (best_item == nullptr) {
      best = i;
      best_item = &top;
      continue;
    }
    const bool better =
        top.key > best_item->key ||
        (top.key == best_item->key && best != w &&
         (i == w || top.seq < best_item->seq));
    if (better) {
      best = i;
      best_item = &top;
    }
  }
  if (best < 0) return false;
  std::vector<Item>& heap = workers_[best]->heap;
  std::pop_heap(heap.begin(), heap.end());
  *out = std::move(heap.back());
  heap.pop_back();
  if (best != w && out->home >= 0) ++steals_;
  return true;
}

void WorkStealingPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker = index;
  Worker& self = *workers_[index];
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    PromoteTimersLocked(std::chrono::steady_clock::now());
    Item item;
    if (PopLocked(index, &item)) {
      lock.unlock();
      item.task();
      // Release the closure's captures before re-acquiring the lock: a
      // drain-waiter woken by the decrement below must not race the
      // destruction of what the task owned.
      item.task = TaskFn();
      lock.lock();
      if (--in_flight_ == 0) cv_done_.notify_all();
      continue;
    }
    if (stop_ && timers_.empty()) return;
    self.idle = true;
    if (!timers_.empty()) {
      // Park until the earliest deadline: whoever wakes first promotes it.
      self.cv.wait_until(lock, timers_.front().due);
    } else {
      self.cv.wait(lock);
    }
    self.idle = false;
  }
}

void WorkStealingPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int WorkStealingPool::current_worker() const {
  return tls_pool == this ? tls_worker : -1;
}

int64_t WorkStealingPool::steal_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

}  // namespace cerl
