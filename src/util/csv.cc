#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace cerl {
namespace {

// Quotes a cell if it contains a comma, quote, or newline.
std::string Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  CERL_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(cells);
}

std::string CsvWriter::Cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << Escape(row[i]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace cerl
