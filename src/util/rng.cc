#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cerl {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CERL_CHECK_GT(n, 0u);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  CERL_CHECK_GE(stddev, 0.0);
  return mean + stddev * Normal();
}

Rng Rng::Split() { return Rng(NextU64()); }

Rng::State Rng::SaveState() const {
  State s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

}  // namespace cerl
