// Deterministic, seeded fault injection for robustness testing. Call sites
// name an injection point via CERL_FAULT_POINT(...); tests (or the
// CERL_FAULTS env var) arm rules against points, optionally scoped to one
// tenant/stream name carried by a thread-local FaultScope. Disabled cost is
// one relaxed atomic load and an untaken branch — no lock, no allocation —
// so production binaries keep the points compiled in.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cerl {

/// Named injection points. Each maps to exactly one call site semantics;
/// see the point's user for what "firing" means there.
enum class FaultPoint {
  kNanGradient = 0,   // poison a training-stage loss with NaN
  kSinkhornDiverge,   // force a Sinkhorn solve to report non-convergence
  kIoWrite,           // fail WriteFileAtomic before touching the filesystem
  kStageThrow,        // throw from inside an engine stage task
  kNumPoints,         // sentinel, keep last
};

/// Short stable name ("nan_gradient", ...) used by the CERL_FAULTS spec.
const char* FaultPointName(FaultPoint point);

/// RAII thread-local scope label, typically the stream/tenant name. Rules
/// armed with a non-empty scope fire only on threads whose innermost
/// FaultScope matches. Nests; the destructor restores the outer scope.
class FaultScope {
 public:
  explicit FaultScope(std::string scope);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Innermost scope on this thread, or "" when none is active.
  static const std::string& Current();

 private:
  std::string previous_;
};

/// Process-global registry of armed fault rules. All methods are
/// thread-safe; firing decisions are serialized per injector so that a
/// seeded run replays the same decision sequence for the same arrival
/// order (single-scope rules on a serialized stream pipeline are fully
/// deterministic).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `point`: it fires with `probability` on threads matching `scope`
  /// ("" matches every thread), at most `max_fires` times (0 = unlimited).
  /// `seed` drives the rule's private deterministic Rng. Multiple rules may
  /// be armed on one point (e.g. one per faulted stream).
  void Arm(FaultPoint point, std::string scope, double probability,
           int max_fires, uint64_t seed);

  /// Disarms every rule and zeroes fire counters. Leaves injection disabled.
  void Reset();

  /// Decision function behind CERL_FAULT_POINT. Prefer the macro: it guards
  /// the call with the relaxed enabled flag so disarmed runs never get here.
  bool ShouldFire(FaultPoint point);

  /// Total times `point` has fired since the last Reset().
  int fires(FaultPoint point) const;

  /// Arms rules from the CERL_FAULTS env var (comma-separated entries of
  /// the form `point[@scope][:probability[:max_fires]]`, e.g.
  /// "nan_gradient@tenant3:1:2,io_write:0.5"), seeded by CERL_FAULTS_SEED
  /// (default 0). Unset/empty CERL_FAULTS is a no-op. Malformed entries are
  /// skipped with a warning rather than aborting a production binary.
  static void ArmFromEnv();

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl();
};

namespace fault_internal {
/// True iff at least one rule is armed. Relaxed is sufficient: arming
/// happens before the faulted work is submitted, and a stale read merely
/// delays the first fire by one check.
extern std::atomic<bool> g_enabled;
}  // namespace fault_internal

/// True when the armed rule set says this execution of `point` should fail.
/// Zero-cost when disabled (single relaxed load, branch not taken).
#define CERL_FAULT_POINT(point)                                         \
  (::cerl::fault_internal::g_enabled.load(std::memory_order_relaxed) && \
   ::cerl::FaultInjector::Global().ShouldFire(point))

}  // namespace cerl
