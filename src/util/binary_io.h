// Binary checkpoint I/O substrate shared by the trainer checkpoint
// (core/checkpoint.cc) and the engine snapshot (stream/engine_checkpoint.cc):
//
//  - an FNV-1a payload checksum, so any bit flip anywhere in a container is
//    detected as a clean Status error instead of being deserialized into
//    garbage state;
//  - crash-safe whole-file writes (temp file + flush + fsync + atomic
//    rename), so a crash mid-save leaves the previous checkpoint intact and
//    readers never observe a half-written file;
//  - a BoundedReader that validates every length field against the bytes
//    actually remaining BEFORE allocating, so a corrupted u32 count turns
//    into a descriptive error rather than a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cerl {

/// FNV-1a 64-bit hash (the checkpoint integrity checksum).
uint64_t Fnv1a64(std::string_view data);

/// Incremental FNV-1a 64: Update() in pieces, digest() at any point.
/// Feeding the same bytes in any segmentation yields Fnv1a64 of their
/// concatenation — used where a container checksum must skip embedded
/// self-checksummed spans (CERLENG4 trainer blobs) or cover disjoint
/// header+payload pieces (WAL records).
class Fnv1a64Stream {
 public:
  void Update(std::string_view data) {
    for (const char c : data) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ull;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ull;
};

/// Appends the 8-byte little-endian FNV-1a checksum of `payload` to it.
/// Containers are always finalized with this before hitting disk.
void AppendChecksum(std::string* payload);

/// Verifies that `bytes` ends with the checksum of everything before it;
/// returns the payload view (checksum stripped) or a descriptive error.
/// `what` names the container in error messages ("checkpoint", "snapshot").
Result<std::string_view> VerifyChecksum(std::string_view bytes,
                                        const std::string& what);

/// Reads an entire file into memory.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe whole-file write: contents go to a uniquely named temp file
/// (`path + ".tmp.<pid>.<serial>"` — unique per in-flight write, so
/// concurrent saves of the same path cannot clobber each other), are flushed
/// and fsync'd, then atomically renamed over `path`. Either the old file or
/// the complete new one exists at every instant; the temp file is removed on
/// failure. Concurrent saves each publish a complete file; last rename wins.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Bounds-checked reads from a stream whose total remaining byte count is
/// known up front (in-memory checkpoint payloads). Reads past the budget —
/// the signature of a truncated or corrupted container — fail without
/// touching the destination.
class BoundedReader {
 public:
  BoundedReader(std::istream* in, uint64_t remaining)
      : in_(in), remaining_(remaining) {}

  /// Reads exactly `n` bytes into `dst`; `what` names the field in errors.
  Status ReadRaw(void* dst, uint64_t n, const char* what);

  template <typename T>
  Status ReadPod(T* value, const char* what) {
    return ReadRaw(value, sizeof(T), what);
  }

  /// Deducts `n` bytes consumed by a self-describing sub-parser that read
  /// from the underlying stream directly (nn parameter blocks).
  Status Consume(uint64_t n, const char* what);

  /// Fails unless at least `n` bytes remain — the pre-allocation guard for
  /// length fields (call before resizing a buffer to a file-provided size).
  Status Require(uint64_t n, const char* what) const;

  uint64_t remaining() const { return remaining_; }
  std::istream* stream() { return in_; }

 private:
  std::istream* in_;
  uint64_t remaining_;
};

/// Appends the raw little-endian bytes of a POD value to a payload string.
template <typename T>
void WritePod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Appends a u32 count followed by the doubles of `v`.
void WriteF64Vector(std::string* out, const std::vector<double>& v);

/// Reads a double vector whose element count must equal `expect` — every
/// vector in the checkpoint formats has a size known from its header/model,
/// which is what lets a corrupted count fail before any resize.
Status ReadF64VectorExpected(BoundedReader* r, uint32_t expect,
                             std::vector<double>* v, const char* what);

/// Read-only streambuf over a string_view: gives checkpoint payloads an
/// std::istream interface (for self-describing sub-parsers like the nn
/// parameter block) without copying the bytes. Supports tellg/seekg.
class ViewStreambuf : public std::streambuf {
 public:
  explicit ViewStreambuf(std::string_view data);

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override;
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override;
};

}  // namespace cerl
