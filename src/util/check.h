// CHECK macros for programming contracts. Failures indicate bugs in calling
// code (dimension mismatches, violated invariants) and abort with a message;
// recoverable conditions use Status instead (see status.h).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cerl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] ? " — " : "", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace cerl::internal

#define CERL_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond))                                                       \
      ::cerl::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
  } while (0)

#define CERL_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::cerl::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

#define CERL_CHECK_EQ(a, b) CERL_CHECK((a) == (b))
#define CERL_CHECK_NE(a, b) CERL_CHECK((a) != (b))
#define CERL_CHECK_LT(a, b) CERL_CHECK((a) < (b))
#define CERL_CHECK_LE(a, b) CERL_CHECK((a) <= (b))
#define CERL_CHECK_GT(a, b) CERL_CHECK((a) > (b))
#define CERL_CHECK_GE(a, b) CERL_CHECK((a) >= (b))

#ifndef NDEBUG
#define CERL_DCHECK(cond) CERL_CHECK(cond)
#else
#define CERL_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
