// Wall-clock timer for coarse progress reporting in trainers and benches.
#pragma once

#include <chrono>

namespace cerl {

/// Starts timing on construction; ElapsedSeconds() reads without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cerl
