// Tiny CSV writer used by bench binaries to persist result tables.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace cerl {

/// Accumulates rows in memory and writes them to a file on demand.
class CsvWriter {
 public:
  /// Sets the header row (written first).
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a data row; must have as many cells as the header.
  void AddRow(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 4 decimal places.
  static std::string Cell(double v);

  /// Writes header + rows to `path`, overwriting. Returns IoError on failure.
  Status WriteFile(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cerl
