#include "util/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "util/fault_injection.h"

namespace cerl {
namespace {

// fsync the file at `path` so the atomic-rename publish is durable, not just
// ordered. Failure is reported: a checkpoint whose durability is unknown is
// an error, not a warning.
Status FsyncPath(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IoError("cannot open for fsync: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::Ok();
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  Fnv1a64Stream hasher;
  hasher.Update(data);
  return hasher.digest();
}

void AppendChecksum(std::string* payload) {
  const uint64_t sum = Fnv1a64(*payload);
  char bytes[sizeof(sum)];
  std::memcpy(bytes, &sum, sizeof(sum));
  payload->append(bytes, sizeof(bytes));
}

Result<std::string_view> VerifyChecksum(std::string_view bytes,
                                        const std::string& what) {
  if (bytes.size() < sizeof(uint64_t)) {
    return Status::IoError(what + ": too short to carry a checksum");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload.size(), sizeof(stored));
  if (stored != Fnv1a64(payload)) {
    return Status::IoError(what + ": checksum mismatch (corrupted file)");
  }
  return payload;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string contents;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot size file: " + path);
  contents.resize(static_cast<size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), size);
  if (!in) return Status::IoError("read failed: " + path);
  return contents;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  if (CERL_FAULT_POINT(FaultPoint::kIoWrite)) {
    return Status::IoError("injected write failure: " + path);
  }
  // The tmp name must be unique per in-flight write: a shared `path + ".tmp"`
  // lets two concurrent saves of the same path clobber each other's
  // half-written tmp and publish a torn file via the other thread's rename.
  // pid + process-wide counter keeps names distinct across threads and
  // across processes sharing a directory.
  static std::atomic<uint64_t> tmp_counter{0};
  const uint64_t serial = tmp_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(serial);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  Status synced = FsyncPath(tmp, /*directory=*/false);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  // Make the rename itself durable (the directory entry).
  return FsyncPath(ParentDirectory(path), /*directory=*/true);
}

Status BoundedReader::ReadRaw(void* dst, uint64_t n, const char* what) {
  CERL_RETURN_IF_ERROR(Require(n, what));
  in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!*in_) {
    return Status::IoError(std::string("truncated read of ") + what);
  }
  remaining_ -= n;
  return Status::Ok();
}

Status BoundedReader::Consume(uint64_t n, const char* what) {
  if (n > remaining_) {
    return Status::IoError(std::string(what) +
                           " overran the container payload");
  }
  remaining_ -= n;
  return Status::Ok();
}

Status BoundedReader::Require(uint64_t n, const char* what) const {
  if (n > remaining_) {
    return Status::IoError(std::string("truncated container: ") + what +
                           " needs " + std::to_string(n) +
                           " bytes, payload has " + std::to_string(remaining_));
  }
  return Status::Ok();
}

void WriteF64Vector(std::string* out, const std::vector<double>& v) {
  WritePod(out, static_cast<uint32_t>(v.size()));
  // An empty vector's data() may be null; append(nullptr, 0) is UB.
  if (v.empty()) return;
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

Status ReadF64VectorExpected(BoundedReader* r, uint32_t expect,
                             std::vector<double>* v, const char* what) {
  uint32_t n = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&n, what));
  if (n != expect) {
    return Status::IoError(std::string(what) + ": size " + std::to_string(n) +
                           " does not match expected " +
                           std::to_string(expect));
  }
  CERL_RETURN_IF_ERROR(
      r->Require(static_cast<uint64_t>(n) * sizeof(double), what));
  v->resize(n);
  return r->ReadRaw(v->data(), static_cast<uint64_t>(n) * sizeof(double),
                    what);
}

ViewStreambuf::ViewStreambuf(std::string_view data) {
  // streambuf's get-area pointers are non-const by API; the buffer is only
  // ever read (no overflow/underflow writes).
  char* base = const_cast<char*>(data.data());
  setg(base, base, base + data.size());
}

ViewStreambuf::pos_type ViewStreambuf::seekoff(off_type off,
                                               std::ios_base::seekdir dir,
                                               std::ios_base::openmode which) {
  if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
  // Resolve the target position in the integer domain before touching any
  // pointer: `eback() + off` for a hostile `off` (reachable from corrupt
  // checkpoint bytes) is out-of-range pointer arithmetic — UB even if the
  // result is only compared, never dereferenced.
  const off_type size = egptr() - eback();
  off_type base = 0;
  switch (dir) {
    case std::ios_base::beg: base = 0; break;
    case std::ios_base::cur: base = gptr() - eback(); break;
    case std::ios_base::end: base = size; break;
    default: return pos_type(off_type(-1));
  }
  // Signed-overflow guard for base + off, then the bounds check proper.
  if (off > 0 && base > std::numeric_limits<off_type>::max() - off) {
    return pos_type(off_type(-1));
  }
  if (off < 0 && base < std::numeric_limits<off_type>::min() - off) {
    return pos_type(off_type(-1));
  }
  const off_type pos = base + off;
  if (pos < 0 || pos > size) return pos_type(off_type(-1));
  setg(eback(), eback() + pos, egptr());
  return pos_type(pos);
}

ViewStreambuf::pos_type ViewStreambuf::seekpos(pos_type pos,
                                               std::ios_base::openmode which) {
  return seekoff(off_type(pos), std::ios_base::beg, which);
}

}  // namespace cerl
