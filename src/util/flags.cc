#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace cerl {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int Flags::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cerl
