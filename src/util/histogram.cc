#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace cerl {

namespace {

// Bucket i covers [kMinMs * kGrowth^i, kMinMs * kGrowth^(i+1)): 1us lower
// edge, ~4% geometric steps, top edge ~ 5e5 ms (~8 minutes) at 512 buckets.
constexpr double kMinMs = 1e-3;
constexpr double kGrowth = 1.04;
const double kLogGrowth = std::log(kGrowth);

}  // namespace

int LatencyHistogram::BucketIndex(double ms) {
  if (!(ms > kMinMs)) return 0;  // also catches NaN
  const int i = static_cast<int>(std::log(ms / kMinMs) / kLogGrowth);
  return std::min(i, kBuckets - 1);
}

double LatencyHistogram::BucketLowMs(int i) {
  return kMinMs * std::exp(kLogGrowth * i);
}

void LatencyHistogram::Record(double ms) {
  if (std::isnan(ms) || ms < 0.0) ms = 0.0;
  ++buckets_[BucketIndex(ms)];
  ++count_;
  total_ms_ += ms;
  max_ms_ = std::max(max_ms_, ms);
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_ms_;
  // Rank of the q-quantile sample (1-based), then walk the cumulative
  // counts to the bucket containing it.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t prev = cum;
    cum += buckets_[i];
    if (cum >= rank) {
      // Linear interpolation of the rank within the bucket's span; the last
      // bucket's upper edge is the observed maximum.
      const double low = BucketLowMs(i);
      const double high =
          (i == kBuckets - 1) ? std::max(max_ms_, low) : BucketLowMs(i + 1);
      const double frac = buckets_[i] == 0
                              ? 0.0
                              : static_cast<double>(rank - prev) /
                                    static_cast<double>(buckets_[i]);
      return std::min(low + frac * (high - low), max_ms_);
    }
  }
  return max_ms_;  // unreachable: counts always cover the rank
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ms_ += other.total_ms_;
  max_ms_ = std::max(max_ms_, other.max_ms_);
}

void ConcurrentLatencyHistogram::Record(double ms) {
  if (std::isnan(ms) || ms < 0.0) ms = 0.0;
  // +inf and anything >= ~9.2e12 ms pass the guard above but overflow the
  // int64 nanosecond cast below — UB. Clamp to a ceiling that still fits:
  // 9e12 ms (~285 years) * 1e6 < 2^63.
  constexpr double kMaxMs = 9e12;
  if (!(ms < kMaxMs)) ms = kMaxMs;  // also catches +inf
  const auto ns = static_cast<int64_t>(ms * 1e6);
  buckets_[LatencyHistogram::BucketIndex(ms)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  // The maximum only ratchets up; losing a CAS to a larger value means the
  // work is already done. Uncontended (the common case) this is one load.
  int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns,
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram ConcurrentLatencyHistogram::Snapshot() const {
  LatencyHistogram out;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    out.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count_ = count_.load(std::memory_order_relaxed);
  out.total_ms_ =
      static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-6;
  out.max_ms_ =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-6;
  return out;
}

}  // namespace cerl
