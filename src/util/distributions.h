// Scalar and vector distributions layered on Rng: gamma, beta, Dirichlet,
// Bernoulli, categorical sampling (linear scan and Walker alias table), and
// sampling without replacement. All are deterministic given the Rng state.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cerl {

/// Gamma(shape, scale) via Marsaglia & Tsang (2000); handles shape < 1 by
/// boosting. shape > 0, scale > 0.
double SampleGamma(Rng* rng, double shape, double scale);

/// Beta(a, b) from two gamma draws.
double SampleBeta(Rng* rng, double a, double b);

/// Bernoulli(p) as 0/1, p in [0, 1].
int SampleBernoulli(Rng* rng, double p);

/// Dirichlet(alpha) — returns a probability vector of alpha.size().
std::vector<double> SampleDirichlet(Rng* rng, const std::vector<double>& alpha);

/// Symmetric Dirichlet(alpha, k).
std::vector<double> SampleDirichletSym(Rng* rng, double alpha, int k);

/// Categorical draw by linear scan over (unnormalized, non-negative) weights.
int SampleCategorical(Rng* rng, const std::vector<double>& weights);

/// Walker alias table for O(1) categorical sampling after O(k) setup.
/// Used where the same discrete distribution is sampled many times
/// (e.g. LDA document generation).
class AliasTable {
 public:
  /// Builds the table from unnormalized non-negative weights (not all zero).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws one index distributed proportionally to the weights.
  int Sample(Rng* rng) const;

  int size() const { return static_cast<int>(prob_.size()); }

 private:
  std::vector<double> prob_;
  std::vector<int> alias_;
};

/// Samples k distinct indices from 0..n-1 uniformly (partial Fisher-Yates).
std::vector<int> SampleWithoutReplacement(Rng* rng, int n, int k);

/// Poisson(lambda) via Knuth's method for small lambda and normal
/// approximation (rounded, clamped at 0) for lambda > 30.
int SamplePoisson(Rng* rng, double lambda);

}  // namespace cerl
