// Cost-aware work-stealing pool — the scheduling substrate behind the
// stream engine's dispatch (ROADMAP: "break the round-robin wall").
//
// The plain ThreadPool serves tasks strictly FIFO, which round-robins the
// per-stream strands: with workers < streams, a light tenant's microsecond
// stage waits a full cycle of every other ready stream's (possibly huge)
// stage, and a backlogged tenant's queue drains one stage per cycle — tail
// latency grows with the tenant count, not the tenant's own work. This pool
// schedules by PRIORITY instead (ExecOptions::priority — the stream engine
// passes each strand's expected pending work, so the ready queue is
// longest-expected-queue-first), keeps per-worker queues for affinity
// (ExecOptions::home), and lets an idle worker STEAL the highest-priority
// task from any other worker's queue rather than parking — a heavy tenant's
// next stage starts the moment any worker frees up.
//
// Policy (cost_aware = true):
//  - Execute(task, {priority, home}) enqueues on `home`'s queue (homeless
//    tasks spread round-robin);
//  - a worker always pops the globally highest-priority ready task, breaking
//    exact priority ties in favor of its own queue and then in FIFO order —
//    so equal-priority strands round-robin exactly as before;
//  - a pop from another worker's queue of a homed task counts as a steal
//    (steal_count; the stream engine attributes them per stream).
//
// With cost_aware = false every task lands in one FIFO queue and priorities,
// homes and steals are ignored — bit-exactly the legacy round-robin
// behavior, kept as the baseline the SLO bench and A/B tests compare
// against.
//
// Deadline submits: ExecuteAfter(delay_ms, ...) parks a task in a timer heap
// that workers promote when due — the primitive behind retry backoff that
// does NOT occupy a worker while it waits (stream_engine.cc used to sleep
// the backoff on the stream's worker, burning a scheduler slot).
//
// Scheduling only ever picks WHICH ready task runs next, never what it
// computes: tasks must be oblivious to the worker they run on (the engine's
// stage tasks are — stolen stages are bit-identical to home execution, see
// scheduler_test).
//
// Locking: one pool mutex guards every queue. Tasks here are coarse
// (trainer stages, milliseconds); the lock hold is a heap operation plus an
// O(workers) scan, tens of nanoseconds — contention is not a design
// constraint the way it is for the fine-grained kernel pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/executor.h"

namespace cerl {

struct WorkStealingPoolOptions {
  /// Worker threads (>= 1). 0 = hardware concurrency.
  int num_threads = 0;
  /// Priority scheduling + affinity + stealing. false = one strict FIFO
  /// queue (the legacy round-robin baseline); priorities/homes are ignored
  /// and steal_count stays 0.
  bool cost_aware = true;
};

/// Priority/affinity scheduled pool with work stealing and deadline submits.
class WorkStealingPool : public Executor {
 public:
  explicit WorkStealingPool(const WorkStealingPoolOptions& options);
  /// Drains every pending task — including parked deadline tasks, whose
  /// deadlines are honored — then joins the workers.
  ~WorkStealingPool() override;

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Schedules `task`. Thread-safe; callable from inside a running task.
  void Execute(TaskFn task, const ExecOptions& options) override;
  using Executor::Execute;

  /// Schedules `task` to become ready `delay_ms` milliseconds from now (it
  /// runs at the first worker availability after that). No worker is
  /// occupied while the delay elapses. delay_ms <= 0 is an immediate
  /// Execute.
  void ExecuteAfter(int delay_ms, TaskFn task, const ExecOptions& options);

  /// Blocks until every task submitted so far — ready or parked on a
  /// deadline — has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling pool worker, or -1 off-pool. The stream engine
  /// uses it to attribute stolen stages per stream.
  int current_worker() const;

  /// Homed tasks executed by a worker other than their home (monotonic;
  /// always 0 under FIFO policy).
  int64_t steal_count() const;

 private:
  struct Item;
  struct Timer;
  struct Worker;

  void WorkerLoop(int index);
  /// Moves due timers to the ready queues. Caller holds mutex_.
  void PromoteTimersLocked(std::chrono::steady_clock::time_point now);
  /// Enqueues a ready item and wakes a worker for it. Caller holds mutex_.
  void EnqueueReadyLocked(Item item);
  /// Pops the best ready item for worker `w` (globally highest priority;
  /// ties: own queue first, then FIFO). Returns false when nothing is
  /// ready. Caller holds mutex_.
  bool PopLocked(int w, Item* out);

  const bool cost_aware_;
  /// Time origin for aged priority keys (see Item in scheduler.cc).
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::condition_variable cv_done_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<TaskFn> fifo_;    ///< FIFO policy: the single ready queue
  std::vector<Timer> timers_;  ///< min-heap by due time
  uint64_t next_seq_ = 0;      ///< submission order, the priority tie-break
  int next_spread_ = 0;        ///< round-robin cursor for homeless tasks
  int in_flight_ = 0;          ///< submitted (incl. parked) minus finished
  int64_t steals_ = 0;
  bool stop_ = false;
};

}  // namespace cerl
