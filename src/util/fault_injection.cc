#include "util/fault_injection.h"

#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace cerl {

namespace fault_internal {
std::atomic<bool> g_enabled{false};
}  // namespace fault_internal

namespace {

thread_local std::string t_scope;

constexpr int kNumPoints = static_cast<int>(FaultPoint::kNumPoints);

struct Rule {
  std::string scope;  // "" matches every thread
  double probability = 1.0;
  int max_fires = 0;  // 0 = unlimited
  int fired = 0;
  Rng rng{0};
};

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kNanGradient: return "nan_gradient";
    case FaultPoint::kSinkhornDiverge: return "sinkhorn_diverge";
    case FaultPoint::kIoWrite: return "io_write";
    case FaultPoint::kStageThrow: return "stage_throw";
    case FaultPoint::kNumPoints: break;
  }
  return "unknown";
}

FaultScope::FaultScope(std::string scope) : previous_(std::move(t_scope)) {
  t_scope = std::move(scope);
}

FaultScope::~FaultScope() { t_scope = std::move(previous_); }

const std::string& FaultScope::Current() { return t_scope; }

struct FaultInjector::Impl {
  mutable std::mutex mutex;
  std::vector<Rule> rules[kNumPoints];
  int fires[kNumPoints] = {0};
};

FaultInjector::Impl& FaultInjector::impl() {
  static Impl* impl = new Impl();  // leaked: outlives all static destructors
  return *impl;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPoint point, std::string scope,
                        double probability, int max_fires, uint64_t seed) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  Rule rule;
  rule.scope = std::move(scope);
  rule.probability = probability;
  rule.max_fires = max_fires;
  rule.rng = Rng(seed);
  im.rules[static_cast<int>(point)].push_back(std::move(rule));
  fault_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  // Disable first: a concurrent CERL_FAULT_POINT either sees the flag down
  // (skips) or blocks on the mutex and then sees empty rules.
  fault_internal::g_enabled.store(false, std::memory_order_relaxed);
  for (int p = 0; p < kNumPoints; ++p) {
    im.rules[p].clear();
    im.fires[p] = 0;
  }
}

bool FaultInjector::ShouldFire(FaultPoint point) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  const std::string& scope = FaultScope::Current();
  for (Rule& rule : im.rules[static_cast<int>(point)]) {
    if (!rule.scope.empty() && rule.scope != scope) continue;
    if (rule.max_fires > 0 && rule.fired >= rule.max_fires) continue;
    if (rule.probability < 1.0 && rule.rng.Uniform() >= rule.probability) {
      continue;
    }
    ++rule.fired;
    ++im.fires[static_cast<int>(point)];
    return true;
  }
  return false;
}

int FaultInjector::fires(FaultPoint point) const {
  Impl& im = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.fires[static_cast<int>(point)];
}

void FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("CERL_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  uint64_t seed = 0;
  if (const char* s = std::getenv("CERL_FAULTS_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  }

  std::string entry;
  uint64_t index = 0;
  for (const char* p = spec;; ++p) {
    if (*p != ',' && *p != '\0') {
      entry += *p;
      if (*p != '\0') continue;
    }
    if (!entry.empty()) {
      // entry = point[@scope][:probability[:max_fires]]
      std::string scope;
      double probability = 1.0;
      int max_fires = 0;
      std::string head = entry;
      if (size_t colon = head.find(':'); colon != std::string::npos) {
        std::string tail = head.substr(colon + 1);
        head = head.substr(0, colon);
        if (size_t colon2 = tail.find(':'); colon2 != std::string::npos) {
          max_fires = std::atoi(tail.substr(colon2 + 1).c_str());
          tail = tail.substr(0, colon2);
        }
        probability = std::atof(tail.c_str());
      }
      if (size_t at = head.find('@'); at != std::string::npos) {
        scope = head.substr(at + 1);
        head = head.substr(0, at);
      }
      bool matched = false;
      for (int pt = 0; pt < kNumPoints; ++pt) {
        if (head == FaultPointName(static_cast<FaultPoint>(pt))) {
          Global().Arm(static_cast<FaultPoint>(pt), scope, probability,
                       max_fires, seed + 0x9E3779B97F4A7C15ull * index);
          matched = true;
          break;
        }
      }
      if (!matched) {
        CERL_LOG(Warning) << "CERL_FAULTS: unknown point '" << head
                          << "', entry skipped";
      }
      ++index;
      entry.clear();
    }
    if (*p == '\0') break;
  }
}

}  // namespace cerl
