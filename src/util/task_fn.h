// Move-only type-erased task callable, the unit of work every pool and task
// group schedules.
//
// std::function forced two costs on the scheduling layer: tasks had to be
// COPYABLE (ruling out captures holding unique_ptr or other move-only
// resources), and typical stage closures landed on the heap once their
// captures outgrew libstdc++'s tiny inline buffer (16 bytes). TaskFn erases
// with a 56-byte inline arena instead — every closure the stream engine and
// ParallelFor submit fits without allocating — and keeps a process-wide
// counter of the (rare) heap fallbacks so tests can pin "steady-state
// scheduling allocates nothing" the same way Tape::arena_allocations pins
// the training step (see task_group_test).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace cerl {

/// Move-only `void()` callable with small-buffer optimization.
class TaskFn {
 public:
  /// Inline capture budget: one cache line minus the vtable pointer. Chosen
  /// so the engine's stage closures (a handful of pointers and flags) and
  /// ParallelFor's range closures stay inline; larger captures still work,
  /// they just heap-allocate (and count).
  static constexpr size_t kInlineBytes = 56;

  TaskFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                   // std::function at every Submit call site.
    using Fn = std::decay_t<F>;
    // A throwing move would leave the scheduler's queues in a half-moved
    // state; such (rare) callables are boxed instead.
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (storage_) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      new (storage_) Fn*(new Fn(std::forward<F>(f)));
      heap_allocations_.fetch_add(1, std::memory_order_relaxed);
      ops_ = &kBoxedOps<Fn>;
    }
  }

  TaskFn(TaskFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  ~TaskFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Process-wide count of tasks whose captures spilled to the heap
  /// (monotonic). Tests assert a delta of zero across a scheduling
  /// steady state.
  static int64_t heap_allocations() {
    return heap_allocations_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` and destroys `src` (noexcept by
    /// construction: inline storage requires a nothrow move, boxed storage
    /// relocates a raw pointer).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* src, void* dst) {
        Fn* from = static_cast<Fn*>(src);
        new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kBoxedOps = {
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* src, void* dst) { new (dst) Fn*(*static_cast<Fn**>(src)); },
      [](void* s) { delete *static_cast<Fn**>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;

  inline static std::atomic<int64_t> heap_allocations_{0};
};

}  // namespace cerl
