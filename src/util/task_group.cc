#include "util/task_group.h"

#include <utility>

#include "util/check.h"

namespace cerl {

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  CERL_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  bool start_pump = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(task));
    ++submitted_;
    if (!pump_active_) {
      pump_active_ = true;
      start_pump = true;
    }
  }
  if (start_pump) pool_->Submit([this] { Pump(); });
}

void TaskGroup::Pump() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The pump is only ever scheduled with work pending; pending_ can only
    // be consumed by the single active pump, so it is non-empty here.
    CERL_CHECK(!pending_.empty());
    task = std::move(pending_.front());
    pending_.pop_front();
  }
  task();
  bool more = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    more = !pending_.empty();
    if (!more) {
      pump_active_ = false;
      cv_idle_.notify_all();
    }
  }
  // Re-submit instead of looping: the worker returns to the pool between
  // group tasks, so many groups sharing few workers round-robin instead of
  // one group monopolizing a worker until its queue drains.
  if (more) pool_->Submit([this] { Pump(); });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return !pump_active_ && pending_.empty(); });
}

int64_t TaskGroup::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

int64_t TaskGroup::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

}  // namespace cerl
