#include "util/task_group.h"

#include <utility>

#include "util/check.h"

namespace cerl {

TaskGroup::TaskGroup(Executor* executor) : executor_(executor) {
  CERL_CHECK(executor != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(TaskFn task) {
  bool start_pump = false;
  ExecOptions options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(task));
    ++submitted_;
    if (!pump_active_) {
      pump_active_ = true;
      start_pump = true;
      options = exec_options_;
    }
  }
  if (start_pump) executor_->Execute([this] { Pump(); }, options);
}

void TaskGroup::SetExecOptions(const ExecOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  exec_options_ = options;
}

void TaskGroup::Pump() {
  TaskFn task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The pump is only ever scheduled with work pending; pending_ can only
    // be consumed by the single active pump, so it is non-empty here.
    CERL_CHECK(!pending_.empty());
    task = std::move(pending_.front());
    pending_.pop_front();
  }
  task();
  bool more = false;
  ExecOptions options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    more = !pending_.empty();
    if (more) {
      options = exec_options_;
    } else {
      pump_active_ = false;
      cv_idle_.notify_all();
    }
  }
  // Re-submit instead of looping: the worker returns to the executor between
  // group tasks, so many groups sharing few workers interleave (per the
  // executor's policy) instead of one group monopolizing a worker until its
  // queue drains. The re-read exec_options_ is what lets a cost-aware
  // engine re-prioritize a stream between stages.
  if (more) executor_->Execute([this] { Pump(); }, options);
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return !pump_active_ && pending_.empty(); });
}

int64_t TaskGroup::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

int64_t TaskGroup::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

}  // namespace cerl
