// Executor — the minimal scheduling interface TaskGroup (and anything else
// that submits deferred work) programs against, so per-stream strands can
// ride either the plain FIFO ThreadPool or the cost-aware WorkStealingPool
// without knowing which.
//
// ExecOptions is advisory scheduling metadata, not a contract: a FIFO
// executor is free to ignore it entirely. Under the cost-aware scheduler it
// carries the two signals the stream engine's policy needs — how much work
// the submitting strand expects to have pending (its ready-queue priority:
// workers pull the highest, i.e. longest-expected-queue-first) and which
// worker the strand is homed on (affinity; any other worker taking the task
// is a steal).
#pragma once

#include "util/task_fn.h"

namespace cerl {

/// Advisory scheduling metadata attached to a submitted task.
struct ExecOptions {
  /// Higher runs sooner under a cost-aware executor (expected pending work,
  /// in EWMA milliseconds, for the stream engine's strands; +infinity for
  /// run-next utility tasks like pre-flight validation). FIFO executors
  /// ignore it.
  double priority = 0.0;
  /// Preferred worker index, or -1 for no affinity. Executors with fewer
  /// workers wrap it; FIFO executors ignore it.
  int home = -1;
};

/// Anything that can run a task asynchronously.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task` to run exactly once on some worker. Must be safe to
  /// call from any thread, including from inside a running task.
  virtual void Execute(TaskFn task, const ExecOptions& options) = 0;

  /// Convenience overload: default (no-preference) scheduling options.
  void Execute(TaskFn task) { Execute(std::move(task), ExecOptions()); }
};

}  // namespace cerl
