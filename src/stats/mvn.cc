#include "stats/mvn.h"

namespace cerl::stats {

Result<MultivariateNormal> MultivariateNormal::Create(
    linalg::Vector mean, const linalg::Matrix& cov) {
  if (static_cast<int>(mean.size()) != cov.rows() ||
      cov.rows() != cov.cols()) {
    return Status::InvalidArgument("mean/cov dimension mismatch");
  }
  auto chol = linalg::Cholesky::Factor(cov);
  if (!chol.ok()) return chol.status();
  return MultivariateNormal(std::move(mean), std::move(chol).value());
}

linalg::Vector MultivariateNormal::Sample(Rng* rng) const {
  linalg::Vector z(dim());
  for (double& v : z) v = rng->Normal();
  linalg::Vector x = chol_.LowerTimes(z);
  for (int i = 0; i < dim(); ++i) x[i] += mean_[i];
  return x;
}

linalg::Matrix MultivariateNormal::SampleMatrix(Rng* rng, int n) const {
  linalg::Matrix out(n, dim());
  for (int r = 0; r < n; ++r) {
    linalg::Vector x = Sample(rng);
    out.SetRow(r, x);
  }
  return out;
}

}  // namespace cerl::stats
