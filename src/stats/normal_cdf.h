// Standard normal CDF and quantile. The synthetic generator's propensity
// score is a probit: e0 = Phi((a - mean(a)) / sd(a)).
#pragma once

namespace cerl::stats {

/// Phi(x), the standard normal CDF, via erfc for numerical stability.
double NormalCdf(double x);

/// Inverse CDF (Acklam's rational approximation, |error| < 1.2e-8).
double NormalQuantile(double p);

}  // namespace cerl::stats
