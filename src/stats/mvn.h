// Multivariate normal sampling via the Cholesky factor of the covariance.
// Used by the synthetic data generator (each domain draws covariates from
// N(mu_d, Sigma_d) with a domain-specific correlation structure).
#pragma once

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace cerl::stats {

/// Sampler for N(mean, cov); factorizes cov once at construction.
class MultivariateNormal {
 public:
  /// Fails with NumericalError if cov is not positive definite.
  static Result<MultivariateNormal> Create(linalg::Vector mean,
                                           const linalg::Matrix& cov);

  /// One draw (length = dim).
  linalg::Vector Sample(Rng* rng) const;

  /// n draws as rows of an n x dim matrix.
  linalg::Matrix SampleMatrix(Rng* rng, int n) const;

  int dim() const { return static_cast<int>(mean_.size()); }

 private:
  MultivariateNormal(linalg::Vector mean, linalg::Cholesky chol)
      : mean_(std::move(mean)), chol_(std::move(chol)) {}

  linalg::Vector mean_;
  linalg::Cholesky chol_;
};

}  // namespace cerl::stats
