#include "data/dataset.h"

#include <numeric>

#include "util/check.h"

namespace cerl::data {

int CausalDataset::num_treated() const {
  return static_cast<int>(std::accumulate(t.begin(), t.end(), 0));
}

int CausalDataset::num_control() const { return num_units() - num_treated(); }

linalg::Vector CausalDataset::TrueIte() const {
  CERL_CHECK_EQ(mu0.size(), mu1.size());
  linalg::Vector ite(mu0.size());
  for (size_t i = 0; i < ite.size(); ++i) ite[i] = mu1[i] - mu0[i];
  return ite;
}

double CausalDataset::TrueAte() const {
  const linalg::Vector ite = TrueIte();
  if (ite.empty()) return 0.0;
  double s = 0.0;
  for (double v : ite) s += v;
  return s / static_cast<double>(ite.size());
}

std::vector<int> CausalDataset::TreatedIndices() const {
  std::vector<int> idx;
  for (int i = 0; i < num_units(); ++i) {
    if (t[i] == 1) idx.push_back(i);
  }
  return idx;
}

std::vector<int> CausalDataset::ControlIndices() const {
  std::vector<int> idx;
  for (int i = 0; i < num_units(); ++i) {
    if (t[i] == 0) idx.push_back(i);
  }
  return idx;
}

CausalDataset CausalDataset::Subset(const std::vector<int>& indices) const {
  CausalDataset out;
  out.x = x.GatherRows(indices);
  out.t.reserve(indices.size());
  out.y.reserve(indices.size());
  out.mu0.reserve(indices.size());
  out.mu1.reserve(indices.size());
  for (int i : indices) {
    CERL_CHECK(i >= 0 && i < num_units());
    out.t.push_back(t[i]);
    out.y.push_back(y[i]);
    out.mu0.push_back(mu0[i]);
    out.mu1.push_back(mu1[i]);
  }
  return out;
}

void CausalDataset::CheckConsistent() const {
  const size_t n = static_cast<size_t>(num_units());
  CERL_CHECK_EQ(t.size(), n);
  CERL_CHECK_EQ(y.size(), n);
  CERL_CHECK_EQ(mu0.size(), n);
  CERL_CHECK_EQ(mu1.size(), n);
  for (int v : t) CERL_CHECK(v == 0 || v == 1);
}

DataSplit SplitDataset(const CausalDataset& d, Rng* rng, double train_frac,
                       double valid_frac) {
  CERL_CHECK(train_frac > 0.0 && valid_frac >= 0.0 &&
             train_frac + valid_frac < 1.0);
  const int n = d.num_units();
  std::vector<int> perm = rng->Permutation(n);
  const int n_train = static_cast<int>(train_frac * n);
  const int n_valid = static_cast<int>(valid_frac * n);
  std::vector<int> train_idx(perm.begin(), perm.begin() + n_train);
  std::vector<int> valid_idx(perm.begin() + n_train,
                             perm.begin() + n_train + n_valid);
  std::vector<int> test_idx(perm.begin() + n_train + n_valid, perm.end());
  DataSplit split;
  split.train = d.Subset(train_idx);
  split.valid = d.Subset(valid_idx);
  split.test = d.Subset(test_idx);
  return split;
}

CausalDataset ConcatDatasets(const std::vector<const CausalDataset*>& parts) {
  CERL_CHECK(!parts.empty());
  int total = 0;
  const int p = parts.front()->num_features();
  for (const auto* d : parts) {
    CERL_CHECK_EQ(d->num_features(), p);
    total += d->num_units();
  }
  CausalDataset out;
  out.x = linalg::Matrix(total, p);
  out.t.reserve(total);
  out.y.reserve(total);
  out.mu0.reserve(total);
  out.mu1.reserve(total);
  int row = 0;
  for (const auto* d : parts) {
    for (int i = 0; i < d->num_units(); ++i, ++row) {
      std::copy(d->x.row(i), d->x.row(i) + p, out.x.row(row));
      out.t.push_back(d->t[i]);
      out.y.push_back(d->y[i]);
      out.mu0.push_back(d->mu0[i]);
      out.mu1.push_back(d->mu1[i]);
    }
  }
  return out;
}

std::vector<DataSplit> SplitStream(const DomainStream& stream, Rng* rng,
                                   double train_frac, double valid_frac) {
  std::vector<DataSplit> splits;
  splits.reserve(stream.size());
  for (const auto& d : stream) {
    splits.push_back(SplitDataset(d, rng, train_frac, valid_frac));
  }
  return splits;
}

}  // namespace cerl::data
