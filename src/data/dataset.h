// Observational causal dataset containers. Each unit carries covariates x,
// a binary treatment t, the observed (factual) outcome y, and — because all
// benchmarks here are (semi-)synthetic — the ground-truth noiseless
// potential outcomes mu0/mu1 used only for evaluation (PEHE/ATE error),
// never for training.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::data {

/// One observational dataset (a single domain / data source).
struct CausalDataset {
  linalg::Matrix x;       ///< n x p covariates
  std::vector<int> t;     ///< treatment assignment (0/1)
  linalg::Vector y;       ///< observed factual outcome
  linalg::Vector mu0;     ///< ground-truth E[Y(0) | x] (evaluation only)
  linalg::Vector mu1;     ///< ground-truth E[Y(1) | x] (evaluation only)

  int num_units() const { return x.rows(); }
  int num_features() const { return x.cols(); }
  int num_treated() const;
  int num_control() const;

  /// Ground-truth individual treatment effects mu1 - mu0.
  linalg::Vector TrueIte() const;

  /// Ground-truth average treatment effect.
  double TrueAte() const;

  /// Indices of treated / control units.
  std::vector<int> TreatedIndices() const;
  std::vector<int> ControlIndices() const;

  /// Subset by unit indices (in order).
  CausalDataset Subset(const std::vector<int>& indices) const;

  /// Checks internal shape consistency (aborts on violation).
  void CheckConsistent() const;
};

/// Train / validation / test partition of one domain.
struct DataSplit {
  CausalDataset train;
  CausalDataset valid;
  CausalDataset test;
};

/// Randomly splits a dataset, default 60/20/20 as in the paper.
DataSplit SplitDataset(const CausalDataset& d, Rng* rng,
                       double train_frac = 0.6, double valid_frac = 0.2);

/// Concatenates datasets (units stacked; feature dims must match).
CausalDataset ConcatDatasets(const std::vector<const CausalDataset*>& parts);

/// A sequence of incrementally available domains (D_1, ..., D_d).
using DomainStream = std::vector<CausalDataset>;

/// Splits every domain of a stream with a shared rng.
std::vector<DataSplit> SplitStream(const DomainStream& stream, Rng* rng,
                                   double train_frac = 0.6,
                                   double valid_frac = 0.2);

}  // namespace cerl::data
