#include "data/topic_benchmark.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/distributions.h"
#include "util/logging.h"

namespace cerl::data {

DomainShift ParseDomainShift(const std::string& s) {
  if (s == "substantial") return DomainShift::kSubstantial;
  if (s == "moderate") return DomainShift::kModerate;
  if (s == "none") return DomainShift::kNone;
  CERL_CHECK_MSG(false, "unknown shift (want substantial|moderate|none)");
  return DomainShift::kNone;
}

const char* DomainShiftName(DomainShift shift) {
  switch (shift) {
    case DomainShift::kSubstantial: return "substantial";
    case DomainShift::kModerate: return "moderate";
    case DomainShift::kNone: return "none";
  }
  return "?";
}

TopicBenchmarkConfig NewsConfigSmall() {
  TopicBenchmarkConfig c;
  c.corpus.num_docs = 1600;
  c.corpus.vocab_size = 420;
  c.corpus.num_topics = 24;
  c.corpus.doc_length_mean = 60.0;
  c.lda.num_topics = 24;
  c.lda.iterations = 60;
  return c;
}

TopicBenchmarkConfig NewsConfigPaper() {
  TopicBenchmarkConfig c;
  c.corpus.num_docs = 5000;
  c.corpus.vocab_size = 3477;
  c.corpus.num_topics = 50;
  c.corpus.doc_length_mean = 120.0;
  c.lda.num_topics = 50;
  c.lda.iterations = 150;
  return c;
}

TopicBenchmarkConfig BlogCatalogConfigSmall() {
  TopicBenchmarkConfig c;
  c.corpus.num_docs = 1600;
  c.corpus.vocab_size = 300;
  c.corpus.num_topics = 24;
  c.corpus.doc_length_mean = 40.0;  // Blogger keyword lists are short.
  c.corpus.alpha = 0.05;            // More peaked interests per blogger.
  c.lda.num_topics = 24;
  c.lda.iterations = 60;
  return c;
}

TopicBenchmarkConfig BlogCatalogConfigPaper() {
  TopicBenchmarkConfig c;
  c.corpus.num_docs = 5196;
  c.corpus.vocab_size = 2160;
  c.corpus.num_topics = 50;
  c.corpus.doc_length_mean = 80.0;
  c.corpus.alpha = 0.05;
  c.lda.num_topics = 50;
  c.lda.iterations = 150;
  return c;
}

namespace {

// Assigns documents to the two domains based on their trained dominant
// topic, per the paper's three scenarios.
void AssignDomains(const std::vector<int>& dominant, int num_topics,
                   DomainShift shift, double moderate_fraction, Rng* rng,
                   std::vector<int>* domain1, std::vector<int>* domain2) {
  const int n = static_cast<int>(dominant.size());
  switch (shift) {
    case DomainShift::kSubstantial: {
      // No topic overlap: first half of topics vs second half.
      const int mid = num_topics / 2;
      for (int i = 0; i < n; ++i) {
        (dominant[i] < mid ? domain1 : domain2)->push_back(i);
      }
      break;
    }
    case DomainShift::kModerate: {
      // Overlapping topic ranges: [0, hi1) and [lo2, K). Documents whose
      // dominant topic falls in the overlap are split at random.
      const int hi1 = static_cast<int>(moderate_fraction * num_topics);
      const int lo2 = num_topics - hi1;
      CERL_CHECK_LT(lo2, hi1);  // Fractions > 0.5 guarantee an overlap.
      for (int i = 0; i < n; ++i) {
        const int k = dominant[i];
        if (k < lo2) {
          domain1->push_back(i);
        } else if (k >= hi1) {
          domain2->push_back(i);
        } else {
          (rng->Uniform() < 0.5 ? domain1 : domain2)->push_back(i);
        }
      }
      break;
    }
    case DomainShift::kNone: {
      // Random split: both domains draw from the same distribution.
      for (int i = 0; i < n; ++i) {
        (rng->Uniform() < 0.5 ? domain1 : domain2)->push_back(i);
      }
      break;
    }
  }
}

}  // namespace

TopicBenchmark GenerateTopicBenchmark(const TopicBenchmarkConfig& config) {
  Rng rng(config.seed);

  // 1. Corpus synthesis (stands in for NY Times / BlogCatalog raw data).
  topics::GeneratedCorpus gen = topics::GenerateLdaCorpus(config.corpus, &rng);

  // 2. Topic model trained on the corpus — exactly what the paper does.
  topics::LdaModel lda = topics::TrainLdaGibbs(gen.corpus, config.lda, &rng);
  const linalg::Matrix& z = lda.doc_topic();
  const int n = z.rows();
  const int k_topics = z.cols();

  // 3. Centroids: zc1 from one random document, zc0 the corpus average.
  TopicBenchmark out;
  const int pivot = static_cast<int>(rng.UniformInt(n));
  out.centroid_z1 = z.RowCopy(pivot);
  out.centroid_z0.assign(k_topics, 0.0);
  for (int d = 0; d < n; ++d) {
    for (int k = 0; k < k_topics; ++k) out.centroid_z0[k] += z(d, k);
  }
  for (double& v : out.centroid_z0) v /= n;

  // 4. Outcomes and treatments for every document.
  linalg::Vector s0(n), s1(n);  // z.zc0 and z.zc1 per doc
  for (int d = 0; d < n; ++d) {
    double a0 = 0.0, a1 = 0.0;
    for (int k = 0; k < k_topics; ++k) {
      a0 += z(d, k) * out.centroid_z0[k];
      a1 += z(d, k) * out.centroid_z1[k];
    }
    s0[d] = a0;
    s1[d] = a1;
  }
  std::vector<int> treat(n);
  linalg::Vector y(n), mu0(n), mu1(n);
  double prop_sum = 0.0;
  const double c_scale = config.outcome_scale_c;
  const double k_bias = config.selection_bias_k;
  for (int d = 0; d < n; ++d) {
    const double e0 = std::exp(k_bias * s0[d]);
    const double e1 = std::exp(k_bias * s1[d]);
    const double p1 = e1 / (e0 + e1);
    prop_sum += p1;
    treat[d] = SampleBernoulli(&rng, p1);
    mu0[d] = c_scale * s0[d];
    mu1[d] = c_scale * (s0[d] + s1[d]);
    const double mean = treat[d] == 1 ? mu1[d] : mu0[d];
    y[d] = mean + rng.Normal(0.0, config.noise_std);
  }
  out.mean_propensity = prop_sum / n;

  // 5. Domain assignment by trained dominant topic.
  std::vector<int> dom1, dom2;
  AssignDomains(lda.DominantTopics(), k_topics, config.shift,
                config.moderate_topic_fraction, &rng, &dom1, &dom2);
  CERL_CHECK_GT(dom1.size(), 0u);
  CERL_CHECK_GT(dom2.size(), 0u);

  linalg::Matrix counts = gen.corpus.ToCountMatrix();
  CausalDataset all;
  all.x = std::move(counts);
  all.t = std::move(treat);
  all.y = std::move(y);
  all.mu0 = std::move(mu0);
  all.mu1 = std::move(mu1);
  all.CheckConsistent();

  out.domains.push_back(all.Subset(dom1));
  out.domains.push_back(all.Subset(dom2));
  CERL_LOG(Debug) << "topic benchmark (" << DomainShiftName(config.shift)
                  << "): domain sizes " << dom1.size() << " / " << dom2.size()
                  << ", mean propensity " << out.mean_propensity;
  return out;
}

}  // namespace cerl::data
