#include "data/synthetic.h"

#include <cmath>

#include "corrgen/hub_correlation.h"
#include "linalg/ops.h"
#include "stats/mvn.h"
#include "stats/normal_cdf.h"
#include "util/check.h"
#include "util/distributions.h"
#include "util/logging.h"

namespace cerl::data {

SyntheticConfig SyntheticConfigSmall() {
  SyntheticConfig c;
  c.units_per_domain = 2000;
  return c;
}

VariableLayout LayoutOf(const SyntheticConfig& config) {
  VariableLayout l;
  l.confounder_begin = 0;
  l.confounder_end = config.num_confounders;
  l.instrument_begin = l.confounder_end;
  l.instrument_end = l.instrument_begin + config.num_instruments;
  l.irrelevant_begin = l.instrument_end;
  l.irrelevant_end = l.irrelevant_begin + config.num_irrelevant;
  l.adjuster_begin = l.irrelevant_end;
  l.adjuster_end = l.adjuster_begin + config.num_adjusters;
  return l;
}

namespace {

// Draws a uniform(0,1) weight vector of length n (the paper's b ~ U(0,1)).
linalg::Vector UniformWeights(Rng* rng, int n) {
  linalg::Vector w(n);
  for (double& v : w) v = rng->Uniform();
  return w;
}

// dot of selected columns of row `x` with weights (cols: two ranges).
double RangesDot(const double* x, int b1, int e1, int b2, int e2,
                 const linalg::Vector& w) {
  double s = 0.0;
  int wi = 0;
  for (int c = b1; c < e1; ++c) s += x[c] * w[wi++];
  for (int c = b2; c < e2; ++c) s += x[c] * w[wi++];
  return s;
}

}  // namespace

SyntheticStream GenerateSyntheticStream(const SyntheticConfig& config) {
  CERL_CHECK_GT(config.num_domains, 0);
  CERL_CHECK_GT(config.units_per_domain, 1);
  const int p = config.num_features();
  const VariableLayout lay = LayoutOf(config);

  Rng master(config.seed);
  // Shared causal mechanism: weights for tau, g (over C,A) and a (over C,Z).
  Rng weights_rng = master.Split();
  const int n_ca = config.num_confounders + config.num_adjusters;
  const int n_cz = config.num_confounders + config.num_instruments;
  // Raw weights per the paper; rescaled once on the first domain's sample
  // so the sin/cos arguments have the configured standard deviation (the
  // covariates are strongly correlated within blocks, so an analytic
  // normalization would underestimate the argument variance).
  linalg::Vector b_tau = UniformWeights(&weights_rng, n_ca);
  linalg::Vector b_g = UniformWeights(&weights_rng, n_ca);
  linalg::Vector b_a = UniformWeights(&weights_rng, n_cz);
  bool weights_calibrated = false;

  SyntheticStream out;
  for (int d = 0; d < config.num_domains; ++d) {
    Rng rng = master.Split();

    // Domain-specific mean vector and covariance structure.
    linalg::Vector mu(p);
    for (double& v : mu) v = rng.Uniform(-config.mean_shift, config.mean_shift);

    auto block = [&](int size) {
      corrgen::HubBlockSpec s;
      s.size = size;
      s.rho_max = rng.Uniform(config.rho_max_lo, config.rho_max_hi);
      s.rho_min = rng.Uniform(config.rho_min_lo, config.rho_min_hi);
      s.gamma = rng.Uniform(config.gamma_lo, config.gamma_hi);
      return s;
    };
    const std::vector<corrgen::HubBlockSpec> specs = {
        block(config.num_confounders), block(config.num_instruments),
        block(config.num_irrelevant), block(config.num_adjusters)};
    auto corr = corrgen::GenerateCorrelationMatrix(
        specs, config.noise_fraction, config.noise_dim, &rng);
    CERL_CHECK_MSG(corr.ok(), corr.status().ToString().c_str());

    linalg::Vector stds(p);
    for (double& v : stds) v = rng.Uniform(config.std_lo, config.std_hi);
    const linalg::Matrix cov =
        corrgen::CorrelationToCovariance(corr.value(), stds);

    auto mvn = stats::MultivariateNormal::Create(mu, cov);
    CERL_CHECK_MSG(mvn.ok(), mvn.status().ToString().c_str());

    const int n = config.units_per_domain;
    CausalDataset ds;
    ds.x = mvn.value().SampleMatrix(&rng, n);

    if (!weights_calibrated) {
      // Empirical argument std over the first domain, per weight vector.
      auto rescale = [&](linalg::Vector* b, int b1, int e1, int b2, int e2) {
        linalg::Vector arg(n);
        for (int i = 0; i < n; ++i) {
          arg[i] = RangesDot(ds.x.row(i), b1, e1, b2, e2, *b);
        }
        const double sd = std::sqrt(std::max(linalg::Variance(arg), 1e-12));
        const double scale = config.argument_std_target / sd;
        for (double& v : *b) v *= scale;
      };
      rescale(&b_tau, lay.confounder_begin, lay.confounder_end,
              lay.adjuster_begin, lay.adjuster_end);
      rescale(&b_g, lay.confounder_begin, lay.confounder_end,
              lay.adjuster_begin, lay.adjuster_end);
      rescale(&b_a, lay.confounder_begin, lay.confounder_end,
              lay.instrument_begin, lay.instrument_end);
      weights_calibrated = true;
    }

    // Propensity: a = sin((C,Z).b_a), standardized within domain, probit.
    linalg::Vector a(n);
    for (int i = 0; i < n; ++i) {
      a[i] = std::sin(RangesDot(ds.x.row(i), lay.confounder_begin,
                                lay.confounder_end, lay.instrument_begin,
                                lay.instrument_end, b_a));
    }
    const double a_mean = linalg::Mean(a);
    const double a_sd = std::sqrt(std::max(linalg::Variance(a), 1e-12));

    ds.t.resize(n);
    ds.y.resize(n);
    ds.mu0.resize(n);
    ds.mu1.resize(n);
    double prop_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const double e0 = stats::NormalCdf((a[i] - a_mean) / a_sd);
      prop_sum += e0;
      ds.t[i] = SampleBernoulli(&rng, e0);

      const double* row = ds.x.row(i);
      const double tau_arg = RangesDot(row, lay.confounder_begin,
                                       lay.confounder_end, lay.adjuster_begin,
                                       lay.adjuster_end, b_tau);
      const double g_arg = RangesDot(row, lay.confounder_begin,
                                     lay.confounder_end, lay.adjuster_begin,
                                     lay.adjuster_end, b_g);
      const double tau = std::sin(tau_arg) * std::sin(tau_arg);
      const double g = std::cos(g_arg) * std::cos(g_arg);
      ds.mu0[i] = g;
      ds.mu1[i] = g + tau;
      const double mean = ds.t[i] == 1 ? ds.mu1[i] : ds.mu0[i];
      ds.y[i] = mean + rng.Normal(0.0, config.outcome_noise_std);
    }
    ds.CheckConsistent();
    out.mean_propensity.push_back(prop_sum / n);
    out.domains.push_back(std::move(ds));
    CERL_LOG(Debug) << "synthetic domain " << d << ": n=" << n
                    << " treated=" << out.domains.back().num_treated()
                    << " mean propensity=" << out.mean_propensity.back();
  }
  return out;
}

}  // namespace cerl::data
