// Semi-synthetic News / BlogCatalog benchmark (paper §IV-A), extended to
// incrementally available domains with controllable shift.
//
// Pipeline (identical to the paper's, with a generative-LDA corpus standing
// in for the non-redistributable NY Times / BlogCatalog bag-of-words data):
//   1. synthesize a corpus; units are documents, covariates are word counts;
//   2. train an LDA topic model by collapsed Gibbs; z(x) = topic mixture;
//   3. centroids: zc1 = topic distribution of one randomly sampled document
//      (mobile), zc0 = average topic representation of all documents
//      (desktop);
//   4. outcome  y(x) = C * (z(x).zc0 + t * z(x).zc1) + N(0,1), C = 60;
//      treatment p(t=1|x) = e^{k z.zc1} / (e^{k z.zc0} + e^{k z.zc1}), k=10;
//   5. split documents into two sequential domains by trained dominant
//      topic: substantial shift = first half vs second half of topics,
//      moderate = overlapping topic ranges (1-35 vs 16-50 out of 50),
//      none = random split.
#pragma once

#include <string>

#include "data/dataset.h"
#include "topics/lda_generative.h"
#include "topics/lda_gibbs.h"

namespace cerl::data {

/// Degree of distribution shift between sequential domains (paper Table I).
enum class DomainShift { kSubstantial, kModerate, kNone };

/// Parses "substantial" / "moderate" / "none".
DomainShift ParseDomainShift(const std::string& s);
const char* DomainShiftName(DomainShift shift);

/// Configuration of the topic benchmark.
struct TopicBenchmarkConfig {
  topics::GenerativeLdaConfig corpus;  ///< synthetic corpus shape
  topics::LdaGibbsConfig lda;          ///< trained topic model (paper: 50)
  double outcome_scale_c = 60.0;       ///< C
  double selection_bias_k = 10.0;      ///< k
  double noise_std = 1.0;
  DomainShift shift = DomainShift::kSubstantial;
  /// Fraction of topics per domain under moderate shift (paper: 35/50).
  double moderate_topic_fraction = 0.7;
  uint64_t seed = 1;
};

/// News preset at reduced scale (paper: 5000 docs, 3477 words, 50 topics).
TopicBenchmarkConfig NewsConfigSmall();
/// News preset at paper scale.
TopicBenchmarkConfig NewsConfigPaper();
/// BlogCatalog preset at reduced scale (paper: 5196 units, 2160 features).
TopicBenchmarkConfig BlogCatalogConfigSmall();
/// BlogCatalog preset at paper scale.
TopicBenchmarkConfig BlogCatalogConfigPaper();

/// The generated two-domain stream plus generator diagnostics.
struct TopicBenchmark {
  DomainStream domains;            ///< two sequential datasets
  linalg::Vector centroid_z0;      ///< desktop centroid (topic space)
  linalg::Vector centroid_z1;      ///< mobile centroid (topic space)
  double mean_propensity = 0.0;    ///< average p(t=1|x) across units
};

/// Generates the benchmark. Deterministic in config.seed.
TopicBenchmark GenerateTopicBenchmark(const TopicBenchmarkConfig& config);

}  // namespace cerl::data
