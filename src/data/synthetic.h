// Synthetic multi-domain generator of paper §IV-C.
//
// Covariates X = (C, Z, I, A): 35 confounders, 10 instruments, 20 irrelevant
// variables, 35 adjustment variables (100 total by default). Per domain d,
// X ~ N(mu_d, Sigma_d) where mu_d is domain-specific and Sigma_d comes from
// the Hardin-Garcia-Golan hub-Toeplitz construction with cross-type noise.
//
// Outcome (partially linear regression, Robinson 1988):
//   Y = tau(C, A) * T + g(C, A) + eps,       eps ~ N(0, 1)
//   tau(C, A) = sin((C, A) . b_tau)^2        (heterogeneous effect)
//   g(C, A)   = cos((C, A) . b_g)^2          (nuisance)
// Treatment via probit propensity on confounders and instruments:
//   a = sin((C, Z) . b_a),  e0 = Phi((a - mean(a)) / sd(a)),
//   T ~ Bernoulli(e0).
// The weight vectors b_tau, b_g, b_a ~ U(0, 1) are drawn once and shared by
// all domains: the causal mechanism is stable, only the covariate
// distribution shifts.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace cerl::data {

/// Configuration of the synthetic stream (defaults = paper values).
struct SyntheticConfig {
  int num_confounders = 35;   ///< C
  int num_instruments = 10;   ///< Z
  int num_irrelevant = 20;    ///< I
  int num_adjusters = 35;     ///< A
  int units_per_domain = 10000;
  int num_domains = 5;

  /// Per-domain mean vectors are drawn from U(-shift, shift) entrywise.
  double mean_shift = 2.0;
  /// Per-variable standard deviations from U(std_lo, std_hi).
  double std_lo = 0.5;
  double std_hi = 1.5;
  /// Hub-correlation parameter ranges (per domain, per block).
  double rho_max_lo = 0.55, rho_max_hi = 0.85;
  double rho_min_lo = 0.05, rho_min_hi = 0.25;
  double gamma_lo = 0.5, gamma_hi = 2.0;
  /// Cross-type noise (fraction of the smallest eigenvalue) and Gram dim.
  double noise_fraction = 0.5;
  int noise_dim = 50;

  double outcome_noise_std = 1.0;

  /// Target standard deviation of the arguments fed to sin/cos. The paper
  /// draws b ~ U(0,1) per covariate; over 70 covariates the raw argument
  /// has std ~5 rad, so sin^2/cos^2 wrap several periods and the effect
  /// surface degenerates into unlearnable high-frequency noise. Scaling the
  /// weight vectors to a unit-order argument preserves the functional form
  /// at the intended smoothness.
  double argument_std_target = 0.6;

  uint64_t seed = 7;

  int num_features() const {
    return num_confounders + num_instruments + num_irrelevant + num_adjusters;
  }
};

/// Reduced-scale preset for the 2-core container.
SyntheticConfig SyntheticConfigSmall();

/// Column layout of the generated X (for diagnostics, e.g. the Fig. 2
/// variable-role bench).
struct VariableLayout {
  int confounder_begin, confounder_end;  ///< [begin, end)
  int instrument_begin, instrument_end;
  int irrelevant_begin, irrelevant_end;
  int adjuster_begin, adjuster_end;
};

VariableLayout LayoutOf(const SyntheticConfig& config);

/// The generated stream plus per-domain diagnostics.
struct SyntheticStream {
  DomainStream domains;
  std::vector<double> mean_propensity;  ///< per domain
};

/// Generates `config.num_domains` sequential datasets. Deterministic in
/// config.seed; the causal weights are derived from the seed and shared
/// across domains.
SyntheticStream GenerateSyntheticStream(const SyntheticConfig& config);

}  // namespace cerl::data
