// StreamEngine — concurrent multiplexing of independent CERL streams.
//
// The paper's setting is a stream of incrementally arriving domains
// (Algorithm 1); deployments serve MANY such streams at once (one per
// tenant / scenario / data source — arXiv:2301.01026 frames continual
// causal estimation as exactly this). The engine owns a shared
// util::WorkStealingPool of stream workers and drives each registered
// stream through the explicit per-domain stage pipeline exposed by
// core::CerlTrainer:
//
//   PushDomain ──► [pre-flight validation]          (shared pool, immediate)
//                  [ingest/standardize: BeginStage] ┐
//                  [train + validate:   TrainStage] ├ per-stream TaskGroup
//                  [herd/migrate:       MigrateStage]┘  (FIFO, serialized)
//
// Pipelining:
//  - across streams, every stage runs concurrently — stream A's herding
//    overlaps stream B's training on different workers;
//  - within a stream, pre-flight validation of queued domains overlaps the
//    current stage's training (it is pure and runs as a free pool task the
//    moment the domain is pushed), and TrainStage itself overlaps the
//    early-stopping validation pass with the next epoch's batches when
//    config.train.async_validation is set. The algorithmic chain
//    train(d) -> migrate(d) -> train(d+1) is inherently sequential (stage
//    d+1 replays the memory M_d), so it stays serialized by the TaskGroup.
//
// Scheduling (SchedulePolicy::kCostAware, the default): ready stage work is
// ordered longest-expected-queue-first — each stream's strand carries a
// priority equal to its expected pending milliseconds under a per-stream
// EWMA stage cost model (stream/cost_model.h), stage tasks prefer the
// stream's home worker, and idle workers steal the globally most-backlogged
// stream's next stage. A backlogged tenant therefore drains continuously at
// its own stage cadence instead of one stage per round-robin cycle of every
// ready stream, which is what bounds tail latency under skewed multi-tenant
// load (bench/load_generator.cc measures it; README "Scheduling & SLOs").
// SchedulePolicy::kRoundRobin keeps the legacy strict-FIFO dispatch as the
// A/B baseline.
//
// Determinism: a stream's results depend only on its own config/seed and
// pushed domains. One stream through the engine is bit-identical to calling
// CerlTrainer::ObserveDomain serially, and each of N concurrent streams is
// bit-identical to running it alone — the shared-pool kernels reduce in a
// fixed order, all per-stream RNG streams live in the trainer/context, and
// stage serialization (TaskGroup) carries the cross-worker memory fences.
// Both properties are asserted by tests/stream_engine_test.cc.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "causal/metrics.h"
#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "ot/fused_micro_solver.h"
#include "serve/batch_predictor.h"
#include "serve/effect_snapshot.h"
#include "stream/cost_model.h"
#include "util/histogram.h"
#include "util/scheduler.h"
#include "util/task_group.h"

namespace cerl::storage {
class BufferPool;
class DiskManager;
class TenantStore;
class Wal;
}  // namespace cerl::storage

namespace cerl::stream {

/// How the engine orders ready stage work across streams (see
/// util/scheduler.h for the pool mechanics). Either policy produces
/// bit-identical stream results — scheduling only picks WHO runs next.
enum class SchedulePolicy : uint8_t {
  /// Longest-expected-queue-first: each stream's dispatch priority is its
  /// expected pending milliseconds under its StageCostModel, stage tasks
  /// have worker affinity, and idle workers steal. The default.
  kCostAware = 0,
  /// Strict FIFO over all streams' stage tasks — the legacy round-robin
  /// dispatch, kept as the A/B baseline for the SLO bench and tests.
  kRoundRobin = 1,
};

struct StreamEngineOptions {
  /// Stream workers (the pool running stage tasks; compute kernels inside a
  /// stage fan out to the global pool as usual). 0 = hardware concurrency.
  int num_workers = 0;
  /// Ready-work ordering across streams. Runtime scheduling choice, not
  /// durable state (snapshots neither save nor restore it).
  SchedulePolicy schedule_policy = SchedulePolicy::kCostAware;
  /// Run CerlTrainer::ValidateDomain on the shared pool as soon as a domain
  /// is pushed, overlapping earlier stages; the ingest stage then merely
  /// checks the verdict. Off = validate inside the ingest stage.
  bool validate_on_push = true;
  /// Route each stream's tiny Sinkhorn solves (below
  /// SinkhornConfig::min_parallel_elements) through the engine's shared
  /// ot::MicroSolveBatcher, which fuses concurrent same-shape solves from
  /// different stream workers into one SIMD-lane sweep. Per problem the
  /// fused solve is bit-identical to the solo path (see
  /// fused_micro_solver.h), so this is a pure scheduling choice — a runtime
  /// option, not durable state (snapshots neither save nor restore it).
  bool fuse_micro_solves = true;

  // --- Fault isolation (per-tenant health; see README "Failure model") ---

  /// Numerical health guards at stage boundaries: a non-finite validation
  /// loss, parameter, or memory representation rolls the stream's trainer
  /// back to its last-good domain boundary (in-memory CERLCKP1 blob,
  /// captured after every successful domain) and retries the domain. Off =
  /// no guard scans and no last-good capture; a failed domain then leaves
  /// the trainer wherever the failure left it (the bench's guards-off
  /// configuration measures the pure pipeline).
  bool health_guards = true;
  /// Admission bound: PushDomain returns kResourceExhausted while a
  /// stream's queued (not yet dispatched) domains are at this count.
  /// 0 = unbounded.
  int max_queued_domains = 0;
  /// Failed-domain retries before the domain is dropped. Each retry rolls
  /// back (health_guards) and replays the identical stage pipeline, so a
  /// transient fault recovers bit-identically; a deterministic one fails
  /// again and falls through to the drop.
  int max_domain_retries = 2;
  /// Backoff before retry r is retry_backoff_ms << (r-1) milliseconds,
  /// capped at 100ms. The waiting domain is parked on the pool's timer
  /// heap (WorkStealingPool::ExecuteAfter) — no worker is occupied while
  /// the backoff elapses, so under faults every scheduler slot keeps
  /// serving healthy streams.
  int retry_backoff_ms = 1;
  /// Consecutive dropped domains after which the stream is quarantined:
  /// its queue is rejected with kUnavailable, as is every later push.
  int quarantine_after_failures = 2;
  /// SaveSnapshot retries transient WriteFileAtomic failures this many
  /// times with exponential backoff before reporting the IO error.
  int snapshot_io_retries = 3;
  /// Backoff before snapshot-write retry r: snapshot_retry_backoff_ms <<
  /// (r-1) milliseconds, capped at 100ms.
  int snapshot_retry_backoff_ms = 1;

  // --- Serving plane (QueryEffect / QueryEffectBatch) -------------------

  /// Publish an immutable serve::EffectSnapshot after every successful
  /// domain migration (and after LoadSnapshot restores a trained stream),
  /// making the stream queryable concurrently with training. Off = no
  /// snapshot builds on the write path (queries return
  /// kFailedPrecondition); the bench's publish-off configuration isolates
  /// the serving plane's ingest cost.
  bool publish_snapshots = true;

  // --- Paged tenant-state storage (src/storage/; see README "Storage
  // engine & durability"). Activated by OpenStorage()/Recover(). ----------

  /// Single-file page store for spilled tenant state ("" = no spill
  /// store). The store is a RAM extension, not a durability source:
  /// durability is snapshot + WAL, and the store is repopulated organically
  /// after a crash as tenants go cold again.
  std::string storage_path;
  /// Spill target: when more than this many streams hold live trainer
  /// state, the least-recently-active idle streams are spilled (CERLCKP1
  /// blob to the store, trainer reset) and fault back on their next pushed
  /// domain. 0 = unbounded (never spill). Requires storage_path.
  int max_resident_streams = 0;
  /// Page cache frames between the engine and the store file (4 KiB each).
  int buffer_pool_frames = 256;
  /// Write-ahead log ("" = no WAL): every accepted domain (and stream
  /// registration) is logged on arrival, making "accepted implies
  /// recoverable" hold between snapshots — PushDomain returns IoError and
  /// does NOT accept the domain if its WAL append fails. Recover() replays
  /// the log into a fresh engine bit-identically.
  std::string wal_path;
  /// fsync the WAL after every append: machine-crash durability at one
  /// fsync per accepted domain. Off (default) survives process death only
  /// (the write() completed before PushDomain returned).
  bool wal_fsync = false;
  /// O(dirty streams) snapshots: streams whose trainer is unchanged since
  /// the last blob capture re-embed the cached CERLCKP1 blob instead of
  /// re-serializing. Off = every SaveSnapshot re-serializes every trainer
  /// (the full-rewrite baseline arm of the snapshot bench).
  bool snapshot_reuse_blobs = true;
};

/// Per-stream health (Healthy -> Degraded -> Quarantined). Degraded means
/// at least one recent domain attempt failed (rollback/retry in progress or
/// a domain was dropped); the next fully successful domain returns the
/// stream to Healthy. Quarantined is terminal for the stream: reached after
/// `quarantine_after_failures` consecutive dropped domains, it sheds all
/// queued and future work with kUnavailable while other streams keep
/// serving.
enum class StreamHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
};

/// Short human-readable name ("healthy", "degraded", "quarantined").
const char* StreamHealthName(StreamHealth health);

/// One stream's scheduler observability surface (StreamEngine::sched_stats):
/// everything an operator needs to answer "why is this tenant slow" — how
/// much work is waiting, what the engine thinks it costs, how well that
/// estimate tracks reality, and the completion-latency distribution it all
/// produces. Aggregated across streams by StreamEngine::TotalSchedStats
/// (counters sum, histograms merge, the error is observation-weighted).
struct StreamSchedStats {
  /// Domains queued but not yet dispatched, plus the in-flight one.
  int queue_depth = 0;
  /// Plain EWMA of observed wall ms per stage, indexed by StageKind
  /// (0 while the stage is cold).
  double ewma_stage_cost_ms[kNumStages] = {0.0, 0.0, 0.0};
  /// Stage tasks of this stream executed by a worker other than the
  /// stream's home worker (always 0 under SchedulePolicy::kRoundRobin).
  int64_t steal_count = 0;
  /// Stage executions observed by the cost model.
  int64_t stages_executed = 0;
  /// Cost-model accuracy: mean absolute percentage error of warm stage
  /// predictions (StageCostModel::mean_abs_pct_error).
  double cost_model_error = 0.0;
  /// The stream's current dispatch priority: expected pending milliseconds
  /// (queued domains plus the in-flight domain's remaining stages).
  double expected_pending_ms = 0.0;
  /// Push-to-migrated latency of every successful domain, ms.
  LatencyHistogram completion_latency;
};

/// Outcome of one pushed domain of one stream — trained or dropped.
struct DomainResult {
  int domain_index = 0;          ///< 0-based push order within the stream
  causal::TrainStats stats;      ///< TrainStage statistics
  int memory_units = 0;          ///< bank size right after this migration
  bool has_metrics = false;      ///< test split carried ground truth
  causal::CausalMetrics metrics; ///< PEHE / ATE error on the test split
  /// OK for a trained domain; the final failure for a dropped one
  /// (validation reject, exhausted retries, or quarantine shed). Dropped
  /// domains carry no stats/metrics.
  Status status;
  int attempts = 1;              ///< pipeline attempts consumed (1 + retries)
};

/// Per-thread handle for the effect-query read path (see
/// StreamEngine::CreateQueryContext). Owns the thread's inference arena and
/// its cached per-stream snapshot references + query counters; opaque
/// outside the engine.
class QueryContext;

/// Read-side metadata returned with each answered effect query.
struct EffectQueryMeta {
  /// Version of the snapshot that answered the query (1-based publish
  /// sequence number of the stream).
  uint64_t snapshot_version = 0;
  /// Trained domains baked into that snapshot.
  int snapshot_stage = 0;
  /// The stream is quarantined: this answer comes from its last-good model
  /// and will not refresh. Healthy/degraded streams answer with stale=false
  /// (a degraded stream's rollback target IS its published snapshot).
  bool stale = false;
};

/// One stream's serving observability (StreamEngine::query_stats): what is
/// published and how it is being read. Counters/latency are merged across
/// every QueryContext.
struct StreamQueryStats {
  uint64_t snapshot_version = 0;  ///< 0 = nothing published yet
  int snapshot_stage = 0;
  /// Milliseconds since the current snapshot was published (0 if none).
  double staleness_ms = 0.0;
  /// The stream is serving its last-good snapshot from quarantine.
  bool stale = false;
  int64_t queries = 0;   ///< answered QueryEffect/QueryEffectBatch calls
  int64_t rows = 0;      ///< total covariate rows evaluated
  int64_t rejected = 0;  ///< rejected queries (no snapshot / bad dims)
  /// Per-call serving latency across all contexts, ms.
  LatencyHistogram latency;
};

class StreamEngine {
 public:
  explicit StreamEngine(const StreamEngineOptions& options = {});
  /// Drains every stream (TaskGroup destructors wait) before teardown.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers a tenant stream; returns its id. Streams are fully
  /// independent: own trainer, own memory bank, own RNG streams.
  int AddStream(std::string name, const core::CerlConfig& config,
                int input_dim);

  /// Enqueues the next domain of stream `id`, or sheds it with a typed
  /// reject: kNotFound for an unknown stream id, kUnavailable for a
  /// quarantined stream, kResourceExhausted when the stream's queue is at
  /// options.max_queued_domains. On OK the call returns immediately: the
  /// domain's pre-flight validation starts on the shared pool, and the
  /// domain joins the stream's queue — its ingest -> train -> migrate
  /// pipeline is dispatched onto the stream's task group as soon as the
  /// previous domain completes (one pipeline in flight per stream, so a
  /// snapshot can fence at a domain boundary and journal the rest).
  /// A rejected push leaves no trace: no result slot, no domain index.
  /// Malformed domains are accepted here and dropped by the pipeline with
  /// the validation error recorded in their DomainResult — data-dependent
  /// failures never abort the process.
  Status PushDomain(int id, data::DataSplit split);

  /// Blocks until every pushed domain of every stream is fully processed
  /// (trained or dropped). A zero-stream engine drains immediately.
  void Drain();

  /// Blocks until stream `id` alone is drained (other streams keep going).
  /// Returns kNotFound for an unknown id. Safe to call concurrently from
  /// multiple threads.
  Status DrainStream(int id);

  // --- Per-stream health (see StreamHealth) -----------------------------

  StreamHealth health(int id) const;
  /// Dropped domains in a row (resets to 0 on a successful domain).
  int consecutive_failures(int id) const;
  /// Total domains dropped over the stream's lifetime (including
  /// quarantine-shed ones).
  int failed_domains(int id) const;

  // --- Scheduler observability (see StreamSchedStats) -------------------

  /// Snapshot of stream `id`'s scheduling state. Safe to call while the
  /// engine is under load (it locks the engine state briefly).
  StreamSchedStats sched_stats(int id) const;
  /// Engine-wide aggregate: counters summed, completion histograms merged,
  /// cost-model error weighted by each stream's scored predictions.
  StreamSchedStats TotalSchedStats() const;
  /// Cross-queue pops of homed tasks at the pool level (0 under FIFO).
  int64_t steal_count() const { return pool_.steal_count(); }

  int num_streams() const { return static_cast<int>(streams_.size()); }
  const std::string& name(int id) const;

  /// Per-domain results in push order. Stable only while the stream is
  /// drained (call Drain()/DrainStream(id) first).
  const std::vector<DomainResult>& results(int id) const;

  /// The stream's trainer (e.g. for PredictIte / checkpointing). Only
  /// touch a drained stream — the engine's stage tasks own it otherwise.
  core::CerlTrainer& trainer(int id);

  int num_workers() const { return pool_.num_threads(); }

  // --- Effect-query serving plane (stream/query_plane.cc) ---------------
  //
  // Reads run concurrently with training and never block or get blocked by
  // the stage pipeline: each stream's finish task publishes an immutable
  // serve::EffectSnapshot (copy-on-publish, RCU-style shared_ptr swap), and
  // the query path is lock-free in steady state — a relaxed/acquire version
  // check against the context's cached snapshot, zero shared_ptr traffic
  // while the version is unchanged, and a forward pass through the
  // context's reusable arena (no allocations after warm-up).

  /// Creates a query handle for one reader thread (a context must not be
  /// used from two threads at once; create one per thread). Owned by the
  /// engine, freed at engine destruction. Register every stream BEFORE
  /// creating contexts — a context sizes its per-stream slots at creation
  /// and rejects later-added stream ids with kInvalidArgument.
  QueryContext* CreateQueryContext();

  /// ITE for one user (covariate row `x` of `input_dim` doubles) under
  /// stream `id`'s current snapshot, in original outcome units — bitwise
  /// equal to the publishing trainer's PredictIte. kNotFound for a bad id,
  /// kInvalidArgument on a dimension mismatch, kFailedPrecondition before
  /// the stream's first publish. Quarantined streams ANSWER (last-good
  /// snapshot) with meta->stale set rather than erroring.
  Status QueryEffect(QueryContext* ctx, int id, const double* x,
                     int input_dim, double* ite,
                     EffectQueryMeta* meta = nullptr);

  /// Batched variant: ITE per row of x_raw (n x input_dim) into `ite`
  /// (resized to n; reuse the vector to stay allocation-free). One snapshot
  /// answers the whole batch — no torn reads across rows.
  Status QueryEffectBatch(QueryContext* ctx, int id,
                          const linalg::Matrix& x_raw, linalg::Vector* ite,
                          EffectQueryMeta* meta = nullptr);

  /// The stream's currently published snapshot (nullptr before the first
  /// publish). Same acquire load the query path uses; the returned
  /// reference stays valid for as long as the caller holds it.
  std::shared_ptr<const serve::EffectSnapshot> effect_snapshot(int id) const;

  /// Serving stats of stream `id`: published version/stage/staleness plus
  /// query counters and latency merged across every QueryContext.
  StreamQueryStats query_stats(int id) const;

  // --- Snapshot / restore (engine_checkpoint.cc) ------------------------

  /// What a SaveSnapshot captured (filled at the snapshot fence).
  struct SnapshotInfo {
    int num_streams = 0;
    int completed_domains = 0;  ///< fully trained+migrated, summed
    int journaled_domains = 0;  ///< queued-but-untrained, summed
    /// Streams whose trainer blob had to be re-serialized at the fence
    /// (changed since the last capture, or blob caching disabled).
    int dirty_streams = 0;
    /// Streams whose blob was reused: memcpy of the cached capture, or a
    /// page-store read for a spilled stream. dirty + reused + untrained
    /// streams = num_streams.
    int reused_blobs = 0;
    /// Wall milliseconds spent building the container under the fence —
    /// the O(dirty) work the storage engine bounds (file write excluded;
    /// the snapshot bench gates on this).
    double serialize_ms = 0.0;
  };

  /// Drain-consistent snapshot of the ENTIRE engine under load: pauses
  /// dispatch, waits for every stream's in-flight domain pipeline to reach
  /// its domain boundary (workers stay up; queued domains stay queued; a
  /// domain mid-retry resolves — succeeds or drops — before the fence),
  /// writes a CERLENG3 container — engine options, per-stream name / config
  /// / completed-domain counter / health state (health, consecutive
  /// failures, dropped-domain total), learned stage cost rates, each
  /// stream's embedded CERLCKP1 trainer blob, and a replay journal of the
  /// still-queued domains so pushed work is never lost — then resumes
  /// dispatch. The write is
  /// crash-safe (temp file + fsync + atomic rename), carries a checksum,
  /// and transient IO failures are retried with bounded exponential
  /// backoff (options.snapshot_io_retries). Concurrent PushDomain is safe:
  /// a push lands either in the journal or in the resumed queue.
  Status SaveSnapshot(const std::string& path, SnapshotInfo* info = nullptr);

  /// Rebuilds a saved engine into THIS engine, which must be freshly
  /// constructed (no streams registered): re-creates every stream from its
  /// serialized config, restores each trainer bit-identically (re-seeding
  /// its last-good rollback blob), restores health/quarantine state, and
  /// re-enqueues the journaled domains in their original order (training
  /// resumes immediately on the engine's workers; a quarantined stream's
  /// journal drains through the pipeline as kUnavailable drops, exactly as
  /// it would have in the saved engine). Reads CERLENG3 plus the older
  /// CERLENG2 (predates the cost-model block: streams restore with cold
  /// cost models and re-learn rates within a few stages) and CERLENG1
  /// (also predates health state: streams restore as healthy).
  /// Worker count and validate_on_push stay as THIS engine was constructed
  /// — they are runtime scheduling choices, not durable state. Per-domain
  /// results of the saved engine are not restored (stats are transient
  /// diagnostics); domain indices continue from the saved counters.
  /// All-or-nothing: on any error the engine still has zero streams.
  Status LoadSnapshot(const std::string& path);

  // --- Paged tenant-state storage + WAL (engine_storage.cc) -------------

  /// Opens the storage plane configured in options_ (page store and/or
  /// WAL) on a fresh engine (no streams). Does NOT replay the WAL — use
  /// Recover() on restart; OpenStorage() alone is for a first boot or for
  /// spill-only use. Idempotent once open.
  Status OpenStorage();

  /// Full restart path: OpenStorage(), then LoadSnapshot(snapshot_path)
  /// when that file exists (missing = cold start), then replay of every
  /// WAL record the snapshot does not subsume — stream registrations the
  /// snapshot predates, and per stream exactly the accepted domains whose
  /// index is at or past its restored completed count, in original push
  /// order. The rebuilt engine trains on bit-identically to the
  /// uninterrupted run. Requires a fresh engine; snapshot_path may be ""
  /// (WAL-only recovery).
  Status Recover(const std::string& snapshot_path);

  /// Faults stream `id`'s state back in from the page store if it was
  /// spilled (no-op while resident). Only touch a drained stream — same
  /// contract as trainer(id); the ingest pipeline faults in automatically
  /// on the next pushed domain.
  Status EnsureResident(int id);

  /// Storage-plane observability.
  struct StorageStats {
    int resident_streams = 0;   ///< live trainer state in RAM
    int spilled_streams = 0;    ///< serialized to the page store
    int64_t spills = 0;         ///< lifetime spill count
    int64_t fault_backs = 0;    ///< lifetime fault-back count
    uint64_t store_blob_bytes = 0;  ///< payload bytes in the tenant store
    uint32_t store_pages = 0;       ///< pages in the store file
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t pool_evictions = 0;
    uint64_t wal_bytes = 0;         ///< current WAL file size
    uint64_t wal_records = 0;       ///< records appended this process
  };
  StorageStats storage_stats() const;

 private:
  struct PendingDomain;
  struct StreamState;

  StreamState& stream(int id);
  const StreamState& stream(int id) const;

  /// Admission-free push used by LoadSnapshot's journal replay: journaled
  /// domains were already admitted by the saved engine, so they re-enter
  /// the queue regardless of queue bounds or quarantine (the pipeline then
  /// sheds a quarantined stream's domains with kUnavailable).
  void PushDomainInternal(StreamState* s, data::DataSplit split);

  /// Queues an admitted domain, kicks off its pre-flight validation, and
  /// dispatches if the stream is idle. Caller holds state_mutex_.
  void EnqueueLocked(StreamState* s, std::unique_ptr<PendingDomain> domain);

  /// Starts the next queued domain's stage pipeline if the stream is idle
  /// and dispatch is not paused. Caller holds state_mutex_.
  void MaybeDispatchLocked(StreamState* s);

  /// Submits the in-flight domain's ingest/train/finish stage tasks onto
  /// the stream's task group (first attempt and retries). Caller holds
  /// state_mutex_.
  void SubmitAttemptLocked(StreamState* s);

  /// Failure epilogue for the in-flight domain, running on the stream's
  /// task group: rolls the trainer back to its last-good boundary
  /// (health_guards), then either requeues the attempt with a backoff
  /// deadline (pool timer heap — no worker sleeps) or drops the domain and
  /// advances the health state machine.
  void HandleFailure(StreamState* s, PendingDomain* d);

  /// Health transition that also refreshes the stream's lock-free mirror
  /// for the query path. Caller holds state_mutex_ (or owns the stream
  /// exclusively, as LoadSnapshot does).
  static void SetHealth(StreamState* s, StreamHealth health);

  /// Builds and RCU-publishes the stream's next EffectSnapshot from its
  /// trainer. Must run where the trainer is quiescent and externally
  /// serialized: the stream's task group (finish task) or LoadSnapshot's
  /// single-threaded restore. No-op when options_.publish_snapshots is off
  /// or the trainer has no model yet. Defined in stream/query_plane.cc.
  void PublishSnapshot(StreamState* s);

  /// Runs one stage body with wall-time measurement, feeds the observation
  /// to the stream's cost model, attributes steals, and refreshes the
  /// stream's dispatch priority. Failure fencing stays in the stage lambdas.
  template <typename Body>
  void RunStageTimed(StreamState* s, PendingDomain* d, StageKind stage,
                     Body&& body);

  /// Expected pending milliseconds of the stream under its cost model:
  /// every queued domain in full, plus the in-flight domain's remaining
  /// stages. This IS the stream's dispatch priority. Caller holds
  /// state_mutex_.
  double ExpectedPendingMsLocked(const StreamState& s) const;
  /// Milliseconds since the stream's oldest un-migrated domain was pushed
  /// (0 when idle) — the aging term of the dispatch priority.
  double OldestPendingAgeMsLocked(const StreamState& s) const;

  /// Recomputes the stream's expected pending milliseconds and pushes it
  /// into the strand's ExecOptions (priority + home worker). Caller holds
  /// state_mutex_.
  void UpdateScheduleLocked(StreamState* s);

  /// Builds the stats snapshot of one stream. Caller holds state_mutex_.
  StreamSchedStats SchedStatsLocked(const StreamState& s) const;

  /// Builds the CERLENG4 payload. Caller holds state_mutex_ with dispatch
  /// paused and no in-flight domains (SaveSnapshot's boundary wait).
  /// Fills the blob-reuse counters of `info` when non-null.
  Status SerializeSnapshotLocked(std::string* out, SnapshotInfo* info);

  // --- Storage plane internals (engine_storage.cc) ----------------------

  /// Logs a stream registration / accepted domain to the WAL (no-op when
  /// the WAL is closed or a replay is feeding the push back in). Callers
  /// hold state_mutex_, which serializes appends with push order.
  Status WalLogAddStreamLocked(const StreamState& s);
  Status WalLogDomainLocked(const StreamState& s, int domain_index,
                            const data::DataSplit& split);

  /// Rewrites the WAL down to the records the just-written snapshot does
  /// not subsume (still-queued domains and post-fence registrations).
  /// Caller holds state_mutex_ — pushes cannot append concurrently.
  Status CompactWalLocked(int fence_num_streams);

  /// Fault-back body: restores the stream's trainer from the page store.
  /// Must run where the trainer is externally serialized (the stream's
  /// group, or a drained stream).
  Status EnsureResidentOnGroup(StreamState* s);

  /// Spills least-recently-active idle streams until at most
  /// options_.max_resident_streams hold live state. Caller holds
  /// state_mutex_; the serialize-and-store work runs as a task on each
  /// victim's group (serialized with its stage pipeline).
  void MaybeScheduleSpillsLocked();

  /// Spill-task body, running on the victim's group: re-checks idleness,
  /// serializes the trainer (or reuses the cached last-good blob), stores
  /// the blob, and resets the trainer. Clears StreamState::spilling and
  /// notifies state_cv_ on every path.
  void SpillOnGroup(StreamState* s);

  StreamEngineOptions options_;
  /// Stream workers (declared before the groups using it). Cost-aware
  /// (priority + stealing) or strict FIFO per options_.schedule_policy.
  WorkStealingPool pool_;
  /// Cross-stream fused micro-solver (options_.fuse_micro_solves): every
  /// stream's trainer config points its SinkhornConfig::batcher here.
  /// Declared before streams_ so it outlives every stage task's solves.
  ot::MicroSolveBatcher micro_batcher_;
  std::vector<std::unique_ptr<StreamState>> streams_;

  /// Guards stream queues / in-flight flags / results / health and the
  /// pause state; state_cv_ signals pipeline completions and pause
  /// transitions. Mutable so the const health accessors can lock it.
  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool paused_ = false;  ///< snapshot in progress: no new dispatches

  /// Guards the context registry only — context creation and stats
  /// aggregation, never the query hot path.
  mutable std::mutex query_mutex_;
  std::vector<std::unique_ptr<QueryContext>> query_contexts_;

  // --- Paged tenant-state storage plane (engine_storage.cc) -------------
  // Opened by OpenStorage()/Recover(); null when the engine runs all-RAM.
  // Declaration order: the store and WAL must outlive no stage task — they
  // are torn down after the destructor's Drain() like everything above.
  std::unique_ptr<storage::DiskManager> disk_;
  std::unique_ptr<storage::BufferPool> buffer_pool_;
  std::unique_ptr<storage::TenantStore> store_;
  std::unique_ptr<storage::Wal> wal_;
  /// True while Recover() feeds WAL records back through the push path —
  /// suppresses re-logging them. Only touched single-threaded (Recover
  /// runs on a fresh engine before concurrent use).
  bool wal_replaying_ = false;
  /// Monotonic activity clock for the spill LRU (guarded by state_mutex_).
  uint64_t storage_tick_ = 0;
};

}  // namespace cerl::stream
