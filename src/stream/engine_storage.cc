// StreamEngine's paged tenant-state storage plane: spill/fault-back of cold
// tenants through storage::TenantStore, the accepted-domain write-ahead log,
// and WAL-based crash recovery (see README "Storage engine & durability").
//
// Division of labor with engine_checkpoint.cc: the checkpoint file is the
// O(dirty) bulk state (trainer blobs + counters at a fence), the WAL is the
// between-snapshots delta (stream registrations and accepted domains, logged
// on arrival under state_mutex_ so log order == push order). Recover() is
// LoadSnapshot + replay of exactly the WAL records the snapshot does not
// subsume, filtered per stream by domain index — the log needs no global
// sequence numbers.
//
// Spill correctness: a spill task runs ON the victim stream's TaskGroup, so
// it is serialized against that stream's stage pipeline. A push racing the
// spill lands its ingest task BEHIND the spill task on the group; the spill
// re-checks idleness under state_mutex_ and aborts if the queue is no longer
// empty, and the ingest stage faults the blob back in before the first
// trainer touch. The snapshot fence additionally waits out in-flight spill
// tasks (StreamState::spilling), so SerializeSnapshotLocked never races a
// spill's trainer serialization.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/tenant_store.h"
#include "storage/wal.h"
#include "stream/stream_engine.h"
#include "stream/stream_internal.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace cerl::stream {
namespace {

// --- WAL record payload codecs (reuse the snapshot's config/split wire
// format, so a WAL-replayed domain decodes through the same bounds-checked
// path as a journaled one) -------------------------------------------------

// kWalAddStream payload: u32 stream_id, u32 name_len, name bytes,
// u32 input_dim, CerlConfig block.
std::string EncodeAddStreamPayload(uint32_t id, const std::string& name,
                                   uint32_t input_dim,
                                   const core::CerlConfig& config) {
  std::string p;
  WritePod(&p, id);
  WritePod(&p, static_cast<uint32_t>(name.size()));
  p.append(name);
  WritePod(&p, input_dim);
  snapfmt::WriteConfig(&p, config);
  return p;
}

Status DecodeAddStreamPayload(std::string_view payload, uint32_t* id,
                              std::string* name, uint32_t* input_dim,
                              core::CerlConfig* config) {
  ViewStreambuf buf(payload);
  std::istream in(&buf);
  BoundedReader r(&in, payload.size());
  CERL_RETURN_IF_ERROR(r.ReadPod(id, "WAL stream id"));
  uint32_t name_len = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&name_len, "WAL stream name length"));
  if (name_len > snapfmt::kMaxNameLen) {
    return Status::IoError("WAL record: implausible stream name length " +
                           std::to_string(name_len));
  }
  CERL_RETURN_IF_ERROR(r.Require(name_len, "WAL stream name"));
  name->assign(name_len, '\0');
  if (name_len > 0) {
    CERL_RETURN_IF_ERROR(r.ReadRaw(name->data(), name_len,
                                   "WAL stream name"));
  }
  CERL_RETURN_IF_ERROR(r.ReadPod(input_dim, "WAL stream input dim"));
  if (*input_dim == 0 || *input_dim > (1u << 24)) {
    return Status::IoError("WAL record: implausible input dim " +
                           std::to_string(*input_dim));
  }
  CERL_RETURN_IF_ERROR(snapfmt::ReadConfig(&r, config));
  if (r.remaining() != 0) {
    return Status::IoError("WAL registration record has trailing bytes");
  }
  return Status::Ok();
}

// kWalDomain payload: u32 stream_id, u32 domain_index, DataSplit block.
std::string EncodeDomainPayload(uint32_t id, uint32_t domain_index,
                                const data::DataSplit& split) {
  std::string p;
  WritePod(&p, id);
  WritePod(&p, domain_index);
  snapfmt::WriteSplit(&p, split);
  return p;
}

Status DecodeDomainPayload(std::string_view payload, uint32_t* id,
                           uint32_t* domain_index, data::DataSplit* split) {
  ViewStreambuf buf(payload);
  std::istream in(&buf);
  BoundedReader r(&in, payload.size());
  CERL_RETURN_IF_ERROR(r.ReadPod(id, "WAL stream id"));
  CERL_RETURN_IF_ERROR(r.ReadPod(domain_index, "WAL domain index"));
  if (*domain_index > (1u << 30)) {
    return Status::IoError("WAL record: implausible domain index " +
                           std::to_string(*domain_index));
  }
  CERL_RETURN_IF_ERROR(snapfmt::ReadSplit(&r, split));
  if (r.remaining() != 0) {
    return Status::IoError("WAL domain record has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Status StreamEngine::OpenStorage() {
  if (options_.storage_path.empty() && options_.wal_path.empty()) {
    return Status::InvalidArgument(
        "OpenStorage: neither storage_path nor wal_path is configured");
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!streams_.empty()) {
      // A WAL opened after registrations would be missing them, and spill
      // bookkeeping assumes it observed every stream from birth.
      return Status::FailedPrecondition(
          "OpenStorage requires a fresh engine (no streams registered)");
    }
  }
  if (!options_.storage_path.empty() && store_ == nullptr) {
    Result<std::unique_ptr<storage::DiskManager>> disk =
        storage::DiskManager::Open(options_.storage_path);
    if (!disk.ok()) return disk.status();
    disk_ = std::move(disk).value();
    buffer_pool_ = std::make_unique<storage::BufferPool>(
        disk_.get(),
        static_cast<size_t>(std::max(1, options_.buffer_pool_frames)));
    store_ = std::make_unique<storage::TenantStore>(buffer_pool_.get());
  }
  if (!options_.wal_path.empty() && wal_ == nullptr) {
    storage::Wal::Options wal_options;
    wal_options.fsync_each_append = options_.wal_fsync;
    Result<std::unique_ptr<storage::Wal>> wal =
        storage::Wal::Open(options_.wal_path, wal_options);
    if (!wal.ok()) return wal.status();
    wal_ = std::move(wal).value();
    if (wal_->truncated_bytes() > 0) {
      CERL_LOG(Warning) << "WAL " << options_.wal_path << ": dropped "
                        << wal_->truncated_bytes()
                        << " torn-tail bytes (crash mid-append)";
    }
  }
  return Status::Ok();
}

Status StreamEngine::Recover(const std::string& snapshot_path) {
  CERL_RETURN_IF_ERROR(OpenStorage());
  // Missing snapshot = cold start (first boot, or snapshots not configured);
  // any other read/parse failure must surface, not silently cold-start over
  // real data.
  if (!snapshot_path.empty() &&
      ::access(snapshot_path.c_str(), F_OK) == 0) {
    CERL_RETURN_IF_ERROR(LoadSnapshot(snapshot_path));
  }
  if (wal_ == nullptr) return Status::Ok();

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    wal_replaying_ = true;
  }
  Status replayed = Status::Ok();
  for (const storage::Wal::Record& rec : wal_->recovered()) {
    if (rec.type == snapfmt::kWalAddStream) {
      uint32_t id = 0, input_dim = 0;
      std::string stream_name;
      core::CerlConfig config;
      replayed = DecodeAddStreamPayload(rec.payload, &id, &stream_name,
                                        &input_dim, &config);
      if (!replayed.ok()) break;
      if (id < static_cast<uint32_t>(num_streams())) continue;  // in snapshot
      if (id > static_cast<uint32_t>(num_streams())) {
        replayed = Status::IoError(
            "WAL gap: registration record for stream " + std::to_string(id) +
            " but the engine has " + std::to_string(num_streams()));
        break;
      }
      AddStream(std::move(stream_name), config, static_cast<int>(input_dim));
    } else if (rec.type == snapfmt::kWalDomain) {
      uint32_t id = 0, domain_index = 0;
      data::DataSplit split;
      replayed = DecodeDomainPayload(rec.payload, &id, &domain_index, &split);
      if (!replayed.ok()) break;
      if (id >= static_cast<uint32_t>(num_streams())) {
        replayed = Status::IoError("WAL domain record for unknown stream " +
                                   std::to_string(id));
        break;
      }
      StreamState* s = streams_[id].get();
      int pushed = 0;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        pushed = s->pushed;
      }
      // Per-stream index filter (this is what makes compaction, snapshot
      // overlap, and re-logged pre-v4 journals all safe): a record below
      // the stream's push counter is subsumed — already trained into the
      // restored trainer blob or already re-enqueued — and skipped; the
      // record AT the counter is the next accepted domain and replays; a
      // record past it means accepted domains are missing from the log.
      if (domain_index < static_cast<uint32_t>(pushed)) continue;
      if (domain_index > static_cast<uint32_t>(pushed)) {
        replayed = Status::IoError(
            "WAL gap: stream " + std::to_string(id) + " expects domain " +
            std::to_string(pushed) + " next but the log holds " +
            std::to_string(domain_index));
        break;
      }
      PushDomainInternal(s, std::move(split));
    } else {
      replayed = Status::IoError("unknown WAL record type " +
                                 std::to_string(rec.type));
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    wal_replaying_ = false;
    // The recovered engine may exceed the resident budget (snapshot restore
    // faults every tenant in); re-establish it now rather than waiting for
    // the first completion.
    MaybeScheduleSpillsLocked();
  }
  // On a decode error the engine keeps the snapshot state plus the valid
  // record prefix (prefix recovery — same contract as the WAL's own
  // torn-tail handling), and the error reports what was lost.
  return replayed;
}

Status StreamEngine::WalLogAddStreamLocked(const StreamState& s) {
  return wal_->Append(
      snapfmt::kWalAddStream,
      EncodeAddStreamPayload(static_cast<uint32_t>(s.id), s.name,
                             static_cast<uint32_t>(s.input_dim),
                             s.trainer.config()));
}

Status StreamEngine::WalLogDomainLocked(const StreamState& s,
                                        int domain_index,
                                        const data::DataSplit& split) {
  return wal_->Append(
      snapfmt::kWalDomain,
      EncodeDomainPayload(static_cast<uint32_t>(s.id),
                          static_cast<uint32_t>(domain_index), split));
}

Status StreamEngine::CompactWalLocked(int fence_num_streams) {
  std::vector<storage::Wal::Record> keep;
  for (size_t i = 0; i < streams_.size(); ++i) {
    const StreamState& s = *streams_[i];
    if (static_cast<int>(i) >= fence_num_streams) {
      // Registered after the fence: the snapshot predates this stream, so
      // its registration (and, below, its queued domains) must survive.
      keep.push_back(
          {snapfmt::kWalAddStream,
           EncodeAddStreamPayload(static_cast<uint32_t>(i), s.name,
                                  static_cast<uint32_t>(s.input_dim),
                                  s.trainer.config())});
    }
    // Still-queued domains in queue order, with their assigned indices.
    // paused_ has kept every post-fence push in its queue (nothing is
    // in_flight), so the queues ARE the complete unsubsumed backlog.
    for (const auto& d : s.queue) {
      keep.push_back(
          {snapfmt::kWalDomain,
           EncodeDomainPayload(static_cast<uint32_t>(i),
                               static_cast<uint32_t>(d->domain_index),
                               d->split)});
    }
  }
  return wal_->Compact(keep);
}

Status StreamEngine::EnsureResident(int id) {
  if (id < 0 || id >= num_streams()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  return EnsureResidentOnGroup(streams_[id].get());
}

Status StreamEngine::EnsureResidentOnGroup(StreamState* s) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (s->resident) {
      s->touch_tick = ++storage_tick_;
      return Status::Ok();
    }
  }
  if (store_ == nullptr) {
    return Status::Internal("stream '" + s->name +
                            "' is spilled but no store is open");
  }
  Result<std::string> got = store_->Get(s->id);
  if (!got.ok()) return got.status();
  std::string blob = std::move(got).value();
  // The trainer was Reset() by the spill; restore is the same rebuild path
  // a rollback uses. Runs off-lock: the caller is on the stream's group (or
  // owns a drained stream), which serializes all trainer access, and the
  // snapshot fence cannot be serializing concurrently (it waits out the
  // in-flight pipeline this fault-back is part of).
  s->trainer.Reset();
  CERL_RETURN_IF_ERROR(s->trainer.DeserializeCheckpoint(blob));
  // Only a successfully restored blob leaves the store (a failed restore
  // keeps it for the next attempt / the next snapshot).
  (void)store_->Erase(s->id);
  std::lock_guard<std::mutex> lock(state_mutex_);
  s->resident = true;
  ++s->fault_backs;
  s->touch_tick = ++storage_tick_;
  if (options_.health_guards || options_.snapshot_reuse_blobs) {
    // The blob is a domain-boundary state: re-seed the rollback target and
    // the snapshot blob cache, exactly as LoadSnapshot does.
    s->last_good = std::move(blob);
    s->last_good_stage = s->trainer.stages_seen();
  }
  return Status::Ok();
}

void StreamEngine::MaybeScheduleSpillsLocked() {
  if (store_ == nullptr || options_.max_resident_streams <= 0) return;
  int resident = 0;
  for (const auto& s : streams_) {
    if (s->resident) ++resident;
  }
  while (resident > options_.max_resident_streams) {
    // LRU victim among idle, trained, not-already-spilling streams. Reading
    // stages_seen() here is race-free: a stream with no in-flight domain
    // and no pending spill has no task touching its trainer.
    StreamState* victim = nullptr;
    for (const auto& s : streams_) {
      if (!s->resident || s->spilling || s->in_flight != nullptr ||
          !s->queue.empty() || s->trainer.stages_seen() <= 0) {
        continue;
      }
      if (victim == nullptr || s->touch_tick < victim->touch_tick) {
        victim = s.get();
      }
    }
    if (victim == nullptr) return;  // everyone is busy or untrained
    victim->spilling = true;
    --resident;
    StreamState* v = victim;
    // The spill body runs on the victim's group, serialized against its
    // stage pipeline — see the file comment for the race argument.
    v->group.Submit([this, v] { SpillOnGroup(v); });
  }
}

void StreamEngine::SpillOnGroup(StreamState* s) {
  std::string blob;
  bool use_cache = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Re-check idleness: a domain pushed between scheduling and now makes
    // the spill pointless (its ingest would immediately fault back).
    if (!s->resident || s->in_flight != nullptr || !s->queue.empty() ||
        s->trainer.stages_seen() <= 0) {
      s->spilling = false;
      state_cv_.notify_all();
      return;
    }
    use_cache = s->last_good_stage == s->trainer.stages_seen() &&
                !s->last_good.empty();
    if (use_cache) blob = s->last_good;
  }
  Status stored = Status::Ok();
  if (!use_cache) {
    // Serialize off-lock: the group serializes trainer access, and the
    // snapshot fence waits out this task via the spilling flag.
    stored = s->trainer.SerializeCheckpoint(&blob);
  }
  if (stored.ok()) stored = store_->Put(s->id, blob);
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (stored.ok()) {
    s->trainer.Reset();
    s->resident = false;
    ++s->spills;
    // The cache would be dead weight next to a reset trainer — the stored
    // blob is now the canonical copy (fault-back re-seeds the cache).
    s->last_good.clear();
    s->last_good.shrink_to_fit();
    s->last_good_stage = -1;
  } else {
    // Spill failure is not a stream failure: the tenant simply stays
    // resident (the budget is best-effort under storage errors).
    CERL_LOG(Warning) << "stream '" << s->name
                      << "' spill failed (stays resident): "
                      << stored.ToString();
  }
  s->spilling = false;
  // Notify INSIDE the lock (destructor-vs-notify rule): Drain and the
  // snapshot fence wait on the spilling flag.
  state_cv_.notify_all();
}

StreamEngine::StorageStats StreamEngine::storage_stats() const {
  StorageStats stats;
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const auto& s : streams_) {
    if (s->resident) {
      ++stats.resident_streams;
    } else {
      ++stats.spilled_streams;
    }
    stats.spills += s->spills;
    stats.fault_backs += s->fault_backs;
  }
  if (store_ != nullptr) stats.store_blob_bytes = store_->stored_bytes();
  if (disk_ != nullptr) stats.store_pages = disk_->page_count();
  if (buffer_pool_ != nullptr) {
    const storage::BufferPool::Stats pool_stats = buffer_pool_->stats();
    stats.pool_hits = pool_stats.hits;
    stats.pool_misses = pool_stats.misses;
    stats.pool_evictions = pool_stats.evictions;
  }
  if (wal_ != nullptr) {
    stats.wal_bytes = wal_->size_bytes();
    stats.wal_records = wal_->appended_records();
  }
  return stats;
}

}  // namespace cerl::stream
