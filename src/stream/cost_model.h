// Per-stream stage cost model — the "cost" in cost-aware scheduling.
//
// The engine's dispatch priority for a stream is its expected pending work
// in milliseconds (longest-expected-queue-first). That expectation comes
// from here: an EWMA of observed per-work-unit stage cost, queried against a
// queued domain's shape. Normalizing by work units (rather than averaging
// raw wall times) is what lets one observation of a small domain price a
// large one: stage cost is near-linear in units for ingest/migrate and in
// units x epochs for training, so the rate transfers across domain sizes
// while the EWMA tracks drift (cache state, memory growth, machine load).
//
// Cold streams have no observations, so predictions fall back to a single
// default rate — identical for every stream, which makes cold priorities
// proportional to n_units x epochs exactly as submitted work would suggest.
// The model self-reports its accuracy (mean absolute percentage error of
// warm predictions); the SLO bench gates on it staying sane.
//
// Thread-safety: none. The engine guards each stream's model with its state
// mutex, like the rest of the per-stream scheduling state.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cerl {
class BoundedReader;
}  // namespace cerl

namespace cerl::stream {

/// The three pipeline stages of one domain (core::CerlTrainer's
/// BeginStage / TrainStage / MigrateStage).
enum class StageKind : uint8_t { kIngest = 0, kTrain = 1, kMigrate = 2 };
inline constexpr int kNumStages = 3;

/// The cost-relevant shape of one pushed domain.
struct DomainShape {
  int64_t n_units = 0;  ///< training units (covariate rows fed to the stage)
  int epochs = 1;       ///< configured training epochs
};

/// Work units of a stage on a domain: the quantity stage wall time is
/// (approximately) linear in. Ingest/migrate touch each unit once; training
/// touches each unit once per epoch.
int64_t StageWorkUnits(StageKind stage, const DomainShape& shape);

/// EWMA cost model over the three stages of one stream.
class StageCostModel {
 public:
  /// Predicted wall milliseconds for `stage` on a domain of `shape`.
  double PredictMs(StageKind stage, const DomainShape& shape) const;

  /// Predicted wall milliseconds for a full domain (all three stages).
  double PredictDomainMs(const DomainShape& shape) const;

  /// Records an observed stage execution: `ms` of wall time on `shape`.
  /// Updates the per-unit rate EWMA, the plain per-stage wall-time EWMA
  /// (the stats surface), and — when the stage was warm — the prediction
  /// error accumulator.
  void Observe(StageKind stage, const DomainShape& shape, double ms);

  /// Plain EWMA of observed wall ms for `stage` (0 while cold). This is the
  /// human-facing "how long does this stream's train stage take" number;
  /// predictions use the per-unit rates instead.
  double ewma_stage_ms(StageKind stage) const;

  /// Stage observations recorded so far (all stages).
  int64_t observations() const { return observations_; }

  /// Mean absolute percentage error of warm predictions (those made with at
  /// least one prior observation of the stage), in [0, inf); 0 while no
  /// warm prediction has been scored.
  double mean_abs_pct_error() const;

  /// Warm predictions scored into the error metric — the weight to use when
  /// aggregating mean_abs_pct_error across streams.
  int64_t scored_predictions() const { return scored_predictions_; }

  // --- Snapshot codec (CERLENG3 per-stream cost block) --------------------
  // Rates/counters only; the plain EWMAs and error accumulators are
  // transient diagnostics and restore cold. Older snapshots simply omit the
  // block: a restored stream then starts cold and re-learns within a few
  // stages (see README "Scheduling & SLOs").

  void Serialize(std::string* out) const;
  Status Deserialize(BoundedReader* r);

 private:
  struct Stage {
    double rate_ms_per_unit = 0.0;  ///< EWMA; valid when count > 0
    int64_t count = 0;              ///< observations of this stage
    double ewma_ms = 0.0;           ///< plain EWMA of wall ms
  };

  Stage stages_[kNumStages];
  int64_t observations_ = 0;
  // Error accumulator: sum of |predicted - observed| / observed over warm
  // predictions, scored BEFORE the observation updates the rate.
  double abs_pct_error_sum_ = 0.0;
  int64_t scored_predictions_ = 0;
};

}  // namespace cerl::stream
