// The effect-query serving plane of StreamEngine (see stream_engine.h
// "Effect-query serving plane"): snapshot publication on the write side and
// the lock-free QueryEffect / QueryEffectBatch read side.
//
// Memory-ordering contract between the two sides:
//   publisher:  atomic_store(&s.snapshot, snap, release);
//               s.snapshot_version.store(snap->version, release);
//   reader:     v = s.snapshot_version.load(acquire);      // fast gate
//               if (v != cached) atomic_load(&s.snapshot, acquire);
// The version is stored AFTER the pointer, so a reader that observes a new
// version is guaranteed the pointer swap already happened — the slow path
// can never re-load the previous snapshot for the new version. Readers
// whose cached version still matches touch no shared_ptr control block at
// all (the steady-state query is a relaxed-ish acquire load plus a forward
// pass through thread-local scratch).

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "stream/stream_engine.h"
#include "stream/stream_internal.h"

namespace cerl::stream {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

void StreamEngine::PublishSnapshot(StreamState* s) {
  if (!options_.publish_snapshots) return;
  const uint64_t version =
      s->snapshot_version.load(std::memory_order_relaxed) + 1;
  std::shared_ptr<const serve::EffectSnapshot> snap =
      serve::BuildEffectSnapshot(s->trainer, version);
  if (snap == nullptr) return;  // nothing trained yet
  std::atomic_store_explicit(&s->snapshot, std::move(snap),
                             std::memory_order_release);
  s->snapshot_version.store(version, std::memory_order_release);
}

QueryContext* StreamEngine::CreateQueryContext() {
  auto ctx = std::make_unique<QueryContext>(num_streams());
  QueryContext* raw = ctx.get();
  std::lock_guard<std::mutex> lock(query_mutex_);
  query_contexts_.push_back(std::move(ctx));
  return raw;
}

Status StreamEngine::QueryEffect(QueryContext* ctx, int id, const double* x,
                                 int input_dim, double* ite,
                                 EffectQueryMeta* meta) {
  const Clock::time_point t0 = Clock::now();
  if (id < 0 || id >= num_streams()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  if (id >= static_cast<int>(ctx->slots_.size())) {
    return Status::InvalidArgument(
        "stream " + std::to_string(id) +
        " was registered after this query context was created");
  }
  StreamState& s = *streams_[id];
  QueryContext::Slot& slot = ctx->slots_[id];
  const uint64_t version = s.snapshot_version.load(std::memory_order_acquire);
  if (version == 0) {
    slot.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("stream '" + s.name +
                                      "' has not published a snapshot yet");
  }
  if (slot.version != version) {
    slot.snap =
        std::atomic_load_explicit(&s.snapshot, std::memory_order_acquire);
    slot.version = slot.snap->version;
  }
  const serve::EffectSnapshot& snap = *slot.snap;
  if (input_dim != snap.input_dim) {
    slot.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "query has " + std::to_string(input_dim) + " covariates, stream '" +
        s.name + "' expects " + std::to_string(snap.input_dim));
  }
  *ite = ctx->predictor_.PredictIteRow(snap, x);
  if (meta != nullptr) {
    meta->snapshot_version = snap.version;
    meta->snapshot_stage = snap.stage;
    meta->stale = s.health_mirror.load(std::memory_order_relaxed) ==
                  static_cast<uint8_t>(StreamHealth::kQuarantined);
  }
  slot.queries.fetch_add(1, std::memory_order_relaxed);
  slot.rows.fetch_add(1, std::memory_order_relaxed);
  slot.latency.Record(MsSince(t0));
  return Status::Ok();
}

Status StreamEngine::QueryEffectBatch(QueryContext* ctx, int id,
                                      const linalg::Matrix& x_raw,
                                      linalg::Vector* ite,
                                      EffectQueryMeta* meta) {
  const Clock::time_point t0 = Clock::now();
  if (id < 0 || id >= num_streams()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  if (id >= static_cast<int>(ctx->slots_.size())) {
    return Status::InvalidArgument(
        "stream " + std::to_string(id) +
        " was registered after this query context was created");
  }
  StreamState& s = *streams_[id];
  QueryContext::Slot& slot = ctx->slots_[id];
  const uint64_t version = s.snapshot_version.load(std::memory_order_acquire);
  if (version == 0) {
    slot.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("stream '" + s.name +
                                      "' has not published a snapshot yet");
  }
  if (slot.version != version) {
    slot.snap =
        std::atomic_load_explicit(&s.snapshot, std::memory_order_acquire);
    slot.version = slot.snap->version;
  }
  const serve::EffectSnapshot& snap = *slot.snap;
  if (x_raw.cols() != snap.input_dim) {
    slot.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "query batch has " + std::to_string(x_raw.cols()) +
        " covariates, stream '" + s.name + "' expects " +
        std::to_string(snap.input_dim));
  }
  ctx->predictor_.PredictIte(snap, x_raw, ite);
  if (meta != nullptr) {
    meta->snapshot_version = snap.version;
    meta->snapshot_stage = snap.stage;
    meta->stale = s.health_mirror.load(std::memory_order_relaxed) ==
                  static_cast<uint8_t>(StreamHealth::kQuarantined);
  }
  slot.queries.fetch_add(1, std::memory_order_relaxed);
  slot.rows.fetch_add(static_cast<int64_t>(x_raw.rows()),
                      std::memory_order_relaxed);
  slot.latency.Record(MsSince(t0));
  return Status::Ok();
}

std::shared_ptr<const serve::EffectSnapshot> StreamEngine::effect_snapshot(
    int id) const {
  const StreamState& s = stream(id);
  return std::atomic_load_explicit(&s.snapshot, std::memory_order_acquire);
}

StreamQueryStats StreamEngine::query_stats(int id) const {
  const StreamState& s = stream(id);
  StreamQueryStats stats;
  std::shared_ptr<const serve::EffectSnapshot> snap =
      std::atomic_load_explicit(&s.snapshot, std::memory_order_acquire);
  if (snap != nullptr) {
    stats.snapshot_version = snap->version;
    stats.snapshot_stage = snap->stage;
    stats.staleness_ms = MsSince(snap->published_at);
  }
  stats.stale = s.health_mirror.load(std::memory_order_relaxed) ==
                static_cast<uint8_t>(StreamHealth::kQuarantined);
  std::lock_guard<std::mutex> lock(query_mutex_);
  for (const auto& ctx : query_contexts_) {
    if (id >= static_cast<int>(ctx->slots_.size())) continue;
    const QueryContext::Slot& slot = ctx->slots_[id];
    stats.queries += slot.queries.load(std::memory_order_relaxed);
    stats.rows += slot.rows.load(std::memory_order_relaxed);
    stats.rejected += slot.rejected.load(std::memory_order_relaxed);
    stats.latency.Merge(slot.latency.Snapshot());
  }
  return stats;
}

}  // namespace cerl::stream
