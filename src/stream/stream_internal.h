// Internal definitions shared by stream_engine.cc and engine_checkpoint.cc
// (the two halves of StreamEngine). Not part of the public stream API.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/effect_snapshot.h"
#include "stream/stream_engine.h"

namespace cerl::stream {

// One pushed domain moving through the stage pipeline. The split must stay
// address-stable while tasks reference it, so PendingDomains are held by
// unique_ptr and never relocated.
struct StreamEngine::PendingDomain {
  data::DataSplit split;
  int domain_index = 0;

  /// Cost-relevant shape, captured at push (the split moves into the
  /// trainer during ingest, so it cannot be re-derived later).
  DomainShape shape;
  /// Push wall-clock, for the completion-latency histogram.
  std::chrono::steady_clock::time_point pushed_at;
  /// Pipeline stages of the CURRENT attempt that already completed (0..3);
  /// the remainder prices the in-flight part of the stream's priority.
  int stages_done = 0;

  // Pre-flight validation rendezvous: set by the free pool task, awaited by
  // the ingest stage (usually already complete — it overlapped an earlier
  // stage's training).
  std::mutex mutex;
  std::condition_variable cv;
  bool validated = false;
  Status status;

  // Failure plumbing between the stage tasks of one attempt (all tasks run
  // on the stream's serialized group, so no lock is needed): a stage that
  // fails records `failure`; later stages of the attempt then no-op and the
  // finish task routes to HandleFailure. `terminal` marks failures that
  // must not be retried (validation reject, quarantine shed). `attempt`
  // counts completed attempts (0 on the first run).
  Status failure;
  bool terminal = false;
  int attempt = 0;

  std::unique_ptr<core::CerlTrainer::StageContext> ctx;
};

struct StreamEngine::StreamState {
  StreamState(std::string stream_name, const core::CerlConfig& config,
              int input_dim, Executor* pool)
      : name(std::move(stream_name)),
        input_dim(input_dim),
        trainer(config, input_dim),
        group(pool) {}

  std::string name;
  int input_dim;
  core::CerlTrainer trainer;
  TaskGroup group;

  // Cost-aware scheduling state (guarded by the engine's state_mutex_; the
  // stage tasks lock it briefly per stage to observe/re-prioritize).
  int home = -1;              ///< preferred pool worker (round-robin by id)
  StageCostModel cost_model;  ///< learned per-stage rates -> priorities
  LatencyHistogram latency;   ///< push->migrated ms, successful domains
  int64_t stolen_stages = 0;  ///< stage tasks executed off the home worker

  // Domain-boundary dispatch (guarded by the engine's state_mutex_): pushed
  // domains wait in `queue`; exactly one domain owns the stage pipeline at a
  // time (`in_flight`). This is what gives SaveSnapshot a consistent fence —
  // waiting out one pipeline per stream reaches a state where every trainer
  // sits between domains and the queue is exactly the work to journal.
  std::deque<std::unique_ptr<PendingDomain>> queue;
  std::unique_ptr<PendingDomain> in_flight;
  std::vector<DomainResult> results;
  int pushed = 0;

  // Health state machine (guarded by the engine's state_mutex_; see
  // StreamHealth in stream_engine.h).
  StreamHealth health = StreamHealth::kHealthy;
  int consecutive_failures = 0;  ///< dropped domains in a row
  int failed_domains = 0;        ///< dropped domains, lifetime total

  // Serialized trainer state (CERLCKP1) at the last successful domain
  // boundary — the rollback target for health-guard failures. Captured by
  // the finish task after every successful domain when health_guards is on;
  // read only by HandleFailure on the same stream's group (serialized), so
  // access needs no extra lock beyond state_mutex_ for the capture.
  std::string last_good;

  // --- Serving plane (stream/query_plane.cc) ---------------------------
  // The stream's published read-side model. Written only by the finish task
  // / snapshot restore via atomic_store(release); read by query threads via
  // atomic_load(acquire). `snapshot_version` is the lock-free fast-path
  // version gate: readers re-load the shared_ptr only when it changes
  // (publish order: snapshot first, then version, both release — a reader
  // that acquires the new version therefore sees the new snapshot).
  std::shared_ptr<const serve::EffectSnapshot> snapshot;
  std::atomic<uint64_t> snapshot_version{0};
  // Mirror of `health` maintained at every transition so the query path can
  // flag quarantined-stream staleness without touching state_mutex_.
  std::atomic<uint8_t> health_mirror{0};
};

// Per-thread query handle (StreamEngine::CreateQueryContext). All mutable
// state on the query hot path lives here, owned by exactly one reader
// thread: the inference arena plus one slot per stream caching the last
// snapshot reference (so an unchanged version costs zero shared_ptr
// traffic). The counters are atomics only so query_stats can aggregate
// them from another thread; the single writer makes them uncontended.
class QueryContext {
 public:
  explicit QueryContext(int num_streams)
      : slots_(static_cast<size_t>(num_streams)) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

 private:
  friend class StreamEngine;

  struct Slot {
    std::shared_ptr<const serve::EffectSnapshot> snap;
    uint64_t version = 0;
    ConcurrentLatencyHistogram latency;
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> rows{0};
    std::atomic<int64_t> rejected{0};
  };

  serve::BatchPredictor predictor_;
  std::vector<Slot> slots_;  ///< sized at creation; never resized
};

}  // namespace cerl::stream
