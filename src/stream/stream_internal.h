// Internal definitions shared by stream_engine.cc and engine_checkpoint.cc
// (the two halves of StreamEngine). Not part of the public stream API.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/effect_snapshot.h"
#include "stream/stream_engine.h"
#include "util/binary_io.h"

namespace cerl::stream {

// One pushed domain moving through the stage pipeline. The split must stay
// address-stable while tasks reference it, so PendingDomains are held by
// unique_ptr and never relocated.
struct StreamEngine::PendingDomain {
  data::DataSplit split;
  int domain_index = 0;

  /// Cost-relevant shape, captured at push (the split moves into the
  /// trainer during ingest, so it cannot be re-derived later).
  DomainShape shape;
  /// Push wall-clock, for the completion-latency histogram.
  std::chrono::steady_clock::time_point pushed_at;
  /// Pipeline stages of the CURRENT attempt that already completed (0..3);
  /// the remainder prices the in-flight part of the stream's priority.
  int stages_done = 0;

  // Pre-flight validation rendezvous: set by the free pool task, awaited by
  // the ingest stage (usually already complete — it overlapped an earlier
  // stage's training).
  std::mutex mutex;
  std::condition_variable cv;
  bool validated = false;
  Status status;

  // Failure plumbing between the stage tasks of one attempt (all tasks run
  // on the stream's serialized group, so no lock is needed): a stage that
  // fails records `failure`; later stages of the attempt then no-op and the
  // finish task routes to HandleFailure. `terminal` marks failures that
  // must not be retried (validation reject, quarantine shed). `attempt`
  // counts completed attempts (0 on the first run).
  Status failure;
  bool terminal = false;
  int attempt = 0;

  std::unique_ptr<core::CerlTrainer::StageContext> ctx;
};

struct StreamEngine::StreamState {
  StreamState(std::string stream_name, const core::CerlConfig& config,
              int input_dim, Executor* pool)
      : name(std::move(stream_name)),
        input_dim(input_dim),
        trainer(config, input_dim),
        group(pool) {}

  std::string name;
  int input_dim;
  core::CerlTrainer trainer;
  TaskGroup group;

  /// The stream's engine id (its index in streams_), fixed at registration.
  /// The spill key in the tenant store and the stream tag in WAL records.
  int id = -1;

  // Cost-aware scheduling state (guarded by the engine's state_mutex_; the
  // stage tasks lock it briefly per stage to observe/re-prioritize).
  int home = -1;              ///< preferred pool worker (round-robin by id)
  StageCostModel cost_model;  ///< learned per-stage rates -> priorities
  LatencyHistogram latency;   ///< push->migrated ms, successful domains
  int64_t stolen_stages = 0;  ///< stage tasks executed off the home worker

  // Domain-boundary dispatch (guarded by the engine's state_mutex_): pushed
  // domains wait in `queue`; exactly one domain owns the stage pipeline at a
  // time (`in_flight`). This is what gives SaveSnapshot a consistent fence —
  // waiting out one pipeline per stream reaches a state where every trainer
  // sits between domains and the queue is exactly the work to journal.
  std::deque<std::unique_ptr<PendingDomain>> queue;
  std::unique_ptr<PendingDomain> in_flight;
  std::vector<DomainResult> results;
  int pushed = 0;

  // Health state machine (guarded by the engine's state_mutex_; see
  // StreamHealth in stream_engine.h).
  StreamHealth health = StreamHealth::kHealthy;
  int consecutive_failures = 0;  ///< dropped domains in a row
  int failed_domains = 0;        ///< dropped domains, lifetime total

  // Serialized trainer state (CERLCKP1) at the last successful domain
  // boundary — the rollback target for health-guard failures AND the
  // snapshot blob cache (O(dirty) snapshots re-embed it instead of
  // re-serializing an unchanged trainer). Captured by the finish task
  // after every successful domain when health_guards or
  // snapshot_reuse_blobs is on; read by HandleFailure / the spill task on
  // the same stream's group (serialized), so access needs no extra lock
  // beyond state_mutex_ for the capture.
  std::string last_good;
  /// trainer.stages_seen() at the moment last_good was captured; -1 when
  /// the cache is absent or stale. The currency check for blob reuse.
  int last_good_stage = -1;

  // --- Paged tenant-state storage (engine_storage.cc; guarded by the
  // engine's state_mutex_) ----------------------------------------------
  /// Live trainer state is in RAM. False = spilled: the trainer is reset
  /// and the CERLCKP1 blob lives in the tenant store until the next
  /// pushed domain (or EnsureResident) faults it back.
  bool resident = true;
  /// A spill task is queued on this stream's group and has not resolved.
  bool spilling = false;
  /// Last activity tick (engine storage_tick_) — the spill LRU key.
  uint64_t touch_tick = 0;
  int64_t spills = 0;       ///< lifetime spill count
  int64_t fault_backs = 0;  ///< lifetime fault-back count

  // --- Serving plane (stream/query_plane.cc) ---------------------------
  // The stream's published read-side model. Written only by the finish task
  // / snapshot restore via atomic_store(release); read by query threads via
  // atomic_load(acquire). `snapshot_version` is the lock-free fast-path
  // version gate: readers re-load the shared_ptr only when it changes
  // (publish order: snapshot first, then version, both release — a reader
  // that acquires the new version therefore sees the new snapshot).
  std::shared_ptr<const serve::EffectSnapshot> snapshot;
  std::atomic<uint64_t> snapshot_version{0};
  // Mirror of `health` maintained at every transition so the query path can
  // flag quarantined-stream staleness without touching state_mutex_.
  std::atomic<uint8_t> health_mirror{0};
};

// Snapshot wire codecs shared by engine_checkpoint.cc (CERLENG containers)
// and engine_storage.cc (WAL record payloads reuse the config and split
// codecs verbatim, so a WAL-replayed domain decodes through the same
// bounds-checked path as a journaled one). Defined in engine_checkpoint.cc.
namespace snapfmt {

// Decode-time sanity caps (see engine_checkpoint.cc for the rationale).
inline constexpr uint32_t kMaxStreams = 1u << 16;
inline constexpr uint32_t kMaxNameLen = 1u << 12;
inline constexpr uint32_t kMaxJournal = 1u << 20;

void WriteConfig(std::string* out, const core::CerlConfig& c);
Status ReadConfig(BoundedReader* r, core::CerlConfig* c);
void WriteSplit(std::string* out, const data::DataSplit& split);
Status ReadSplit(BoundedReader* r, data::DataSplit* split);

// WAL record types (storage::Wal is payload-agnostic; these tag the
// engine's records).
inline constexpr uint32_t kWalAddStream = 1;
inline constexpr uint32_t kWalDomain = 2;

}  // namespace snapfmt

// Per-thread query handle (StreamEngine::CreateQueryContext). All mutable
// state on the query hot path lives here, owned by exactly one reader
// thread: the inference arena plus one slot per stream caching the last
// snapshot reference (so an unchanged version costs zero shared_ptr
// traffic). The counters are atomics only so query_stats can aggregate
// them from another thread; the single writer makes them uncontended.
class QueryContext {
 public:
  explicit QueryContext(int num_streams)
      : slots_(static_cast<size_t>(num_streams)) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

 private:
  friend class StreamEngine;

  struct Slot {
    std::shared_ptr<const serve::EffectSnapshot> snap;
    uint64_t version = 0;
    ConcurrentLatencyHistogram latency;
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> rows{0};
    std::atomic<int64_t> rejected{0};
  };

  serve::BatchPredictor predictor_;
  std::vector<Slot> slots_;  ///< sized at creation; never resized
};

}  // namespace cerl::stream
