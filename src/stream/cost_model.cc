#include "stream/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/binary_io.h"
#include "util/check.h"

namespace cerl::stream {

namespace {

// EWMA smoothing for the per-unit rates: heavy enough that one outlier stage
// (first-touch page faults, a CPU migration) does not swing the schedule,
// light enough that the rate converges within a handful of stages — the
// EWMA-convergence test pins this.
constexpr double kRateAlpha = 0.3;
// Plain wall-time EWMA (stats surface only) reacts a bit faster: it answers
// "how long does this stage take lately", not "what should I predict".
constexpr double kWallAlpha = 0.4;
// Cold-start rate: nothing observed yet, so every stream prices work at the
// same per-unit rate and cold priorities reduce to submitted work units
// (n_units x epochs for training). The absolute value is irrelevant for
// ordering cold streams among themselves; it only has to be small enough
// that one real observation (alpha 0.3) pulls the rate to the right decade.
constexpr double kColdRateMsPerUnit = 0.01;

}  // namespace

int64_t StageWorkUnits(StageKind stage, const DomainShape& shape) {
  const int64_t units = std::max<int64_t>(1, shape.n_units);
  if (stage == StageKind::kTrain) {
    return units * std::max(1, shape.epochs);
  }
  return units;
}

double StageCostModel::PredictMs(StageKind stage,
                                 const DomainShape& shape) const {
  const Stage& s = stages_[static_cast<int>(stage)];
  const double rate = s.count > 0 ? s.rate_ms_per_unit : kColdRateMsPerUnit;
  return rate * static_cast<double>(StageWorkUnits(stage, shape));
}

double StageCostModel::PredictDomainMs(const DomainShape& shape) const {
  return PredictMs(StageKind::kIngest, shape) +
         PredictMs(StageKind::kTrain, shape) +
         PredictMs(StageKind::kMigrate, shape);
}

void StageCostModel::Observe(StageKind stage, const DomainShape& shape,
                             double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // also catches NaN
  Stage& s = stages_[static_cast<int>(stage)];
  // Score the prediction BEFORE folding the observation in — the error
  // metric must measure what the scheduler actually used. Only warm
  // predictions are scored (cold ones measure the arbitrary seed rate), and
  // near-zero stages are skipped (percentage error is meaningless there).
  if (s.count > 0 && ms > 1e-3) {
    const double predicted = PredictMs(stage, shape);
    abs_pct_error_sum_ += std::abs(predicted - ms) / ms;
    ++scored_predictions_;
  }
  const double rate =
      ms / static_cast<double>(StageWorkUnits(stage, shape));
  if (s.count == 0) {
    s.rate_ms_per_unit = rate;
    s.ewma_ms = ms;
  } else {
    s.rate_ms_per_unit += kRateAlpha * (rate - s.rate_ms_per_unit);
    s.ewma_ms += kWallAlpha * (ms - s.ewma_ms);
  }
  ++s.count;
  ++observations_;
}

double StageCostModel::ewma_stage_ms(StageKind stage) const {
  return stages_[static_cast<int>(stage)].ewma_ms;
}

double StageCostModel::mean_abs_pct_error() const {
  if (scored_predictions_ == 0) return 0.0;
  return abs_pct_error_sum_ / static_cast<double>(scored_predictions_);
}

void StageCostModel::Serialize(std::string* out) const {
  for (const Stage& s : stages_) {
    WritePod(out, s.rate_ms_per_unit);
    WritePod(out, static_cast<int64_t>(s.count));
  }
}

Status StageCostModel::Deserialize(BoundedReader* r) {
  for (Stage& s : stages_) {
    double rate = 0.0;
    int64_t count = 0;
    CERL_RETURN_IF_ERROR(r->ReadPod(&rate, "cost-model rate"));
    CERL_RETURN_IF_ERROR(r->ReadPod(&count, "cost-model count"));
    if (!std::isfinite(rate) || rate < 0.0) {
      return Status::IoError("implausible cost-model rate");
    }
    if (count < 0 || count > (int64_t{1} << 40)) {
      return Status::IoError("implausible cost-model count");
    }
    s.rate_ms_per_unit = rate;
    s.count = count;
    s.ewma_ms = 0.0;  // transient diagnostic; restores cold
  }
  observations_ = stages_[0].count + stages_[1].count + stages_[2].count;
  abs_pct_error_sum_ = 0.0;
  scored_predictions_ = 0;
  return Status::Ok();
}

}  // namespace cerl::stream
