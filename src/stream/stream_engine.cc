#include "stream/stream_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/tenant_store.h"
#include "storage/wal.h"
#include "stream/stream_internal.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace cerl::stream {

namespace {

// Exponential backoff before retry `attempt` (1-based), capped at 100ms so
// a misconfigured base can never park a domain for long. The delay is spent
// on the pool's timer heap, not on a worker.
int BackoffMs(int base_ms, int attempt) {
  if (base_ms <= 0) return 0;
  const int shift = std::min(attempt - 1, 6);
  return std::min(100, base_ms << shift);
}

}  // namespace

const char* StreamHealthName(StreamHealth health) {
  switch (health) {
    case StreamHealth::kHealthy: return "healthy";
    case StreamHealth::kDegraded: return "degraded";
    case StreamHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options),
      pool_(WorkStealingPoolOptions{
          options.num_workers,
          options.schedule_policy == SchedulePolicy::kCostAware}) {
  // Honor the CERL_FAULTS chaos spec in any binary that hosts an engine.
  // Once per process: arming is cumulative, and a second engine must not
  // duplicate every rule's fire budget.
  static const bool armed = [] {
    FaultInjector::ArmFromEnv();
    return true;
  }();
  (void)armed;
}

StreamEngine::~StreamEngine() { Drain(); }

StreamEngine::StreamState& StreamEngine::stream(int id) {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

const StreamEngine::StreamState& StreamEngine::stream(int id) const {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

void StreamEngine::SetHealth(StreamState* s, StreamHealth health) {
  s->health = health;
  // The query path reads this mirror instead of taking state_mutex_; plain
  // relaxed is enough (staleness flagging needs no ordering with the
  // snapshot pointer — both values are independently consistent).
  s->health_mirror.store(static_cast<uint8_t>(health),
                         std::memory_order_relaxed);
}

int StreamEngine::AddStream(std::string name, const core::CerlConfig& config,
                            int input_dim) {
  // Point the stream's micro Sinkhorn solves at the shared cross-stream
  // batcher. Results are bit-identical either way (fused_micro_solver.h),
  // so this stays a runtime scheduling knob.
  core::CerlConfig stream_config = config;
  stream_config.train.sinkhorn.batcher =
      options_.fuse_micro_solves ? &micro_batcher_ : nullptr;
  // Registration happens under the engine lock: the spill scheduler and WAL
  // compaction iterate streams_ while holding it, and the WAL append below
  // must be ordered against concurrent domain appends.
  std::lock_guard<std::mutex> lock(state_mutex_);
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), stream_config, input_dim, &pool_));
  const int id = num_streams() - 1;
  // Home worker by round-robin over the stream id: streams spread evenly,
  // and the assignment is deterministic so the steal tests can pin it.
  StreamState& s = *streams_[id];
  s.id = id;
  s.home = id % pool_.num_threads();
  s.touch_tick = ++storage_tick_;
  ExecOptions opts;
  opts.home = s.home;
  s.group.SetExecOptions(opts);
  if (wal_ != nullptr && !wal_replaying_) {
    Status logged = WalLogAddStreamLocked(s);
    if (!logged.ok()) {
      // AddStream has no failure channel; an unlogged registration only
      // matters if the process dies before the next snapshot, so warn
      // loudly rather than abort the tenant.
      CERL_LOG(Error) << "stream '" << s.name
                      << "' registration not logged to WAL: "
                      << logged.ToString();
    }
  }
  return id;
}

Status StreamEngine::PushDomain(int id, data::DataSplit split) {
  if (id < 0 || id >= num_streams()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  StreamState& s = *streams_[id];
  auto owned = std::make_unique<PendingDomain>();
  owned->split = std::move(split);

  std::lock_guard<std::mutex> lock(state_mutex_);
  // Admission control: both rejects are evaluated under the same lock that
  // admits, so concurrent pushes can never overshoot the queue bound.
  if (s.health == StreamHealth::kQuarantined) {
    return Status::Unavailable("stream '" + s.name + "' is quarantined");
  }
  if (options_.max_queued_domains > 0 &&
      static_cast<int>(s.queue.size()) >= options_.max_queued_domains) {
    return Status::ResourceExhausted(
        "stream '" + s.name + "' queue is full (" +
        std::to_string(s.queue.size()) + " domains queued)");
  }
  // Accepted implies logged: the WAL append happens under the same lock
  // that admits (log order == push order), and a failed append REJECTS the
  // push — the caller must never believe a domain is recoverable when it is
  // not. EnqueueLocked below assigns this domain index (s.pushed).
  if (wal_ != nullptr && !wal_replaying_) {
    Status logged = WalLogDomainLocked(s, s.pushed, owned->split);
    if (!logged.ok()) {
      return Status::IoError("domain rejected: WAL append failed: " +
                             logged.message());
    }
  }
  EnqueueLocked(&s, std::move(owned));
  return Status::Ok();
}

void StreamEngine::PushDomainInternal(StreamState* s, data::DataSplit split) {
  auto owned = std::make_unique<PendingDomain>();
  owned->split = std::move(split);
  std::lock_guard<std::mutex> lock(state_mutex_);
  // Re-log journaled domains from a pre-v4 snapshot into the WAL (they were
  // accepted by the saved engine and must stay recoverable). Suppressed
  // during Recover()'s own replay; a failure here cannot reject — the
  // domain is already admitted — so it degrades to a warning.
  if (wal_ != nullptr && !wal_replaying_) {
    Status logged = WalLogDomainLocked(*s, s->pushed, owned->split);
    if (!logged.ok()) {
      CERL_LOG(Warning) << "stream '" << s->name
                        << "': journaled domain not re-logged to WAL: "
                        << logged.ToString();
    }
  }
  EnqueueLocked(s, std::move(owned));
}

void StreamEngine::EnqueueLocked(StreamState* s,
                                 std::unique_ptr<PendingDomain> domain) {
  PendingDomain* d = domain.get();
  d->domain_index = s->pushed++;
  d->shape.n_units = d->split.train.num_units();
  d->shape.epochs = s->trainer.config().train.epochs;
  d->pushed_at = std::chrono::steady_clock::now();
  s->queue.push_back(std::move(domain));
  // Pre-flight validation: pure, so it runs as a free pool task right away
  // and overlaps whatever stage any stream is currently in. It is submitted
  // before the domain's ingest task can be (dispatch happens at or after
  // this push), so the ingest wait can never starve it of a worker.
  // Infinite priority: a validation verdict is microseconds of work that an
  // ingest stage may be blocked on — it must never queue behind stage work.
  if (options_.validate_on_push) {
    const int input_dim = s->input_dim;
    ExecOptions opts;
    opts.priority = std::numeric_limits<double>::infinity();
    pool_.Execute([d, input_dim] {
      Status status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
      std::lock_guard<std::mutex> lock(d->mutex);
      d->status = status;
      d->validated = true;
      // Notify while holding d->mutex: the moment the ingest waiter can
      // proceed, the pipeline may run to completion and destroy this
      // PendingDomain — the held mutex is what keeps `d` alive until the
      // notify call has returned.
      d->cv.notify_all();
    }, opts);
  }
  UpdateScheduleLocked(s);
  MaybeDispatchLocked(s);
}

void StreamEngine::MaybeDispatchLocked(StreamState* s) {
  if (paused_ || s->in_flight != nullptr || s->queue.empty()) return;
  s->in_flight = std::move(s->queue.front());
  s->queue.pop_front();
  SubmitAttemptLocked(s);
}

template <typename Body>
void StreamEngine::RunStageTimed(StreamState* s, PendingDomain* d,
                                 StageKind stage, Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  try {
    FaultScope scope(s->name);
    body();
  } catch (const StatusError& e) {
    d->failure = e.status();
  } catch (const std::exception& e) {
    d->failure = Status::Internal(e.what());
  }
  // A failed stage ran partially — its wall time is not the stage's cost,
  // so only successful stages feed the model. The worker id is read before
  // taking the engine lock purely for tidiness (it is a thread-local).
  if (!d->failure.ok()) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const int worker = pool_.current_worker();
  std::lock_guard<std::mutex> lock(state_mutex_);
  s->cost_model.Observe(stage, d->shape, ms);
  d->stages_done = static_cast<int>(stage) + 1;
  if (options_.schedule_policy == SchedulePolicy::kCostAware && worker >= 0 &&
      worker != s->home) {
    ++s->stolen_stages;
  }
  // The next pump submission (this stage's completion re-submits it) must
  // carry the refreshed expectation: the stream just got cheaper by one
  // stage, and the rate EWMA may have moved.
  UpdateScheduleLocked(s);
}

void StreamEngine::SubmitAttemptLocked(StreamState* s) {
  PendingDomain* d = s->in_flight.get();
  StreamState* sp = s;
  const int input_dim = s->input_dim;
  const bool validate_inline = !options_.validate_on_push;
  d->stages_done = 0;

  // Stage pipeline, serialized per stream by the task group; unrelated
  // streams' groups interleave on the same workers. Every stage body is
  // exception-fenced (RunStageTimed): a data-dependent failure (thrown
  // StatusError from the trainer/OT layers, or any std::exception) lands in
  // d->failure and the finish task routes it to HandleFailure — nothing
  // data-dependent may escape into the pool worker (that would
  // std::terminate the process). RunStageTimed also feeds each successful
  // stage's wall time to the stream's cost model: timing never feeds back
  // into WHAT a stage computes, only into who gets a worker next, so the
  // bit-identity contract is untouched.

  // Ingest: resolve the pre-flight verdict, shed quarantined work, then
  // BeginStage.
  s->group.Submit([this, sp, d, validate_inline, input_dim] {
    if (d->attempt == 0) {
      // Resolve the validation rendezvous exactly once (retries reuse the
      // verdict). This must complete before the PendingDomain can be
      // destroyed, even on the shed path below — it is what keeps the
      // free-pool validation task's pointer alive.
      if (validate_inline) {
        d->status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
      } else {
        std::unique_lock<std::mutex> lock(d->mutex);
        d->cv.wait(lock, [d] { return d->validated; });
      }
    }
    {
      // A stream quarantined while this domain sat queued sheds it here,
      // through the normal pipeline (rather than clearing the queue in
      // place, which could race the validation rendezvous above).
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (sp->health == StreamHealth::kQuarantined) {
        d->failure =
            Status::Unavailable("stream '" + sp->name + "' is quarantined");
        d->terminal = true;
        return;
      }
    }
    if (!d->status.ok()) {
      // Malformed domain: deterministic data error, dropped without retry
      // (the serial path's CheckConsistent contract, minus the abort).
      d->failure = d->status;
      d->terminal = true;
      return;
    }
    // Fault a spilled tenant back in before the first trainer touch. A
    // store failure drops this domain through the normal failure plane
    // (terminal: a retry on a reset trainer could not be bit-identical);
    // the blob stays in the store for the next domain's attempt.
    if (store_ != nullptr) {
      Status resident = EnsureResidentOnGroup(sp);
      if (!resident.ok()) {
        d->failure = std::move(resident);
        d->terminal = true;
        return;
      }
    }
    RunStageTimed(sp, d, StageKind::kIngest, [sp, d] {
      if (CERL_FAULT_POINT(FaultPoint::kStageThrow)) {
        throw StatusError(Status::Internal("injected stage failure"));
      }
      d->ctx = sp->trainer.BeginStage(d->split);
    });
  });

  // Train, then the post-train numerical guard: a non-finite validation
  // loss means the surviving best snapshot was never beaten by a finite
  // score — the stage trained on garbage.
  s->group.Submit([this, sp, d] {
    if (!d->failure.ok()) return;
    RunStageTimed(sp, d, StageKind::kTrain, [this, sp, d] {
      sp->trainer.TrainStage(d->ctx.get());
      if (options_.health_guards &&
          !std::isfinite(d->ctx->stats.best_valid_loss)) {
        throw StatusError(
            Status::NumericalError("non-finite stage validation loss"));
      }
    });
  });

  // Migrate + finish: success bookkeeping or the failure epilogue.
  s->group.Submit([this, sp, d] {
    if (d->failure.ok()) {
      RunStageTimed(sp, d, StageKind::kMigrate, [this, sp, d] {
        sp->trainer.MigrateStage(d->ctx.get());
        // Post-migrate guard covers the whole durable state: migration just
        // rewrote the memory bank through phi, so params AND memory
        // representations must be finite before this boundary is declared
        // good.
        if (options_.health_guards) {
          Status health = sp->trainer.CheckNumericalHealth();
          if (!health.ok()) throw StatusError(health);
        }
      });
    }
    if (!d->failure.ok()) {
      HandleFailure(sp, d);
      return;
    }

    DomainResult result;
    result.domain_index = d->domain_index;
    result.stats = d->ctx->stats;
    result.memory_units = sp->trainer.memory().size();
    result.attempts = d->attempt + 1;
    // Score only when the test split carries counterfactual ground truth
    // (semi-synthetic benchmarks); production domains without mu0/mu1 pass
    // validation and simply skip the PEHE/ATE readout.
    const data::CausalDataset& test = d->split.test;
    if (test.num_units() > 0 &&
        static_cast<int>(test.mu0.size()) == test.num_units()) {
      result.has_metrics = true;
      result.metrics = sp->trainer.Evaluate(test);
    }
    // Capture the new last-good rollback boundary outside the engine lock
    // (the group serializes all trainer access). Doubles as the snapshot
    // blob cache when snapshot_reuse_blobs is on, so it is captured under
    // either option. On the vanishingly unlikely serialize failure the
    // previous boundary stays in place — a stale rollback target beats
    // none (and the stale cache is rejected by its stage tag).
    std::string last_good;
    int last_good_stage = -1;
    if (options_.health_guards || options_.snapshot_reuse_blobs) {
      Status serialized = sp->trainer.SerializeCheckpoint(&last_good);
      if (!serialized.ok()) {
        last_good.clear();
      } else {
        last_good_stage = sp->trainer.stages_seen();
      }
    }
    // Publish the new domain boundary to the serving plane, still outside
    // the engine lock (the group serializes the trainer; readers swap in
    // the snapshot via the RCU exchange, never via state_mutex_).
    PublishSnapshot(sp);
    const double completion_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - d->pushed_at)
            .count();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      // Domain-completion latency (push to migrated), successes only:
      // dropped domains have no meaningful service time and would poison
      // the SLO percentiles the bench gates on.
      sp->latency.Record(completion_ms);
      sp->results.push_back(result);
      sp->consecutive_failures = 0;
      if (sp->health == StreamHealth::kDegraded) {
        SetHealth(sp, StreamHealth::kHealthy);
      }
      if (!last_good.empty()) {
        sp->last_good = std::move(last_good);
        sp->last_good_stage = last_good_stage;
      }
      // Raw domain data and stage scratch are dead weight once migrated —
      // long-lived tenant streams must not accumulate covariates (the same
      // accessibility criterion the trainer upholds for its memory). The
      // validation task has long been consumed by this pipeline's ingest
      // stage, so the PendingDomain itself can go.
      sp->in_flight.reset();
      sp->touch_tick = ++storage_tick_;
      MaybeDispatchLocked(sp);
      UpdateScheduleLocked(sp);
      MaybeScheduleSpillsLocked();
      // Notify INSIDE the lock: a drain-waiter may be the engine
      // destructor, and notifying an already-destroyed condvar is a race —
      // holding the mutex pins the engine alive until the call returns.
      state_cv_.notify_all();
    }
  });
}

void StreamEngine::HandleFailure(StreamState* sp, PendingDomain* d) {
  // The attempt is over; drop its stage context before any rollback.
  const bool trainer_touched = d->ctx != nullptr;
  d->ctx.reset();

  if (!d->terminal && trainer_touched && options_.health_guards) {
    // Roll the trainer back to its last-good domain boundary. BeginStage
    // advanced stages_seen_ (and TrainStage may have poisoned parameters),
    // so the restore is what makes a retry replay the IDENTICAL stage:
    // stage seeds derive from stages_seen_, which the rollback rewinds.
    // last_good is only written at domain boundaries under state_mutex_ and
    // only read here on the stream's serialized group, so the read is safe.
    sp->trainer.Reset();
    if (!sp->last_good.empty()) {
      Status restored = sp->trainer.DeserializeCheckpoint(sp->last_good);
      if (!restored.ok()) {
        // The rollback target itself failed to restore: the stream's state
        // is unrecoverable in place. Drop the domain and let the health
        // machine quarantine below (the trainer is left freshly reset).
        CERL_LOG(Error) << "stream '" << sp->name
                        << "': rollback failed: " << restored.ToString();
        d->failure = Status::Internal("rollback restore failed: " +
                                      restored.message());
        d->terminal = true;
      }
    }
  }

  // Bounded retry (health_guards only: without rollback a replay would run
  // on a dirty trainer and could not be bit-identical). The backoff is a
  // DEADLINE requeue, not a sleep: the domain parks on the pool's timer
  // heap and the worker returns to serving other streams; when the deadline
  // fires, the attempt is resubmitted onto the stream's (idle) strand. The
  // domain stays in_flight throughout, so Drain and the snapshot fence keep
  // waiting it out exactly as before.
  if (!d->terminal && options_.health_guards &&
      d->attempt < options_.max_domain_retries) {
    const Status failure = d->failure;
    ++d->attempt;
    d->failure = Status::Ok();
    const int delay_ms = BackoffMs(options_.retry_backoff_ms, d->attempt);
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (sp->health == StreamHealth::kHealthy) {
      SetHealth(sp, StreamHealth::kDegraded);
    }
    CERL_LOG(Warning) << "stream '" << sp->name << "' domain "
                      << d->domain_index << " attempt " << d->attempt
                      << " after rollback: " << failure.ToString();
    // Infinite priority like the validation tasks: the requeue itself is
    // microseconds (it only re-submits the stage tasks), and a delayed
    // retry should not additionally queue behind heavy stage work.
    ExecOptions opts;
    opts.priority = std::numeric_limits<double>::infinity();
    pool_.ExecuteAfter(
        delay_ms,
        [this, sp] {
          std::lock_guard<std::mutex> relock(state_mutex_);
          SubmitAttemptLocked(sp);
        },
        opts);
    return;
  }

  // Drop the domain and advance the health state machine.
  DomainResult result;
  result.domain_index = d->domain_index;
  result.status = d->failure;
  result.attempts = d->attempt + 1;
  // Quarantine-shed domains do not re-count toward the failure streak (the
  // stream is already quarantined; the streak recorded how it got there).
  const bool shed = d->terminal &&
                    d->failure.code() == StatusCode::kUnavailable;
  std::lock_guard<std::mutex> lock(state_mutex_);
  sp->results.push_back(std::move(result));
  ++sp->failed_domains;
  if (!shed) {
    ++sp->consecutive_failures;
    if (sp->consecutive_failures >=
        std::max(1, options_.quarantine_after_failures)) {
      SetHealth(sp, StreamHealth::kQuarantined);
      CERL_LOG(Warning) << "stream '" << sp->name << "' quarantined after "
                        << sp->consecutive_failures
                        << " consecutive dropped domains";
    } else {
      SetHealth(sp, StreamHealth::kDegraded);
    }
  }
  sp->in_flight.reset();
  sp->touch_tick = ++storage_tick_;
  MaybeDispatchLocked(sp);
  UpdateScheduleLocked(sp);
  MaybeScheduleSpillsLocked();
  state_cv_.notify_all();
}

double StreamEngine::ExpectedPendingMsLocked(const StreamState& s) const {
  double pending = 0.0;
  for (const auto& queued : s.queue) {
    pending += s.cost_model.PredictDomainMs(queued->shape);
  }
  if (s.in_flight != nullptr) {
    for (int stage = s.in_flight->stages_done; stage < kNumStages; ++stage) {
      pending += s.cost_model.PredictMs(static_cast<StageKind>(stage),
                                        s.in_flight->shape);
    }
  }
  return pending;
}

double StreamEngine::OldestPendingAgeMsLocked(const StreamState& s) const {
  // Per-stream FIFO: the in-flight domain (if any) was pushed before
  // anything still queued.
  const PendingDomain* oldest = s.in_flight != nullptr
                                    ? s.in_flight.get()
                                    : (!s.queue.empty() ? s.queue.front().get()
                                                        : nullptr);
  if (oldest == nullptr) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - oldest->pushed_at)
      .count();
}

void StreamEngine::UpdateScheduleLocked(StreamState* s) {
  if (options_.schedule_policy != SchedulePolicy::kCostAware) return;
  ExecOptions opts;
  // Longest-expected-queue-first with aging: the age of the stream's oldest
  // un-migrated domain dominates (so completion order tracks arrival order
  // and no tenant can be starved by a heavier one — the pool additionally
  // ages every waiting task at 1 ms/ms), while a fraction of the expected
  // pending work breaks age ties toward backlogged streams, which then
  // drain back-to-back instead of one stage per cycle of the ready set.
  // kPendingWeight trades the two: 1.0 lets a deep backlog pre-empt light
  // tenants for its whole drain (p50 suffers), 0 is plain oldest-first and
  // forfeits the continuous-drain win; 0.5 measured best for p99 on the
  // skewed-tenant SLO bench. Both terms are in milliseconds, the pool's
  // priority unit.
  constexpr double kPendingWeight = 0.5;
  opts.priority = kPendingWeight * ExpectedPendingMsLocked(*s) +
                  OldestPendingAgeMsLocked(*s);
  opts.home = s->home;
  s->group.SetExecOptions(opts);
}

StreamSchedStats StreamEngine::SchedStatsLocked(const StreamState& s) const {
  StreamSchedStats stats;
  stats.queue_depth = static_cast<int>(s.queue.size()) +
                      (s.in_flight != nullptr ? 1 : 0);
  for (int stage = 0; stage < kNumStages; ++stage) {
    stats.ewma_stage_cost_ms[stage] =
        s.cost_model.ewma_stage_ms(static_cast<StageKind>(stage));
  }
  stats.steal_count = s.stolen_stages;
  stats.stages_executed = s.cost_model.observations();
  stats.cost_model_error = s.cost_model.mean_abs_pct_error();
  stats.expected_pending_ms = ExpectedPendingMsLocked(s);
  stats.completion_latency = s.latency;
  return stats;
}

StreamSchedStats StreamEngine::sched_stats(int id) const {
  const StreamState& s = stream(id);
  std::lock_guard<std::mutex> lock(state_mutex_);
  return SchedStatsLocked(s);
}

StreamSchedStats StreamEngine::TotalSchedStats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  StreamSchedStats total;
  double weighted_error = 0.0;
  int64_t error_weight = 0;
  for (const auto& s : streams_) {
    const StreamSchedStats stats = SchedStatsLocked(*s);
    total.queue_depth += stats.queue_depth;
    total.steal_count += stats.steal_count;
    total.stages_executed += stats.stages_executed;
    total.expected_pending_ms += stats.expected_pending_ms;
    total.completion_latency.Merge(stats.completion_latency);
    const int64_t scored = s->cost_model.scored_predictions();
    weighted_error += stats.cost_model_error * static_cast<double>(scored);
    error_weight += scored;
    // The per-stage EWMAs do not aggregate meaningfully across streams of
    // different sizes; the total reports the max as "worst stage cost".
    for (int stage = 0; stage < kNumStages; ++stage) {
      total.ewma_stage_cost_ms[stage] = std::max(
          total.ewma_stage_cost_ms[stage], stats.ewma_stage_cost_ms[stage]);
    }
  }
  if (error_weight > 0) {
    total.cost_model_error =
        weighted_error / static_cast<double>(error_weight);
  }
  return total;
}

void StreamEngine::Drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this] {
    if (paused_) return false;  // snapshot fence first, then keep draining
    for (const auto& s : streams_) {
      // A pending spill task also counts as in-flight work: the destructor
      // relies on Drain leaving no task that could touch engine state (the
      // mutex/condvar are destroyed before the TaskGroups).
      if (s->in_flight != nullptr || !s->queue.empty() || s->spilling) {
        return false;
      }
    }
    return true;
  });
}

Status StreamEngine::DrainStream(int id) {
  if (id < 0 || id >= num_streams()) {
    return Status::NotFound("no stream with id " + std::to_string(id));
  }
  StreamState& s = *streams_[id];
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this, &s] {
    return !paused_ && s.in_flight == nullptr && s.queue.empty() &&
           !s.spilling;
  });
  return Status::Ok();
}

const std::string& StreamEngine::name(int id) const {
  return stream(id).name;
}

const std::vector<DomainResult>& StreamEngine::results(int id) const {
  return stream(id).results;
}

core::CerlTrainer& StreamEngine::trainer(int id) { return stream(id).trainer; }

StreamHealth StreamEngine::health(int id) const {
  const StreamState& s = stream(id);
  std::lock_guard<std::mutex> lock(state_mutex_);
  return s.health;
}

int StreamEngine::consecutive_failures(int id) const {
  const StreamState& s = stream(id);
  std::lock_guard<std::mutex> lock(state_mutex_);
  return s.consecutive_failures;
}

int StreamEngine::failed_domains(int id) const {
  const StreamState& s = stream(id);
  std::lock_guard<std::mutex> lock(state_mutex_);
  return s.failed_domains;
}

}  // namespace cerl::stream
