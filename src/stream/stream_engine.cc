#include "stream/stream_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "stream/stream_internal.h"
#include "util/check.h"
#include "util/logging.h"

namespace cerl::stream {

namespace {

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options), pool_(ResolveWorkers(options.num_workers)) {}

StreamEngine::~StreamEngine() { Drain(); }

StreamEngine::StreamState& StreamEngine::stream(int id) {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

const StreamEngine::StreamState& StreamEngine::stream(int id) const {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

int StreamEngine::AddStream(std::string name, const core::CerlConfig& config,
                            int input_dim) {
  // Point the stream's micro Sinkhorn solves at the shared cross-stream
  // batcher. Results are bit-identical either way (fused_micro_solver.h),
  // so this stays a runtime scheduling knob.
  core::CerlConfig stream_config = config;
  stream_config.train.sinkhorn.batcher =
      options_.fuse_micro_solves ? &micro_batcher_ : nullptr;
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), stream_config, input_dim, &pool_));
  return num_streams() - 1;
}

void StreamEngine::PushDomain(int id, data::DataSplit split) {
  StreamState& s = stream(id);
  auto owned = std::make_unique<PendingDomain>();
  PendingDomain* d = owned.get();
  d->split = std::move(split);

  const int input_dim = s.input_dim;
  std::lock_guard<std::mutex> lock(state_mutex_);
  d->domain_index = s.pushed++;
  s.queue.push_back(std::move(owned));
  // Pre-flight validation: pure, so it runs as a free pool task right away
  // and overlaps whatever stage any stream is currently in. It is submitted
  // before the domain's ingest task can be (dispatch happens at or after
  // this push), so the ingest wait can never starve it of a worker.
  if (options_.validate_on_push) {
    pool_.Submit([d, input_dim] {
      Status status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
      std::lock_guard<std::mutex> lock(d->mutex);
      d->status = status;
      d->validated = true;
      // Notify while holding d->mutex: the moment the ingest waiter can
      // proceed, the pipeline may run to completion and destroy this
      // PendingDomain — the held mutex is what keeps `d` alive until the
      // notify call has returned.
      d->cv.notify_all();
    });
  }
  MaybeDispatchLocked(&s);
}

void StreamEngine::MaybeDispatchLocked(StreamState* s) {
  if (paused_ || s->in_flight != nullptr || s->queue.empty()) return;
  s->in_flight = std::move(s->queue.front());
  s->queue.pop_front();
  PendingDomain* d = s->in_flight.get();
  StreamState* sp = s;

  const int input_dim = s->input_dim;
  const bool validate_inline = !options_.validate_on_push;
  // Stage pipeline, serialized per stream by the task group; unrelated
  // streams' groups interleave on the same workers.
  s->group.Submit([sp, d, validate_inline, input_dim] {
    if (validate_inline) {
      d->status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
    } else {
      std::unique_lock<std::mutex> lock(d->mutex);
      d->cv.wait(lock, [d] { return d->validated; });
    }
    CERL_CHECK_MSG(d->status.ok(), d->status.ToString().c_str());
    d->ctx = sp->trainer.BeginStage(d->split);
  });
  s->group.Submit([sp, d] { sp->trainer.TrainStage(d->ctx.get()); });
  s->group.Submit([this, sp, d] {
    sp->trainer.MigrateStage(d->ctx.get());
    DomainResult result;
    result.domain_index = d->domain_index;
    result.stats = d->ctx->stats;
    result.memory_units = sp->trainer.memory().size();
    // Score only when the test split carries counterfactual ground truth
    // (semi-synthetic benchmarks); production domains without mu0/mu1 pass
    // validation and simply skip the PEHE/ATE readout.
    const data::CausalDataset& test = d->split.test;
    if (test.num_units() > 0 &&
        static_cast<int>(test.mu0.size()) == test.num_units()) {
      result.has_metrics = true;
      result.metrics = sp->trainer.Evaluate(test);
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      sp->results.push_back(result);
      // Raw domain data and stage scratch are dead weight once migrated —
      // long-lived tenant streams must not accumulate covariates (the same
      // accessibility criterion the trainer upholds for its memory). The
      // validation task has long been consumed by this pipeline's ingest
      // stage, so the PendingDomain itself can go.
      sp->in_flight.reset();
      MaybeDispatchLocked(sp);
      // Notify INSIDE the lock: a drain-waiter may be the engine
      // destructor, and notifying an already-destroyed condvar is a race —
      // holding the mutex pins the engine alive until the call returns.
      state_cv_.notify_all();
    }
  });
}

void StreamEngine::Drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this] {
    if (paused_) return false;  // snapshot fence first, then keep draining
    for (const auto& s : streams_) {
      if (s->in_flight != nullptr || !s->queue.empty()) return false;
    }
    return true;
  });
}

void StreamEngine::DrainStream(int id) {
  StreamState& s = stream(id);
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this, &s] {
    return !paused_ && s.in_flight == nullptr && s.queue.empty();
  });
}

const std::string& StreamEngine::name(int id) const {
  return stream(id).name;
}

const std::vector<DomainResult>& StreamEngine::results(int id) const {
  return stream(id).results;
}

core::CerlTrainer& StreamEngine::trainer(int id) { return stream(id).trainer; }

}  // namespace cerl::stream
