#include "stream/stream_engine.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace cerl::stream {

// One pushed domain moving through the stage pipeline. The split must stay
// address-stable while tasks reference it, so PendingDomains are held by
// unique_ptr and never relocated.
struct StreamEngine::PendingDomain {
  data::DataSplit split;
  int domain_index = 0;

  // Pre-flight validation rendezvous: set by the free pool task, awaited by
  // the ingest stage (usually already complete — it overlapped an earlier
  // stage's training).
  std::mutex mutex;
  std::condition_variable cv;
  bool validated = false;
  Status status;

  std::unique_ptr<core::CerlTrainer::StageContext> ctx;
};

struct StreamEngine::StreamState {
  StreamState(std::string stream_name, const core::CerlConfig& config,
              int input_dim, ThreadPool* pool)
      : name(std::move(stream_name)),
        input_dim(input_dim),
        trainer(config, input_dim),
        group(pool) {}

  std::string name;
  int input_dim;
  core::CerlTrainer trainer;
  TaskGroup group;
  std::deque<std::unique_ptr<PendingDomain>> domains;
  std::vector<DomainResult> results;
  int pushed = 0;
};

namespace {

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options), pool_(ResolveWorkers(options.num_workers)) {}

StreamEngine::~StreamEngine() { Drain(); }

StreamEngine::StreamState& StreamEngine::stream(int id) {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

const StreamEngine::StreamState& StreamEngine::stream(int id) const {
  CERL_CHECK(id >= 0 && id < num_streams());
  return *streams_[id];
}

int StreamEngine::AddStream(std::string name, const core::CerlConfig& config,
                            int input_dim) {
  streams_.push_back(std::make_unique<StreamState>(std::move(name), config,
                                                   input_dim, &pool_));
  return num_streams() - 1;
}

void StreamEngine::PushDomain(int id, data::DataSplit split) {
  StreamState& s = stream(id);
  s.domains.push_back(std::make_unique<PendingDomain>());
  PendingDomain* d = s.domains.back().get();
  d->split = std::move(split);
  d->domain_index = s.pushed++;

  // Pre-flight validation: pure, so it runs as a free pool task right away
  // and overlaps whatever stage any stream is currently in. The pool queue
  // is FIFO and this is submitted before the domain's ingest task can be,
  // so the ingest wait below can never starve it of a worker.
  const int input_dim = s.input_dim;
  if (options_.validate_on_push) {
    pool_.Submit([d, input_dim] {
      Status status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
      {
        std::lock_guard<std::mutex> lock(d->mutex);
        d->status = status;
        d->validated = true;
      }
      d->cv.notify_all();
    });
  }

  StreamState* sp = &s;
  const bool validate_inline = !options_.validate_on_push;
  // Stage pipeline, serialized per stream by the task group; unrelated
  // streams' groups interleave on the same workers.
  s.group.Submit([sp, d, validate_inline, input_dim] {
    if (validate_inline) {
      d->status = core::CerlTrainer::ValidateDomain(d->split, input_dim);
    } else {
      std::unique_lock<std::mutex> lock(d->mutex);
      d->cv.wait(lock, [d] { return d->validated; });
    }
    CERL_CHECK_MSG(d->status.ok(), d->status.ToString().c_str());
    d->ctx = sp->trainer.BeginStage(d->split);
  });
  s.group.Submit([sp, d] { sp->trainer.TrainStage(d->ctx.get()); });
  s.group.Submit([sp, d] {
    sp->trainer.MigrateStage(d->ctx.get());
    DomainResult result;
    result.domain_index = d->domain_index;
    result.stats = d->ctx->stats;
    result.memory_units = sp->trainer.memory().size();
    // Score only when the test split carries counterfactual ground truth
    // (semi-synthetic benchmarks); production domains without mu0/mu1 pass
    // validation and simply skip the PEHE/ATE readout.
    const data::CausalDataset& test = d->split.test;
    if (test.num_units() > 0 &&
        static_cast<int>(test.mu0.size()) == test.num_units()) {
      result.has_metrics = true;
      result.metrics = sp->trainer.Evaluate(test);
    }
    sp->results.push_back(result);
    // Raw domain data and stage scratch are dead weight once migrated —
    // long-lived tenant streams must not accumulate covariates (the same
    // accessibility criterion the trainer upholds for its memory).
    d->ctx.reset();
    d->split = data::DataSplit();
  });
}

void StreamEngine::Drain() {
  for (auto& s : streams_) {
    s->group.Wait();
    // Every task referencing these PendingDomains has completed (the
    // group's Wait fences them; each domain's validation task is consumed
    // by its — now finished — ingest task), so the bookkeeping can go too.
    s->domains.clear();
  }
}

void StreamEngine::DrainStream(int id) {
  StreamState& s = stream(id);
  s.group.Wait();
  s.domains.clear();
}

const std::string& StreamEngine::name(int id) const {
  return stream(id).name;
}

const std::vector<DomainResult>& StreamEngine::results(int id) const {
  return stream(id).results;
}

core::CerlTrainer& StreamEngine::trainer(int id) { return stream(id).trainer; }

}  // namespace cerl::stream
