// Engine-level snapshot/restore (StreamEngine::SaveSnapshot/LoadSnapshot).
//
// A multi-tenant CERL server's entire durable state is: per stream, the
// trainer's continual state (model + scalers + memory M_d + stage counter +
// RNG — the CERLCKP1 payload from core/checkpoint.cc) plus the domains that
// were pushed but not yet trained. The paper's accessibility criterion makes
// this exactly what may persist: the journal holds only domains that have
// not been consumed yet (they are current, not past-domain, data), and
// nothing else in the container is raw covariates.
//
// Format CERLENG4 (writes; CERLENG1..3 still read — golden fixtures under
// tests/testdata/ pin the old layouts):
//   magic "CERLENG4",
//   u32 num_workers, u8 validate_on_push          (informational),
//   u8 backlog_in_wal                              (v4: 1 = the journal is
//     elided; the still-queued domains live in the WAL and Recover()
//     replays them — see engine_storage.cc),
//   u32 num_streams, then per stream:
//     u32 name_len, name bytes,
//     u32 input_dim,
//     CerlConfig block (fixed field order, see snapfmt::WriteConfig),
//     u32 completed_domains                        (resumes domain indices),
//     u8 health, u32 consecutive_failures, u32 failed_domains
//                                    (v2+ only; v1 restores as healthy/0/0),
//     3 x { f64 rate_ms_per_unit, i64 count }      (v3+ only: the stream's
//       learned StageCostModel rates; v1/v2 restore with COLD cost models —
//       the scheduler re-learns rates within a few stages, so older
//       snapshots stay fully loadable),
//     u8 has_trainer, [u64 blob_len, CERLCKP1 payload incl. its checksum],
//     u32 journal_count, then per queued domain a DataSplit
//       (train/valid/test, each: u32 rows, u32 cols, f64 x[], u8 t[],
//        u32 n + f64 y[], u32 n + f64 mu0[], u32 n + f64 mu1[]),
//   u64 FNV-1a checksum.
//
// v4 checksum scope: the trailing hash covers the container METADATA only —
// the embedded CERLCKP1 blob spans are excluded. Each blob already carries
// its own whole-payload checksum (verified by DeserializeCheckpoint), so
// corruption anywhere is still detected; what the exclusion buys is an
// O(dirty streams) SaveSnapshot — an unchanged tenant costs one memcpy of
// its cached blob instead of a re-serialize plus a re-hash of megabytes of
// parameters. v1..3 hash every byte (VerifyChecksum), and their readers
// still do.
//
// The last-good rollback blob is NOT a separate field: at the snapshot
// fence every trainer sits at a domain boundary, so its serialized
// checkpoint IS the last-good state — LoadSnapshot re-seeds each stream's
// rollback target (and the v4 blob-reuse cache) from the embedded blob.
//
// Every read is bounds-checked against the remaining payload before
// allocating, and LoadSnapshot stages the entire engine (streams, trainers,
// journal) before publishing anything — a corrupt snapshot leaves the
// target engine with zero streams.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/tenant_store.h"
#include "stream/stream_engine.h"
#include "stream/stream_internal.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace cerl::stream {
namespace {

constexpr char kMagicV1[8] = {'C', 'E', 'R', 'L', 'E', 'N', 'G', '1'};
constexpr char kMagicV2[8] = {'C', 'E', 'R', 'L', 'E', 'N', 'G', '2'};
constexpr char kMagicV3[8] = {'C', 'E', 'R', 'L', 'E', 'N', 'G', '3'};
constexpr char kMagicV4[8] = {'C', 'E', 'R', 'L', 'E', 'N', 'G', '4'};

// Decode-time sanity caps: generous for any real deployment, small enough
// that a corrupted count fails fast with a descriptive error instead of an
// attempted allocation (the byte-level guard is BoundedReader::Require) —
// and, for the dataset dims, small enough that rows * cols * 8 can never
// overflow uint64 and defeat that guard. The stream/name/journal caps live
// in snapfmt (stream_internal.h) because the WAL replay path shares them.
constexpr uint32_t kMaxHiddenLayers = 1u << 10;
constexpr uint32_t kMaxLayerWidth = 1u << 20;
constexpr uint32_t kMaxUnits = 1u << 27;
constexpr uint32_t kMaxFeatures = 1u << 24;

void WriteIntVector(std::string* out, const std::vector<int>& v) {
  WritePod(out, static_cast<uint32_t>(v.size()));
  for (int x : v) WritePod(out, static_cast<int32_t>(x));
}

// Reads a hidden-layer width list; widths are construction inputs (Mlp
// CHECK-aborts on non-positive sizes), so they are validated here where a
// bad value is still a clean decode error.
Status ReadIntVector(BoundedReader* r, std::vector<int>* v,
                     const char* what) {
  uint32_t n = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&n, what));
  if (n > kMaxHiddenLayers) {
    return Status::IoError(std::string(what) + ": implausible count " +
                           std::to_string(n));
  }
  CERL_RETURN_IF_ERROR(r->Require(static_cast<uint64_t>(n) * 4, what));
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t x = 0;
    CERL_RETURN_IF_ERROR(r->ReadPod(&x, what));
    if (x < 1 || x > static_cast<int32_t>(kMaxLayerWidth)) {
      return Status::IoError(std::string(what) + ": implausible width " +
                             std::to_string(x));
    }
    (*v)[i] = x;
  }
  return Status::Ok();
}

Status ReadBool(BoundedReader* r, bool* v, const char* what) {
  uint8_t b = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&b, what));
  if (b > 1) {
    return Status::IoError(std::string(what) + ": flag is not 0/1");
  }
  *v = b != 0;
  return Status::Ok();
}

// --- DataSplit dataset codec (the replay journal) -------------------------

void WriteDataset(std::string* out, const data::CausalDataset& d) {
  WritePod(out, static_cast<uint32_t>(d.x.rows()));
  WritePod(out, static_cast<uint32_t>(d.x.cols()));
  out->append(reinterpret_cast<const char*>(d.x.data()),
              static_cast<size_t>(d.x.size()) * sizeof(double));
  for (int t : d.t) WritePod(out, static_cast<uint8_t>(t));
  WriteF64Vector(out, d.y);
  WriteF64Vector(out, d.mu0);
  WriteF64Vector(out, d.mu1);
}

// A mu column is either aligned with the units or absent (production
// domains without counterfactual ground truth serialize empty mu vectors).
Status ReadMuColumn(BoundedReader* r, uint32_t rows, linalg::Vector* v,
                    const char* what) {
  uint32_t n = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&n, what));
  if (n != rows && n != 0) {
    return Status::IoError(std::string(what) + ": size " + std::to_string(n) +
                           " does not match unit count " +
                           std::to_string(rows));
  }
  CERL_RETURN_IF_ERROR(
      r->Require(static_cast<uint64_t>(n) * sizeof(double), what));
  v->resize(n);
  return r->ReadRaw(v->data(), static_cast<uint64_t>(n) * sizeof(double),
                    what);
}

Status ReadDataset(BoundedReader* r, data::CausalDataset* d,
                   const char* what) {
  uint32_t rows = 0, cols = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&rows, what));
  CERL_RETURN_IF_ERROR(r->ReadPod(&cols, what));
  // The caps keep rows * cols * 8 far below uint64 overflow (2^27 * 2^24 *
  // 2^3 = 2^54), so the Require byte check below cannot be defeated by
  // wraparound.
  if (rows > kMaxUnits) {
    return Status::IoError(std::string(what) + ": implausible unit count " +
                           std::to_string(rows));
  }
  if (cols > kMaxFeatures) {
    return Status::IoError(std::string(what) +
                           ": implausible feature count " +
                           std::to_string(cols));
  }
  const uint64_t x_bytes = static_cast<uint64_t>(rows) * cols * sizeof(double);
  CERL_RETURN_IF_ERROR(r->Require(x_bytes, what));
  d->x.Resize(static_cast<int>(rows), static_cast<int>(cols));
  CERL_RETURN_IF_ERROR(r->ReadRaw(d->x.data(), x_bytes, what));
  CERL_RETURN_IF_ERROR(r->Require(rows, what));
  d->t.resize(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    uint8_t b = 0;
    CERL_RETURN_IF_ERROR(r->ReadPod(&b, what));
    if (b > 1) {
      return Status::IoError(std::string(what) +
                             ": journal treatment is not 0/1");
    }
    d->t[i] = b;
  }
  CERL_RETURN_IF_ERROR(ReadF64VectorExpected(r, rows, &d->y, what));
  CERL_RETURN_IF_ERROR(ReadMuColumn(r, rows, &d->mu0, what));
  CERL_RETURN_IF_ERROR(ReadMuColumn(r, rows, &d->mu1, what));
  return Status::Ok();
}

}  // namespace

// Shared snapshot/WAL wire codecs (declared in stream_internal.h): the WAL
// record payloads reuse the config and split codecs verbatim, so a
// WAL-replayed domain decodes through the same bounds-checked path as a
// journaled one.
namespace snapfmt {

// --- CerlConfig codec (fixed field order; the CERLENG1 magic versions it) --

void WriteConfig(std::string* out, const core::CerlConfig& c) {
  WriteIntVector(out, c.net.rep_hidden);
  WritePod(out, static_cast<int32_t>(c.net.rep_dim));
  WriteIntVector(out, c.net.head_hidden);
  WritePod(out, static_cast<uint8_t>(c.net.activation));
  WritePod(out, static_cast<uint8_t>(c.net.cosine_normalized_rep ? 1 : 0));

  WritePod(out, static_cast<int32_t>(c.train.epochs));
  WritePod(out, static_cast<int32_t>(c.train.batch_size));
  WritePod(out, c.train.learning_rate);
  WritePod(out, static_cast<int32_t>(c.train.patience));
  WritePod(out, c.train.alpha);
  WritePod(out, c.train.lambda);
  WritePod(out, static_cast<uint8_t>(c.train.ipm));
  WritePod(out, c.train.sinkhorn.reg_fraction);
  WritePod(out, static_cast<int32_t>(c.train.sinkhorn.max_iterations));
  WritePod(out, c.train.sinkhorn.tolerance);
  WritePod(out, static_cast<uint8_t>(c.train.sinkhorn.warm_start ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(c.train.sinkhorn.parallel ? 1 : 0));
  WritePod(out,
           static_cast<int64_t>(c.train.sinkhorn.min_parallel_elements));
  WritePod(out, static_cast<uint64_t>(c.train.seed));
  WritePod(out, static_cast<uint8_t>(c.train.verbose ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(c.train.async_validation ? 1 : 0));

  WritePod(out, c.beta);
  WritePod(out, c.delta);
  WritePod(out, static_cast<int32_t>(c.memory_capacity));
  WritePod(out, static_cast<uint8_t>(c.use_transform ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(c.use_herding ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(c.init_from_previous ? 1 : 0));
  WritePod(out, c.continual_lr_scale);
  WriteIntVector(out, c.transform_hidden);
}

Status ReadConfig(BoundedReader* r, core::CerlConfig* c) {
  int32_t i32 = 0;
  uint8_t u8 = 0;

  CERL_RETURN_IF_ERROR(ReadIntVector(r, &c->net.rep_hidden, "rep_hidden"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "rep_dim"));
  if (i32 < 1 || i32 > static_cast<int32_t>(kMaxLayerWidth)) {
    return Status::IoError("implausible rep_dim " + std::to_string(i32));
  }
  c->net.rep_dim = i32;
  CERL_RETURN_IF_ERROR(ReadIntVector(r, &c->net.head_hidden, "head_hidden"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&u8, "activation"));
  if (u8 > static_cast<uint8_t>(nn::Activation::kSigmoid)) {
    return Status::IoError("unknown activation code " + std::to_string(u8));
  }
  c->net.activation = static_cast<nn::Activation>(u8);
  CERL_RETURN_IF_ERROR(
      ReadBool(r, &c->net.cosine_normalized_rep, "cosine flag"));

  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "epochs"));
  if (i32 < 0) return Status::IoError("negative epochs");
  c->train.epochs = i32;
  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "batch_size"));
  if (i32 < 1) return Status::IoError("non-positive batch_size");
  c->train.batch_size = i32;
  CERL_RETURN_IF_ERROR(r->ReadPod(&c->train.learning_rate, "learning_rate"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "patience"));
  c->train.patience = i32;
  CERL_RETURN_IF_ERROR(r->ReadPod(&c->train.alpha, "alpha"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&c->train.lambda, "lambda"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&u8, "ipm kind"));
  if (u8 > static_cast<uint8_t>(ot::IpmKind::kLinearMmd)) {
    return Status::IoError("unknown IPM code " + std::to_string(u8));
  }
  c->train.ipm = static_cast<ot::IpmKind>(u8);
  CERL_RETURN_IF_ERROR(
      r->ReadPod(&c->train.sinkhorn.reg_fraction, "reg_fraction"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "max_iterations"));
  c->train.sinkhorn.max_iterations = i32;
  CERL_RETURN_IF_ERROR(r->ReadPod(&c->train.sinkhorn.tolerance, "tolerance"));
  CERL_RETURN_IF_ERROR(
      ReadBool(r, &c->train.sinkhorn.warm_start, "warm_start"));
  CERL_RETURN_IF_ERROR(ReadBool(r, &c->train.sinkhorn.parallel, "parallel"));
  int64_t i64 = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&i64, "min_parallel_elements"));
  c->train.sinkhorn.min_parallel_elements = i64;
  uint64_t seed = 0;
  CERL_RETURN_IF_ERROR(r->ReadPod(&seed, "seed"));
  c->train.seed = seed;
  CERL_RETURN_IF_ERROR(ReadBool(r, &c->train.verbose, "verbose"));
  CERL_RETURN_IF_ERROR(
      ReadBool(r, &c->train.async_validation, "async_validation"));

  CERL_RETURN_IF_ERROR(r->ReadPod(&c->beta, "beta"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&c->delta, "delta"));
  CERL_RETURN_IF_ERROR(r->ReadPod(&i32, "memory_capacity"));
  if (i32 < 0) return Status::IoError("negative memory_capacity");
  c->memory_capacity = i32;
  CERL_RETURN_IF_ERROR(ReadBool(r, &c->use_transform, "use_transform"));
  CERL_RETURN_IF_ERROR(ReadBool(r, &c->use_herding, "use_herding"));
  CERL_RETURN_IF_ERROR(
      ReadBool(r, &c->init_from_previous, "init_from_previous"));
  CERL_RETURN_IF_ERROR(
      r->ReadPod(&c->continual_lr_scale, "continual_lr_scale"));
  CERL_RETURN_IF_ERROR(
      ReadIntVector(r, &c->transform_hidden, "transform_hidden"));
  return Status::Ok();
}

void WriteSplit(std::string* out, const data::DataSplit& split) {
  WriteDataset(out, split.train);
  WriteDataset(out, split.valid);
  WriteDataset(out, split.test);
}

Status ReadSplit(BoundedReader* r, data::DataSplit* split) {
  CERL_RETURN_IF_ERROR(ReadDataset(r, &split->train, "journal train split"));
  CERL_RETURN_IF_ERROR(ReadDataset(r, &split->valid, "journal valid split"));
  CERL_RETURN_IF_ERROR(ReadDataset(r, &split->test, "journal test split"));
  return Status::Ok();
}

}  // namespace snapfmt

Status StreamEngine::SerializeSnapshotLocked(std::string* out,
                                             SnapshotInfo* info) {
  out->clear();
  // Size hint so the fence's dominant cost — appending cached trainer blobs
  // — is one copy each, not a geometric-growth realloc cascade. Spilled
  // blobs and journaled splits are fetched later and missing from the
  // estimate; reserve() is a hint, not a bound.
  size_t reserve_bytes = 64;
  for (const auto& s : streams_) {
    reserve_bytes += s->name.size() + s->last_good.size() + 256;
  }
  out->reserve(reserve_bytes);
  out->append(kMagicV4, sizeof(kMagicV4));
  WritePod(out, static_cast<uint32_t>(pool_.num_threads()));
  WritePod(out, static_cast<uint8_t>(options_.validate_on_push ? 1 : 0));
  // With a WAL attached the journal is elided: every still-queued domain is
  // already an accepted-domain WAL record, and Recover() replays exactly the
  // ones at or past each stream's restored completed count. Snapshot size
  // is then independent of backlog depth.
  const bool backlog_in_wal = wal_ != nullptr;
  WritePod(out, static_cast<uint8_t>(backlog_in_wal ? 1 : 0));
  WritePod(out, static_cast<uint32_t>(streams_.size()));
  // Byte ranges of the embedded CERLCKP1 blobs, excluded from the trailing
  // metadata checksum (see the format comment at the top of this file).
  std::vector<std::pair<size_t, size_t>> blob_spans;
  blob_spans.reserve(streams_.size());
  for (const auto& s : streams_) {
    WritePod(out, static_cast<uint32_t>(s->name.size()));
    out->append(s->name);
    WritePod(out, static_cast<uint32_t>(s->input_dim));
    snapfmt::WriteConfig(out, s->trainer.config());
    // At the snapshot fence nothing is in flight, so pushed minus queued is
    // the completed-domain count; restoring it keeps domain indices
    // continuous across the restart.
    const uint32_t completed =
        static_cast<uint32_t>(s->pushed - static_cast<int>(s->queue.size()));
    WritePod(out, completed);
    // Health block (v2): a restored engine must keep honoring a quarantine
    // and must resume a failure streak where it left off — otherwise a
    // restart would hand a poisoned tenant a fresh error budget.
    WritePod(out, static_cast<uint8_t>(s->health));
    WritePod(out, static_cast<uint32_t>(s->consecutive_failures));
    WritePod(out, static_cast<uint32_t>(s->failed_domains));
    // Cost-model block (v3): the learned per-stage rates. Persisting them
    // means a restored backlogged engine schedules with warm estimates from
    // the first dispatch instead of re-learning under load.
    s->cost_model.Serialize(out);
    // Trainer blob, cheapest source first: a spilled stream's state IS its
    // stored blob (embedding it keeps the snapshot self-contained — restore
    // never needs the page store); an unchanged resident stream re-embeds
    // its cached last-good capture; only dirty streams re-serialize.
    const std::string* blob = nullptr;
    std::string fetched;
    if (!s->resident) {
      if (store_ == nullptr) {
        return Status::Internal("stream '" + s->name +
                                "' is spilled but no store is open");
      }
      Result<std::string> got = store_->Get(s->id);
      if (!got.ok()) return got.status();
      fetched = std::move(got).value();
      blob = &fetched;
      if (info != nullptr) ++info->reused_blobs;
    } else if (s->trainer.stages_seen() > 0) {
      if (options_.snapshot_reuse_blobs &&
          s->last_good_stage == s->trainer.stages_seen() &&
          !s->last_good.empty()) {
        blob = &s->last_good;
        if (info != nullptr) ++info->reused_blobs;
      } else {
        // Dirty (or caching off): serialize fresh and refresh the cache —
        // at the fence this is a domain-boundary state, i.e. exactly the
        // stream's last-good state.
        std::string fresh;
        CERL_RETURN_IF_ERROR(s->trainer.SerializeCheckpoint(&fresh));
        s->last_good = std::move(fresh);
        s->last_good_stage = s->trainer.stages_seen();
        blob = &s->last_good;
        if (info != nullptr) ++info->dirty_streams;
      }
    }
    WritePod(out, static_cast<uint8_t>(blob != nullptr ? 1 : 0));
    if (blob != nullptr) {
      WritePod(out, static_cast<uint64_t>(blob->size()));
      blob_spans.emplace_back(out->size(), blob->size());
      out->append(*blob);
    }
    // Replay journal: the queue verbatim, in push order (elided when the
    // backlog lives in the WAL). Validation verdicts are deliberately not
    // persisted — restore re-runs pre-flight validation on every journaled
    // domain, so the restored engine enforces exactly the same contract as
    // the original push.
    const uint32_t journal_count =
        backlog_in_wal ? 0u : static_cast<uint32_t>(s->queue.size());
    WritePod(out, journal_count);
    if (!backlog_in_wal) {
      for (const auto& d : s->queue) snapfmt::WriteSplit(out, d->split);
    }
  }
  // Metadata-only trailing checksum: hash everything except the blob spans
  // (which verify themselves).
  Fnv1a64Stream hasher;
  const std::string_view bytes(*out);
  size_t pos = 0;
  for (const auto& span : blob_spans) {
    hasher.Update(bytes.substr(pos, span.first - pos));
    pos = span.first + span.second;
  }
  hasher.Update(bytes.substr(pos));
  WritePod(out, hasher.digest());
  return Status::Ok();
}

Status StreamEngine::SaveSnapshot(const std::string& path,
                                  SnapshotInfo* info) {
  std::string payload;
  int fence_num_streams = 0;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (paused_) {
      return Status::FailedPrecondition("snapshot already in progress");
    }
    paused_ = true;
    // Domain-boundary fence: dispatch is paused, so once every in-flight
    // pipeline completes, each trainer sits between domains, the queues are
    // frozen, and the TaskGroups are idle — the workers stay up throughout.
    // Pending spill tasks are waited out too: SerializeSnapshotLocked must
    // never serialize a trainer a spill task is concurrently serializing
    // (and no NEW spill can start while paused_ — spills are only scheduled
    // by completing pipelines).
    state_cv_.wait(lock, [this] {
      for (const auto& s : streams_) {
        if (s->in_flight != nullptr || s->spilling) return false;
      }
      return true;
    });
    fence_num_streams = static_cast<int>(streams_.size());
    if (info != nullptr) {
      *info = SnapshotInfo();
      info->num_streams = static_cast<int>(streams_.size());
      for (const auto& s : streams_) {
        info->journaled_domains += static_cast<int>(s->queue.size());
        info->completed_domains +=
            s->pushed - static_cast<int>(s->queue.size());
      }
    }
    const auto serialize_start = std::chrono::steady_clock::now();
    Status serialized = SerializeSnapshotLocked(&payload, info);
    if (info != nullptr) {
      info->serialize_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - serialize_start)
              .count();
    }
    if (!serialized.ok()) {
      paused_ = false;
      for (auto& s : streams_) MaybeDispatchLocked(s.get());
      // Notify under the lock (same destructor-vs-notify rule as the
      // pipeline-completion tasks in stream_engine.cc).
      state_cv_.notify_all();
      return serialized;
    }
  }
  // The engine state is captured; the (slow) disk write proceeds without the
  // lock, then dispatch resumes whether or not the write succeeded.
  // Transient IO failures (full disk being cleaned up, a flaky network
  // filesystem, the injected kIoWrite fault) are retried with bounded
  // exponential backoff — the payload is already immutable, so a retry can
  // never observe different engine state.
  Status written = WriteFileAtomic(path, payload);
  for (int retry = 1; !written.ok() && retry <= options_.snapshot_io_retries;
       ++retry) {
    if (options_.snapshot_retry_backoff_ms > 0) {
      const int shift = std::min(retry - 1, 6);
      const int ms =
          std::min(100, options_.snapshot_retry_backoff_ms << shift);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    written = WriteFileAtomic(path, payload);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (written.ok() && wal_ != nullptr) {
      // The published snapshot subsumes every completed domain: shrink the
      // WAL to the records it does not cover — still-queued domains and
      // post-fence registrations. paused_ kept every post-fence push in its
      // queue, and this thread holds state_mutex_ (which serializes WAL
      // appends), so the rebuilt keep-set is complete. Compaction failure
      // is non-fatal: the old WAL remains, and replay dedups subsumed
      // records by domain index.
      Status compacted = CompactWalLocked(fence_num_streams);
      if (!compacted.ok()) {
        CERL_LOG(Warning) << "WAL compaction after snapshot failed (log "
                          << "keeps full history): " << compacted.ToString();
      }
    }
    paused_ = false;
    for (auto& s : streams_) MaybeDispatchLocked(s.get());
    state_cv_.notify_all();
  }
  return written;
}

Status StreamEngine::LoadSnapshot(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (paused_ || !streams_.empty()) {
      return Status::FailedPrecondition(
          "LoadSnapshot requires a fresh engine (no streams registered)");
    }
  }
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& raw = bytes.value();

  // v4 containers checksum metadata only (blob spans excluded), so the hash
  // cannot be verified until the parse has located the spans — sniff the
  // magic from the raw bytes to pick the verification strategy. v1..3 keep
  // the up-front whole-payload check.
  const bool is_v4 =
      raw.size() >= sizeof(kMagicV4) &&
      std::memcmp(raw.data(), kMagicV4, sizeof(kMagicV4)) == 0;
  std::string_view payload;
  uint64_t stored_hash = 0;
  if (is_v4) {
    if (raw.size() < sizeof(kMagicV4) + sizeof(uint64_t)) {
      return Status::IoError("engine snapshot: too short to carry a checksum");
    }
    payload = std::string_view(raw).substr(0, raw.size() - sizeof(uint64_t));
    std::memcpy(&stored_hash, raw.data() + payload.size(),
                sizeof(stored_hash));
  } else {
    Result<std::string_view> verified =
        VerifyChecksum(raw, "engine snapshot");
    if (!verified.ok()) return verified.status();
    payload = verified.value();
  }

  ViewStreambuf buf(payload);
  std::istream in(&buf);
  BoundedReader r(&in, payload.size());
  char magic[8];
  CERL_RETURN_IF_ERROR(r.ReadRaw(magic, sizeof(magic), "magic"));
  int version = 0;
  if (is_v4) {
    version = 4;
  } else if (std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0) {
    version = 3;
  } else if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    version = 2;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    version = 1;
  } else {
    return Status::IoError("bad engine snapshot magic");
  }
  uint32_t saved_workers = 0;
  uint8_t saved_validate = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&saved_workers, "worker count"));
  CERL_RETURN_IF_ERROR(r.ReadPod(&saved_validate, "validate flag"));
  bool backlog_in_wal = false;
  if (version >= 4) {
    CERL_RETURN_IF_ERROR(ReadBool(&r, &backlog_in_wal, "backlog flag"));
  }
  uint32_t num_streams = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&num_streams, "stream count"));
  if (num_streams > snapfmt::kMaxStreams) {
    return Status::IoError("implausible stream count " +
                           std::to_string(num_streams));
  }

  // Stage the whole engine before publishing anything: StreamStates are
  // built (and trainers restored) into a local vector, so any failure below
  // leaves this engine with zero streams.
  std::vector<std::unique_ptr<StreamState>> staged;
  std::vector<std::vector<data::DataSplit>> journals(num_streams);
  std::vector<std::pair<size_t, size_t>> blob_spans;
  staged.reserve(num_streams);
  for (uint32_t i = 0; i < num_streams; ++i) {
    uint32_t name_len = 0;
    CERL_RETURN_IF_ERROR(r.ReadPod(&name_len, "stream name length"));
    if (name_len > snapfmt::kMaxNameLen) {
      return Status::IoError("implausible stream name length " +
                             std::to_string(name_len));
    }
    CERL_RETURN_IF_ERROR(r.Require(name_len, "stream name"));
    std::string stream_name(name_len, '\0');
    CERL_RETURN_IF_ERROR(r.ReadRaw(stream_name.data(), name_len,
                                   "stream name"));
    uint32_t input_dim = 0;
    CERL_RETURN_IF_ERROR(r.ReadPod(&input_dim, "stream input dim"));
    if (input_dim == 0 || input_dim > (1u << 24)) {
      return Status::IoError("implausible stream input dim " +
                             std::to_string(input_dim));
    }
    core::CerlConfig config;
    CERL_RETURN_IF_ERROR(snapfmt::ReadConfig(&r, &config));
    // The batcher pointer is runtime scheduling state, never serialized:
    // re-wire it exactly as AddStream does for THIS engine's options.
    config.train.sinkhorn.batcher =
        options_.fuse_micro_solves ? &micro_batcher_ : nullptr;
    uint32_t completed = 0;
    CERL_RETURN_IF_ERROR(r.ReadPod(&completed, "completed domains"));
    // Lands in StreamState::pushed (an int): cap so a corrupt counter cannot
    // go negative through the cast and poison later domain indices.
    if (completed > (1u << 30)) {
      return Status::IoError("implausible completed-domain count " +
                             std::to_string(completed));
    }
    // Health block: v1 snapshots predate per-stream health, so their
    // streams restore as healthy with clean counters.
    uint8_t health = 0;
    uint32_t consecutive_failures = 0;
    uint32_t failed_domains = 0;
    if (version >= 2) {
      CERL_RETURN_IF_ERROR(r.ReadPod(&health, "stream health"));
      if (health > static_cast<uint8_t>(StreamHealth::kQuarantined)) {
        return Status::IoError("unknown stream health code " +
                               std::to_string(health));
      }
      CERL_RETURN_IF_ERROR(
          r.ReadPod(&consecutive_failures, "consecutive failures"));
      CERL_RETURN_IF_ERROR(r.ReadPod(&failed_domains, "failed domains"));
      if (consecutive_failures > (1u << 30) || failed_domains > (1u << 30)) {
        return Status::IoError("implausible failure counter");
      }
    }

    auto state = std::make_unique<StreamState>(
        std::move(stream_name), config, static_cast<int>(input_dim), &pool_);
    state->id = static_cast<int>(i);
    SetHealth(state.get(), static_cast<StreamHealth>(health));
    state->consecutive_failures = static_cast<int>(consecutive_failures);
    state->failed_domains = static_cast<int>(failed_domains);
    // Home workers are runtime scheduling state: reassigned round-robin for
    // THIS engine's worker count, exactly as AddStream would.
    state->home = static_cast<int>(i) % pool_.num_threads();
    if (version >= 3) {
      // Learned stage cost rates. Pre-v3 snapshots predate the cost model:
      // their streams restore cold and re-learn within a few stages.
      CERL_RETURN_IF_ERROR(state->cost_model.Deserialize(&r));
    }
    uint8_t has_trainer = 0;
    CERL_RETURN_IF_ERROR(r.ReadPod(&has_trainer, "trainer flag"));
    if (has_trainer > 1) {
      return Status::IoError("snapshot trainer flag is not 0/1");
    }
    if (has_trainer) {
      uint64_t blob_len = 0;
      CERL_RETURN_IF_ERROR(r.ReadPod(&blob_len, "trainer blob length"));
      CERL_RETURN_IF_ERROR(r.Require(blob_len, "trainer blob"));
      // v4: the blob bytes are excluded from the container checksum —
      // record the span for the post-parse verification below.
      blob_spans.emplace_back(payload.size() - r.remaining(),
                              static_cast<size_t>(blob_len));
      std::string blob(static_cast<size_t>(blob_len), '\0');
      CERL_RETURN_IF_ERROR(r.ReadRaw(blob.data(), blob_len, "trainer blob"));
      CERL_RETURN_IF_ERROR(state->trainer.DeserializeCheckpoint(blob));
      // The fence guarantees the blob is a domain-boundary state, so it
      // doubles as the restored stream's last-good rollback target and
      // blob-reuse cache.
      if (options_.health_guards || options_.snapshot_reuse_blobs) {
        state->last_good = std::move(blob);
        state->last_good_stage = state->trainer.stages_seen();
      }
    }
    state->pushed = static_cast<int>(completed);

    uint32_t journal_count = 0;
    CERL_RETURN_IF_ERROR(r.ReadPod(&journal_count, "journal count"));
    if (journal_count > snapfmt::kMaxJournal) {
      return Status::IoError("implausible journal count " +
                             std::to_string(journal_count));
    }
    journals[i].resize(journal_count);
    for (uint32_t j = 0; j < journal_count; ++j) {
      CERL_RETURN_IF_ERROR(snapfmt::ReadSplit(&r, &journals[i][j]));
    }
    staged.push_back(std::move(state));
  }
  if (r.remaining() != 0) {
    return Status::IoError("engine snapshot has " +
                           std::to_string(r.remaining()) + " trailing bytes");
  }
  if (version >= 4) {
    // Post-parse metadata verification: hash everything except the blob
    // spans (each blob verified its own checksum in DeserializeCheckpoint
    // above). Runs before anything is committed, so a corrupt container
    // still leaves the engine with zero streams.
    Fnv1a64Stream hasher;
    size_t pos = 0;
    for (const auto& span : blob_spans) {
      hasher.Update(payload.substr(pos, span.first - pos));
      pos = span.first + span.second;
    }
    hasher.Update(payload.substr(pos));
    if (hasher.digest() != stored_hash) {
      return Status::IoError(
          "engine snapshot: checksum mismatch (corrupted file)");
    }
  }
  if (backlog_in_wal && wal_ == nullptr) {
    CERL_LOG(Warning)
        << "snapshot was written with a WAL attached (its backlog lives "
        << "there) but this engine has none open — queued-but-untrained "
        << "domains from the saved engine will not be replayed; use "
        << "Recover() with the matching wal_path";
  }

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (paused_ || !streams_.empty()) {
      return Status::FailedPrecondition(
          "engine changed while LoadSnapshot was parsing");
    }
    streams_ = std::move(staged);
  }
  // Re-publish the serving plane: a restored trained stream is queryable
  // immediately (version restarts at 1 — publish sequence numbers are
  // engine-lifetime, not durable). Runs before journal replay so queries
  // never race the rebuilt trainers.
  for (auto& state : streams_) PublishSnapshot(state.get());
  // Replay the journal: queued-but-untrained work resumes exactly where the
  // saved engine left it (re-validated and dispatched normally). The
  // admission-free internal push is deliberate — these domains were already
  // admitted by the saved engine, so queue bounds do not re-apply, and a
  // quarantined stream's journal drains through the pipeline as
  // kUnavailable drops instead of being silently lost here. When THIS
  // engine has a WAL open (pre-v4 snapshot carried a journal into a
  // WAL-enabled engine), the internal push re-logs each domain — harmless:
  // a later Recover() skips records below the restored completed count.
  for (uint32_t i = 0; i < num_streams; ++i) {
    for (data::DataSplit& split : journals[i]) {
      PushDomainInternal(streams_[i].get(), std::move(split));
    }
  }
  return Status::Ok();
}

}  // namespace cerl::stream
