#include "stream/workload_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace cerl::stream {

namespace {

using Clock = std::chrono::steady_clock;

// Zipf-skewed training-unit count for tenant rank t.
int TenantUnits(const WorkloadConfig& config, int tenant) {
  const double raw = static_cast<double>(config.max_units) /
                     std::pow(static_cast<double>(tenant + 1),
                              config.zipf_exponent);
  return std::clamp(static_cast<int>(raw), config.min_units,
                    config.max_units);
}

// A synthetic causal domain: random covariates, a smooth outcome surface
// with unit treatment effect, shifted per arrival so consecutive domains of
// one tenant genuinely drift (the continual-learning setting).
data::DataSplit MakeDomain(Rng* rng, int units, int features, double shift) {
  data::CausalDataset dataset;
  dataset.x.Resize(units, features);
  for (int64_t i = 0; i < dataset.x.size(); ++i) {
    dataset.x.data()[i] = rng->Normal();
  }
  dataset.t.resize(units);
  dataset.y.resize(units);
  dataset.mu0.assign(units, 0.0);
  dataset.mu1.assign(units, 1.0);
  for (int i = 0; i < units; ++i) {
    dataset.x(i, 0) += shift;
    dataset.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    dataset.y[i] =
        std::sin(dataset.x(i, 0)) + dataset.t[i] + 0.1 * rng->Normal();
  }
  return data::SplitDataset(dataset, rng);
}

// Small tenant trainer config: real pipeline (rep net, heads, herding
// memory), sized so one domain is milliseconds — the experiment is about
// scheduling hundreds of them, not about any one being slow.
core::CerlConfig TenantConfig(const WorkloadConfig& config, uint64_t seed) {
  core::CerlConfig c;
  c.net.rep_hidden = {8};
  c.net.rep_dim = 4;
  c.net.head_hidden = {4};
  c.train.epochs = config.epochs;
  c.train.batch_size = 32;
  c.train.patience = config.epochs;
  c.train.alpha = 0.2;
  c.train.seed = seed;
  c.memory_capacity = 60;
  return c;
}

// Proxy for a domain's total pipeline work: train touches each unit per
// epoch, ingest + migrate touch each unit roughly once more.
double DomainWorkUnits(int units, int epochs) {
  return static_cast<double>(units) * (epochs + 1);
}

}  // namespace

LoadReport RunSkewedLoad(const WorkloadConfig& config) {
  CERL_CHECK(config.num_tenants >= 1);
  CERL_CHECK(config.domains_per_tenant >= 1);
  Rng rng(config.seed);

  // --- Generate every tenant's domains up front (never on the timeline:
  // data generation must not perturb the arrival schedule). -----------
  std::vector<int> units(config.num_tenants);
  std::vector<std::vector<data::DataSplit>> domains(config.num_tenants);
  for (int t = 0; t < config.num_tenants; ++t) {
    units[t] = TenantUnits(config, t);
    Rng tenant_rng = rng.Split();
    for (int d = 0; d < config.domains_per_tenant; ++d) {
      domains[t].push_back(
          MakeDomain(&tenant_rng, units[t], config.features, 0.5 * d));
    }
  }

  // --- Calibrate: one CLOSED-LOOP dry run of the whole workload through a
  // baseline (FIFO) engine measures this machine's effective capacity —
  // push everything at once, drain, time it. Unlike a serial micro-probe,
  // the dry run experiences the same worker timeslicing, engine overhead
  // and background machine load as the timed runs, so the horizon it
  // implies puts offered load where the config asked, not where an
  // optimistic instant of CPU happened to suggest. The per-work rate is
  // cached per process: an A/B pair in one binary MUST drive both arms
  // with the same offered load or their latencies are incomparable. ------
  double total_work = 0.0;
  for (int t = 0; t < config.num_tenants; ++t) {
    total_work += config.domains_per_tenant *
                  DomainWorkUnits(units[t], config.epochs);
  }
  static std::mutex calibration_mutex;
  static double cached_capacity_ms_per_work = 0.0;
  double capacity_ms_per_work;
  {
    std::lock_guard<std::mutex> lock(calibration_mutex);
    if (cached_capacity_ms_per_work <= 0.0) {
      StreamEngineOptions dry_options = config.engine;
      dry_options.schedule_policy = SchedulePolicy::kRoundRobin;
      StreamEngine dry(dry_options);
      std::vector<int> dry_ids(config.num_tenants);
      for (int t = 0; t < config.num_tenants; ++t) {
        dry_ids[t] = dry.AddStream("dry-" + std::to_string(t),
                                   TenantConfig(config, config.seed + t),
                                   config.features);
      }
      const auto dry_start = Clock::now();
      for (int t = 0; t < config.num_tenants; ++t) {
        for (const data::DataSplit& split : domains[t]) {
          CERL_CHECK(dry.PushDomain(dry_ids[t], split).ok());
        }
      }
      dry.Drain();
      const double dry_wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - dry_start)
              .count();
      cached_capacity_ms_per_work = std::max(dry_wall_ms, 1.0) / total_work;
    }
    capacity_ms_per_work = cached_capacity_ms_per_work;
  }
  StreamEngine engine(config.engine);
  const double utilization = std::clamp(config.utilization, 0.05, 2.0);
  const double horizon_ms = std::max(
      1.0, capacity_ms_per_work * total_work / utilization);

  // --- Arrival schedule: per tenant, a Poisson process conditioned on
  // domains_per_tenant arrivals in [0, horizon) — i.e. sorted iid uniform
  // times. Merged across tenants this yields the bursty, uncoordinated
  // arrival pattern of independent sources. -----------------------------
  struct Arrival {
    double at_ms;
    int tenant;
    int domain;
  };
  std::vector<Arrival> schedule;
  schedule.reserve(config.num_tenants * config.domains_per_tenant);
  const int burst_size = std::max(1, config.burst_size);
  for (int t = 0; t < config.num_tenants; ++t) {
    const int bursts =
        (config.domains_per_tenant + burst_size - 1) / burst_size;
    std::vector<double> times(bursts);
    for (double& at : times) at = rng.Uniform(0.0, horizon_ms);
    std::sort(times.begin(), times.end());
    for (int d = 0; d < config.domains_per_tenant; ++d) {
      schedule.push_back({times[d / burst_size], t, d});
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at_ms < b.at_ms;
                   });

  std::vector<int> ids(config.num_tenants);
  for (int t = 0; t < config.num_tenants; ++t) {
    ids[t] = engine.AddStream("tenant-" + std::to_string(t),
                              TenantConfig(config, config.seed + t),
                              config.features);
  }

  // --- Drive the open loop: push on the wall-clock schedule, never gated
  // on engine progress (a late driver pushes immediately — the backlog it
  // measures is real). --------------------------------------------------
  LoadReport report;
  report.horizon_ms = horizon_ms;
  const auto t0 = Clock::now();
  for (const Arrival& a : schedule) {
    const auto due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(a.at_ms));
    std::this_thread::sleep_until(due);
    CERL_CHECK(
        engine.PushDomain(ids[a.tenant], domains[a.tenant][a.domain]).ok());
    ++report.domains_pushed;
  }
  engine.Drain();
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const StreamSchedStats total = engine.TotalSchedStats();
  const LatencyHistogram& lat = total.completion_latency;
  report.domains_completed = static_cast<int>(lat.count());
  report.domains_dropped = report.domains_pushed - report.domains_completed;
  report.p50_ms = lat.Percentile(0.50);
  report.p99_ms = lat.Percentile(0.99);
  report.p999_ms = lat.Percentile(0.999);
  report.mean_ms = lat.mean_ms();
  report.max_ms = lat.max_ms();
  report.cost_model_error = total.cost_model_error;
  {
    // Tenant ranks are size-ordered (Zipf by rank), so the heavy decile is
    // simply the first num_tenants/10 streams.
    const int heavy_cut = std::max(1, config.num_tenants / 10);
    LatencyHistogram heavy, light;
    for (int t = 0; t < config.num_tenants; ++t) {
      const StreamSchedStats s = engine.sched_stats(ids[t]);
      (t < heavy_cut ? heavy : light).Merge(s.completion_latency);
    }
    report.heavy_p99_ms = heavy.Percentile(0.99);
    report.light_p99_ms = light.Percentile(0.99);
    report.heavy_mean_ms = heavy.mean_ms();
    report.light_mean_ms = light.mean_ms();
  }
  report.steals = engine.steal_count();
  report.throughput_dps =
      report.wall_ms > 0.0
          ? 1000.0 * report.domains_completed / report.wall_ms
          : 0.0;
  return report;
}

}  // namespace cerl::stream
