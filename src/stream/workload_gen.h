// Open-loop skewed multi-tenant load harness — the tail-latency SLO rig
// behind bench/load_generator.cc and the TSan soak test.
//
// Two properties make this a faithful latency experiment rather than a
// throughput microbench:
//
//  1. Sizes are Zipf-skewed across tenants (a few heavy hitters, a long
//     tail of light ones) — the regime where FIFO round-robin dispatch
//     hurts: a light tenant's millisecond domain queues behind one stage of
//     every ready heavy stream per scheduling cycle.
//  2. Arrivals are OPEN-LOOP: each tenant's domains arrive as a Poisson
//     process over a fixed horizon, pushed by a driver thread on the
//     wall-clock schedule regardless of how far the engine has fallen
//     behind. A closed loop (push-everything-then-drain) would make every
//     work-conserving scheduler produce the same completion distribution;
//     only timed arrivals expose queueing delay, which is where the
//     cost-aware scheduler wins.
//
// The horizon self-calibrates: a closed-loop dry run of the whole workload
// through a baseline FIFO engine measures this machine's effective capacity
// (including worker timeslicing and engine overhead), and the arrival
// window is sized so offered load is `utilization` of it — the same config
// therefore exercises comparable queueing pressure on a laptop and a loaded
// CI runner, instead of collapsing (overload) or idling (underload) when
// hardware speed changes. The measured rate is cached per process so every
// run in an A/B pair sees the identical offered load.
//
// Determinism caveat: domain CONTENTS and the arrival schedule are
// deterministic in the seed; measured latencies are not (they are the
// subject of the experiment). Tests that need bit-identical results use the
// engine directly, not this harness.
#pragma once

#include <cstdint>

#include "stream/stream_engine.h"

namespace cerl::stream {

struct WorkloadConfig {
  /// Independent tenant streams. Sizes skew Zipf by tenant rank: tenant t
  /// gets ~ max_units / (t+1)^zipf_exponent training units (clamped to
  /// min_units), so rank 0 is the heavy hitter.
  int num_tenants = 24;
  /// Domains pushed per tenant over the horizon.
  int domains_per_tenant = 3;
  /// Domains that arrive TOGETHER: a tenant's domains are grouped into
  /// ceil(domains_per_tenant / burst_size) bursts at Poisson times, and a
  /// burst's domains are pushed back-to-back. Bursts are what create deep
  /// per-tenant backlogs — the regime where round-robin dispatch drains a
  /// queue one stage per cycle of the whole ready set while the cost-aware
  /// scheduler drains it continuously. 1 = no bursts (isolated arrivals).
  int burst_size = 1;
  double zipf_exponent = 1.1;
  int min_units = 24;
  int max_units = 360;
  /// Covariate dimension of every tenant's domains.
  int features = 6;
  /// Training epochs per domain (drives the train-stage cost skew).
  int epochs = 3;
  /// Offered load as a fraction of estimated worker capacity. Values near 1
  /// probe overload; the default leaves headroom so queues form from skew
  /// and bursts, not from systematic overload.
  double utilization = 0.8;
  uint64_t seed = 1;
  /// Engine under test — schedule_policy and num_workers are the A/B knobs.
  StreamEngineOptions engine;
};

/// What one load run produced. Latencies are domain completion times
/// (push to migrated) in milliseconds, successes only, aggregated across
/// every tenant.
struct LoadReport {
  int domains_pushed = 0;
  int domains_completed = 0;
  int domains_dropped = 0;
  double horizon_ms = 0.0;  ///< calibrated arrival window
  double wall_ms = 0.0;     ///< first push to fully drained
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  /// Latency split by tenant class: the heaviest decile of tenants (by
  /// configured units) vs everyone else. Shows WHO pays the tail — heavy
  /// backlogs draining, or light tenants stuck behind them.
  double heavy_p99_ms = 0.0;
  double light_p99_ms = 0.0;
  double heavy_mean_ms = 0.0;
  double light_mean_ms = 0.0;
  /// Cost-model accuracy over the run (StreamSchedStats::cost_model_error,
  /// observation-weighted across tenants).
  double cost_model_error = 0.0;
  /// Pool-level stolen stage tasks (0 under kRoundRobin).
  int64_t steals = 0;
  /// Completed domains per wall-clock second.
  double throughput_dps = 0.0;
};

/// Runs the full experiment: generate tenants, calibrate the horizon, drive
/// the open-loop arrival schedule, drain, and report.
LoadReport RunSkewedLoad(const WorkloadConfig& config);

}  // namespace cerl::stream
