// Feature and outcome standardization fitted on training data. Each model
// owns its scalers so that representations are always computed in the
// model's own input space — a requirement for CERL, where the old model
// g_{w_{d-1}} must embed new raw covariates during distillation.
#pragma once

#include "linalg/matrix.h"

namespace cerl::causal {

/// Per-column standardizer for covariates.
class FeatureScaler {
 public:
  /// Fits mean and std on the rows of x (std floored at 1e-8).
  void Fit(const linalg::Matrix& x);

  /// (x - mean) / std. Requires Fit.
  linalg::Matrix Apply(const linalg::Matrix& x) const;

  bool fitted() const { return fitted_; }

  /// State access for checkpointing.
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& std() const { return std_; }
  void Restore(linalg::Vector mean, linalg::Vector std);

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
  bool fitted_ = false;
};

/// Scalar standardizer for outcomes.
class OutcomeScaler {
 public:
  void Fit(const linalg::Vector& y);

  double Transform(double y) const;
  linalg::Vector Transform(const linalg::Vector& y) const;
  double InverseTransform(double y_scaled) const;
  linalg::Vector InverseTransform(const linalg::Vector& y_scaled) const;

  /// ITE-scale factor: effects scale by std only (means cancel).
  double scale() const { return std_; }
  bool fitted() const { return fitted_; }

  /// State access for checkpointing.
  double mean() const { return mean_; }
  void Restore(double mean, double std);

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
  bool fitted_ = false;
};

}  // namespace cerl::causal
