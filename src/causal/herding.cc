#include "causal/herding.h"

#include <cmath>
#include <limits>

#include "linalg/ops.h"
#include "util/check.h"
#include "util/distributions.h"

namespace cerl::causal {

std::vector<int> HerdingSelect(const linalg::Matrix& rows, int count) {
  const int n = rows.rows();
  const int d = rows.cols();
  CERL_CHECK_GE(n, count);
  CERL_CHECK_GE(count, 0);

  const linalg::Vector mean = linalg::ColumnMeans(rows);
  std::vector<int> selected;
  selected.reserve(count);
  std::vector<char> used(n, 0);
  linalg::Vector running_sum(d, 0.0);

  for (int k = 0; k < count; ++k) {
    // Pick argmin over candidates of || mean - (sum + x_c) / (k + 1) ||^2.
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    const double inv = 1.0 / static_cast<double>(k + 1);
    for (int c = 0; c < n; ++c) {
      if (used[c]) continue;
      const double* row = rows.row(c);
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double v = mean[j] - (running_sum[j] + row[j]) * inv;
        dist += v * v;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    CERL_CHECK_GE(best, 0);
    used[best] = 1;
    selected.push_back(best);
    const double* row = rows.row(best);
    for (int j = 0; j < d; ++j) running_sum[j] += row[j];
  }
  return selected;
}

std::vector<int> RandomSelect(int n, int count, Rng* rng) {
  return SampleWithoutReplacement(rng, n, count);
}

double MeanApproximationError(const linalg::Matrix& rows,
                              const std::vector<int>& selected) {
  CERL_CHECK(!selected.empty());
  const linalg::Vector mean = linalg::ColumnMeans(rows);
  const linalg::Vector sel_mean =
      linalg::ColumnMeans(rows.GatherRows(selected));
  double s = 0.0;
  for (size_t j = 0; j < mean.size(); ++j) {
    const double d = mean[j] - sel_mean[j];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace cerl::causal
