#include "causal/herding.h"

#include <cmath>
#include <limits>
#include <mutex>

#include "linalg/gemm.h"
#include "linalg/ops.h"
#include "util/check.h"
#include "util/distributions.h"
#include "util/thread_pool.h"

namespace cerl::causal {

std::vector<int> HerdingSelect(const linalg::Matrix& rows, int count) {
  const int n = rows.rows();
  const int d = rows.cols();
  CERL_CHECK_GE(n, count);
  CERL_CHECK_GE(count, 0);

  // Expanded-norm form of the greedy objective. With s the running sum and
  // inv = 1/(k+1),
  //   || mean - (s + x_c) inv ||^2
  //     = const(c) + (2 s·x_c + ||x_c||^2) inv^2 - 2 (mean·x_c) inv,
  // so the argmin needs only the candidate row norms and mean-dot products
  // (precomputed once) plus one MatVec of the candidates against s per
  // pick — replacing the O(count·n·d) scalar scan with GEMV-shaped kernels
  // that vectorize and split across the thread pool.
  const linalg::Vector mean = linalg::ColumnMeans(rows);
  linalg::Vector mdot;
  linalg::MatVecInto(rows, mean, &mdot);
  linalg::Vector rnorm(n);
  ParallelFor(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      const double* row = rows.row(static_cast<int>(c));
      double s = 0.0;
      for (int j = 0; j < d; ++j) s += row[j] * row[j];
      rnorm[c] = s;
    }
  });

  std::vector<int> selected;
  selected.reserve(count);
  std::vector<char> used(n, 0);
  linalg::Vector running_sum(d, 0.0), sdot(n);

  for (int k = 0; k < count; ++k) {
    linalg::MatVecInto(rows, running_sum, &sdot);
    const double inv = 1.0 / static_cast<double>(k + 1);
    const double inv2 = inv * inv;
    // Deterministic parallel argmin: each chunk scans in index order with a
    // strict <, and chunks combine by (score, index), so the winner is the
    // global first minimum for any split — identical to the serial scan.
    std::mutex merge_mutex;
    double best_score = std::numeric_limits<double>::infinity();
    int best = n;
    ParallelFor(
        0, n,
        [&](int64_t lo, int64_t hi) {
          double chunk_score = std::numeric_limits<double>::infinity();
          int chunk_best = n;
          for (int64_t c = lo; c < hi; ++c) {
            if (used[c]) continue;
            const double score =
                (2.0 * sdot[c] + rnorm[c]) * inv2 - 2.0 * mdot[c] * inv;
            if (score < chunk_score) {
              chunk_score = score;
              chunk_best = static_cast<int>(c);
            }
          }
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (chunk_score < best_score ||
              (chunk_score == best_score && chunk_best < best)) {
            best_score = chunk_score;
            best = chunk_best;
          }
        },
        /*grain=*/256);
    CERL_CHECK_LT(best, n);
    used[best] = 1;
    selected.push_back(best);
    const double* row = rows.row(best);
    for (int j = 0; j < d; ++j) running_sum[j] += row[j];
  }
  return selected;
}

std::vector<int> HerdingSelectReference(const linalg::Matrix& rows,
                                        int count) {
  const int n = rows.rows();
  const int d = rows.cols();
  CERL_CHECK_GE(n, count);
  CERL_CHECK_GE(count, 0);

  const linalg::Vector mean = linalg::ColumnMeans(rows);
  std::vector<int> selected;
  selected.reserve(count);
  std::vector<char> used(n, 0);
  linalg::Vector running_sum(d, 0.0);

  for (int k = 0; k < count; ++k) {
    // Pick argmin over candidates of || mean - (sum + x_c) / (k + 1) ||^2.
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    const double inv = 1.0 / static_cast<double>(k + 1);
    for (int c = 0; c < n; ++c) {
      if (used[c]) continue;
      const double* row = rows.row(c);
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double v = mean[j] - (running_sum[j] + row[j]) * inv;
        dist += v * v;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    CERL_CHECK_GE(best, 0);
    used[best] = 1;
    selected.push_back(best);
    const double* row = rows.row(best);
    for (int j = 0; j < d; ++j) running_sum[j] += row[j];
  }
  return selected;
}

std::vector<int> RandomSelect(int n, int count, Rng* rng) {
  return SampleWithoutReplacement(rng, n, count);
}

double MeanApproximationError(const linalg::Matrix& rows,
                              const std::vector<int>& selected) {
  CERL_CHECK(!selected.empty());
  const linalg::Vector mean = linalg::ColumnMeans(rows);
  const linalg::Vector sel_mean =
      linalg::ColumnMeans(rows.GatherRows(selected));
  double s = 0.0;
  for (size_t j = 0; j < mean.size(); ++j) {
    const double d = mean[j] - sel_mean[j];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace cerl::causal
