#include "causal/cfr.h"

#include <algorithm>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "nn/optim.h"
#include "util/logging.h"

namespace cerl::causal {

FactualForward BuildFactualLoss(RepOutcomeNet* net, Tape* tape, Var x_scaled,
                                const std::vector<int>& t,
                                const linalg::Vector& y_scaled) {
  using namespace autodiff;  // NOLINT
  const int n = x_scaled.rows();
  CERL_CHECK_EQ(static_cast<int>(t.size()), n);
  CERL_CHECK_EQ(static_cast<int>(y_scaled.size()), n);

  FactualForward out;
  out.rep = net->Rep(tape, x_scaled);

  std::vector<int> treated_idx, control_idx;
  linalg::Vector y_treated, y_control;
  for (int i = 0; i < n; ++i) {
    if (t[i] == 1) {
      treated_idx.push_back(i);
      y_treated.push_back(y_scaled[i]);
    } else {
      control_idx.push_back(i);
      y_control.push_back(y_scaled[i]);
    }
  }
  out.n_treated = static_cast<int>(treated_idx.size());
  out.n_control = static_cast<int>(control_idx.size());
  out.rep_treated = GatherRows(out.rep, treated_idx);
  out.rep_control = GatherRows(out.rep, control_idx);

  // Sum of squared factual errors over both arms, averaged over the batch.
  Var sse = tape->Constant(linalg::Matrix(1, 1, 0.0));
  if (out.n_treated > 0) {
    Var pred = net->Head(tape, out.rep_treated, 1);
    Var target = tape->Constant(linalg::Matrix::ColVector(y_treated));
    sse = Add(sse, Sum(Square(Sub(pred, target))));
  }
  if (out.n_control > 0) {
    Var pred = net->Head(tape, out.rep_control, 0);
    Var target = tape->Constant(linalg::Matrix::ColVector(y_control));
    sse = Add(sse, Sum(Square(Sub(pred, target))));
  }
  out.loss = ScalarMul(sse, 1.0 / std::max(1, n));
  return out;
}

std::vector<linalg::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params) {
  std::vector<linalg::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const auto* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreValues(const std::vector<Parameter*>& params,
                   const std::vector<linalg::Matrix>& snapshot) {
  CERL_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

CfrModel::CfrModel(const NetConfig& net_config, const TrainConfig& train_config,
                   int input_dim)
    : net_config_(net_config),
      train_config_(train_config),
      rng_(train_config.seed),
      net_(&rng_, net_config, input_dim) {}

TrainStats CfrModel::Train(const data::CausalDataset& train,
                           const data::CausalDataset& valid) {
  return RunTraining(train, valid, /*refit_scalers=*/true);
}

TrainStats CfrModel::FineTune(const data::CausalDataset& train,
                              const data::CausalDataset& valid) {
  return RunTraining(train, valid, /*refit_scalers=*/false);
}

double CfrModel::ValidFactualLoss(const linalg::Matrix& x_scaled,
                                  const std::vector<int>& t,
                                  const linalg::Vector& y_scaled) {
  Tape tape;
  Var x = tape.Constant(x_scaled);
  FactualForward fwd = BuildFactualLoss(&net_, &tape, x, t, y_scaled);
  return fwd.loss.scalar();
}

TrainStats CfrModel::RunTraining(const data::CausalDataset& train,
                                 const data::CausalDataset& valid,
                                 bool refit_scalers) {
  using namespace autodiff;  // NOLINT
  train.CheckConsistent();
  valid.CheckConsistent();
  if (refit_scalers) {
    net_.x_scaler().Fit(train.x);
    net_.y_scaler().Fit(train.y);
  }
  const linalg::Matrix x_train = net_.x_scaler().Apply(train.x);
  const linalg::Vector y_train = net_.y_scaler().Transform(train.y);
  const linalg::Matrix x_valid = net_.x_scaler().Apply(valid.x);
  const linalg::Vector y_valid = net_.y_scaler().Transform(valid.y);

  auto params = net_.Parameters();
  nn::Adam optimizer(params, train_config_.learning_rate);

  const int n = train.num_units();
  const int batch = std::min(train_config_.batch_size, n);

  TrainStats stats;
  double best_valid = ValidFactualLoss(x_valid, valid.t, y_valid);
  std::vector<linalg::Matrix> best_snapshot = SnapshotValues(params);
  int since_best = 0;

  for (int epoch = 0; epoch < train_config_.epochs; ++epoch) {
    std::vector<int> perm = rng_.Permutation(n);
    for (int start = 0; start + batch <= n; start += batch) {
      std::vector<int> idx(perm.begin() + start, perm.begin() + start + batch);
      linalg::Matrix xb = x_train.GatherRows(idx);
      std::vector<int> tb(batch);
      linalg::Vector yb(batch);
      for (int i = 0; i < batch; ++i) {
        tb[i] = train.t[idx[i]];
        yb[i] = y_train[idx[i]];
      }

      Tape tape;
      Var x = tape.Constant(std::move(xb));
      FactualForward fwd = BuildFactualLoss(&net_, &tape, x, tb, yb);
      Var loss = fwd.loss;
      if (train_config_.alpha > 0.0 && fwd.n_treated > 0 &&
          fwd.n_control > 0) {
        Var ipm = ot::IpmPenalty(train_config_.ipm, fwd.rep_treated,
                                 fwd.rep_control, train_config_.sinkhorn);
        loss = Add(loss, ScalarMul(ipm, train_config_.alpha));
      }
      if (train_config_.lambda > 0.0) {
        Var w1 = tape.Param(&net_.FirstLayerWeight());
        loss = Add(loss, ScalarMul(ElasticNetPenalty(w1),
                                   train_config_.lambda));
      }
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step();
    }

    const double valid_loss = ValidFactualLoss(x_valid, valid.t, y_valid);
    stats.epochs_run = epoch + 1;
    if (valid_loss < best_valid - 1e-6) {
      best_valid = valid_loss;
      best_snapshot = SnapshotValues(params);
      since_best = 0;
    } else if (++since_best >= train_config_.patience) {
      break;
    }
    if (train_config_.verbose && epoch % 10 == 0) {
      CERL_LOG(Info) << "cfr epoch " << epoch << " valid loss " << valid_loss;
    }
  }

  RestoreValues(params, best_snapshot);
  stats.best_valid_loss = best_valid;
  return stats;
}

linalg::Vector CfrModel::PredictIte(const linalg::Matrix& x_raw) {
  return net_.PredictIte(x_raw);
}

CausalMetrics CfrModel::Evaluate(const data::CausalDataset& test) {
  return EvaluateOnDataset(test, PredictIte(test.x));
}

}  // namespace cerl::causal
