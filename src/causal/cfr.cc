#include "causal/cfr.h"

#include <algorithm>
#include <memory>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "ot/workspace_pool.h"
#include "util/logging.h"

namespace cerl::causal {

FactualForward BuildFactualLoss(RepOutcomeNet* net, Tape* tape, Var x_scaled,
                                const std::vector<int>& t,
                                const linalg::Vector& y_scaled,
                                FactualScratch* scratch) {
  using namespace autodiff;  // NOLINT
  const int n = x_scaled.rows();
  CERL_CHECK_EQ(static_cast<int>(t.size()), n);
  CERL_CHECK_EQ(static_cast<int>(y_scaled.size()), n);

  FactualForward out;
  out.rep = net->Rep(tape, x_scaled);

  // Owned scratch: per-call locals, targets copied onto the tape (the
  // caller gave us nothing that outlives the pass to alias).
  FactualScratch local;
  const bool owned = scratch == nullptr;
  if (owned) scratch = &local;
  std::vector<int>& treated_idx = scratch->treated_idx;
  std::vector<int>& control_idx = scratch->control_idx;
  treated_idx.clear();
  control_idx.clear();
  for (int i = 0; i < n; ++i) {
    if (t[i] == 1) {
      treated_idx.push_back(i);
    } else {
      control_idx.push_back(i);
    }
  }
  out.n_treated = static_cast<int>(treated_idx.size());
  out.n_control = static_cast<int>(control_idx.size());
  out.rep_treated = GatherRows(out.rep, treated_idx);
  out.rep_control = GatherRows(out.rep, control_idx);
  scratch->y_treated.Resize(out.n_treated, 1);
  for (int i = 0; i < out.n_treated; ++i) {
    scratch->y_treated(i, 0) = y_scaled[treated_idx[i]];
  }
  scratch->y_control.Resize(out.n_control, 1);
  for (int i = 0; i < out.n_control; ++i) {
    scratch->y_control(i, 0) = y_scaled[control_idx[i]];
  }

  // Sum of squared factual errors over both arms, averaged over the batch.
  Var sse = tape->Constant(linalg::Matrix(1, 1, 0.0));
  if (out.n_treated > 0) {
    Var pred = net->Head(tape, out.rep_treated, 1);
    Var target = owned ? tape->Constant(scratch->y_treated)
                       : tape->ConstantView(&scratch->y_treated);
    sse = Add(sse, Sum(Square(Sub(pred, target))));
  }
  if (out.n_control > 0) {
    Var pred = net->Head(tape, out.rep_control, 0);
    Var target = owned ? tape->Constant(scratch->y_control)
                       : tape->ConstantView(&scratch->y_control);
    sse = Add(sse, Sum(Square(Sub(pred, target))));
  }
  out.loss = ScalarMul(sse, 1.0 / std::max(1, n));
  return out;
}

void GatherTreatOutcome(const std::vector<int>& t, const linalg::Vector& y,
                        train::IndexSpan idx, std::vector<int>* t_out,
                        linalg::Vector* y_out) {
  t_out->resize(idx.size());
  y_out->resize(idx.size());
  for (int i = 0; i < idx.size(); ++i) {
    (*t_out)[i] = t[idx[i]];
    (*y_out)[i] = y[idx[i]];
  }
}

uint64_t TreatedSplitShapeKey(const std::vector<int>& t,
                              train::IndexSpan idx) {
  uint64_t treated = 0;
  for (int i : idx) treated += t[i] == 1 ? 1 : 0;
  return (static_cast<uint64_t>(idx.size()) << 32) | treated;
}

std::unique_ptr<RepOutcomeNet> MakeValidationClone(const NetConfig& config,
                                                   RepOutcomeNet& net,
                                                   uint64_t seed) {
  // The clone's init values are irrelevant (every score restores a
  // snapshot first); the derived seed only keeps construction
  // deterministic.
  Rng clone_rng(seed ^ 0xA51DC0DE);
  auto clone =
      std::make_unique<RepOutcomeNet>(&clone_rng, config, net.input_dim());
  clone->CopyParametersFrom(net);  // copies scalers too
  return clone;
}

train::LoopOptions MakeLoopOptions(const TrainConfig& config,
                                   const std::string& log_label) {
  train::LoopOptions options;
  options.epochs = config.epochs;
  options.batch_size = config.batch_size;
  options.learning_rate = config.learning_rate;
  options.patience = config.patience;
  options.seed = config.seed;
  options.verbose = config.verbose;
  options.log_label = log_label;
  return options;
}

CfrModel::CfrModel(const NetConfig& net_config, const TrainConfig& train_config,
                   int input_dim)
    : net_config_(net_config),
      train_config_(train_config),
      rng_(train_config.seed),
      net_(&rng_, net_config, input_dim) {}

TrainStats CfrModel::Train(const data::CausalDataset& train,
                           const data::CausalDataset& valid) {
  return RunTraining(train, valid, /*refit_scalers=*/true);
}

TrainStats CfrModel::FineTune(const data::CausalDataset& train,
                              const data::CausalDataset& valid) {
  return RunTraining(train, valid, /*refit_scalers=*/false);
}

double CfrModel::ValidFactualLoss(RepOutcomeNet* net,
                                  const linalg::Matrix& x_scaled,
                                  const std::vector<int>& t,
                                  const linalg::Vector& y_scaled) {
  Tape tape;
  Var x = tape.Constant(x_scaled);
  FactualForward fwd = BuildFactualLoss(net, &tape, x, t, y_scaled);
  return fwd.loss.scalar();
}

TrainStats CfrModel::RunTraining(const data::CausalDataset& train,
                                 const data::CausalDataset& valid,
                                 bool refit_scalers) {
  using namespace autodiff;  // NOLINT
  train.CheckConsistent();
  valid.CheckConsistent();
  if (refit_scalers) {
    net_.x_scaler().Fit(train.x);
    net_.y_scaler().Fit(train.y);
  }
  const linalg::Matrix x_train = net_.x_scaler().Apply(train.x);
  const linalg::Vector y_train = net_.y_scaler().Transform(train.y);
  const linalg::Matrix x_valid = net_.x_scaler().Apply(valid.x);
  const linalg::Vector y_valid = net_.y_scaler().Transform(valid.y);

  // Eq. 5 per-batch objective: factual MSE + alpha * IPM + lambda *
  // elastic net. The loop mechanics live in train::TrainLoop, which also
  // assembles (and prefetches) the covariate rows; the loss only gathers
  // the per-unit treatment/outcome scalars into step-reused buffers. The
  // factual-split scratch and the Sinkhorn workspaces live here, next to
  // the loop's persistent tapes, so steady-state steps allocate nothing in
  // the loss builder; the workspaces are pooled by the (n_treated,
  // n_control) split so the OT duals warm-start from the previous batch
  // with the same split even when splits interleave.
  std::vector<int> batch_t;
  linalg::Vector batch_y;
  FactualScratch factual_scratch;
  ot::SinkhornWorkspacePool sinkhorn_pool;
  auto batch_loss = [&](Tape* tape, train::IndexSpan idx,
                        const std::vector<linalg::Matrix>& gathered) -> Var {
    GatherTreatOutcome(train.t, y_train, idx, &batch_t, &batch_y);
    Var x = tape->ConstantView(&gathered[0]);
    FactualForward fwd =
        BuildFactualLoss(&net_, tape, x, batch_t, batch_y, &factual_scratch);
    Var loss = fwd.loss;
    if (train_config_.alpha > 0.0 && fwd.n_treated > 0 && fwd.n_control > 0) {
      Var ipm =
          ot::IpmPenalty(train_config_.ipm, fwd.rep_treated, fwd.rep_control,
                         train_config_.sinkhorn,
                         sinkhorn_pool.Acquire(fwd.n_treated, fwd.n_control));
      loss = Add(loss, ScalarMul(ipm, train_config_.alpha));
    }
    if (train_config_.lambda > 0.0) {
      Var w1 = tape->Param(&net_.FirstLayerWeight());
      loss = Add(loss, ScalarMul(ElasticNetPenalty(w1), train_config_.lambda));
    }
    return loss;
  };
  auto valid_loss = [&]() {
    return ValidFactualLoss(&net_, x_valid, valid.t, y_valid);
  };

  train::TrainLoop loop(MakeLoopOptions(train_config_, "cfr"),
                        net_.Parameters(), &rng_);
  // The loss graph's topology depends on the treated/control split, not
  // just the batch size; keying the persistent tapes by both keeps every
  // split shape on a warmed arena (same pooling rationale as above).
  loop.SetBatchShapeKey([&train](train::IndexSpan idx) {
    return TreatedSplitShapeKey(train.t, idx);
  });
  // Async validation scores parameter snapshots against a dedicated clone
  // so the live net can keep training while the criterion is computed.
  std::unique_ptr<RepOutcomeNet> valid_net;
  if (train_config_.async_validation) {
    valid_net = MakeValidationClone(net_config_, net_, train_config_.seed);
    loop.EnableAsyncValidation(
        [this, vn = valid_net.get(), &x_valid, &valid,
         &y_valid](const std::vector<linalg::Matrix>& snapshot) {
          train::RestoreValues(vn->Parameters(), snapshot);
          return ValidFactualLoss(vn, x_valid, valid.t, y_valid);
        });
  }
  return loop.Run(train.num_units(), {&x_train}, batch_loss, valid_loss);
}

linalg::Vector CfrModel::PredictIte(const linalg::Matrix& x_raw) {
  return net_.PredictIte(x_raw);
}

CausalMetrics CfrModel::Evaluate(const data::CausalDataset& test) {
  return EvaluateOnDataset(test, PredictIte(test.x));
}

}  // namespace cerl::causal
