// Herding-based exemplar selection (Welling 2009; Rebuffi et al., iCaRL
// 2017). Greedily picks samples whose running mean best approximates the
// population mean of the feature representations — the paper uses it to keep
// a memory of representative treated/control representations under a budget
// (§III-A2), selecting the same number from each treatment group.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::causal {

/// Returns the indices (into `rows`) of `count` exemplars chosen by greedy
/// mean matching, in selection order. count <= rows.rows(). Implemented via
/// the expanded-norm decomposition (precomputed candidate norms/mean dots,
/// one MatVec against the running sum per pick, deterministic ParallelFor
/// argmin) — algebraically equal to the direct scan up to floating-point
/// rounding of well-separated scores.
std::vector<int> HerdingSelect(const linalg::Matrix& rows, int count);

/// Direct-form reference implementation (the original O(count·n·d) scalar
/// scan); kept as the oracle HerdingSelect is tested against.
std::vector<int> HerdingSelectReference(const linalg::Matrix& rows,
                                        int count);

/// Random-subsample alternative (the "w/o herding" ablation).
std::vector<int> RandomSelect(int n, int count, Rng* rng);

/// How well the mean of selected rows approximates the full mean:
/// || mean(all) - mean(selected) ||_2. Used by tests and diagnostics.
double MeanApproximationError(const linalg::Matrix& rows,
                              const std::vector<int>& selected);

}  // namespace cerl::causal
