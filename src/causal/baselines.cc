#include "causal/baselines.h"

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/ops.h"

namespace cerl::causal {
namespace {

// Centered ridge fit: returns weights and intercept for one arm.
Status FitRidgeArm(const linalg::Matrix& x, const linalg::Vector& y,
                   double l2, linalg::Vector* w, double* intercept) {
  const int n = x.rows();
  const int p = x.cols();
  if (n == 0) return Status::InvalidArgument("empty treatment arm");

  const linalg::Vector x_mean = linalg::ColumnMeans(x);
  const double y_mean = linalg::Mean(y);
  linalg::Matrix xc = x;
  for (int i = 0; i < n; ++i) {
    double* row = xc.row(i);
    for (int j = 0; j < p; ++j) row[j] -= x_mean[j];
  }
  // (Xc^T Xc + l2 I) w = Xc^T yc.
  linalg::Matrix gram(p, p);
  linalg::Gemm(linalg::Trans::kYes, linalg::Trans::kNo, 1.0, xc, xc, 0.0,
               &gram);
  for (int j = 0; j < p; ++j) gram(j, j) += l2;
  linalg::Vector rhs(p, 0.0);
  for (int i = 0; i < n; ++i) {
    const double yc = y[i] - y_mean;
    const double* row = xc.row(i);
    for (int j = 0; j < p; ++j) rhs[j] += row[j] * yc;
  }
  auto chol = linalg::Cholesky::Factor(gram);
  if (!chol.ok()) {
    return Status::NumericalError("ridge normal equations singular: " +
                                  chol.status().message());
  }
  *w = chol.value().Solve(rhs);
  double dot = 0.0;
  for (int j = 0; j < p; ++j) dot += (*w)[j] * x_mean[j];
  *intercept = y_mean - dot;
  return Status::Ok();
}

}  // namespace

Status RidgeTLearner::Fit(const data::CausalDataset& train) {
  train.CheckConsistent();
  const auto treated = train.TreatedIndices();
  const auto control = train.ControlIndices();
  if (treated.empty() || control.empty()) {
    return Status::InvalidArgument("both treatment arms must be non-empty");
  }
  const data::CausalDataset d1 = train.Subset(treated);
  const data::CausalDataset d0 = train.Subset(control);
  CERL_RETURN_IF_ERROR(FitRidgeArm(d1.x, d1.y, l2_, &w1_, &b1_));
  CERL_RETURN_IF_ERROR(FitRidgeArm(d0.x, d0.y, l2_, &w0_, &b0_));
  fitted_ = true;
  return Status::Ok();
}

linalg::Vector RidgeTLearner::PredictOutcome(const linalg::Matrix& x,
                                             int treatment) const {
  CERL_CHECK(fitted_);
  CERL_CHECK(treatment == 0 || treatment == 1);
  const linalg::Vector& w = treatment == 1 ? w1_ : w0_;
  const double b = treatment == 1 ? b1_ : b0_;
  linalg::Vector out = linalg::MatVec(x, w);
  for (double& v : out) v += b;
  return out;
}

linalg::Vector RidgeTLearner::PredictIte(const linalg::Matrix& x) const {
  linalg::Vector y1 = PredictOutcome(x, 1);
  const linalg::Vector y0 = PredictOutcome(x, 0);
  for (size_t i = 0; i < y1.size(); ++i) y1[i] -= y0[i];
  return y1;
}

CausalMetrics RidgeTLearner::Evaluate(const data::CausalDataset& test) const {
  return EvaluateOnDataset(test, PredictIte(test.x));
}

double NaiveAteEstimate(const data::CausalDataset& d) {
  double sum1 = 0.0, sum0 = 0.0;
  int n1 = 0, n0 = 0;
  for (int i = 0; i < d.num_units(); ++i) {
    if (d.t[i] == 1) {
      sum1 += d.y[i];
      ++n1;
    } else {
      sum0 += d.y[i];
      ++n0;
    }
  }
  CERL_CHECK(n1 > 0 && n0 > 0);
  return sum1 / n1 - sum0 / n0;
}

}  // namespace cerl::causal
