// Counterfactual regression (CFR, Shalit et al. 2017) — the representative
// causal effect estimator the paper adapts (strategies A/B/C) and the
// baseline stage of CERL. Objective (Eq. 5):
//   L = L_Y + alpha * Wass(P, Q) + lambda * (||w1||_2^2 + ||w1||_1)
// with L_Y the factual-outcome MSE over the two heads, Wass the IPM between
// treated/control representation distributions, and the elastic net on the
// first (feature-selection) layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "causal/metrics.h"
#include "causal/rep_outcome_net.h"
#include "data/dataset.h"
#include "ot/ipm.h"
#include "train/train_loop.h"

namespace cerl::causal {

/// Optimization hyperparameters shared by CFR and the CERL stages.
struct TrainConfig {
  int epochs = 120;
  int batch_size = 128;
  double learning_rate = 1e-3;
  int patience = 15;            ///< early-stopping patience (epochs)
  double alpha = 1.0;           ///< IPM weight (Eq. 5 / Eq. 9)
  double lambda = 1e-4;         ///< elastic-net weight
  ot::IpmKind ipm = ot::IpmKind::kWasserstein;
  ot::SinkhornConfig sinkhorn;
  uint64_t seed = 1234;
  bool verbose = false;
  /// Score the early-stopping validation criterion asynchronously: the loop
  /// snapshots the parameters after each epoch's last batch and a dedicated
  /// worker scores the snapshot (against a validation clone of the model)
  /// while the next epoch trains. Restored best parameters are bit-identical
  /// to the synchronous path; the early-stop decision lands at most one
  /// epoch late (see train::TrainLoop::EnableAsyncValidation).
  bool async_validation = false;
};

/// Summary of one training run (lives with the engine in src/train/).
using TrainStats = train::TrainStats;

/// Extracts the loop-mechanics subset of a TrainConfig for train::TrainLoop.
train::LoopOptions MakeLoopOptions(const TrainConfig& config,
                                   const std::string& log_label);

/// Factual-loss forward pass shared by CFR and CERL stages.
struct FactualForward {
  Var loss;         ///< scalar: (sse_treated + sse_control) / n
  Var rep;          ///< representations of the whole batch
  Var rep_treated;  ///< gathered treated representations
  Var rep_control;  ///< gathered control representations
  int n_treated = 0;
  int n_control = 0;
};

/// Step-reused scratch for BuildFactualLoss's treated/control split (the
/// allocation-free loss-builder path): index vectors retain capacity across
/// steps and the target column matrices are ALIASED by the tape
/// (ConstantView), so a scratch passed to BuildFactualLoss must outlive the
/// tape pass and stay unmodified until Backward has run — own one per loss
/// builder, next to the persistent tapes, exactly like SinkhornWorkspace.
struct FactualScratch {
  std::vector<int> treated_idx, control_idx;
  linalg::Matrix y_treated, y_control;  ///< n x 1 head targets
};

/// Builds the two-headed factual MSE (Eq. 4) on scaled inputs/outcomes.
/// Without a scratch the split buffers are per-call locals and the targets
/// are copied onto the tape; with a scratch the steady state allocates
/// nothing and the targets alias the scratch (see FactualScratch).
FactualForward BuildFactualLoss(RepOutcomeNet* net, Tape* tape, Var x_scaled,
                                const std::vector<int>& t,
                                const linalg::Vector& y_scaled,
                                FactualScratch* scratch = nullptr);

/// Gathers elements `idx` of (t, y) into caller-owned buffers (resized as
/// needed, reused across steps). This is the scalar half of batch assembly;
/// covariate-row gathers are owned — and prefetched — by train::TrainLoop
/// via its gather-source machinery.
void GatherTreatOutcome(const std::vector<int>& t, const linalg::Vector& y,
                        train::IndexSpan idx, std::vector<int>* t_out,
                        linalg::Vector* y_out);

/// Tape-pool shape key for factual losses (train::BatchShapeKeyFn): the
/// loss-graph topology depends on the batch size AND its treated/control
/// split, so batches sharing (size, n_treated) share a persistent tape.
/// Shared by CfrModel and the CERL continual stage.
uint64_t TreatedSplitShapeKey(const std::vector<int>& t,
                              train::IndexSpan idx);

/// Same-architecture clone of `net` (weights and scalers copied) for
/// asynchronous validation: parameter snapshots are RestoreValues'd into
/// the clone and scored on a worker while the live net keeps training.
/// Shared by CfrModel and the CERL continual stage.
std::unique_ptr<RepOutcomeNet> MakeValidationClone(const NetConfig& config,
                                                   RepOutcomeNet& net,
                                                   uint64_t seed);

/// CFR model: RepOutcomeNet + Eq. 5 training.
class CfrModel {
 public:
  CfrModel(const NetConfig& net_config, const TrainConfig& train_config,
           int input_dim);

  /// Fits scalers on `train` and optimizes Eq. 5 with early stopping on the
  /// validation factual loss.
  TrainStats Train(const data::CausalDataset& train,
                   const data::CausalDataset& valid);

  /// Continues optimization on new data without refitting scalers
  /// (adaptation strategy B).
  TrainStats FineTune(const data::CausalDataset& train,
                      const data::CausalDataset& valid);

  /// Estimated ITE on raw covariates, original outcome units.
  linalg::Vector PredictIte(const linalg::Matrix& x_raw);

  /// PEHE / ATE-error against the dataset's ground truth.
  CausalMetrics Evaluate(const data::CausalDataset& test);

  RepOutcomeNet& net() { return net_; }
  const TrainConfig& train_config() const { return train_config_; }

 private:
  TrainStats RunTraining(const data::CausalDataset& train,
                         const data::CausalDataset& valid,
                         bool refit_scalers);
  static double ValidFactualLoss(RepOutcomeNet* net,
                                 const linalg::Matrix& x_scaled,
                                 const std::vector<int>& t,
                                 const linalg::Vector& y_scaled);

  NetConfig net_config_;
  TrainConfig train_config_;
  Rng rng_;
  RepOutcomeNet net_;
};

}  // namespace cerl::causal
