#include "causal/rep_outcome_net.h"

#include "util/check.h"

namespace cerl::causal {

nn::MlpConfig RepMlpConfig(const NetConfig& config, int input_dim) {
  nn::MlpConfig m;
  m.dims.push_back(input_dim);
  for (int h : config.rep_hidden) m.dims.push_back(h);
  m.dims.push_back(config.rep_dim);
  m.hidden_activation = config.activation;
  // Cosine layer already bounds pre-activations in [-1, 1]; tanh keeps the
  // plain-linear ablation comparable (bounded representations either way).
  m.output_activation = nn::Activation::kTanh;
  m.cosine_normalized_output = config.cosine_normalized_rep;
  return m;
}

nn::MlpConfig HeadMlpConfig(const NetConfig& config) {
  nn::MlpConfig m;
  m.dims.push_back(config.rep_dim);
  for (int h : config.head_hidden) m.dims.push_back(h);
  m.dims.push_back(1);
  m.hidden_activation = config.activation;
  m.output_activation = nn::Activation::kNone;
  return m;
}

RepOutcomeNet::RepOutcomeNet(Rng* rng, const NetConfig& config, int input_dim)
    : config_(config), input_dim_(input_dim) {
  CERL_CHECK_GT(input_dim, 0);
  rep_ = std::make_unique<nn::Mlp>(rng, RepMlpConfig(config, input_dim),
                                   "rep");
  head0_ = std::make_unique<nn::Mlp>(rng, HeadMlpConfig(config), "head0");
  head1_ = std::make_unique<nn::Mlp>(rng, HeadMlpConfig(config), "head1");
}

Var RepOutcomeNet::Rep(Tape* tape, Var x_scaled) {
  return rep_->Forward(tape, x_scaled);
}

Var RepOutcomeNet::Head(Tape* tape, Var rep, int head) {
  CERL_CHECK(head == 0 || head == 1);
  return (head == 0 ? head0_ : head1_)->Forward(tape, rep);
}

std::vector<Parameter*> RepOutcomeNet::Parameters() {
  std::vector<Parameter*> out;
  rep_->CollectParameters(&out);
  head0_->CollectParameters(&out);
  head1_->CollectParameters(&out);
  return out;
}

linalg::Matrix RepOutcomeNet::Representations(const linalg::Matrix& x_raw) {
  Tape tape;
  Var x = tape.Constant(x_scaler_.Apply(x_raw));
  return Rep(&tape, x).value();
}

linalg::Vector RepOutcomeNet::PredictOutcome(const linalg::Matrix& x_raw,
                                             int treatment) {
  Tape tape;
  Var x = tape.Constant(x_scaler_.Apply(x_raw));
  Var out = Head(&tape, Rep(&tape, x), treatment);
  return y_scaler_.InverseTransform(out.value().ColCopy(0));
}

linalg::Vector RepOutcomeNet::PredictOutcomeFromRep(const linalg::Matrix& rep,
                                                    int treatment) {
  Tape tape;
  Var out = Head(&tape, tape.Constant(rep), treatment);
  return y_scaler_.InverseTransform(out.value().ColCopy(0));
}

linalg::Vector RepOutcomeNet::PredictIte(const linalg::Matrix& x_raw) {
  Tape tape;
  Var x = tape.Constant(x_scaler_.Apply(x_raw));
  Var rep = Rep(&tape, x);
  const linalg::Vector y1 = Head(&tape, rep, 1).value().ColCopy(0);
  const linalg::Vector y0 = Head(&tape, rep, 0).value().ColCopy(0);
  linalg::Vector ite(y1.size());
  // Standardization means cancel in the difference; only the scale remains.
  const double scale = y_scaler_.scale();
  for (size_t i = 0; i < ite.size(); ++i) ite[i] = scale * (y1[i] - y0[i]);
  return ite;
}

void RepOutcomeNet::CopyParametersFrom(RepOutcomeNet& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  CERL_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    CERL_CHECK(dst[i]->value.SameShape(src[i]->value));
    dst[i]->value = src[i]->value;
  }
  x_scaler_ = other.x_scaler_;
  y_scaler_ = other.y_scaler_;
}

}  // namespace cerl::causal
