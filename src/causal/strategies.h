// The three adaptation strategies the paper evaluates against CERL
// (§IV-B), built on the CFR estimator:
//   A — train on the first domain only, apply as-is to later domains
//       (suffers under domain shift on new data);
//   B — fine-tune the previous model on each new domain
//       (catastrophic forgetting on old data);
//   C — keep all raw data and retrain from scratch on the union
//       (the ideal upper bound, but needs access to all previous data).
#pragma once

#include <functional>
#include <vector>

#include "causal/cfr.h"

namespace cerl::causal {

/// Which adaptation strategy to run.
enum class Strategy { kA, kB, kC };

const char* StrategyName(Strategy s);

/// Evaluation snapshot after consuming a prefix of the stream.
struct StageEval {
  int stage = 0;  ///< index of the last domain consumed (0-based)
  std::vector<CausalMetrics> per_domain;  ///< on each seen domain's test set
  CausalMetrics pooled;  ///< on the union of all seen test sets
};

/// Full run: one StageEval per consumed domain.
struct StrategyRunResult {
  std::vector<StageEval> stages;
  const StageEval& final_stage() const { return stages.back(); }
};

/// Architecture + optimization configuration for a strategy run.
struct StrategyConfig {
  NetConfig net;
  TrainConfig train;
};

/// Runs strategy `s` over the domain stream, evaluating after every domain.
StrategyRunResult RunCfrStrategy(Strategy s,
                                 const std::vector<data::DataSplit>& stream,
                                 const StrategyConfig& config);

/// Evaluates an ITE predictor on each seen domain + pooled test set.
StageEval EvaluateStage(int stage, const std::vector<data::DataSplit>& stream,
                        const std::function<linalg::Vector(
                            const linalg::Matrix&)>& predict_ite);

}  // namespace cerl::causal
