#include "causal/scaler.h"

#include <algorithm>
#include <cmath>

#include "linalg/ops.h"
#include "util/check.h"

namespace cerl::causal {

void FeatureScaler::Fit(const linalg::Matrix& x) {
  CERL_CHECK_GT(x.rows(), 0);
  mean_ = linalg::ColumnMeans(x);
  std_ = linalg::ColumnStds(x, /*min_std=*/1e-8);
  fitted_ = true;
}

linalg::Matrix FeatureScaler::Apply(const linalg::Matrix& x) const {
  CERL_CHECK(fitted_);
  return linalg::Standardize(x, mean_, std_);
}

void FeatureScaler::Restore(linalg::Vector mean, linalg::Vector std) {
  CERL_CHECK_EQ(mean.size(), std.size());
  mean_ = std::move(mean);
  std_ = std::move(std);
  fitted_ = !mean_.empty();
}

void OutcomeScaler::Fit(const linalg::Vector& y) {
  CERL_CHECK(!y.empty());
  mean_ = linalg::Mean(y);
  std_ = std::max(std::sqrt(linalg::Variance(y)), 1e-8);
  fitted_ = true;
}

void OutcomeScaler::Restore(double mean, double std) {
  CERL_CHECK_GT(std, 0.0);
  mean_ = mean;
  std_ = std;
  fitted_ = true;
}

double OutcomeScaler::Transform(double y) const {
  CERL_CHECK(fitted_);
  return (y - mean_) / std_;
}

linalg::Vector OutcomeScaler::Transform(const linalg::Vector& y) const {
  linalg::Vector out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = Transform(y[i]);
  return out;
}

double OutcomeScaler::InverseTransform(double y_scaled) const {
  CERL_CHECK(fitted_);
  return y_scaled * std_ + mean_;
}

linalg::Vector OutcomeScaler::InverseTransform(
    const linalg::Vector& y_scaled) const {
  linalg::Vector out(y_scaled.size());
  for (size_t i = 0; i < y_scaled.size(); ++i) {
    out[i] = InverseTransform(y_scaled[i]);
  }
  return out;
}

}  // namespace cerl::causal
