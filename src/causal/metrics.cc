#include "causal/metrics.h"

#include <cmath>

#include "util/check.h"

namespace cerl::causal {

CausalMetrics EvaluateIte(const linalg::Vector& true_ite,
                          const linalg::Vector& predicted_ite) {
  CERL_CHECK_EQ(true_ite.size(), predicted_ite.size());
  CERL_CHECK(!true_ite.empty());
  const size_t n = true_ite.size();
  double sq_sum = 0.0;
  double true_ate = 0.0;
  double pred_ate = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = true_ite[i] - predicted_ite[i];
    sq_sum += d * d;
    true_ate += true_ite[i];
    pred_ate += predicted_ite[i];
  }
  CausalMetrics m;
  m.pehe = std::sqrt(sq_sum / static_cast<double>(n));
  m.ate_error = std::fabs(true_ate - pred_ate) / static_cast<double>(n);
  return m;
}

CausalMetrics EvaluateOnDataset(const data::CausalDataset& dataset,
                                const linalg::Vector& predicted_ite) {
  return EvaluateIte(dataset.TrueIte(), predicted_ite);
}

double PolicyValue(const data::CausalDataset& dataset,
                   const linalg::Vector& predicted_ite, double threshold) {
  const int n = dataset.num_units();
  CERL_CHECK_EQ(static_cast<int>(predicted_ite.size()), n);
  CERL_CHECK_GT(n, 0);
  double value = 0.0;
  for (int i = 0; i < n; ++i) {
    value += predicted_ite[i] > threshold ? dataset.mu1[i] : dataset.mu0[i];
  }
  return value / n;
}

double PolicyRegret(const data::CausalDataset& dataset,
                    const linalg::Vector& predicted_ite, double threshold) {
  return PolicyValue(dataset, dataset.TrueIte(), threshold) -
         PolicyValue(dataset, predicted_ite, threshold);
}

}  // namespace cerl::causal
