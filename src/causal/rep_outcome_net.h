// The representation + two-headed outcome architecture shared by the CFR
// baseline and the CERL continual stages (paper §III-A1):
//   g_w : X -> R   selective representation network; the first layer weight
//                  carries the elastic-net penalty (Eq. 1), the last layer
//                  optionally applies cosine normalization (Eq. 2);
//   h_theta : R x T -> Y   two separate outcome heads, one per treatment arm,
//                  each unit updated only through its factual head.
// Each net owns its input/outcome scalers so representations are always
// produced in the net's own input space.
#pragma once

#include <memory>
#include <vector>

#include "causal/scaler.h"
#include "data/dataset.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cerl::causal {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// Architecture hyperparameters.
struct NetConfig {
  std::vector<int> rep_hidden = {48};   ///< hidden sizes of g_w
  int rep_dim = 24;                     ///< representation dimension
  std::vector<int> head_hidden = {32};  ///< hidden sizes of each head
  nn::Activation activation = nn::Activation::kElu;
  /// Cosine normalization in the last representation layer (Eq. 2).
  bool cosine_normalized_rep = true;
};

/// Layer structure of g_w for a config / input dimension. Exposed so the
/// serving plane (src/serve/) can reconstruct the exact forward pass from
/// snapshot weights without duplicating the architecture rules (hidden
/// activation, forced-tanh output, cosine-normalized last layer).
nn::MlpConfig RepMlpConfig(const NetConfig& config, int input_dim);

/// Layer structure of each outcome head h_t (rep_dim -> ... -> 1, linear
/// output).
nn::MlpConfig HeadMlpConfig(const NetConfig& config);

/// g_w plus h_theta = {h_0, h_1}, with scalers.
class RepOutcomeNet {
 public:
  RepOutcomeNet(Rng* rng, const NetConfig& config, int input_dim);

  /// Representation forward pass on already-scaled inputs.
  Var Rep(Tape* tape, Var x_scaled);

  /// Outcome head forward (head = 0 control, 1 treated) on representations;
  /// returns scaled-outcome predictions (n x 1).
  Var Head(Tape* tape, Var rep, int head);

  /// All trainable parameters (g_w, h_0, h_1).
  std::vector<Parameter*> Parameters();

  /// First-layer weight of g_w — the elastic-net target (Eq. 1).
  Parameter& FirstLayerWeight() { return rep_->FirstLayerWeight(); }

  /// No-grad representation of raw covariates (applies the input scaler).
  linalg::Matrix Representations(const linalg::Matrix& x_raw);

  /// No-grad head evaluation on raw covariates, in original outcome units.
  linalg::Vector PredictOutcome(const linalg::Matrix& x_raw, int treatment);

  /// No-grad head evaluation directly on representations (memory replay),
  /// in original outcome units.
  linalg::Vector PredictOutcomeFromRep(const linalg::Matrix& rep,
                                       int treatment);

  /// Estimated ITE per unit: h(g(x), 1) - h(g(x), 0), original units.
  linalg::Vector PredictIte(const linalg::Matrix& x_raw);

  int input_dim() const { return input_dim_; }
  int rep_dim() const { return config_.rep_dim; }
  const NetConfig& config() const { return config_; }

  /// Copies all parameter values from `other` (same architecture required).
  void CopyParametersFrom(RepOutcomeNet& other);

  FeatureScaler& x_scaler() { return x_scaler_; }
  OutcomeScaler& y_scaler() { return y_scaler_; }
  const FeatureScaler& x_scaler() const { return x_scaler_; }
  const OutcomeScaler& y_scaler() const { return y_scaler_; }

 private:
  NetConfig config_;
  int input_dim_;
  std::unique_ptr<nn::Mlp> rep_;
  std::unique_ptr<nn::Mlp> head0_;
  std::unique_ptr<nn::Mlp> head1_;
  FeatureScaler x_scaler_;
  OutcomeScaler y_scaler_;
};

}  // namespace cerl::causal
