#include "causal/strategies.h"

#include <functional>
#include <memory>

#include "util/logging.h"

namespace cerl::causal {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kA: return "CFR-A";
    case Strategy::kB: return "CFR-B";
    case Strategy::kC: return "CFR-C";
  }
  return "?";
}

StageEval EvaluateStage(int stage, const std::vector<data::DataSplit>& stream,
                        const std::function<linalg::Vector(
                            const linalg::Matrix&)>& predict_ite) {
  StageEval eval;
  eval.stage = stage;
  std::vector<const data::CausalDataset*> pooled_parts;
  for (int j = 0; j <= stage; ++j) {
    const data::CausalDataset& test = stream[j].test;
    eval.per_domain.push_back(
        EvaluateOnDataset(test, predict_ite(test.x)));
    pooled_parts.push_back(&test);
  }
  const data::CausalDataset pooled = data::ConcatDatasets(pooled_parts);
  eval.pooled = EvaluateOnDataset(pooled, predict_ite(pooled.x));
  return eval;
}

StrategyRunResult RunCfrStrategy(Strategy s,
                                 const std::vector<data::DataSplit>& stream,
                                 const StrategyConfig& config) {
  CERL_CHECK(!stream.empty());
  const int input_dim = stream.front().train.num_features();
  StrategyRunResult result;

  std::unique_ptr<CfrModel> model;
  for (int d = 0; d < static_cast<int>(stream.size()); ++d) {
    switch (s) {
      case Strategy::kA:
        if (d == 0) {
          model = std::make_unique<CfrModel>(config.net, config.train,
                                             input_dim);
          model->Train(stream[0].train, stream[0].valid);
        }
        break;
      case Strategy::kB:
        if (d == 0) {
          model = std::make_unique<CfrModel>(config.net, config.train,
                                             input_dim);
          model->Train(stream[0].train, stream[0].valid);
        } else {
          model->FineTune(stream[d].train, stream[d].valid);
        }
        break;
      case Strategy::kC: {
        // Retrain from scratch on the union of all seen raw data.
        std::vector<const data::CausalDataset*> train_parts, valid_parts;
        for (int j = 0; j <= d; ++j) {
          train_parts.push_back(&stream[j].train);
          valid_parts.push_back(&stream[j].valid);
        }
        model = std::make_unique<CfrModel>(config.net, config.train,
                                           input_dim);
        model->Train(data::ConcatDatasets(train_parts),
                     data::ConcatDatasets(valid_parts));
        break;
      }
    }
    result.stages.push_back(EvaluateStage(
        d, stream,
        [&model](const linalg::Matrix& x) { return model->PredictIte(x); }));
    CERL_LOG(Debug) << StrategyName(s) << " stage " << d << " pooled pehe "
                    << result.stages.back().pooled.pehe;
  }
  return result;
}

}  // namespace cerl::causal
