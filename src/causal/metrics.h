// Evaluation metrics for treatment-effect estimation (paper §IV-B):
//   sqrt(eps_PEHE) = sqrt(mean_i (ITE_i - ITE_hat_i)^2)
//   eps_ATE        = | ATE - ATE_hat |
#pragma once

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace cerl::causal {

/// Metric pair reported throughout the paper's tables.
struct CausalMetrics {
  double pehe = 0.0;       ///< sqrt(eps_PEHE)
  double ate_error = 0.0;  ///< eps_ATE
};

/// Computes both metrics from true and predicted per-unit effects.
CausalMetrics EvaluateIte(const linalg::Vector& true_ite,
                          const linalg::Vector& predicted_ite);

/// Convenience: evaluates predictions against a dataset's ground truth.
CausalMetrics EvaluateOnDataset(const data::CausalDataset& dataset,
                                const linalg::Vector& predicted_ite);

/// Value of the policy "treat iff predicted ITE > threshold", evaluated on
/// ground-truth potential outcomes: mean_i [ pi(x_i) mu1_i + (1-pi) mu0_i ].
double PolicyValue(const data::CausalDataset& dataset,
                   const linalg::Vector& predicted_ite,
                   double threshold = 0.0);

/// Regret of that policy against the oracle policy "treat iff true ITE >
/// threshold". Non-negative; 0 iff the induced decisions are optimal.
double PolicyRegret(const data::CausalDataset& dataset,
                    const linalg::Vector& predicted_ite,
                    double threshold = 0.0);

}  // namespace cerl::causal
