// Classic non-neural baselines. The paper compares CFR variants only; a
// usable library also wants cheap reference estimators:
//  - RidgeTLearner: one linear ridge regression per treatment arm,
//    ITE(x) = f1(x) - f0(x). Exact on linear effect surfaces; a sanity
//    anchor for the neural models.
//  - NaiveAteEstimate: difference of group means — ignores confounding and
//    demonstrates why selection bias must be handled.
#pragma once

#include "causal/metrics.h"
#include "data/dataset.h"
#include "util/status.h"

namespace cerl::causal {

/// Two independent ridge regressions (T-learner).
class RidgeTLearner {
 public:
  /// l2 >= 0 is the ridge penalty (intercept not penalized).
  explicit RidgeTLearner(double l2 = 1e-3) : l2_(l2) {}

  /// Fits both arms. Fails if either arm has no units or the (regularized)
  /// normal equations are singular.
  Status Fit(const data::CausalDataset& train);

  /// Per-arm outcome prediction on raw covariates. Requires Fit.
  linalg::Vector PredictOutcome(const linalg::Matrix& x, int treatment) const;

  /// Estimated ITE: f1(x) - f0(x). Requires Fit.
  linalg::Vector PredictIte(const linalg::Matrix& x) const;

  /// PEHE / ATE error against ground truth. Requires Fit.
  CausalMetrics Evaluate(const data::CausalDataset& test) const;

  bool fitted() const { return fitted_; }

 private:
  double l2_;
  linalg::Vector w0_, w1_;
  double b0_ = 0.0, b1_ = 0.0;
  bool fitted_ = false;
};

/// Naive ATE: mean(y | t=1) - mean(y | t=0). Biased under selection.
double NaiveAteEstimate(const data::CausalDataset& d);

}  // namespace cerl::causal
