// Cross-stream fused Sinkhorn micro-solver.
//
// Under many-tenant ingest the per-stream Wasserstein penalties produce a
// steady drizzle of TINY Sinkhorn solves (n1*n2 below
// SinkhornConfig::min_parallel_elements) that run serially on their stream
// workers: each one walks a kernel far too small to amortize pool fan-out,
// so at high stream counts the engine spends its time issuing scalar-width
// sweeps one problem at a time. The batcher turns that concurrency into
// data parallelism instead: concurrent micro solves of the SAME shape are
// stacked four-wide into interleaved lane tensors (element j of lane p at
// data[4*j + p]) and swept together — one batched VecExp builds all four
// Gibbs kernels, each K·v pass is a lane4_dot over four problems at once,
// and the elementwise update/violation loops vectorize across lanes.
//
// Bit-identity contract: every lane reproduces its solo
// SolveSinkhorn(cost, config, workspace) result EXACTLY, bit for bit —
// plan, cost, iteration count, info flags, and retained warm-start duals.
// This holds because
//  - lanes are arithmetically independent (every op is elementwise in the
//    lane index; nothing reduces across lanes), so a problem's results do
//    not depend on which problems it was batched with — including the
//    padding lanes (duplicates of lane 0) that fill partial groups;
//  - the lane arithmetic replays the solo solver's serial micro path op for
//    op: vec_exp is position-uniform (simd.h), lane4_dot is bitwise
//    row_dot-per-lane of the same dispatched kernel set, and every other
//    sweep (Kᵀu, violations, dual updates, mean-cost, plan assembly) is
//    plain mul/add/div/fabs code in the solo path's exact per-lane order;
//  - any numerical anomaly — degenerate scaling, a beyond-near-miss final
//    violation, a non-finite plan cost — EJECTS the lane: the untouched
//    workspace is handed to the ordinary solo solver (batcher cleared),
//    which replays the full warm/cold/log-domain cascade from scratch.
//    Workspaces are only written on the all-clear success path.
// Batch composition depends on thread timing, so this independence is what
// keeps per-stream results deterministic under the engine.
//
// Threading: flat combining. Submit() enqueues the request; one caller
// becomes the leader and processes same-shape groups (up to 4 lanes) while
// the others block on a condition variable until their result is filled.
// All solves are micro (serial by definition), so the leader never touches
// the global pool — no interaction with ParallelFor, no lock-order hazards.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "ot/sinkhorn.h"

namespace cerl::ot {

class MicroSolveBatcher;

/// Deterministic batch entry point used by tests and benchmarks: solves
/// `costs[i]` with `configs[i]` into `workspaces[i]`, greedily fusing
/// consecutive same-shape problems into groups of up to kLanes (no threads,
/// no timing dependence). Results are bit-identical to solving each problem
/// solo, per the batcher contract.
std::vector<Result<SinkhornSolveInfo>> SolveSinkhornMicroBatch(
    const std::vector<const linalg::Matrix*>& costs,
    const std::vector<SinkhornConfig>& configs,
    const std::vector<SinkhornWorkspace*>& workspaces);

class MicroSolveBatcher {
 public:
  MicroSolveBatcher();
  ~MicroSolveBatcher();
  MicroSolveBatcher(const MicroSolveBatcher&) = delete;
  MicroSolveBatcher& operator=(const MicroSolveBatcher&) = delete;

  /// Solves like SolveSinkhorn(cost, config, workspace) — same results, bit
  /// for bit — but may fuse the solve with concurrent submissions of the
  /// same shape. Blocks until this request's result is ready. `cost` and
  /// `workspace` must stay valid for the duration of the call (they do: the
  /// caller is blocked). Normally invoked via SolveSinkhorn routing when
  /// SinkhornConfig::batcher is set, not directly.
  Result<SinkhornSolveInfo> Submit(const linalg::Matrix& cost,
                                   const SinkhornConfig& config,
                                   SinkhornWorkspace* workspace);

  /// Lanes per fused group == the SIMD lane width the stacks are built for.
  static constexpr int kLanes = 4;

 private:
  struct Request;
  /// Interleaved lane tensors (cost/kernel/plan stacks, dual and scratch
  /// vectors), grown to the largest shape seen. Layout: element (i, j) of
  /// lane p at [(i * n2 + j) * kLanes + p]; vectors at [idx * kLanes + p].
  struct LaneStacks;

  /// Pops the front request plus up to kLanes-1 more queued requests of the
  /// same shape (scanning in FIFO order). Caller holds mutex_.
  std::vector<Request*> TakeBatchLocked();

  /// Solves a same-shape batch (1..kLanes requests), filling each request's
  /// result. Runs without the lock; arithmetic is entirely serial (the
  /// leader role is serialized, so one stack set suffices).
  void ProcessBatch(const std::vector<Request*>& batch);

  /// The fused group solve shared by ProcessBatch and
  /// SolveSinkhornMicroBatch.
  static void SolveGroup(const std::vector<Request*>& group,
                         LaneStacks* stacks);

  /// Anomaly fallback: replay the ordinary solo solve on the (untouched)
  /// workspace with the batcher cleared so routing cannot recurse.
  static void SolveSolo(Request* req);

  friend std::vector<Result<SinkhornSolveInfo>> SolveSinkhornMicroBatch(
      const std::vector<const linalg::Matrix*>& costs,
      const std::vector<SinkhornConfig>& configs,
      const std::vector<SinkhornWorkspace*>& workspaces);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::unique_ptr<LaneStacks> stacks_;
};

}  // namespace cerl::ot
