// Numerical thresholds shared by the solo Sinkhorn solver (sinkhorn.cc) and
// the fused micro-solver (fused_micro_solver.cc). The fused solver promises
// bit-identical results to the solo path, which requires, among the
// lockstep arithmetic, agreeing exactly on when a scaling variable counts
// as degenerate.
#pragma once

namespace cerl::ot::internal {

/// Scaling variables at or below this are treated as numerical underflow:
/// the solo solver retries cold / falls back to the log domain, the fused
/// solver ejects the lane to a solo solve (matches the historic scalar
/// solver's threshold).
inline constexpr double kUnderflow = 1e-300;

/// A solve that exhausts max_iterations with a final row violation within
/// this factor of the tolerance is accepted as "slow but essentially
/// converged" (the reference solver's accept-at-max-iterations behaviour);
/// beyond it the solo solver retries / falls back and the fused solver
/// ejects.
inline constexpr double kNearMissFactor = 100.0;

}  // namespace cerl::ot::internal
