#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/gemm.h"
#include "linalg/ops.h"
#include "linalg/simd.h"
#include "ot/fused_micro_solver.h"
#include "ot/sinkhorn_internal.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace cerl::ot {
namespace {

using linalg::Matrix;
using linalg::Vector;
using internal::kUnderflow;

// Fast path: standard Sinkhorn matrix scaling u = a ./ (K v), v = b ./ (K^T u)
// with the Gibbs kernel K = exp(-C / reg) computed once. Returns false if the
// iteration degenerates numerically (under/overflow), in which case the
// caller falls back to the log-domain solver. This is the reference
// implementation: it allocates per call, runs scalar/serial, and always
// starts cold — the workspace solver below is tested against it.
bool SolveScaling(const linalg::Matrix& cost, double reg, int max_iterations,
                  double tolerance, SinkhornResult* out) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  const double a = 1.0 / n1;
  const double b = 1.0 / n2;

  linalg::Matrix kernel(n1, n2);
  for (int i = 0; i < n1; ++i) {
    const double* crow = cost.row(i);
    double* krow = kernel.row(i);
    for (int j = 0; j < n2; ++j) krow[j] = std::exp(-crow[j] / reg);
  }

  linalg::Vector u(n1, 1.0), v(n2, 1.0), kv(n1), ktu(n2);
  int iter = 0;
  bool have_u = false;
  for (; iter < max_iterations; ++iter) {
    // kv = K v — the one K·v pass per iteration. It serves both the
    // convergence check (against the previous iteration's u, whose row
    // marginal is u ⊙ K v with the current v) and the u update below;
    // the check used to re-compute K·v from scratch in a third full pass
    // over the kernel, which also limited it to every fifth iteration.
    for (int i = 0; i < n1; ++i) {
      const double* krow = kernel.row(i);
      double s = 0.0;
      for (int j = 0; j < n2; ++j) s += krow[j] * v[j];
      if (s <= kUnderflow || !std::isfinite(s)) return false;
      kv[i] = s;
    }
    if (have_u) {
      double violation = 0.0;
      for (int i = 0; i < n1; ++i) violation += std::fabs(u[i] * kv[i] - a);
      if (violation < tolerance) break;
    }
    for (int i = 0; i < n1; ++i) u[i] = a / kv[i];
    have_u = true;
    // ktu = K^T u ; v = b / ktu
    std::fill(ktu.begin(), ktu.end(), 0.0);
    for (int i = 0; i < n1; ++i) {
      const double* krow = kernel.row(i);
      const double ui = u[i];
      for (int j = 0; j < n2; ++j) ktu[j] += krow[j] * ui;
    }
    for (int j = 0; j < n2; ++j) {
      if (ktu[j] <= kUnderflow || !std::isfinite(ktu[j])) return false;
      v[j] = b / ktu[j];
    }
  }

  out->plan = linalg::Matrix(n1, n2);
  out->cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    const double* krow = kernel.row(i);
    const double* crow = cost.row(i);
    double* prow = out->plan.row(i);
    for (int j = 0; j < n2; ++j) {
      const double p = u[i] * krow[j] * v[j];
      if (!std::isfinite(p)) return false;
      prow[j] = p;
      out->cost += p * crow[j];
    }
  }
  out->iterations = iter;
  return std::isfinite(out->cost);
}

// Log-domain stabilized solver (slower, robust for small regularization).
SinkhornResult SolveLogDomain(const linalg::Matrix& cost, double reg,
                              int max_iterations, double tolerance) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  const double log_a = -std::log(static_cast<double>(n1));
  const double log_b = -std::log(static_cast<double>(n2));
  linalg::Vector f(n1, 0.0), g(n2, 0.0);

  auto logsumexp_row = [&](int i) {
    double m = -1e300;
    for (int j = 0; j < n2; ++j) m = std::max(m, (g[j] - cost(i, j)) / reg);
    double s = 0.0;
    for (int j = 0; j < n2; ++j) s += std::exp((g[j] - cost(i, j)) / reg - m);
    return m + std::log(s);
  };
  auto logsumexp_col = [&](int j) {
    double m = -1e300;
    for (int i = 0; i < n1; ++i) m = std::max(m, (f[i] - cost(i, j)) / reg);
    double s = 0.0;
    for (int i = 0; i < n1; ++i) s += std::exp((f[i] - cost(i, j)) / reg - m);
    return m + std::log(s);
  };

  SinkhornResult result;
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    for (int i = 0; i < n1; ++i) f[i] = reg * (log_a - logsumexp_row(i));
    for (int j = 0; j < n2; ++j) g[j] = reg * (log_b - logsumexp_col(j));
    double violation = 0.0;
    for (int i = 0; i < n1; ++i) {
      double row_sum = 0.0;
      for (int j = 0; j < n2; ++j) {
        row_sum += std::exp((f[i] + g[j] - cost(i, j)) / reg);
      }
      violation += std::fabs(row_sum - 1.0 / n1);
    }
    if (violation < tolerance) {
      ++iter;
      break;
    }
  }

  result.plan = linalg::Matrix(n1, n2);
  result.cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      const double p = std::exp((f[i] + g[j] - cost(i, j)) / reg);
      result.plan(i, j) = p;
      result.cost += p * cost(i, j);
    }
  }
  result.iterations = iter;
  return result;
}

// --- Workspace (hot-path) solver -------------------------------------------

// Chunk grain for splitting `outer` loop iterations whose bodies each touch
// `inner` elements; `parallel = false` forces the serial path of ParallelFor
// without changing any arithmetic.
int64_t Grain(bool parallel, int inner) {
  if (!parallel) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(4, (1 << 15) / (inner + 1));
}

bool AllUsable(const Vector& x, int n) {
  for (int i = 0; i < n; ++i) {
    if (x[i] <= kUnderflow || !std::isfinite(x[i])) return false;
  }
  return true;
}

// kv = K v: linalg::MatVecInto already has the row-blocked, fixed-order
// four-accumulator kernel, so the result is independent of the split; only
// the grain (and thus the serial toggle) is Sinkhorn-specific.
void KernelTimesVec(const Matrix& kernel, const Vector& v, Vector* kv,
                    bool parallel) {
  if (!parallel) {
    // Serial fast path: the single direct kernel call MatVecInto's
    // grain=max ParallelFor would make (same kernel, same arguments, same
    // bits), without the per-iteration dispatch overhead — measurable at
    // the tiny per-stream problem sizes this loop runs ~60 times per
    // solve. kv is pre-sized by Reserve.
    linalg::simd::Kernels().mat_vec(kernel.row(0), kernel.cols(), v.data(),
                                    kernel.rows(), kernel.cols(), kv->data());
    return;
  }
  linalg::MatVecInto(kernel, v, kv, Grain(parallel, kernel.cols()));
}

// ktu = K^T u, split over column blocks: each worker walks all rows but
// accumulates only its own contiguous column slice, so the inner loop stays
// unit-stride and every ktu[j] is summed in row order regardless of the
// split (no transpose, no atomics).
void KernelTransposeTimesVec(const Matrix& kernel, const Vector& u,
                             Vector* ktu, bool parallel) {
  const int n1 = kernel.rows();
  const double* ud = u.data();
  double* out = ktu->data();
  // mat_tvec_accum is a plain-elementwise kernel (bitwise identical across
  // tables, range splits, and row blocking), so this stays the reference
  // accumulation order that lane4_ktu replays in the fused micro-solver.
  const auto& ks = linalg::simd::Kernels();
  if (!parallel) {
    // Serial fast path: identical to the grain=max ParallelFor below
    // covering the full column range, minus the dispatch overhead.
    ks.mat_tvec_accum(kernel.row(0), kernel.cols(), ud, n1, kernel.cols(),
                      out);
    return;
  }
  ParallelFor(
      0, kernel.cols(),
      [&](int64_t lo, int64_t hi) {
        const int j0 = static_cast<int>(lo);
        const int j1 = static_cast<int>(hi);
        ks.mat_tvec_accum(kernel.row(0) + j0, kernel.cols(), ud, n1, j1 - j0,
                          out + j0);
      },
      Grain(parallel, n1));
}

enum class ScalingOutcome { kConverged, kNotConverged, kDegenerate };

// Row-marginal violation of the (u, v) pair given kv = K v.
double RowViolation(const Vector& u, const Vector& kv, int n1, double a) {
  double violation = 0.0;
  for (int i = 0; i < n1; ++i) violation += std::fabs(u[i] * kv[i] - a);
  return violation;
}

// Column-marginal violation given ktu = K^T u.
double ColViolation(const Vector& v, const Vector& ktu, int n2, double b) {
  double violation = 0.0;
  for (int j = 0; j < n2; ++j) violation += std::fabs(v[j] * ktu[j] - b);
  return violation;
}

// Runs the u/v scaling iteration in the workspace buffers. `have_u` marks a
// warm start where u already pairs with v (enabling the convergence check —
// and thus a zero-iteration exit — before the first update). On
// kNotConverged the final pair's violation is left in *final_violation so
// the caller can decide whether the result is usable.
ScalingOutcome RunScaling(const Matrix& kernel, const SinkhornConfig& config,
                          double a, double b, bool have_u, Vector* u,
                          Vector* v, Vector* kv, Vector* ktu, int* iterations,
                          double* final_violation) {
  const int n1 = kernel.rows();
  const int n2 = kernel.cols();
  int iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    KernelTimesVec(kernel, *v, kv, config.parallel);
    if (!AllUsable(*kv, n1)) {
      *iterations = iter;
      return ScalingOutcome::kDegenerate;
    }
    if (have_u) {
      // u was computed against the previous kv, v against that u, and kv
      // above is K v — the same quantity the reference solver checks, at
      // O(n) extra cost (the kernel pass is shared with the u update).
      if (RowViolation(*u, *kv, n1, a) < config.tolerance) {
        // At iter > 0 the columns are exact by construction (v was just
        // computed from this u and this kernel). At iter == 0 the pair is
        // a warm start whose columns were exact for the PREVIOUS kernel
        // only — cost drift could in principle move column mass while
        // leaving every row sum intact, so a zero-iteration accept must
        // also verify the column marginals (one extra K^T u pass, paid
        // only on the accept candidate).
        if (iter > 0) {
          *iterations = iter;
          return ScalingOutcome::kConverged;
        }
        KernelTransposeTimesVec(kernel, *u, ktu, config.parallel);
        if (AllUsable(*ktu, n2) &&
            ColViolation(*v, *ktu, n2, b) < config.tolerance) {
          *iterations = iter;
          return ScalingOutcome::kConverged;
        }
      }
    }
    // vec_div_scalar is plain IEEE division — the same bits as the scalar
    // loop (and as lane4_div_masked in the fused micro-solver).
    linalg::simd::Kernels().vec_div_scalar(a, kv->data(), u->data(), n1);
    have_u = true;
    KernelTransposeTimesVec(kernel, *u, ktu, config.parallel);
    if (!AllUsable(*ktu, n2)) {
      *iterations = iter;
      return ScalingOutcome::kDegenerate;
    }
    linalg::simd::Kernels().vec_div_scalar(b, ktu->data(), v->data(), n2);
  }
  *iterations = iter;
  // The pair from the final iteration was never checked; measure it so the
  // caller can tell "slow but essentially converged" from "stuck".
  KernelTimesVec(kernel, *v, kv, config.parallel);
  if (!AllUsable(*kv, n1)) return ScalingOutcome::kDegenerate;
  *final_violation = RowViolation(*u, *kv, n1, a);
  if (*final_violation < config.tolerance) return ScalingOutcome::kConverged;
  return ScalingOutcome::kNotConverged;
}

// plan = diag(u) K diag(v); returns <plan, cost> (NaN propagates to the
// caller's finiteness check). Row partial costs land in `row_scratch` and
// are summed serially in row order, so the total is split-independent.
double AssemblePlanCost(const Matrix& cost, const Matrix& kernel,
                        const Vector& u, const Vector& v, bool parallel,
                        Matrix* plan, Vector* row_scratch) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  const double* vd = v.data();
  double* scratch = row_scratch->data();
  ParallelFor(
      0, n1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int row = static_cast<int>(i);
          const double ui = u[row];
          const double* krow = kernel.row(row);
          const double* crow = cost.row(row);
          double* prow = plan->row(row);
          double s0 = 0.0, s1 = 0.0;
          int j = 0;
          for (; j + 2 <= n2; j += 2) {
            const double p0 = ui * krow[j] * vd[j];
            const double p1 = ui * krow[j + 1] * vd[j + 1];
            prow[j] = p0;
            prow[j + 1] = p1;
            s0 += p0 * crow[j];
            s1 += p1 * crow[j + 1];
          }
          for (; j < n2; ++j) {
            const double p = ui * krow[j] * vd[j];
            prow[j] = p;
            s0 += p * crow[j];
          }
          scratch[i] = s0 + s1;
        }
      },
      Grain(parallel, n2));
  double total = 0.0;
  for (int i = 0; i < n1; ++i) total += scratch[i];
  return total;
}

}  // namespace

bool SinkhornWorkspace::AdaptWarmStart(int rows, int cols) {
  if (warm_rows_ <= 0 || warm_cols_ <= 0) return false;
  if (warm_rows_ == rows && warm_cols_ == cols) return false;
  // resize keeps the prefix; only entries beyond the old shape get the cold
  // value. The scale of the retained duals is irrelevant: the first scaling
  // update recomputes u entirely from K·v (and v from Kᵀ·u), so only the
  // dual profile carries warm-start information.
  u_.resize(rows);
  for (int i = warm_rows_; i < rows; ++i) u_[i] = 1.0;
  v_.resize(cols);
  for (int j = warm_cols_; j < cols; ++j) v_[j] = 1.0;
  warm_rows_ = rows;
  warm_cols_ = cols;
  return true;
}

void SinkhornWorkspace::Reserve(int n1, int n2) {
  const int64_t elems = static_cast<int64_t>(n1) * n2;
  if (elems > mat_high_water_) {
    allocations_ += 2;  // kernel_ + plan_
    mat_high_water_ = elems;
  }
  kernel_.Resize(n1, n2);
  plan_.Resize(n1, n2);
  if (n1 > row_high_water_) {
    allocations_ += 3;  // u_ + kv_ + row_scratch_
    row_high_water_ = n1;
  }
  u_.resize(n1);
  kv_.resize(n1);
  row_scratch_.resize(n1);
  if (n2 > col_high_water_) {
    allocations_ += 2;  // v_ + ktu_
    col_high_water_ = n2;
  }
  v_.resize(n2);
  ktu_.resize(n2);
}

Result<SinkhornSolveInfo> SolveSinkhorn(const linalg::Matrix& cost,
                                        const SinkhornConfig& base_config,
                                        SinkhornWorkspace* workspace) {
  CERL_CHECK(workspace != nullptr);
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty cost matrix");
  }
  // Fault-injection hook: the calling thread is the stream's stage worker
  // (even fused-batcher solves eject to the submitter), so a thread-local
  // FaultScope correctly confines the fault to one tenant.
  if (CERL_FAULT_POINT(FaultPoint::kSinkhornDiverge)) {
    return Status::NumericalError("injected sinkhorn non-convergence");
  }
  // Shape-adapted warm starts happen before the solo/fused routing so both
  // paths observe the identical dual state (the batcher gathers duals from
  // the workspace through the same has_warm_start check as the solo path).
  if (base_config.warm_start && base_config.adaptive_warm_start) {
    workspace->AdaptWarmStart(n1, n2);
  }
  // Micro solves (below the parallel threshold) can be handed to the
  // cross-stream batcher, which stacks concurrent small problems into one
  // SIMD-lane sweep. Per problem the batcher is bit-identical to the solo
  // path below (it ejects back here — with the batcher cleared — on any
  // numerical anomaly), so this routing never changes results.
  if (base_config.batcher != nullptr &&
      static_cast<int64_t>(n1) * n2 < base_config.min_parallel_elements) {
    return base_config.batcher->Submit(cost, base_config, workspace);
  }

  SinkhornWorkspace& ws = *workspace;
  ws.Reserve(n1, n2);

  // Small solves stay on the calling thread (see SinkhornConfig::
  // min_parallel_elements): bit-identical by construction, and under
  // multi-stream ingest it batches one solve per stream worker instead of
  // splitting every tiny kernel across the shared pool.
  SinkhornConfig config = base_config;
  config.parallel =
      base_config.parallel &&
      static_cast<int64_t>(n1) * n2 >= base_config.min_parallel_elements;

  // Scale-free regularization from the mean cost. Row sums are computed in
  // fixed order (possibly in parallel) and combined serially, so reg does
  // not depend on the split.
  {
    double* scratch = ws.row_scratch_.data();
    ParallelFor(
        0, n1,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            const double* crow = cost.row(static_cast<int>(i));
            double s = 0.0;
            for (int j = 0; j < n2; ++j) s += crow[j];
            scratch[i] = s;
          }
        },
        Grain(config.parallel, n2));
  }
  double mean_cost = 0.0;
  for (int i = 0; i < n1; ++i) mean_cost += ws.row_scratch_[i];
  mean_cost /= static_cast<double>(n1) * n2;
  const double reg =
      std::max(1e-12, config.reg_fraction * std::max(mean_cost, 1e-12));
  const double neg_inv_reg = -1.0 / reg;

  // Gibbs kernel K = exp(-C / reg), row-blocked with the vectorized batch
  // exp (the biggest single cost of a cold solve).
  ParallelFor(
      0, n1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const double* crow = cost.row(static_cast<int>(i));
          double* krow = ws.kernel_.row(static_cast<int>(i));
          for (int j = 0; j < n2; ++j) krow[j] = crow[j] * neg_inv_reg;
          linalg::VecExp(krow, krow, n2);
        }
      },
      Grain(config.parallel, n2));

  const double a = 1.0 / n1;
  const double b = 1.0 / n2;
  const bool can_warm = config.warm_start && ws.has_warm_start(n1, n2);
  SinkhornSolveInfo info;
  // First attempt warm (when retained duals fit), then cold; a degenerate
  // warm start must not poison the solve, it just costs one retry.
  const int attempts = can_warm ? 2 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const bool warm = can_warm && attempt == 0;
    if (!warm) {
      std::fill(ws.u_.begin(), ws.u_.end(), 1.0);
      std::fill(ws.v_.begin(), ws.v_.end(), 1.0);
    }
    int iterations = 0;
    double final_violation = 0.0;
    const ScalingOutcome outcome =
        RunScaling(ws.kernel_, config, a, b, /*have_u=*/warm, &ws.u_, &ws.v_,
                   &ws.kv_, &ws.ktu_, &iterations, &final_violation);
    if (outcome == ScalingOutcome::kDegenerate) continue;
    // Exhausting max_iterations far from the tolerance means the scaling
    // iteration is numerically stuck (tiny regularization): the plan would
    // be visibly infeasible, so route to the log-domain solver instead of
    // returning it. A near-miss (within 100x tolerance) is kept — that
    // matches the reference solver's accept-at-max-iterations behaviour
    // for merely slow convergence.
    if (outcome == ScalingOutcome::kNotConverged &&
        final_violation > internal::kNearMissFactor * config.tolerance) {
      continue;
    }
    const double total =
        AssemblePlanCost(cost, ws.kernel_, ws.u_, ws.v_, config.parallel,
                         &ws.plan_, &ws.row_scratch_);
    if (std::isfinite(total)) {
      info.cost = total;
      info.iterations = iterations;
      info.warm_started = warm;
      ws.warm_rows_ = n1;
      ws.warm_cols_ = n2;
      return info;
    }
  }

  // Scaling under/overflowed even from a cold start: log-domain fallback
  // (the rare small-regularization regime; allocates outside the workspace
  // — correctness over churn here). The duals are not representable in the
  // scaling form, so the warm start is dropped.
  SinkhornResult log_result =
      SolveLogDomain(cost, reg, config.max_iterations, config.tolerance);
  ws.plan_.CopyFrom(log_result.plan);
  ws.DropWarmStart();
  info.cost = log_result.cost;
  info.iterations = log_result.iterations;
  info.warm_started = false;
  info.used_log_domain = true;
  if (!std::isfinite(info.cost)) {
    return Status::NumericalError("sinkhorn: non-finite transport cost");
  }
  return info;
}

Result<SinkhornResult> SolveSinkhorn(const linalg::Matrix& cost,
                                     const SinkhornConfig& config) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty cost matrix");
  }
  double mean_cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) mean_cost += cost(i, j);
  }
  mean_cost /= static_cast<double>(n1) * n2;
  const double reg =
      std::max(1e-12, config.reg_fraction * std::max(mean_cost, 1e-12));

  SinkhornResult result;
  if (SolveScaling(cost, reg, config.max_iterations, config.tolerance,
                   &result)) {
    return result;
  }
  return SolveLogDomain(cost, reg, config.max_iterations, config.tolerance);
}

Result<double> SinkhornDistance(const linalg::Matrix& a,
                                const linalg::Matrix& b,
                                const SinkhornConfig& config) {
  if (a.rows() == 0 || b.rows() == 0) {
    return Status::InvalidArgument("empty point set");
  }
  auto result = SolveSinkhorn(linalg::PairwiseSquaredDistances(a, b), config);
  if (!result.ok()) return result.status();
  return result.value().cost;
}

}  // namespace cerl::ot
