#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>

#include "linalg/ops.h"

namespace cerl::ot {
namespace {

// Fast path: standard Sinkhorn matrix scaling u = a ./ (K v), v = b ./ (K^T u)
// with the Gibbs kernel K = exp(-C / reg) computed once. Returns false if the
// iteration degenerates numerically (under/overflow), in which case the
// caller falls back to the log-domain solver.
bool SolveScaling(const linalg::Matrix& cost, double reg, int max_iterations,
                  double tolerance, SinkhornResult* out) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  const double a = 1.0 / n1;
  const double b = 1.0 / n2;

  linalg::Matrix kernel(n1, n2);
  for (int i = 0; i < n1; ++i) {
    const double* crow = cost.row(i);
    double* krow = kernel.row(i);
    for (int j = 0; j < n2; ++j) krow[j] = std::exp(-crow[j] / reg);
  }

  linalg::Vector u(n1, 1.0), v(n2, 1.0), kv(n1), ktu(n2);
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // kv = K v ; u = a / kv
    for (int i = 0; i < n1; ++i) {
      const double* krow = kernel.row(i);
      double s = 0.0;
      for (int j = 0; j < n2; ++j) s += krow[j] * v[j];
      if (s <= 1e-300 || !std::isfinite(s)) return false;
      kv[i] = s;
      u[i] = a / s;
    }
    // ktu = K^T u ; v = b / ktu
    std::fill(ktu.begin(), ktu.end(), 0.0);
    for (int i = 0; i < n1; ++i) {
      const double* krow = kernel.row(i);
      const double ui = u[i];
      for (int j = 0; j < n2; ++j) ktu[j] += krow[j] * ui;
    }
    for (int j = 0; j < n2; ++j) {
      if (ktu[j] <= 1e-300 || !std::isfinite(ktu[j])) return false;
      v[j] = b / ktu[j];
    }
    // Convergence check on the row marginals (columns exact after v step).
    if (iter % 5 == 4 || iter == max_iterations - 1) {
      double violation = 0.0;
      for (int i = 0; i < n1; ++i) {
        const double* krow = kernel.row(i);
        double s = 0.0;
        for (int j = 0; j < n2; ++j) s += krow[j] * v[j];
        violation += std::fabs(u[i] * s - a);
      }
      if (violation < tolerance) {
        ++iter;
        break;
      }
    }
  }

  out->plan = linalg::Matrix(n1, n2);
  out->cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    const double* krow = kernel.row(i);
    const double* crow = cost.row(i);
    double* prow = out->plan.row(i);
    for (int j = 0; j < n2; ++j) {
      const double p = u[i] * krow[j] * v[j];
      if (!std::isfinite(p)) return false;
      prow[j] = p;
      out->cost += p * crow[j];
    }
  }
  out->iterations = iter;
  return std::isfinite(out->cost);
}

// Log-domain stabilized solver (slower, robust for small regularization).
SinkhornResult SolveLogDomain(const linalg::Matrix& cost, double reg,
                              int max_iterations, double tolerance) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  const double log_a = -std::log(static_cast<double>(n1));
  const double log_b = -std::log(static_cast<double>(n2));
  linalg::Vector f(n1, 0.0), g(n2, 0.0);

  auto logsumexp_row = [&](int i) {
    double m = -1e300;
    for (int j = 0; j < n2; ++j) m = std::max(m, (g[j] - cost(i, j)) / reg);
    double s = 0.0;
    for (int j = 0; j < n2; ++j) s += std::exp((g[j] - cost(i, j)) / reg - m);
    return m + std::log(s);
  };
  auto logsumexp_col = [&](int j) {
    double m = -1e300;
    for (int i = 0; i < n1; ++i) m = std::max(m, (f[i] - cost(i, j)) / reg);
    double s = 0.0;
    for (int i = 0; i < n1; ++i) s += std::exp((f[i] - cost(i, j)) / reg - m);
    return m + std::log(s);
  };

  SinkhornResult result;
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    for (int i = 0; i < n1; ++i) f[i] = reg * (log_a - logsumexp_row(i));
    for (int j = 0; j < n2; ++j) g[j] = reg * (log_b - logsumexp_col(j));
    double violation = 0.0;
    for (int i = 0; i < n1; ++i) {
      double row_sum = 0.0;
      for (int j = 0; j < n2; ++j) {
        row_sum += std::exp((f[i] + g[j] - cost(i, j)) / reg);
      }
      violation += std::fabs(row_sum - 1.0 / n1);
    }
    if (violation < tolerance) {
      ++iter;
      break;
    }
  }

  result.plan = linalg::Matrix(n1, n2);
  result.cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      const double p = std::exp((f[i] + g[j] - cost(i, j)) / reg);
      result.plan(i, j) = p;
      result.cost += p * cost(i, j);
    }
  }
  result.iterations = iter;
  return result;
}

}  // namespace

Result<SinkhornResult> SolveSinkhorn(const linalg::Matrix& cost,
                                     const SinkhornConfig& config) {
  const int n1 = cost.rows();
  const int n2 = cost.cols();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty cost matrix");
  }
  double mean_cost = 0.0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) mean_cost += cost(i, j);
  }
  mean_cost /= static_cast<double>(n1) * n2;
  const double reg =
      std::max(1e-12, config.reg_fraction * std::max(mean_cost, 1e-12));

  SinkhornResult result;
  if (SolveScaling(cost, reg, config.max_iterations, config.tolerance,
                   &result)) {
    return result;
  }
  return SolveLogDomain(cost, reg, config.max_iterations, config.tolerance);
}

Result<double> SinkhornDistance(const linalg::Matrix& a,
                                const linalg::Matrix& b,
                                const SinkhornConfig& config) {
  if (a.rows() == 0 || b.rows() == 0) {
    return Status::InvalidArgument("empty point set");
  }
  auto result = SolveSinkhorn(linalg::PairwiseSquaredDistances(a, b), config);
  if (!result.ok()) return result.status();
  return result.value().cost;
}

}  // namespace cerl::ot
