// Fused micro-solver implementation. Read the bit-identity contract in
// fused_micro_solver.h first: every loop in SolveGroup replays the solo
// workspace solver's serial micro path (sinkhorn.cc) op for op within each
// lane, with the lane index as the innermost, arithmetically-independent
// dimension. The two dispatched kernels (vec_exp, lane4_dot) carry the
// simd.h per-lane guarantees; every other sweep is plain mul/add/div/fabs
// written in the solo path's exact per-element order — this file is
// compiled at the default (SSE2) baseline, where the compiler cannot
// contract multiply-adds, so "plain" stays plain.
#include "ot/fused_micro_solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "linalg/simd.h"
#include "ot/sinkhorn_internal.h"
#include "util/check.h"

namespace cerl::ot {

namespace {
constexpr int L = MicroSolveBatcher::kLanes;
using internal::kNearMissFactor;
using internal::kUnderflow;
}  // namespace

struct MicroSolveBatcher::Request {
  const linalg::Matrix* cost = nullptr;
  SinkhornConfig config;
  SinkhornWorkspace* ws = nullptr;
  bool done = false;
  Result<SinkhornSolveInfo> result = Status::Internal("micro solve not run");
};

struct MicroSolveBatcher::LaneStacks {
  std::vector<double> c4, k4, p4;      // n1 * n2 * L
  std::vector<double> u4, kv4, rows4;  // n1 * L
  std::vector<double> v4, ktu4;        // n2 * L
  std::vector<double> ktu_tmp;         // n2 (per-lane warm-accept verify)

  void Reserve(int n1, int n2) {
    const size_t mat = static_cast<size_t>(n1) * n2 * L;
    c4.resize(mat);
    k4.resize(mat);
    p4.resize(mat);
    u4.resize(static_cast<size_t>(n1) * L);
    kv4.resize(static_cast<size_t>(n1) * L);
    rows4.resize(static_cast<size_t>(n1) * L);
    v4.resize(static_cast<size_t>(n2) * L);
    ktu4.resize(static_cast<size_t>(n2) * L);
    ktu_tmp.resize(n2);
  }
};

MicroSolveBatcher::MicroSolveBatcher()
    : stacks_(std::make_unique<LaneStacks>()) {}

MicroSolveBatcher::~MicroSolveBatcher() = default;

// The lane's anomaly fallback: replay the ordinary solo solve on the
// (untouched) workspace, with the batcher cleared so the routing in
// SolveSinkhorn cannot recurse. Because SolveGroup writes nothing into a
// workspace before the lane's all-clear, this is bitwise the solve the
// request would have gotten with no batcher configured.
void MicroSolveBatcher::SolveSolo(Request* req) {
  SinkhornConfig solo = req->config;
  solo.batcher = nullptr;
  req->result = SolveSinkhorn(*req->cost, solo, req->ws);
}

void MicroSolveBatcher::SolveGroup(const std::vector<Request*>& group,
                                   LaneStacks* stacks) {
  const int lanes = static_cast<int>(group.size());
  CERL_CHECK(lanes >= 2 && lanes <= L);
  const int n1 = group[0]->cost->rows();
  const int n2 = group[0]->cost->cols();
  const size_t cells = static_cast<size_t>(n1) * n2;

  // Partial groups are padded with duplicates of lane 0: the pad lanes run
  // the identical arithmetic (lane independence makes them inert) and their
  // outcomes are dropped — no workspace writes, no ejects.
  const Request* lane[L];
  for (int p = 0; p < L; ++p) lane[p] = group[p < lanes ? p : 0];

  stacks->Reserve(n1, n2);
  double* c4 = stacks->c4.data();
  double* k4 = stacks->k4.data();
  double* p4 = stacks->p4.data();
  double* u4 = stacks->u4.data();
  double* kv4 = stacks->kv4.data();
  double* rows4 = stacks->rows4.data();
  double* v4 = stacks->v4.data();
  double* ktu4 = stacks->ktu4.data();
  double* ktu_tmp = stacks->ktu_tmp.data();

  // Gather the four cost matrices into the interleaved stack.
  for (int i = 0; i < n1; ++i) {
    const double* crow[L];
    for (int p = 0; p < L; ++p) crow[p] = lane[p]->cost->row(i);
    double* dst = c4 + static_cast<size_t>(i) * n2 * L;
    for (int j = 0; j < n2; ++j) {
      for (int p = 0; p < L; ++p) dst[j * L + p] = crow[p][j];
    }
  }

  // Mean cost per lane: row sums accumulated left to right, totalled in row
  // order — the solo path's exact reduction.
  double total_cost[L] = {0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < n1; ++i) {
    const double* src = c4 + static_cast<size_t>(i) * n2 * L;
    double s[L] = {0.0, 0.0, 0.0, 0.0};
    for (int j = 0; j < n2; ++j) {
      for (int p = 0; p < L; ++p) s[p] += src[j * L + p];
    }
    for (int p = 0; p < L; ++p) total_cost[p] += s[p];
  }
  double neg_inv_reg[L];
  for (int p = 0; p < L; ++p) {
    double mean = total_cost[p];
    mean /= static_cast<double>(n1) * n2;
    const double reg = std::max(
        1e-12, lane[p]->config.reg_fraction * std::max(mean, 1e-12));
    neg_inv_reg[p] = -1.0 / reg;
  }

  // Gibbs kernels, all four at once: scale, then ONE batched exp over the
  // whole stack. vec_exp is position-uniform (simd.h), so each element gets
  // bitwise the value the solo path's per-row VecExp calls produce.
  for (size_t idx = 0; idx < cells; ++idx) {
    for (int p = 0; p < L; ++p) {
      k4[idx * L + p] = c4[idx * L + p] * neg_inv_reg[p];
    }
  }
  const auto& ks = linalg::simd::Kernels();
  ks.vec_exp(k4, k4, static_cast<int>(cells * L));

  const double a = 1.0 / n1;
  const double b = 1.0 / n2;

  // Duals: warm lanes gather the workspace's retained duals (read-only —
  // the workspace stays untouched until the lane's success scatter), cold
  // lanes start from ones.
  bool warm[L], have_u[L];
  for (int p = 0; p < L; ++p) {
    warm[p] = lane[p]->config.warm_start &&
              lane[p]->ws->has_warm_start(n1, n2);
    have_u[p] = warm[p];
    if (warm[p]) {
      const SinkhornWorkspace& ws = *lane[p]->ws;
      for (int i = 0; i < n1; ++i) u4[i * L + p] = ws.u_[i];
      for (int j = 0; j < n2; ++j) v4[j * L + p] = ws.v_[j];
    } else {
      for (int i = 0; i < n1; ++i) u4[i * L + p] = 1.0;
      for (int j = 0; j < n2; ++j) v4[j * L + p] = 1.0;
    }
  }

  // Per-lane replay of RunScaling in lockstep. kRunning lanes sit at the
  // top of loop iteration `t`; a lane whose iteration count reaches its own
  // max_iterations moves to kFinal and gets the solo path's post-loop
  // final-violation check on the next sweep; converged / near-miss lanes
  // park in kDone for assembly; any anomaly marks the lane for ejection.
  enum class LaneState { kRunning, kFinal, kDone };
  LaneState st[L];
  bool ejected[L] = {false, false, false, false};
  bool accepted[L] = {false, false, false, false};
  int iters[L] = {0, 0, 0, 0};
  for (int p = 0; p < L; ++p) {
    st[p] = lane[p]->config.max_iterations > 0 ? LaneState::kRunning
                                               : LaneState::kFinal;
  }

  auto any_open = [&] {
    for (int p = 0; p < L; ++p) {
      if (st[p] != LaneState::kDone) return true;
    }
    return false;
  };

  int t = 0;
  while (any_open()) {
    // kv = K v for all four lanes: lane4_matvec's rows are lane4_dot —
    // bitwise row_dot-per-lane of the active kernel set, the same row_dot
    // the solo path's MatVecInto applies (frozen lanes' results are simply
    // unused).
    ks.lane4_matvec(k4, v4, n1, n2, kv4);
    bool usable[L] = {true, true, true, true};
    for (int i = 0; i < n1; ++i) {
      for (int p = 0; p < L; ++p) {
        const double x = kv4[i * L + p];
        if (x <= kUnderflow || !std::isfinite(x)) usable[p] = false;
      }
    }
    // Row violations for all four lanes at once (the solo RowViolation
    // reduction in serial i order per lane). Pure, so computing it for
    // lanes that will not consume it changes nothing.
    double rv4[L];
    ks.lane4_violation(u4, kv4, n1, a, rv4);

    bool updating[L] = {false, false, false, false};
    for (int p = 0; p < L; ++p) {
      const double tol = lane[p]->config.tolerance;
      if (st[p] == LaneState::kFinal) {
        // Post-loop check: accept within the near-miss band, else eject
        // (the solo path would retry cold / fall back — ejection replays
        // exactly that).
        st[p] = LaneState::kDone;
        iters[p] = lane[p]->config.max_iterations;
        if (!usable[p]) {
          ejected[p] = true;
          continue;
        }
        const double fv = rv4[p];
        if (fv < tol || fv <= kNearMissFactor * tol) {
          accepted[p] = true;
        } else {
          ejected[p] = true;
        }
        continue;
      }
      if (st[p] != LaneState::kRunning) continue;
      if (!usable[p]) {  // degenerate scaling: solo retries cold
        st[p] = LaneState::kDone;
        ejected[p] = true;
        continue;
      }
      if (have_u[p]) {
        const double rv = rv4[p];
        if (rv < tol) {
          if (t > 0) {
            st[p] = LaneState::kDone;
            accepted[p] = true;
            iters[p] = t;
            continue;
          }
          // Zero-iteration warm accept must verify the column marginals
          // (see RunScaling): one per-lane K^T u pass with the CURRENT u,
          // in the solo path's serial order.
          std::fill(ktu_tmp, ktu_tmp + n2, 0.0);
          for (int i = 0; i < n1; ++i) {
            const double* krow = k4 + static_cast<size_t>(i) * n2 * L;
            const double ui = u4[i * L + p];
            // std::fma: the same correctly-rounded accumulate as
            // mat_tvec_accum / lane4_ktu in either kernel table.
            for (int j = 0; j < n2; ++j) {
              ktu_tmp[j] = std::fma(krow[j * L + p], ui, ktu_tmp[j]);
            }
          }
          bool col_usable = true;
          for (int j = 0; j < n2; ++j) {
            if (ktu_tmp[j] <= kUnderflow || !std::isfinite(ktu_tmp[j])) {
              col_usable = false;
              break;
            }
          }
          if (col_usable) {
            double cv = 0.0;
            for (int j = 0; j < n2; ++j) {
              cv += std::fabs(v4[j * L + p] * ktu_tmp[j] - b);
            }
            if (cv < tol) {
              st[p] = LaneState::kDone;
              accepted[p] = true;
              iters[p] = 0;
              continue;
            }
          }
          // Verification failed: fall through to the update, like solo.
        }
      }
      updating[p] = true;
    }

    bool any_updating = false;
    for (int p = 0; p < L; ++p) any_updating = any_updating || updating[p];
    if (any_updating) {
      // u = a ./ kv, masked per lane so frozen lanes keep their final
      // duals untouched (bit for bit).
      unsigned char upd_u[L];
      for (int p = 0; p < L; ++p) {
        upd_u[p] = updating[p] ? 1 : 0;
        if (updating[p]) have_u[p] = true;
      }
      ks.lane4_div_masked(a, kv4, upd_u, n1, u4);
      // ktu = K^T u, all lanes four-wide in the solo path's (i, j) order;
      // frozen lanes' columns are computed but never consumed.
      ks.lane4_ktu(k4, u4, n1, n2, ktu4);
      unsigned char upd_v[L] = {0, 0, 0, 0};
      for (int p = 0; p < L; ++p) {
        if (!updating[p]) continue;
        bool col_usable = true;
        for (int j = 0; j < n2; ++j) {
          const double x = ktu4[j * L + p];
          if (x <= kUnderflow || !std::isfinite(x)) {
            col_usable = false;
            break;
          }
        }
        if (!col_usable) {  // degenerate after the u update
          st[p] = LaneState::kDone;
          ejected[p] = true;
          continue;
        }
        upd_v[p] = 1;
        if (t + 1 >= lane[p]->config.max_iterations) {
          st[p] = LaneState::kFinal;
        }
      }
      ks.lane4_div_masked(b, ktu4, upd_v, n2, v4);
    }
    ++t;
  }

  // Plan assembly: the solo AssemblePlanCost's paired s0/s1 accumulators
  // per row (lane4_plan, all lanes at once — non-accepted lanes' output is
  // discarded) and the row-ordered serial total per accepted lane.
  double plan_cost[L] = {0.0, 0.0, 0.0, 0.0};
  bool any_accepted = false;
  for (int p = 0; p < L; ++p) any_accepted = any_accepted || accepted[p];
  if (any_accepted) {
    ks.lane4_plan(u4, k4, c4, v4, n1, n2, p4, rows4);
    for (int p = 0; p < L; ++p) {
      if (!accepted[p]) continue;
      double total = 0.0;
      for (int i = 0; i < n1; ++i) total += rows4[i * L + p];
      plan_cost[p] = total;
      if (!std::isfinite(total)) {  // solo would retry / fall back
        accepted[p] = false;
        ejected[p] = true;
      }
    }
  }

  // Scatter / eject the REAL lanes (pad lanes are dropped).
  for (int p = 0; p < lanes; ++p) {
    Request* req = group[p];
    if (!accepted[p]) {
      CERL_CHECK(ejected[p]);
      SolveSolo(req);
      continue;
    }
    SinkhornWorkspace& ws = *req->ws;
    // The solo path Reserves on entry; doing it here (the only workspace
    // write point) keeps the allocation accounting identical.
    ws.Reserve(n1, n2);
    for (int i = 0; i < n1; ++i) ws.u_[i] = u4[i * L + p];
    for (int j = 0; j < n2; ++j) ws.v_[j] = v4[j * L + p];
    for (int i = 0; i < n1; ++i) {
      const size_t base = static_cast<size_t>(i) * n2 * L;
      double* prow = ws.plan_.row(i);
      for (int j = 0; j < n2; ++j) prow[j] = p4[base + j * L + p];
    }
    // ws.kernel_ is NOT scattered: nothing reads it between solves (the
    // next solve rebuilds it before use), and the solo path treats it as
    // scratch too.
    ws.warm_rows_ = n1;
    ws.warm_cols_ = n2;
    SinkhornSolveInfo info;
    info.cost = plan_cost[p];
    info.iterations = iters[p];
    info.warm_started = warm[p];
    info.used_log_domain = false;
    req->result = info;
  }
}

std::vector<MicroSolveBatcher::Request*> MicroSolveBatcher::TakeBatchLocked() {
  std::vector<Request*> batch;
  Request* front = queue_.front();
  queue_.pop_front();
  batch.push_back(front);
  const int n1 = front->cost->rows();
  const int n2 = front->cost->cols();
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < static_cast<size_t>(L);) {
    if ((*it)->cost->rows() == n1 && (*it)->cost->cols() == n2) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void MicroSolveBatcher::ProcessBatch(const std::vector<Request*>& batch) {
  // A lone request gains nothing from the stacks; shapes big enough to
  // overflow the int passed to vec_exp cannot be stacked (they are not
  // micro problems in any configuration worth fusing).
  const int64_t stack_elems = static_cast<int64_t>(batch[0]->cost->rows()) *
                              batch[0]->cost->cols() * L;
  if (batch.size() < 2 || stack_elems > std::numeric_limits<int>::max()) {
    for (Request* req : batch) SolveSolo(req);
    return;
  }
  SolveGroup(batch, stacks_.get());
}

Result<SinkhornSolveInfo> MicroSolveBatcher::Submit(
    const linalg::Matrix& cost, const SinkhornConfig& config,
    SinkhornWorkspace* workspace) {
  Request req;
  req.cost = &cost;
  req.config = config;
  req.ws = workspace;

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&req);
  while (!req.done) {
    if (leader_active_) {
      // A leader is combining; it will either fill our result or hand off
      // leadership when it returns with the queue non-empty.
      cv_.wait(lock, [&] { return req.done || !leader_active_; });
      continue;
    }
    leader_active_ = true;
    while (!req.done && !queue_.empty()) {
      std::vector<Request*> batch = TakeBatchLocked();
      lock.unlock();
      ProcessBatch(batch);
      lock.lock();
      for (Request* r : batch) r->done = true;
      cv_.notify_all();
    }
    leader_active_ = false;
    cv_.notify_all();
  }
  return req.result;
}

std::vector<Result<SinkhornSolveInfo>> SolveSinkhornMicroBatch(
    const std::vector<const linalg::Matrix*>& costs,
    const std::vector<SinkhornConfig>& configs,
    const std::vector<SinkhornWorkspace*>& workspaces) {
  const size_t n = costs.size();
  CERL_CHECK_EQ(configs.size(), n);
  CERL_CHECK_EQ(workspaces.size(), n);
  std::vector<MicroSolveBatcher::Request> reqs(n);
  for (size_t i = 0; i < n; ++i) {
    reqs[i].cost = costs[i];
    reqs[i].config = configs[i];
    reqs[i].ws = workspaces[i];
  }
  MicroSolveBatcher::LaneStacks stacks;
  std::vector<bool> grouped(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (grouped[i]) continue;
    std::vector<MicroSolveBatcher::Request*> group = {&reqs[i]};
    grouped[i] = true;
    const int n1 = costs[i]->rows();
    const int n2 = costs[i]->cols();
    for (size_t k = i + 1;
         k < n && group.size() < static_cast<size_t>(L); ++k) {
      if (!grouped[k] && costs[k]->rows() == n1 && costs[k]->cols() == n2) {
        group.push_back(&reqs[k]);
        grouped[k] = true;
      }
    }
    const int64_t stack_elems = static_cast<int64_t>(n1) * n2 * L;
    if (group.size() < 2 || stack_elems > std::numeric_limits<int>::max()) {
      for (MicroSolveBatcher::Request* req : group) {
        MicroSolveBatcher::SolveSolo(req);
      }
    } else {
      MicroSolveBatcher::SolveGroup(group, &stacks);
    }
  }
  std::vector<Result<SinkhornSolveInfo>> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) results.push_back(std::move(reqs[i].result));
  return results;
}

}  // namespace cerl::ot
