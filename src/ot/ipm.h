// Differentiable integral probability metric (IPM) penalties between the
// representation distributions of treatment and control groups (Eq. 3).
// Two estimators:
//  - Wasserstein via Sinkhorn: transport plan solved on detached values,
//    gradient flows through the pairwise-cost matrix (CFR's estimator);
//  - linear MMD: squared distance between group means (cheaper alternative
//    also used by CFR; exposed for ablation).
#pragma once

#include "autodiff/tape.h"
#include "ot/sinkhorn.h"

namespace cerl::ot {

/// Which IPM estimator to use for representation balancing.
enum class IpmKind { kWasserstein, kLinearMmd };

/// Differentiable pairwise squared-distance matrix between rows of a and b.
autodiff::Var PairwiseSquaredDistancesVar(autodiff::Var a, autodiff::Var b);

/// Wasserstein IPM penalty: <plan*, C(a, b)> with plan* from Sinkhorn on the
/// detached cost. Scalar Var. Either side empty => constant 0.
///
/// With a workspace (the training hot path) the solve runs in the
/// workspace's arena — warm-started duals, parallel kernels, zero
/// steady-state allocations — and the plan enters the tape as a constant
/// VIEW of the workspace's plan buffer instead of a fresh Matrix copy. The
/// workspace must therefore outlive the tape pass and must not be re-solved
/// until Backward has run (one workspace per loss builder, owned next to
/// the persistent tapes, satisfies this by construction).
autodiff::Var WassersteinPenalty(autodiff::Var rep_treated,
                                 autodiff::Var rep_control,
                                 const SinkhornConfig& config,
                                 SinkhornWorkspace* workspace = nullptr);

/// Linear MMD penalty: || mean(rep_treated) - mean(rep_control) ||^2.
autodiff::Var LinearMmdPenalty(autodiff::Var rep_treated,
                               autodiff::Var rep_control);

/// Dispatches on `kind`. The workspace (optional) is used by the
/// Wasserstein estimator only; see WassersteinPenalty for the lifetime
/// contract.
autodiff::Var IpmPenalty(IpmKind kind, autodiff::Var rep_treated,
                         autodiff::Var rep_control,
                         const SinkhornConfig& config,
                         SinkhornWorkspace* workspace = nullptr);

}  // namespace cerl::ot
