// Differentiable integral probability metric (IPM) penalties between the
// representation distributions of treatment and control groups (Eq. 3).
// Two estimators:
//  - Wasserstein via Sinkhorn: transport plan solved on detached values,
//    gradient flows through the pairwise-cost matrix (CFR's estimator);
//  - linear MMD: squared distance between group means (cheaper alternative
//    also used by CFR; exposed for ablation).
#pragma once

#include "autodiff/tape.h"
#include "ot/sinkhorn.h"

namespace cerl::ot {

/// Which IPM estimator to use for representation balancing.
enum class IpmKind { kWasserstein, kLinearMmd };

/// Differentiable pairwise squared-distance matrix between rows of a and b.
autodiff::Var PairwiseSquaredDistancesVar(autodiff::Var a, autodiff::Var b);

/// Wasserstein IPM penalty: <plan*, C(a, b)> with plan* from Sinkhorn on the
/// detached cost. Scalar Var. Either side empty => constant 0.
autodiff::Var WassersteinPenalty(autodiff::Var rep_treated,
                                 autodiff::Var rep_control,
                                 const SinkhornConfig& config);

/// Linear MMD penalty: || mean(rep_treated) - mean(rep_control) ||^2.
autodiff::Var LinearMmdPenalty(autodiff::Var rep_treated,
                               autodiff::Var rep_control);

/// Dispatches on `kind`.
autodiff::Var IpmPenalty(IpmKind kind, autodiff::Var rep_treated,
                         autodiff::Var rep_control,
                         const SinkhornConfig& config);

}  // namespace cerl::ot
