#include "ot/ipm.h"

#include <vector>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "linalg/gemm.h"
#include "linalg/simd.h"
#include "util/check.h"
#include "util/status.h"

namespace cerl::ot {

using autodiff::Tape;
using autodiff::Var;
using linalg::Matrix;
using linalg::Trans;

namespace {

// Backward of the fused pairwise-squared-distance node. With
// c(i, j) = |a_i|^2 + |b_j|^2 - 2 a_i . b_j, the closed forms are
//   dA = 2 diag(rowsum dC) A - 2 dC B
//   dB = 2 diag(colsum dC) B - 2 dC^T A
// accumulated in place (Gemm beta = 1 plus vec_axpy per row), so no
// temporary Matrix is materialized — matching the convention of the
// primitive backward kernels in autodiff/ops.cc.
void PairwiseSqDistBackward(Tape* t, int self, const Tape::BackwardCtx& ctx) {
  const Matrix& g = t->GradRef(self);
  const Matrix& av = t->ValueOf(ctx.a);
  const Matrix& bv = t->ValueOf(ctx.b);
  const int n1 = g.rows();
  const int n2 = g.cols();
  const int d = av.cols();
  const auto& ks = linalg::simd::Kernels();
  if (t->RequiresGrad(ctx.a)) {
    Matrix& ga = t->GradRef(ctx.a);
    linalg::Gemm(Trans::kNo, Trans::kNo, -2.0, g, bv, 1.0, &ga);
    for (int i = 0; i < n1; ++i) {
      const double* grow = g.row(i);
      double rs = 0.0;
      for (int j = 0; j < n2; ++j) rs += grow[j];
      ks.vec_axpy(2.0 * rs, av.row(i), ga.row(i), d);
    }
  }
  if (t->RequiresGrad(ctx.b)) {
    Matrix& gb = t->GradRef(ctx.b);
    linalg::Gemm(Trans::kYes, Trans::kNo, -2.0, g, av, 1.0, &gb);
    // Column sums of dC land in a retained scratch vector (same
    // thread-local reuse pattern as the Gemm pack panels).
    static thread_local std::vector<double> colsum;
    colsum.assign(n2, 0.0);
    for (int i = 0; i < n1; ++i) ks.vec_accum(g.row(i), colsum.data(), n2);
    for (int j = 0; j < n2; ++j) {
      ks.vec_axpy(2.0 * colsum[j], bv.row(j), gb.row(j), d);
    }
  }
}

}  // namespace

Var PairwiseSquaredDistancesVar(Var a, Var b) {
  CERL_CHECK(a.valid() && b.valid());
  CERL_CHECK(a.tape() == b.tape());
  CERL_CHECK_EQ(a.cols(), b.cols());
  Tape* tape = a.tape();
  const int n1 = a.rows();
  const int n2 = b.rows();
  const int d = a.cols();
  // One fused node instead of the nine-node primitive graph
  // (Square/RowSum on each side, two rank-1 GEMMs, Transpose, Add, Sub,
  // ScalarMul): the per-step cost matrices are ~44x44, so the node count
  // and the degenerate k=1 GEMMs cost more than the arithmetic.
  Tape::BackwardCtx ctx;
  ctx.a = a.id();
  ctx.b = b.id();
  Matrix* out = nullptr;
  Var v = tape->NewNode(n1, n2, &PairwiseSqDistBackward, ctx, &out);
  // NewNode may grow the arena, so operand values are re-fetched after it.
  const Matrix& av = tape->ValueOf(ctx.a);
  const Matrix& bv = tape->ValueOf(ctx.b);
  // C = -2 A B^T, then c(i, j) += |a_i|^2 + |b_j|^2 row by row.
  linalg::Gemm(Trans::kNo, Trans::kYes, -2.0, av, bv, 0.0, out);
  static thread_local std::vector<double> row_norms;
  row_norms.resize(n2);
  for (int j = 0; j < n2; ++j) {
    const double* brow = bv.row(j);
    double s = 0.0;
    for (int c = 0; c < d; ++c) s += brow[c] * brow[c];
    row_norms[j] = s;
  }
  const double* rb = row_norms.data();
  for (int i = 0; i < n1; ++i) {
    const double* arow = av.row(i);
    double ra = 0.0;
    for (int c = 0; c < d; ++c) ra += arow[c] * arow[c];
    double* crow = out->row(i);
    for (int j = 0; j < n2; ++j) crow[j] += ra + rb[j];
  }
  return v;
}

Var WassersteinPenalty(Var rep_treated, Var rep_control,
                       const SinkhornConfig& config,
                       SinkhornWorkspace* workspace) {
  autodiff::Tape* tape = rep_treated.tape();
  if (rep_treated.rows() == 0 || rep_control.rows() == 0) {
    return tape->Constant(linalg::Matrix(1, 1, 0.0));
  }
  Var cost = PairwiseSquaredDistancesVar(rep_treated, rep_control);
  // The plan is treated as a constant of the optimization (envelope
  // theorem / CFR practice): solve on detached values.
  if (workspace != nullptr) {
    auto solved = SolveSinkhorn(cost.value(), config, workspace);
    // Solver failure is data-dependent (degenerate batch, injected
    // divergence), not a programming error: surface it as a typed exception
    // so the stage pipeline can roll the stream back instead of aborting
    // the process.
    if (!solved.ok()) throw StatusError(solved.status());
    // The plan stays in the workspace until the next solve, so the tape
    // aliases it instead of copying (see the header's lifetime contract).
    Var plan = tape->ConstantView(&workspace->plan());
    return autodiff::Sum(autodiff::Mul(plan, cost));
  }
  auto solved = SolveSinkhorn(cost.value(), config);
  if (!solved.ok()) throw StatusError(solved.status());
  Var plan = tape->Constant(std::move(solved.value().plan));
  return autodiff::Sum(autodiff::Mul(plan, cost));
}

Var LinearMmdPenalty(Var rep_treated, Var rep_control) {
  using namespace autodiff;  // NOLINT
  Tape* tape = rep_treated.tape();
  if (rep_treated.rows() == 0 || rep_control.rows() == 0) {
    return tape->Constant(linalg::Matrix(1, 1, 0.0));
  }
  Var mean_t =
      ScalarMul(ColSum(rep_treated), 1.0 / rep_treated.rows());
  Var mean_c =
      ScalarMul(ColSum(rep_control), 1.0 / rep_control.rows());
  return Sum(Square(Sub(mean_t, mean_c)));
}

Var IpmPenalty(IpmKind kind, Var rep_treated, Var rep_control,
               const SinkhornConfig& config, SinkhornWorkspace* workspace) {
  switch (kind) {
    case IpmKind::kWasserstein:
      return WassersteinPenalty(rep_treated, rep_control, config, workspace);
    case IpmKind::kLinearMmd:
      return LinearMmdPenalty(rep_treated, rep_control);
  }
  CERL_CHECK(false);
  return Var();
}

}  // namespace cerl::ot
