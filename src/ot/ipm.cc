#include "ot/ipm.h"

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "util/check.h"

namespace cerl::ot {

using autodiff::Var;

Var PairwiseSquaredDistancesVar(Var a, Var b) {
  using namespace autodiff;  // NOLINT
  Tape* tape = a.tape();
  const int n1 = a.rows();
  const int n2 = b.rows();
  // C = ra 1^T + 1 rb^T - 2 A B^T, with ra/rb the row squared norms.
  Var ra = RowSum(Square(a));                  // n1 x 1
  Var rb = RowSum(Square(b));                  // n2 x 1
  Var ones_row = tape->Constant(linalg::Matrix(1, n2, 1.0));
  Var ones_col = tape->Constant(linalg::Matrix(n1, 1, 1.0));
  Var c = Add(MatMul(ra, ones_row), MatMul(ones_col, Transpose(rb)));
  return Sub(c, ScalarMul(MatMulBt(a, b), 2.0));
}

Var WassersteinPenalty(Var rep_treated, Var rep_control,
                       const SinkhornConfig& config,
                       SinkhornWorkspace* workspace) {
  autodiff::Tape* tape = rep_treated.tape();
  if (rep_treated.rows() == 0 || rep_control.rows() == 0) {
    return tape->Constant(linalg::Matrix(1, 1, 0.0));
  }
  Var cost = PairwiseSquaredDistancesVar(rep_treated, rep_control);
  // The plan is treated as a constant of the optimization (envelope
  // theorem / CFR practice): solve on detached values.
  if (workspace != nullptr) {
    auto solved = SolveSinkhorn(cost.value(), config, workspace);
    CERL_CHECK_MSG(solved.ok(), solved.status().ToString().c_str());
    // The plan stays in the workspace until the next solve, so the tape
    // aliases it instead of copying (see the header's lifetime contract).
    Var plan = tape->ConstantView(&workspace->plan());
    return autodiff::Sum(autodiff::Mul(plan, cost));
  }
  auto solved = SolveSinkhorn(cost.value(), config);
  CERL_CHECK_MSG(solved.ok(), solved.status().ToString().c_str());
  Var plan = tape->Constant(std::move(solved.value().plan));
  return autodiff::Sum(autodiff::Mul(plan, cost));
}

Var LinearMmdPenalty(Var rep_treated, Var rep_control) {
  using namespace autodiff;  // NOLINT
  Tape* tape = rep_treated.tape();
  if (rep_treated.rows() == 0 || rep_control.rows() == 0) {
    return tape->Constant(linalg::Matrix(1, 1, 0.0));
  }
  Var mean_t =
      ScalarMul(ColSum(rep_treated), 1.0 / rep_treated.rows());
  Var mean_c =
      ScalarMul(ColSum(rep_control), 1.0 / rep_control.rows());
  return Sum(Square(Sub(mean_t, mean_c)));
}

Var IpmPenalty(IpmKind kind, Var rep_treated, Var rep_control,
               const SinkhornConfig& config, SinkhornWorkspace* workspace) {
  switch (kind) {
    case IpmKind::kWasserstein:
      return WassersteinPenalty(rep_treated, rep_control, config, workspace);
    case IpmKind::kLinearMmd:
      return LinearMmdPenalty(rep_treated, rep_control);
  }
  CERL_CHECK(false);
  return Var();
}

}  // namespace cerl::ot
