// Entropic-regularized optimal transport between two empirical distributions
// with uniform marginals (Cuturi 2013). Produces the transport plan used by
// the Wasserstein IPM penalty (Eq. 3): the plan is computed on detached
// values and gradients flow through the cost matrix only — the estimator
// CFR (Shalit et al. 2017) uses.
//
// Two solver entry points share the same math:
//  - SolveSinkhorn(cost, config): the original allocate-per-call scalar
//    solver, kept as the reference implementation (and the owner of the
//    log-domain fallback for small regularization);
//  - SolveSinkhorn(cost, config, workspace): the training hot path. All
//    kernel/plan/dual/scratch buffers live in a caller-owned
//    SinkhornWorkspace (the same arena pattern autodiff::Tape uses), so
//    steady-state solves allocate nothing, the duals are warm-started from
//    the previous solve of the same shape, and the K·v / Kᵀ·u products and
//    Gibbs-kernel exp are blocked and split across the global thread pool
//    with a deterministic reduction order.
#pragma once

#include <cstdint>

#include "linalg/matrix.h"
#include "util/status.h"

namespace cerl::ot {

class MicroSolveBatcher;

/// Sinkhorn solver settings.
struct SinkhornConfig {
  /// Entropic regularization as a fraction of the mean cost (scale free).
  double reg_fraction = 0.1;
  int max_iterations = 200;
  double tolerance = 1e-6;  ///< stop when marginal violation is below this
  /// Workspace solves only: start the duals from the previous solve when the
  /// problem shape matches. Representations drift slowly between SGD steps,
  /// so warm starts typically converge in a handful of iterations (often
  /// zero — the retained duals may already satisfy the tolerance).
  bool warm_start = true;
  /// Workspace solves only (and only with warm_start): when the retained
  /// duals were computed for a DIFFERENT shape, adapt them to the new shape
  /// (truncate, pad new entries with the cold value 1.0) instead of
  /// discarding them. Minibatch treated/control splits vary from step to
  /// step, so exact-shape warm starts rarely fire on heterogeneous streams;
  /// the dual profile is still a far better starting point than a cold
  /// start because u is fully recomputed from v (and v from u) in the first
  /// scaling update — only the profile carries information, not the scale.
  /// The adapted start is deterministic and shared verbatim by the solo and
  /// fused (batched) paths, so it never breaks their bit-identity; a
  /// degenerate adapted start costs one retry, exactly like a degenerate
  /// exact-shape warm start.
  bool adaptive_warm_start = true;
  /// Workspace solves only: split the kernel build, K·v / Kᵀ·u products and
  /// plan assembly across the global thread pool. Each output element is
  /// reduced in a fixed order regardless of the split, so results are
  /// bit-identical to `parallel = false` (asserted by tests).
  bool parallel = true;
  /// Workspace solves only: problems with fewer than this many cost entries
  /// (n1 * n2) run serially on the calling thread even when `parallel` is
  /// true. Splitting a tiny kernel across the whole pool costs more in
  /// submit/wake latency than it saves — and under the stream engine many
  /// small per-stream solves run concurrently, one per stream worker, where
  /// pool fan-out from every solve would just thrash the queue (ROADMAP
  /// "Sinkhorn on the pool for multi-domain ingest"). Parallel and serial
  /// kernels are bit-identical, so the threshold never changes results.
  int64_t min_parallel_elements = 4096;
  /// Workspace solves only: when set, solves below min_parallel_elements are
  /// routed through this cross-stream batcher (fused_micro_solver.h), which
  /// stacks concurrent small solves from different threads into one
  /// SIMD-lane-parallel sweep. Per problem the result is bit-identical to
  /// the solo path, so this is a pure scheduling choice. Not owned, not
  /// serialized (checkpoints write the durable fields individually); the
  /// pointer must outlive every solve that sees this config. nullptr =
  /// always solo.
  MicroSolveBatcher* batcher = nullptr;
};

/// Solution: the transport plan and the resulting OT cost <plan, cost>.
struct SinkhornResult {
  linalg::Matrix plan;  ///< n1 x n2, rows sum to 1/n1, cols to 1/n2
  double cost = 0.0;
  int iterations = 0;
};

/// Outcome of a workspace solve. The plan itself stays in the workspace
/// (SinkhornWorkspace::plan()) so the steady state copies nothing.
struct SinkhornSolveInfo {
  double cost = 0.0;      ///< <plan, cost>
  int iterations = 0;     ///< dual updates performed (0: warm start already
                          ///< satisfied the tolerance)
  bool warm_started = false;    ///< duals were seeded from the previous solve
  bool used_log_domain = false; ///< scaling degenerated; log-domain fallback
};

class SinkhornWorkspace;

/// Workspace overload: solves into the workspace's buffers. Steady-state
/// solves with non-growing shapes perform zero heap allocations (asserted
/// via SinkhornWorkspace::allocations()). Warm-starts the duals from the
/// previous solve when config.warm_start and the shape matches; falls back
/// to a cold start (and ultimately the log-domain solver) on numerical
/// degeneration.
Result<SinkhornSolveInfo> SolveSinkhorn(const linalg::Matrix& cost,
                                        const SinkhornConfig& config,
                                        SinkhornWorkspace* workspace);

/// Reusable arena for SolveSinkhorn: the Gibbs kernel, the transport plan,
/// the scaling duals u/v and the iteration scratch. Buffers grow to the
/// high-water shape and are then reused; the retained duals double as the
/// warm start for the next solve of the same shape. Not thread-safe: one
/// workspace per concurrent solver (the trainers own one next to their
/// persistent tapes).
class SinkhornWorkspace {
 public:
  SinkhornWorkspace() = default;
  SinkhornWorkspace(const SinkhornWorkspace&) = delete;
  SinkhornWorkspace& operator=(const SinkhornWorkspace&) = delete;

  /// Transport plan of the last successful solve (n1 x n2). Stable storage:
  /// overwritten only by the next solve, so tape constants may alias it for
  /// the duration of a training step.
  const linalg::Matrix& plan() const { return plan_; }

  /// Buffer (re)allocations performed since construction. Flat across
  /// steady-state solves of non-growing shapes; tests assert this the same
  /// way Tape::arena_allocations() proves the tape arena is zero-churn.
  int64_t allocations() const { return allocations_; }

  /// Drops the retained duals so the next solve starts cold (used after the
  /// problem changes discontinuously, e.g. a new stage's representations).
  void DropWarmStart() { warm_rows_ = warm_cols_ = -1; }

  /// True if a solve of this shape would warm-start from retained duals.
  bool has_warm_start(int rows, int cols) const {
    return warm_rows_ == rows && warm_cols_ == cols;
  }

  /// Reshapes retained duals from a previous solve of a different shape so a
  /// `rows x cols` solve warm-starts from them (see
  /// SinkhornConfig::adaptive_warm_start): existing entries keep their
  /// values, entries beyond the old shape start at the cold value 1.0. No-op
  /// without retained duals or when the shape already matches. Returns true
  /// if the duals were reshaped.
  bool AdaptWarmStart(int rows, int cols);

 private:
  friend Result<SinkhornSolveInfo> SolveSinkhorn(const linalg::Matrix&,
                                                 const SinkhornConfig&,
                                                 SinkhornWorkspace*);
  // The fused micro-solver scatters accepted lanes (duals, plan, warm
  // marker) into the workspace exactly as a solo solve would.
  friend class MicroSolveBatcher;

  /// Sizes every buffer for an n1 x n2 problem, counting the buffers that
  /// actually had to grow beyond their high-water capacity.
  void Reserve(int n1, int n2);

  linalg::Matrix kernel_;  ///< exp(-C / reg)
  linalg::Matrix plan_;    ///< diag(u) K diag(v)
  linalg::Vector u_, v_;   ///< scaling duals (retained => warm start)
  linalg::Vector kv_, ktu_, row_scratch_;
  int warm_rows_ = -1, warm_cols_ = -1;
  int64_t allocations_ = 0;
  int64_t mat_high_water_ = 0;
  int row_high_water_ = 0, col_high_water_ = 0;
};

/// Solves OT with uniform marginals for the given cost matrix (entries >= 0,
/// at least one row and column). Log-domain stabilized. Reference
/// implementation: allocates its outputs per call and always starts cold.
Result<SinkhornResult> SolveSinkhorn(const linalg::Matrix& cost,
                                     const SinkhornConfig& config);

/// Convenience: squared-Euclidean Sinkhorn distance between point sets
/// (rows of a and b).
Result<double> SinkhornDistance(const linalg::Matrix& a,
                                const linalg::Matrix& b,
                                const SinkhornConfig& config);

}  // namespace cerl::ot
