// Entropic-regularized optimal transport between two empirical distributions
// with uniform marginals (Cuturi 2013). Produces the transport plan used by
// the Wasserstein IPM penalty (Eq. 3): the plan is computed on detached
// values and gradients flow through the cost matrix only — the estimator
// CFR (Shalit et al. 2017) uses.
#pragma once

#include "linalg/matrix.h"
#include "util/status.h"

namespace cerl::ot {

/// Sinkhorn solver settings.
struct SinkhornConfig {
  /// Entropic regularization as a fraction of the mean cost (scale free).
  double reg_fraction = 0.1;
  int max_iterations = 200;
  double tolerance = 1e-6;  ///< stop when marginal violation is below this
};

/// Solution: the transport plan and the resulting OT cost <plan, cost>.
struct SinkhornResult {
  linalg::Matrix plan;  ///< n1 x n2, rows sum to 1/n1, cols to 1/n2
  double cost = 0.0;
  int iterations = 0;
};

/// Solves OT with uniform marginals for the given cost matrix (entries >= 0,
/// at least one row and column). Log-domain stabilized.
Result<SinkhornResult> SolveSinkhorn(const linalg::Matrix& cost,
                                     const SinkhornConfig& config);

/// Convenience: squared-Euclidean Sinkhorn distance between point sets
/// (rows of a and b).
Result<double> SinkhornDistance(const linalg::Matrix& a,
                                const linalg::Matrix& b,
                                const SinkhornConfig& config);

}  // namespace cerl::ot
