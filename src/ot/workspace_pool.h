// Shape-keyed pool of SinkhornWorkspaces (ROADMAP "per-shape workspace
// keying").
//
// A single SinkhornWorkspace warm-starts only when consecutive solves share
// a shape; the treated/control split of a minibatch varies batch to batch,
// so on heterogeneous splits the warm start rarely fires. The pool keys a
// small LRU set of workspaces by (n_treated, n_control): each split size
// finds the workspace — and the retained duals — of the last batch with the
// same split, so warm starts fire across interleaved shapes.
//
// Same threading contract as the workspace itself: one pool per loss
// builder, owned next to the persistent tapes. Not thread-safe.
#pragma once

#include <cstdint>

#include "ot/sinkhorn.h"
#include "util/keyed_pool.h"

namespace cerl::ot {

class SinkhornWorkspacePool {
 public:
  /// `capacity` bounds the number of retained workspaces (LRU eviction).
  explicit SinkhornWorkspacePool(int capacity = kDefaultCapacity);

  /// Workspace keyed by the (n1, n2) problem shape. The pointer follows the
  /// workspace lifetime contract of SolveSinkhorn: stable until this shape
  /// is evicted, which cannot happen before `capacity - 1` other shapes are
  /// acquired — in particular never within the same training step.
  SinkhornWorkspace* Acquire(int n1, int n2);

  /// Acquires where the returned workspace already held warm duals for the
  /// requested shape (i.e. the next solve will warm-start). On a
  /// heterogeneous-split stream this is the pool's reason to exist; tests
  /// assert it stays > 0 where a single workspace would sit at 0.
  int64_t warm_acquires() const { return warm_acquires_; }
  int64_t acquires() const { return acquires_; }
  double warm_hit_rate() const {
    return acquires_ == 0
               ? 0.0
               : static_cast<double>(warm_acquires_) / acquires_;
  }

  int size() const { return pool_.size(); }
  int64_t evictions() const { return pool_.evictions(); }

  static constexpr int kDefaultCapacity = 8;

 private:
  KeyedLruPool<SinkhornWorkspace> pool_;
  int64_t warm_acquires_ = 0;
  int64_t acquires_ = 0;
};

}  // namespace cerl::ot
