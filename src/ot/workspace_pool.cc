#include "ot/workspace_pool.h"

#include <memory>

#include "util/check.h"

namespace cerl::ot {

SinkhornWorkspacePool::SinkhornWorkspacePool(int capacity)
    : pool_(capacity) {}

SinkhornWorkspace* SinkhornWorkspacePool::Acquire(int n1, int n2) {
  CERL_CHECK(n1 > 0);
  CERL_CHECK(n2 > 0);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(n1)) << 32) |
      static_cast<uint32_t>(n2);
  SinkhornWorkspace* ws =
      pool_.Acquire(key, [] { return std::make_unique<SinkhornWorkspace>(); });
  ++acquires_;
  if (ws->has_warm_start(n1, n2)) ++warm_acquires_;
  return ws;
}

}  // namespace cerl::ot
