// Runtime-dispatched SIMD kernel layer for the per-element hot paths:
// the batch exponential (VecExp), the GEMM register-blocked microkernels,
// the MatVecInto row reduction, the Adam parameter update, and the
// interleaved group-of-4 dot used by the fused Sinkhorn micro-solver.
//
// Dispatch model: one function-pointer table (KernelSet) resolved once per
// process — CERL_FORCE_SCALAR=<non-zero> in the environment forces the
// scalar table, otherwise CPUID picks the AVX2/FMA table when both the
// build and the CPU support it, with the scalar table as the fallback.
// Resolution is a pure function of the environment and the CPU, so a given
// build is deterministic run-to-run (and a given kernel set is
// deterministic across thread-pool splits: every kernel reduces in a fixed
// order).
//
// Numerics contract, kernel by kernel:
//  - vec_exp is POSITION-UNIFORM: element i's result depends only on in[i],
//    never on i, n, or alignment (the AVX2 tail is masked full-width
//    arithmetic, not a scalar epilogue). Callers may therefore batch many
//    small arrays into one call and get bitwise-identical results — the
//    fused micro-solver's stacked kernel build relies on this.
//  - row_dot fixes the 4-accumulator reduction order
//    (s0+s1)+(s2+s3) with the tail folded into s0. The AVX2 version keeps
//    that order and fuses each multiply-add (FMA), so scalar and AVX2
//    differ by the usual FMA rounding (~1 ulp per term); within one kernel
//    set the result is exact and split-independent.
//  - lane4_dot replays row_dot's accumulation order lane-by-lane on
//    4-interleaved data (element j of lane p at data[4*j + p]): lane p of
//    the output is bitwise what row_dot of the SAME kernel set returns for
//    lane p's deinterleaved data. This is the keystone of the fused
//    micro-solver's solo-bitwise guarantee.
//  - gemm_row2 / gemm_row1 and adam_update are elementwise/independent per
//    output and keep the scalar expression shape; the AVX2 versions use
//    FMA, so they track the scalar results to a few ulp per accumulation
//    (tests document the tolerance).
#pragma once

#include <cstdint>

namespace cerl::linalg::simd {

/// Derivative selector for KernelSet::ew_backward. The formula column (x =
/// forward input, y = forward output) is the contract: both kernel tables
/// implement these expressions with plain individually-rounded IEEE ops, and
/// autodiff/ops.cc's forward definitions must stay consistent with them.
enum class EwGrad : int {
  kReciprocal = 0,  ///< -y * y
  kRelu,            ///< x > 0 ? 1 : 0
  kElu,             ///< x > 0 ? 1 : y + 1
  kTanh,            ///< 1 - y * y
  kSigmoid,         ///< y * (1 - y)
  kExp,             ///< y
  kLog,             ///< 1 / x
  kSqrt,            ///< y > 0 ? 0.5 / y : 0
  kSquare,          ///< 2 * x
  kAbs,             ///< x > 0 ? 1 : (x < 0 ? -1 : 0)
};

/// Forward selector for KernelSet::ew_forward — only the activations whose
/// forward is plain arithmetic or an IEEE-exact instruction (sqrt is
/// correctly rounded), so vectorizing cannot change a single bit.
/// Transcendental forwards (elu/tanh/sigmoid/exp/log) stay on the scalar
/// libm path in autodiff.
enum class EwFwd : int {
  kReciprocal = 0,  ///< 1 / x
  kRelu,            ///< x > 0 ? x : 0
  kSqrt,            ///< sqrt(x)
  kSquare,          ///< x * x
  kAbs,             ///< fabs(x)
};

struct KernelSet {
  const char* name;  ///< "scalar" or "avx2" (diagnostics / bench labels)

  /// out[i] = exp(in[i]) for i in [0, n); in == out aliasing is allowed.
  /// Clamped to [-708, 708]; position-uniform (see file comment).
  void (*vec_exp)(const double* in, double* out, int n);

  /// Dot product of row and x with the fixed 4-accumulator order: s0..s3
  /// over c += 4, remainder into s0, combined as (s0+s1)+(s2+s3).
  double (*row_dot)(const double* row, const double* x, int n);

  /// GEMM microkernel, two C rows: crow{0,1}[0..nw) += alpha * arow{0,1} ·
  /// bpanel with k unrolled by 4 (bpanel is kw x nw row-major).
  void (*gemm_row2)(double alpha, const double* arow0, const double* arow1,
                    const double* bpanel, int kw, int nw, double* crow0,
                    double* crow1);

  /// GEMM microkernel, single C row (the m-remainder).
  void (*gemm_row1)(double alpha, const double* arow, const double* bpanel,
                    int kw, int nw, double* crow);

  /// One Adam update over n contiguous elements (bias-corrected step with
  /// optional decoupled weight decay). Elementwise, so any range split
  /// produces identical results.
  void (*adam_update)(double* value, const double* grad, double* m, double* v,
                      int64_t n, double beta1, double beta2, double inv_bc1,
                      double inv_bc2, double eps, double lr,
                      double weight_decay);

  /// Four interleaved dot products: out[p] = dot(k4 lane p, v4 lane p) for
  /// n-element lanes stored as k4[4*j + p]. Lane p's result is bitwise
  /// row_dot(lane p) of the same kernel set.
  void (*lane4_dot)(const double* k4, const double* v4, int n,
                    double* out /*[4]*/);

  // --- whole-sweep lane kernels for the fused Sinkhorn micro-solver ------
  //
  // Each runs one full solver sweep over a 4-lane interleaved stack
  // (element (i, j) of lane p at [(i * n2 + j) * 4 + p]). Apart from
  // lane4_matvec (whose rows are lane4_dot, FMA in the AVX2 table), these
  // are PLAIN mul/add/div/fabs in the solo solver's exact per-lane
  // evaluation order — individually rounded IEEE ops — so their results are
  // bitwise identical in BOTH tables; the AVX2 versions only widen the
  // independent lane dimension.

  /// kv4[i*4 + p] = lane4_dot of kernel row i and v4, for i in [0, n1).
  void (*lane4_matvec)(const double* k4, const double* v4, int n1, int n2,
                       double* kv4);

  /// ktu4 = K^T u per lane: zero-fills ktu4 then accumulates
  /// ktu4[j*4+p] = fma(k4[(i*n2+j)*4+p], u4[i*4+p], ktu4[j*4+p]) with i
  /// ascending (the solo KernelTransposeTimesVec / mat_tvec_accum order;
  /// fma is correctly rounded, so both tables agree bitwise).
  void (*lane4_ktu)(const double* k4, const double* u4, int n1, int n2,
                    double* ktu4);

  /// out4[i*4+p] = a / x4[i*4+p] for lanes with mask[p] != 0; other lanes
  /// keep their previous out4 values bit-exactly (the fused solver's frozen
  /// lanes). Plain IEEE division.
  void (*lane4_div_masked)(double a, const double* x4,
                           const unsigned char* mask /*[4]*/, int n,
                           double* out4);

  /// out[p] = sum_i fabs(u4[i*4+p] * x4[i*4+p] - a), i ascending — the solo
  /// Row/ColViolation reduction per lane.
  void (*lane4_violation)(const double* u4, const double* x4, int n, double a,
                          double* out /*[4]*/);

  /// Plan assembly per lane, replaying the solo AssemblePlanCost: for each
  /// row i, p4 = u_i * k4 * v4 elementwise (left-associated double
  /// multiply), with the paired s0/s1 cost accumulators over even/odd j and
  /// rows4[i*4+p] = s0 + s1. The caller sums rows4 serially per lane.
  void (*lane4_plan)(const double* u4, const double* k4, const double* c4,
                     const double* v4, int n1, int n2, double* p4,
                     double* rows4);

  // --- elementwise accumulation kernels ----------------------------------
  //
  // Each output element is independent and computed either with PLAIN mul /
  // add / div / compare-select (individually rounded IEEE ops) or with a
  // correctly-rounded std::fma — both choices make results bitwise
  // identical in BOTH tables and independent of any ParallelFor range
  // split. These carry the training path's elementwise traffic: the
  // Sinkhorn K^T u accumulation, gradient accumulation, and the activation
  // backward passes.

  /// y[i] += x[i] for i in [0, n).
  void (*vec_accum)(const double* x, double* y, int64_t n);

  /// y[i] = fma(a, x[i], y[i]) — the K^T u per-row accumulation and
  /// Matrix::Axpy.
  void (*vec_axpy)(double a, const double* x, double* y, int64_t n);

  /// y[i] = fma(x1[i], x2[i], y[i]) — elementwise-product backward.
  void (*vec_mul_accum)(const double* x1, const double* x2, double* y,
                        int64_t n);

  /// y[i] += a — the row-sum backward broadcast.
  void (*vec_add_scalar)(double a, double* y, int64_t n);

  /// ga[i] += g[i] * dfdx(x[i], y[i]) where dfdx is selected by `op`
  /// (an EwGrad value) and y is the forward output. Every derivative
  /// formula is plain arithmetic / compare-select on (x, y).
  void (*ew_backward)(int op, const double* g, const double* x,
                      const double* y, double* ga, int64_t n);

  // --- whole-array forward kernels ---------------------------------------
  //
  // Same plain-elementwise contract as the accumulation kernels: bitwise
  // identical across tables and range splits. For the pure elementwise ones
  // (vec_add .. vec_div_scalar, ew_forward) full in-place aliasing
  // (out == an input) is allowed; partial overlap is not.

  /// out[i] = x1[i] + x2[i].
  void (*vec_add)(const double* x1, const double* x2, double* out, int64_t n);

  /// out[i] = x1[i] - x2[i].
  void (*vec_sub)(const double* x1, const double* x2, double* out, int64_t n);

  /// out[i] = x1[i] * x2[i].
  void (*vec_mul)(const double* x1, const double* x2, double* out, int64_t n);

  /// out[i] = a * x[i].
  void (*vec_scale)(double a, const double* x, double* out, int64_t n);

  /// out[i] = a / x[i] (plain IEEE division) — the Sinkhorn marginal
  /// updates u = a ./ Kv, v = b ./ K^T u.
  void (*vec_div_scalar)(double a, const double* x, double* out, int64_t n);

  /// out(r, c) = a(r, c) + b[c] over a rows x cols row-major block — the
  /// bias add. One call covers the whole matrix.
  void (*add_row_broadcast)(const double* a, const double* b, int rows,
                            int cols, double* out);

  /// out(r, c) = a(r, c) * s[r] over a rows x cols row-major block.
  void (*mul_col_broadcast)(const double* a, const double* s, int rows,
                            int cols, double* out);

  /// out[r] = row_dot(mat + r*ld, x, cols) for r in [0, rows) — a whole
  /// mat-vec panel in one dispatch (each row is exactly the row_dot kernel
  /// of the same table, FMA in the AVX2 one).
  void (*mat_vec)(const double* mat, int64_t ld, const double* x, int rows,
                  int cols, double* out);

  /// Transposed mat-vec accumulation panel: zero-fills out[0..cols) then
  /// out[c] = fma(u[r], mat[r*ld + c], out[c]) with r strictly ascending
  /// per element (the K^T u reference order that lane4_ktu replays; fma is
  /// correctly rounded, so both tables agree bitwise). Implementations may
  /// block over rows for locality; the per-element accumulation order
  /// never changes, so the result is bitwise identical to the
  /// row-at-a-time loop.
  void (*mat_tvec_accum)(const double* mat, int64_t ld, const double* u,
                         int rows, int cols, double* out);

  /// out[i] = f(x[i]) with f selected by `op` (an EwFwd value); every
  /// formula is plain arithmetic / compare-select / IEEE-exact sqrt.
  void (*ew_forward)(int op, const double* x, double* out, int64_t n);
};

/// The active kernel set (resolved once; see file comment). Hot loops
/// should hoist the reference out of their inner loop.
const KernelSet& Kernels();

/// The scalar reference table — always available, used by parity tests and
/// by callers that must reproduce the scalar arithmetic exactly.
const KernelSet& ScalarKernels();

/// True when the AVX2/FMA table was compiled in AND this CPU supports it
/// (independent of any force-scalar override).
bool Avx2Available();

/// True when the CERL_FORCE_SCALAR environment override is active.
bool ForcedScalar();

/// Test hook: swap the active table to scalar (true) or back to the
/// environment/CPUID resolution (false). Process-wide; tests that pin
/// machine-independent numerics (golden formats) call this first.
void ForceScalarForTesting(bool force);

}  // namespace cerl::linalg::simd
